//! Deterministic HNSW approximate k-NN over cosine similarity.
//!
//! The index is a layered proximity graph ([HNSW], Malkov & Yashunin).
//! Three choices make every build a *pure function* of
//! `(HnswConfig, insertion order, scoring kernel)`, which is what lets
//! the serving layer promise bitwise-reproducible indexes:
//!
//! 1. **Seeded level assignment.** A node's level is
//!    `floor(-ln(u) / ln(m))` where `u` is derived from
//!    `splitmix64(seed ^ splitmix64(id))` — a pure function of the
//!    configured seed and the node id, with no RNG state threaded
//!    through the build.
//! 2. **Strict total order everywhere.** All beams, neighbor
//!    selections, and prunes compare candidates by the key
//!    `(score descending via total_cmp, id ascending)`. Ties therefore
//!    break exactly like the exact scan's ascending-index order, and no
//!    comparison ever depends on heap iteration or hash order.
//! 3. **Sequential inserts.** Nodes are inserted in id order; the
//!    caller may *compute* scores on many threads, but graph mutation
//!    is single-writer by construction (`insert` takes `&mut self`).
//!
//! Scoring is delegated to caller closures so the index never copies
//! the embedding matrix: the serving layer passes its own cosine
//! kernel, guaranteeing the ANN path scores with the *same* kernel and
//! operand order as the exact path.
//!
//! Serialization follows the checkpoint discipline: magic + version +
//! length + CRC32 frame, written to a temp sibling and atomically
//! renamed. A torn or bit-flipped index file fails with a typed
//! [`AnnError`], never a panic.
//!
//! [HNSW]: https://arxiv.org/abs/1603.09320

#![warn(missing_docs)]

use std::fmt;
use std::path::Path;
use std::time::Instant;

/// Magic bytes opening every serialized index file.
pub const MAGIC: &[u8; 8] = b"SARNHNSW";
/// Serialization format version written after the magic.
pub const FORMAT_VERSION: u32 = 1;
/// Hard cap on assigned levels (the geometric tail beyond this is
/// astronomically unlikely and a cap keeps the format's `u8` honest).
const MAX_LEVEL_CAP: u8 = 31;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure of index deserialization, I/O, or a deadline-bounded
/// search. Corruption is always reported through these variants — a
/// torn file never panics.
#[derive(Debug)]
pub enum AnnError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's format version is not [`FORMAT_VERSION`].
    BadVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The buffer ended before a complete frame or field.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Payload checksum mismatch (bit rot or a torn write).
    CrcMismatch {
        /// Checksum recorded in the header.
        expected: u32,
        /// Checksum of the payload as read.
        found: u32,
    },
    /// The frame decoded but its contents are internally inconsistent.
    Malformed(String),
    /// A deadline-bounded search ran out of budget mid-walk.
    DeadlineExpired,
    /// Underlying filesystem failure.
    Io(std::io::Error),
}

impl fmt::Display for AnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnnError::BadMagic => write!(f, "not an HNSW index file (bad magic)"),
            AnnError::BadVersion { found } => {
                write!(f, "unsupported index format version {found} (expected {FORMAT_VERSION})")
            }
            AnnError::Truncated { needed, have } => {
                write!(f, "truncated index file: needed {needed} bytes, have {have}")
            }
            AnnError::CrcMismatch { expected, found } => write!(
                f,
                "index payload checksum mismatch: header says {expected:#010x}, payload hashes to {found:#010x}"
            ),
            AnnError::Malformed(what) => write!(f, "malformed index: {what}"),
            AnnError::DeadlineExpired => write!(f, "ann search deadline expired"),
            AnnError::Io(e) => write!(f, "index i/o: {e}"),
        }
    }
}

impl std::error::Error for AnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for AnnError {
    fn from(e: std::io::Error) -> Self {
        AnnError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE) — private copy so the crate stays dependency-free
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC32 (IEEE 802.3) over `bytes` — same polynomial as the checkpoint
/// framing in `sarn-core`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

/// Build-time parameters of an HNSW index. Two indexes are only
/// interchangeable (e.g. a sidecar file may only be adopted) when their
/// configs compare equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HnswConfig {
    /// Max neighbors per node on layers above 0 (layer 0 allows `2*m`).
    pub m: usize,
    /// Beam width used while inserting.
    pub ef_construction: usize,
    /// Seed for the deterministic level assignment.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        Self {
            m: 16,
            ef_construction: 100,
            seed: 42,
        }
    }
}

// ---------------------------------------------------------------------------
// Candidate ordering
// ---------------------------------------------------------------------------

/// A scored candidate with the crate-wide strict total order:
/// `a > b` iff `a.score > b.score`, ties broken by *smaller* id being
/// greater. Sorting descending therefore yields
/// `(score desc, id asc)` — the exact scan's order.
#[derive(Clone, Copy, Debug)]
struct Cand {
    score: f32,
    id: u32,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.score.to_bits() == other.score.to_bits() && self.id == other.id
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .total_cmp(&other.score)
            .then_with(|| other.id.cmp(&self.id))
    }
}

// ---------------------------------------------------------------------------
// Index
// ---------------------------------------------------------------------------

/// A deterministic HNSW graph over externally scored points.
///
/// The index stores only graph structure (levels and adjacency); the
/// caller supplies similarity scores through closures, so the same
/// index can be driven by any kernel that is consistent with the one
/// used at build time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HnswIndex {
    cfg: HnswConfig,
    dim: usize,
    /// CRC32 of the embedding bytes this index was built over — used by
    /// consumers to detect a sidecar that no longer matches its matrix.
    data_crc: u32,
    /// Level of each node (number of layers above 0 it appears in).
    levels: Vec<u8>,
    /// `neighbors[node][layer]` — adjacency per node per layer,
    /// `0..=levels[node]`.
    neighbors: Vec<Vec<Vec<u32>>>,
    entry: u32,
    max_level: u8,
}

impl HnswIndex {
    /// An empty index ready for sequential [`HnswIndex::insert`]s.
    pub fn new(cfg: HnswConfig, dim: usize, data_crc: u32) -> Self {
        Self {
            cfg,
            dim,
            data_crc,
            levels: Vec::new(),
            neighbors: Vec::new(),
            entry: 0,
            max_level: 0,
        }
    }

    /// Builds an index over `n` points by inserting ids `0..n` in
    /// order. `score(a, b)` must return the similarity of points `a`
    /// and `b` (higher = closer) and be symmetric and deterministic.
    pub fn build(
        cfg: HnswConfig,
        dim: usize,
        data_crc: u32,
        n: usize,
        score: &mut dyn FnMut(usize, usize) -> f32,
    ) -> Self {
        let mut index = Self::new(cfg, dim, data_crc);
        for _ in 0..n {
            index.insert(score);
        }
        index
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Embedding dimension recorded at build time.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// CRC32 of the embedding bytes recorded at build time.
    pub fn data_crc(&self) -> u32 {
        self.data_crc
    }

    /// Build parameters.
    pub fn config(&self) -> HnswConfig {
        self.cfg
    }

    /// The deterministic level of node `id`: geometric with ratio
    /// `1/m`, derived from `splitmix64(seed ^ splitmix64(id))` alone.
    fn level_for(&self, id: usize) -> u8 {
        let h = splitmix64(self.cfg.seed ^ splitmix64(id as u64));
        // 53 high bits -> u in (0, 1]; u = 1 maps to level 0.
        let u = ((h >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
        let denom = (self.cfg.m.max(2) as f64).ln();
        let level = (-u.ln() / denom).floor();
        if level >= MAX_LEVEL_CAP as f64 {
            MAX_LEVEL_CAP
        } else {
            level as u8
        }
    }

    /// Inserts the next point (its id is the current [`HnswIndex::len`])
    /// and returns that id. `score(a, b)` is the similarity of points
    /// `a` and `b`; during this call `a` or `b` may be the new id.
    pub fn insert(&mut self, score: &mut dyn FnMut(usize, usize) -> f32) -> usize {
        let id = self.levels.len();
        let id32 = u32::try_from(id).expect("HNSW index holds at most u32::MAX points");
        let level = self.level_for(id);
        self.levels.push(level);
        self.neighbors.push(vec![Vec::new(); level as usize + 1]);
        if id == 0 {
            self.entry = 0;
            self.max_level = level;
            return id;
        }

        let mut ep = Cand {
            score: score(id, self.entry as usize),
            id: self.entry,
        };
        // Greedy descent through layers above the new node's level.
        for layer in ((level as usize + 1)..=(self.max_level as usize)).rev() {
            ep = self
                .greedy_at(layer, ep, &mut |x| score(id, x), None)
                .unwrap_or(ep); // unbounded: never expires
        }
        // Beam + connect on the shared layers, top down.
        for layer in (0..=(level.min(self.max_level) as usize)).rev() {
            let w = self
                .beam(
                    layer,
                    ep,
                    self.cfg.ef_construction.max(1),
                    &mut |x| score(id, x),
                    None,
                )
                .unwrap_or_default(); // unbounded: never expires
            let cap = if layer == 0 {
                self.cfg.m * 2
            } else {
                self.cfg.m
            };
            let selected = select_diverse(&w, self.cfg.m, score);
            for &nb in &selected {
                let list = &mut self.neighbors[nb as usize][layer];
                list.push(id32);
                if list.len() > cap {
                    // Shrink the overflowing neighbor with the same
                    // diversity heuristic, scored from its own viewpoint
                    // — a naive closest-first prune would evict the
                    // bridge edges that keep clusters reachable.
                    let mut scored: Vec<Cand> = list
                        .iter()
                        .map(|&x| Cand {
                            score: score(nb as usize, x as usize),
                            id: x,
                        })
                        .collect();
                    scored.sort_unstable_by(|a, b| b.cmp(a));
                    *list = select_diverse(&scored, cap, score);
                }
            }
            self.neighbors[id][layer] = selected;
            if let Some(best) = w.first() {
                ep = *best;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = id32;
        }
        id
    }

    /// k nearest neighbors of an external query by descending score,
    /// ties by ascending id — the exact scan's order. `score(x)` is the
    /// query's similarity to indexed point `x`. Passing
    /// `Some(expires_at)` bounds the walk: once `Instant::now()`
    /// passes it, the search stops with [`AnnError::DeadlineExpired`]
    /// (callers fall back to their exact path).
    pub fn search_with_deadline(
        &self,
        score: &mut dyn FnMut(usize) -> f32,
        k: usize,
        ef_search: usize,
        expires_at: Option<Instant>,
    ) -> Result<Vec<(usize, f32)>, AnnError> {
        if self.levels.is_empty() || k == 0 {
            return Ok(Vec::new());
        }
        let mut ep = Cand {
            score: score(self.entry as usize),
            id: self.entry,
        };
        for layer in (1..=(self.max_level as usize)).rev() {
            ep = self.greedy_at(layer, ep, score, expires_at)?;
        }
        let w = self.beam(0, ep, ef_search.max(k), score, expires_at)?;
        Ok(w.into_iter()
            .take(k)
            .map(|c| (c.id as usize, c.score))
            .collect())
    }

    /// Greedy best-neighbor descent within one layer.
    fn greedy_at(
        &self,
        layer: usize,
        mut best: Cand,
        score: &mut dyn FnMut(usize) -> f32,
        expires_at: Option<Instant>,
    ) -> Result<Cand, AnnError> {
        loop {
            check_deadline(expires_at)?;
            let mut improved = false;
            for &nb in &self.neighbors[best.id as usize][layer] {
                let c = Cand {
                    score: score(nb as usize),
                    id: nb,
                };
                if c > best {
                    best = c;
                    improved = true;
                }
            }
            if !improved {
                return Ok(best);
            }
        }
    }

    /// ef-bounded beam search within one layer, seeded at `ep`.
    /// Returns up to `ef` candidates sorted by the strict order,
    /// descending (best first).
    fn beam(
        &self,
        layer: usize,
        ep: Cand,
        ef: usize,
        score: &mut dyn FnMut(usize) -> f32,
        expires_at: Option<Instant>,
    ) -> Result<Vec<Cand>, AnnError> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut visited = vec![false; self.levels.len()];
        visited[ep.id as usize] = true;
        let mut candidates: BinaryHeap<Cand> = BinaryHeap::new();
        // Min-heap: the top is the *worst* kept result (lowest score,
        // largest id among ties), so eviction keeps smaller ids.
        let mut results: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        candidates.push(ep);
        results.push(Reverse(ep));
        while let Some(c) = candidates.pop() {
            check_deadline(expires_at)?;
            if results.len() >= ef {
                if let Some(&Reverse(worst)) = results.peek() {
                    if c < worst {
                        break;
                    }
                }
            }
            for &nb in &self.neighbors[c.id as usize][layer] {
                let nb = nb as usize;
                if visited[nb] {
                    continue;
                }
                visited[nb] = true;
                let cand = Cand {
                    score: score(nb),
                    id: nb as u32,
                };
                let admit = if results.len() < ef {
                    true
                } else {
                    results.peek().is_some_and(|&Reverse(worst)| cand > worst)
                };
                if admit {
                    candidates.push(cand);
                    results.push(Reverse(cand));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Cand> = results.into_iter().map(|Reverse(c)| c).collect();
        out.sort_unstable_by(|a, b| b.cmp(a));
        Ok(out)
    }

    // ---- serialization ---------------------------------------------------

    /// Serializes the index as a CRC-framed byte buffer:
    /// `MAGIC | version | payload_len | crc32(payload) | payload`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.cfg.m as u32).to_le_bytes());
        payload.extend_from_slice(&(self.cfg.ef_construction as u32).to_le_bytes());
        payload.extend_from_slice(&self.cfg.seed.to_le_bytes());
        payload.extend_from_slice(&self.data_crc.to_le_bytes());
        payload.extend_from_slice(&(self.levels.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(self.dim as u64).to_le_bytes());
        payload.extend_from_slice(&self.entry.to_le_bytes());
        payload.push(self.max_level);
        payload.extend_from_slice(&self.levels);
        for lists in &self.neighbors {
            for list in lists {
                payload.extend_from_slice(&(list.len() as u32).to_le_bytes());
                for &id in list {
                    payload.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        let mut out = Vec::with_capacity(24 + payload.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes a buffer produced by [`HnswIndex::to_bytes`], validating
    /// the frame, checksum, and internal consistency. Every corruption
    /// mode returns a typed [`AnnError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, AnnError> {
        if bytes.len() < 24 {
            return Err(AnnError::Truncated {
                needed: 24,
                have: bytes.len(),
            });
        }
        if &bytes[..8] != MAGIC {
            return Err(AnnError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(AnnError::BadVersion { found: version });
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
        let expected_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes"));
        let total = 24usize.saturating_add(payload_len);
        if bytes.len() < total {
            return Err(AnnError::Truncated {
                needed: total,
                have: bytes.len(),
            });
        }
        if bytes.len() > total {
            return Err(AnnError::Malformed(format!(
                "{} trailing bytes after the framed payload",
                bytes.len() - total
            )));
        }
        let payload = &bytes[24..total];
        let found_crc = crc32(payload);
        if found_crc != expected_crc {
            return Err(AnnError::CrcMismatch {
                expected: expected_crc,
                found: found_crc,
            });
        }
        let mut cur = Cursor::new(payload);
        let m = cur.read_u32()? as usize;
        let ef_construction = cur.read_u32()? as usize;
        let seed = cur.read_u64()?;
        let data_crc = cur.read_u32()?;
        let n = usize::try_from(cur.read_u64()?)
            .map_err(|_| AnnError::Malformed("point count overflows usize".into()))?;
        let dim = usize::try_from(cur.read_u64()?)
            .map_err(|_| AnnError::Malformed("dimension overflows usize".into()))?;
        let entry = cur.read_u32()?;
        let max_level = cur.read_u8()?;
        if m < 2 {
            return Err(AnnError::Malformed(format!(
                "m = {m} is below the minimum of 2"
            )));
        }
        let levels = cur.read_bytes(n)?.to_vec();
        if n > 0 {
            if entry as usize >= n {
                return Err(AnnError::Malformed(format!(
                    "entry point {entry} out of range for {n} points"
                )));
            }
            let top = levels.iter().copied().max().unwrap_or(0);
            if top != max_level {
                return Err(AnnError::Malformed(format!(
                    "recorded max level {max_level} but levels peak at {top}"
                )));
            }
            if levels[entry as usize] != max_level {
                return Err(AnnError::Malformed(format!(
                    "entry point {entry} sits at level {}, not the max level {max_level}",
                    levels[entry as usize]
                )));
            }
        }
        let mut neighbors = Vec::with_capacity(n);
        for (node, &level) in levels.iter().enumerate() {
            let mut lists = Vec::with_capacity(level as usize + 1);
            for _ in 0..=level {
                let count = cur.read_u32()? as usize;
                if count > n {
                    return Err(AnnError::Malformed(format!(
                        "node {node} claims {count} neighbors in a {n}-point index"
                    )));
                }
                let mut list = Vec::with_capacity(count);
                for _ in 0..count {
                    let id = cur.read_u32()?;
                    if id as usize >= n {
                        return Err(AnnError::Malformed(format!(
                            "node {node} links to out-of-range id {id}"
                        )));
                    }
                    list.push(id);
                }
                lists.push(list);
            }
            neighbors.push(lists);
        }
        if !cur.at_end() {
            return Err(AnnError::Malformed(format!(
                "{} undecoded bytes inside the payload",
                cur.remaining()
            )));
        }
        Ok(Self {
            cfg: HnswConfig {
                m,
                ef_construction,
                seed,
            },
            dim,
            data_crc,
            levels,
            neighbors,
            entry,
            max_level,
        })
    }

    /// Writes the serialized index to `path` atomically: the bytes go
    /// to a temp sibling first, then a rename publishes them, so a
    /// crashed writer leaves either the old file or none — never a torn
    /// frame at the final path.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), AnnError> {
        let path = path.as_ref();
        let file_name = path
            .file_name()
            .ok_or_else(|| AnnError::Malformed(format!("{} has no file name", path.display())))?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Reads and decodes an index file written by [`HnswIndex::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, AnnError> {
        let bytes = std::fs::read(path.as_ref())?;
        Self::from_bytes(&bytes)
    }
}

/// Neighbor selection with the HNSW diversity heuristic (Algorithm 4
/// of the paper): walking candidates best-first, a candidate is kept
/// only while it is at least as close to the anchor as to every
/// already-kept neighbor — which is what grows bridge edges across
/// clusters instead of intra-cluster cliques. Ties keep (`>=`, not
/// `>`): an exact-duplicate row scores identically against the anchor
/// and against its twin, and rejecting it would shear off the very
/// clique edges duplicate-heavy data needs for top-k correctness.
/// Rejected candidates backfill remaining slots
/// (`keepPrunedConnections`), preserving degree and connectivity.
/// `w` must be sorted best-first with `w[i].score` the candidate's
/// similarity to the anchor; `score` is the pairwise kernel. Fully
/// deterministic: fixed iteration order, pure comparisons.
fn select_diverse(w: &[Cand], m: usize, score: &mut dyn FnMut(usize, usize) -> f32) -> Vec<u32> {
    let mut selected: Vec<Cand> = Vec::with_capacity(m);
    let mut rejected: Vec<u32> = Vec::new();
    for &c in w {
        if selected.len() >= m {
            break;
        }
        let diverse = selected
            .iter()
            .all(|s| c.score >= score(c.id as usize, s.id as usize));
        if diverse {
            selected.push(c);
        } else {
            rejected.push(c.id);
        }
    }
    let mut out: Vec<u32> = selected.iter().map(|c| c.id).collect();
    for id in rejected {
        if out.len() >= m {
            break;
        }
        out.push(id);
    }
    out
}

fn check_deadline(expires_at: Option<Instant>) -> Result<(), AnnError> {
    match expires_at {
        Some(t) if Instant::now() >= t => Err(AnnError::DeadlineExpired),
        _ => Ok(()),
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Little-endian field reader with typed truncation errors.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], AnnError> {
        let end = self.pos.checked_add(n).ok_or(AnnError::Truncated {
            needed: usize::MAX,
            have: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(AnnError::Truncated {
                needed: end,
                have: self.buf.len(),
            });
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn read_u8(&mut self) -> Result<u8, AnnError> {
        Ok(self.read_bytes(1)?[0])
    }

    fn read_u32(&mut self) -> Result<u32, AnnError> {
        Ok(u32::from_le_bytes(
            self.read_bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn read_u64(&mut self) -> Result<u64, AnnError> {
        Ok(u64::from_le_bytes(
            self.read_bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random unit-ish vectors.
    fn points(n: usize, dim: usize, salt: u64) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..dim)
                    .map(|d| {
                        let h = splitmix64(salt ^ (i as u64) << 20 ^ d as u64);
                        ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
                    })
                    .collect()
            })
            .collect()
    }

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        dot / (na * nb)
    }

    fn build_over(pts: &[Vec<f32>], cfg: HnswConfig) -> HnswIndex {
        HnswIndex::build(cfg, pts[0].len(), 0, pts.len(), &mut |a, b| {
            cosine(&pts[a], &pts[b])
        })
    }

    fn exact_topk(pts: &[Vec<f32>], q: &[f32], k: usize) -> Vec<(usize, f32)> {
        let mut scored: Vec<(usize, f32)> =
            (0..pts.len()).map(|i| (i, cosine(q, &pts[i]))).collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }

    #[test]
    fn empty_index_returns_no_neighbors() {
        let idx = HnswIndex::new(HnswConfig::default(), 4, 0);
        let out = idx
            .search_with_deadline(&mut |_| 0.0, 5, 64, None)
            .expect("empty search");
        assert!(out.is_empty());
    }

    #[test]
    fn search_is_exact_on_a_small_fully_connected_set() {
        let pts = points(40, 8, 7);
        let idx = build_over(&pts, HnswConfig::default());
        for qi in 0..pts.len() {
            let q = pts[qi].clone();
            let got = idx
                .search_with_deadline(&mut |x| cosine(&q, &pts[x]), 5, pts.len(), None)
                .expect("search");
            let want = exact_topk(&pts, &q, 5);
            assert_eq!(got, want, "query {qi}");
        }
    }

    #[test]
    fn ties_break_by_ascending_id_like_the_exact_scan() {
        // All points identical: every score ties, so top-k must be the
        // smallest ids in ascending order.
        let pts: Vec<Vec<f32>> = (0..30).map(|_| vec![0.5f32, -0.25, 0.125]).collect();
        let idx = build_over(&pts, HnswConfig::default());
        let q = pts[0].clone();
        let got = idx
            .search_with_deadline(&mut |x| cosine(&q, &pts[x]), 10, pts.len(), None)
            .expect("search");
        let ids: Vec<usize> = got.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn build_is_deterministic_bitwise() {
        let pts = points(120, 12, 99);
        let cfg = HnswConfig {
            m: 8,
            ef_construction: 60,
            seed: 1234,
        };
        let a = build_over(&pts, cfg);
        let b = build_over(&pts, cfg);
        assert_eq!(a, b);
        assert_eq!(a.to_bytes(), b.to_bytes());
        // A different seed reshuffles levels (and so, in general, bytes).
        let c = build_over(&pts, HnswConfig { seed: 4321, ..cfg });
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn serialization_roundtrips_bitwise() {
        let pts = points(80, 6, 3);
        let idx = build_over(&pts, HnswConfig::default());
        let bytes = idx.to_bytes();
        let back = HnswIndex::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(idx, back);
        assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn torn_and_corrupt_files_fail_typed_never_panic() {
        let pts = points(50, 4, 11);
        let idx = build_over(&pts, HnswConfig::default());
        let bytes = idx.to_bytes();

        assert!(matches!(
            HnswIndex::from_bytes(&bytes[..10]),
            Err(AnnError::Truncated { .. })
        ));
        assert!(matches!(
            HnswIndex::from_bytes(&bytes[..bytes.len() - 3]),
            Err(AnnError::Truncated { .. })
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(
            HnswIndex::from_bytes(&bad_magic),
            Err(AnnError::BadMagic)
        ));
        let mut bad_version = bytes.clone();
        bad_version[8] = 0xEE;
        assert!(matches!(
            HnswIndex::from_bytes(&bad_version),
            Err(AnnError::BadVersion { .. })
        ));
        let mut flipped = bytes.clone();
        let mid = 24 + (bytes.len() - 24) / 2;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            HnswIndex::from_bytes(&flipped),
            Err(AnnError::CrcMismatch { .. })
        ));
        // Every truncation point fails typed (no slicing panic).
        for cut in 0..bytes.len() {
            assert!(HnswIndex::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn save_load_roundtrips_through_a_file() {
        let pts = points(60, 5, 21);
        let idx = build_over(&pts, HnswConfig::default());
        let dir = std::env::temp_dir().join(format!("sarn_ann_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("index.hnsw");
        idx.save(&path).expect("save");
        let back = HnswIndex::load(&path).expect("load");
        assert_eq!(idx, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_deadline_fails_typed() {
        let pts = points(200, 8, 5);
        let idx = build_over(&pts, HnswConfig::default());
        let q = pts[0].clone();
        let past = Instant::now() - std::time::Duration::from_millis(1);
        let out = idx.search_with_deadline(&mut |x| cosine(&q, &pts[x]), 5, 64, Some(past));
        assert!(matches!(out, Err(AnnError::DeadlineExpired)));
    }

    #[test]
    fn levels_are_a_pure_function_of_seed_and_id() {
        let a = HnswIndex::new(HnswConfig::default(), 4, 0);
        let b = HnswIndex::new(HnswConfig::default(), 4, 0);
        for id in 0..1000 {
            assert_eq!(a.level_for(id), b.level_for(id));
        }
        // The geometric tail is thin: levels stay small and level 0
        // dominates.
        let zeros = (0..1000).filter(|&id| a.level_for(id) == 0).count();
        assert!(zeros > 800, "level 0 should dominate, got {zeros}/1000");
    }
}
