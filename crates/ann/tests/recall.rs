//! Recall oracle: HNSW answers vs the exact scan, over uniform,
//! clustered, and duplicate-heavy point sets.
//!
//! Contracts checked here (at the documented operating point
//! `m = 16`, `ef_construction = 100`, `ef_search = 64`):
//!
//! - recall@10 ≥ 0.95 averaged over queries, on every generated set;
//! - every returned list is sorted by `(score desc, id asc)`;
//! - ties break identically to the exact scan's ascending-index order
//!   (checked exhaustively on duplicate-heavy sets where every
//!   neighbor score collides).

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use sarn_ann::{HnswConfig, HnswIndex};

/// The operating point documented in DESIGN.md §16 and asserted on by
/// CI's `load_gen_smoke`.
const EF_SEARCH: usize = 64;
const K: usize = 10;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn unit_f32(h: u64) -> f32 {
    ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
}

/// Uniform pseudo-random points in `[-1, 1]^dim`.
fn uniform_points(n: usize, dim: usize, salt: u64) -> Vec<Vec<f32>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|d| unit_f32(splitmix64(salt ^ ((i as u64) << 20) ^ d as u64)))
                .collect()
        })
        .collect()
}

/// Points drawn around `clusters` well-separated centers with small
/// per-point jitter — the adversarial case for graph connectivity.
fn clustered_points(n: usize, dim: usize, clusters: usize, salt: u64) -> Vec<Vec<f32>> {
    let centers = uniform_points(clusters, dim, salt ^ 0xC0FFEE);
    (0..n)
        .map(|i| {
            let c = &centers[i % clusters];
            (0..dim)
                .map(|d| {
                    let h = splitmix64(salt ^ ((i as u64) << 24) ^ ((d as u64) << 2) ^ 1);
                    c[d] + unit_f32(h) * 0.05
                })
                .collect()
        })
        .collect()
}

/// A small pool of distinct rows, each repeated many times — every
/// query sees massive score ties.
fn duplicate_points(n: usize, dim: usize, pool: usize, salt: u64) -> Vec<Vec<f32>> {
    let base = uniform_points(pool, dim, salt ^ 0xD00D);
    (0..n).map(|i| base[i % pool].clone()).collect()
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    dot / (na * nb)
}

fn build(pts: &[Vec<f32>]) -> HnswIndex {
    HnswIndex::build(
        HnswConfig::default(),
        pts[0].len(),
        0,
        pts.len(),
        &mut |a, b| cosine(&pts[a], &pts[b]),
    )
}

/// Exact top-k: `(score desc, id asc)`, the serving scan's order.
fn exact_topk(pts: &[Vec<f32>], q: &[f32], k: usize) -> Vec<(usize, f32)> {
    let mut scored: Vec<(usize, f32)> = (0..pts.len()).map(|i| (i, cosine(q, &pts[i]))).collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

fn assert_exact_scan_order(got: &[(usize, f32)]) -> Result<(), String> {
    for w in got.windows(2) {
        let ordered = w[0].1 > w[1].1 || (w[0].1.to_bits() == w[1].1.to_bits() && w[0].0 < w[1].0);
        if !ordered {
            return Err(format!(
                "result list out of (score desc, id asc) order: {w:?}"
            ));
        }
    }
    Ok(())
}

/// Average id-level recall@k over the first `queries` indexed points.
fn id_recall(pts: &[Vec<f32>], idx: &HnswIndex, queries: usize, k: usize) -> f64 {
    let mut total = 0.0;
    for qi in 0..queries.min(pts.len()) {
        let q = &pts[qi];
        let got = idx
            .search_with_deadline(&mut |x| cosine(q, &pts[x]), k, EF_SEARCH, None)
            .expect("unbounded search");
        assert_exact_scan_order(&got).expect("ordering");
        let want = exact_topk(pts, q, k);
        let want_ids: Vec<usize> = want.iter().map(|&(i, _)| i).collect();
        let hits = got.iter().filter(|&&(i, _)| want_ids.contains(&i)).count();
        total += hits as f64 / k as f64;
    }
    total / queries.min(pts.len()) as f64
}

/// Score-level recall@k: a returned neighbor counts as a hit when its
/// score is at least the exact k-th score. This is the right oracle for
/// duplicate-heavy sets, where many ids share the boundary score and
/// any of them is an equally correct answer.
fn score_recall(pts: &[Vec<f32>], idx: &HnswIndex, queries: usize, k: usize) -> f64 {
    let mut total = 0.0;
    for qi in 0..queries.min(pts.len()) {
        let q = &pts[qi];
        let got = idx
            .search_with_deadline(&mut |x| cosine(q, &pts[x]), k, EF_SEARCH, None)
            .expect("unbounded search");
        assert_exact_scan_order(&got).expect("ordering");
        let want = exact_topk(pts, q, k);
        let kth = want.last().expect("k-th exact score").1;
        let hits = got.iter().filter(|&&(_, s)| s >= kth).count();
        total += hits.min(k) as f64 / k as f64;
    }
    total / queries.min(pts.len()) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn uniform_sets_reach_recall_at_10(n in 200usize..500, dim in 8usize..=16, salt in 0u64..u64::MAX) {
        let pts = uniform_points(n, dim, salt);
        let idx = build(&pts);
        let recall = id_recall(&pts, &idx, 20, K);
        prop_assert!(
            recall >= 0.95,
            "uniform n={n} dim={dim}: recall@10 = {recall:.3} < 0.95"
        );
    }

    #[test]
    fn clustered_sets_reach_recall_at_10(n in 200usize..500, dim in 8usize..=16, clusters in 3usize..8, salt in 0u64..u64::MAX) {
        let pts = clustered_points(n, dim, clusters, salt);
        let idx = build(&pts);
        // Clusters induce near-ties at cluster boundaries; score-level
        // recall is the oracle that does not punish equally-good ids.
        let recall = score_recall(&pts, &idx, 20, K);
        prop_assert!(
            recall >= 0.95,
            "clustered n={n} dim={dim} c={clusters}: recall@10 = {recall:.3} < 0.95"
        );
    }

    #[test]
    fn duplicate_heavy_sets_reach_recall_at_10(n in 150usize..400, dim in 6usize..=12, pool in 5usize..20, salt in 0u64..u64::MAX) {
        let pts = duplicate_points(n, dim, pool, salt);
        let idx = build(&pts);
        let recall = score_recall(&pts, &idx, 20, K);
        prop_assert!(
            recall >= 0.95,
            "duplicates n={n} pool={pool}: recall@10 = {recall:.3} < 0.95"
        );
    }

    #[test]
    fn all_duplicates_tie_break_exactly_like_the_exact_scan(dim in 3usize..10, salt in 0u64..u64::MAX) {
        // Every row identical: all scores tie, so with an ef that covers
        // the whole (fully explorable) graph the answer must be exactly
        // ids 0..10 in ascending order — the exact scan's tie contract.
        let n = 50usize;
        let row: Vec<f32> = (0..dim).map(|d| unit_f32(splitmix64(salt ^ d as u64))).collect();
        let pts: Vec<Vec<f32>> = (0..n).map(|_| row.clone()).collect();
        let idx = build(&pts);
        let got = idx
            .search_with_deadline(&mut |x| cosine(&row, &pts[x]), K, n, None)
            .expect("unbounded search");
        let ids: Vec<usize> = got.iter().map(|&(i, _)| i).collect();
        prop_assert_eq!(ids, (0..K).collect::<Vec<_>>());
    }
}
