//! Shared infrastructure for the competitor models.

use std::fmt;

/// Training failure modes shared by the baselines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrainError {
    /// The model's working set exceeds the accelerator memory budget.
    ///
    /// The paper reports GCA and HRNR running out of GPU memory on the
    /// SF-L road network (Table 8); this reproduction models each method's
    /// dominant allocation analytically and fails the same way.
    OutOfMemory {
        /// Bytes the model would need.
        required_bytes: usize,
        /// Available budget.
        budget_bytes: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::OutOfMemory {
                required_bytes,
                budget_bytes,
            } => write!(
                f,
                "OOM: requires {:.0} MB but budget is {:.0} MB",
                *required_bytes as f64 / 1e6,
                *budget_bytes as f64 / 1e6
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// Simulated accelerator memory budget.
///
/// The default (128 MB) is scaled to this reproduction's network sizes the
/// same way the paper's 32 GB V100 relates to its 74k-segment SF-L: methods
/// whose dominant allocation is quadratic in the segment count (GCA's
/// all-vertex similarity matrix, HRNR's stacked adjacency matrices) exceed
/// it on SF-L but not on SF.
#[derive(Clone, Copy, Debug)]
pub struct MemoryBudget {
    /// Budget in bytes.
    pub bytes: usize,
}

impl Default for MemoryBudget {
    fn default() -> Self {
        Self {
            bytes: 128 * 1024 * 1024,
        }
    }
}

impl MemoryBudget {
    /// Unlimited budget (skips the OOM check).
    pub fn unlimited() -> Self {
        Self { bytes: usize::MAX }
    }

    /// Checks a requested allocation against the budget.
    pub fn check(&self, required_bytes: usize) -> Result<(), TrainError> {
        if required_bytes > self.bytes {
            Err(TrainError::OutOfMemory {
                required_bytes,
                budget_bytes: self.bytes,
            })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_rejects_oversized_allocations() {
        let b = MemoryBudget { bytes: 100 };
        assert!(b.check(50).is_ok());
        let err = b.check(200).unwrap_err();
        assert_eq!(
            err,
            TrainError::OutOfMemory {
                required_bytes: 200,
                budget_bytes: 100
            }
        );
        assert!(err.to_string().contains("OOM"));
    }

    #[test]
    fn unlimited_budget_accepts_everything() {
        assert!(MemoryBudget::unlimited().check(usize::MAX - 1).is_ok());
    }
}
