//! GCA (Zhu et al., WWW 2021): GraphCL extended with *adaptive
//! augmentation* — high-weight edges are retained preferentially — and
//! negatives drawn from **all** other vertices of the graph, which makes it
//! both the strongest and the most expensive GCL baseline (Fig. 4) and the
//! first to run out of memory as networks grow (Table 8).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sarn_core::{AugmentConfig, Augmenter};
use sarn_roadnet::RoadNetwork;
use sarn_tensor::optim::Adam;
use sarn_tensor::{Graph, Tensor};

use crate::common::{MemoryBudget, TrainError};
use crate::gcl::{GclBackbone, GclBackboneConfig};

/// GCA hyper-parameters.
#[derive(Clone, Debug)]
pub struct GcaConfig {
    /// Backbone dimensions.
    pub backbone: GclBackboneConfig,
    /// Weighted edge corruption (reuses SARN's Eq. 6-style sampling over the
    /// topological weights — GCA's adaptive augmentation).
    pub augment: AugmentConfig,
    /// InfoNCE temperature.
    pub tau: f32,
    /// Learning rate.
    pub lr: f32,
    /// Mini-batch size (anchors per step; negatives are still all vertices).
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Simulated accelerator memory budget.
    pub memory: MemoryBudget,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GcaConfig {
    fn default() -> Self {
        Self {
            backbone: GclBackboneConfig::default(),
            augment: AugmentConfig::default(),
            tau: 0.05,
            lr: 0.005,
            batch_size: 128,
            epochs: 20,
            memory: MemoryBudget::default(),
            seed: 31,
        }
    }
}

/// A trained GCA model.
pub struct Gca {
    /// `n x d` segment embeddings.
    pub embeddings: Tensor,
    /// Wall-clock training time, seconds.
    pub train_seconds: f64,
    /// Mean loss per epoch.
    pub loss_history: Vec<f32>,
}

impl Gca {
    /// Trains GCA, or fails with [`TrainError::OutOfMemory`] when the
    /// all-vertex similarity structure exceeds the memory budget.
    pub fn train(net: &RoadNetwork, cfg: &GcaConfig) -> Result<Self, TrainError> {
        let n = net.num_segments();
        // Dominant allocation: the dense anchor-by-all-vertices similarity
        // matrix plus its softmax and gradient copies (3 * n^2 f32).
        cfg.memory.check(3 * n * n * 4)?;

        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut backbone = GclBackbone::new(net, &cfg.backbone, cfg.seed);
        let mut opt = Adam::new(cfg.lr);
        let augmenter = Augmenter::new(n, net.topo_edges().to_vec(), Vec::new(), cfg.augment);
        let full = augmenter.full_view().edge_index();
        let mut order: Vec<usize> = (0..n).collect();
        let mut loss_history = Vec::new();

        for _ in 0..cfg.epochs {
            let v1 = augmenter.corrupt(&mut rng).edge_index();
            let v2 = augmenter.corrupt(&mut rng).edge_index();
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for batch in order.chunks(cfg.batch_size) {
                let mut z2_full = backbone.embed_projected_detached(&v2);
                normalize_rows(&mut z2_full);
                backbone.store.zero_grads();
                let g = Graph::new();
                let h = backbone.encode(&g, &v1);
                let hb = g.gather_rows(h, batch);
                let z = backbone.project(&g, hb);
                let z = g.l2_normalize_rows(z);
                let d_z = z2_full.cols();
                // All-vertex negatives: candidate matrix is the entire second
                // view with the anchor's positive moved to row 0.
                let cands: Vec<Tensor> = batch
                    .iter()
                    .map(|&a| {
                        let mut rows = Vec::with_capacity(n * d_z);
                        rows.extend_from_slice(z2_full.row_slice(a));
                        for j in 0..n {
                            if j != a {
                                rows.extend_from_slice(z2_full.row_slice(j));
                            }
                        }
                        Tensor::from_vec(n, d_z, rows)
                    })
                    .collect();
                let loss = g.info_nce(z, cands, cfg.tau);
                epoch_loss += g.value(loss).item();
                batches += 1;
                g.backward(loss);
                g.accumulate_grads(&mut backbone.store);
                opt.step(&mut backbone.store);
            }
            loss_history.push(epoch_loss / batches.max(1) as f32);
        }
        let embeddings = backbone.embed_detached(&full);
        Ok(Self {
            embeddings,
            train_seconds: start.elapsed().as_secs_f64(),
            loss_history,
        })
    }
}

/// In-place row L2 normalization (cosine-similarity InfoNCE).
fn normalize_rows(t: &mut Tensor) {
    for i in 0..t.rows() {
        let row = t.row_slice_mut(i);
        let n = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
        for v in row.iter_mut() {
            *v /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};

    #[test]
    fn trains_on_small_networks() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.2).generate();
        let cfg = GcaConfig {
            backbone: GclBackboneConfig::tiny(),
            epochs: 2,
            batch_size: 64,
            ..Default::default()
        };
        let m = Gca::train(&net, &cfg).expect("should fit in budget");
        assert_eq!(m.embeddings.rows(), net.num_segments());
        assert!(m.embeddings.all_finite());
    }

    #[test]
    fn outruns_memory_on_large_networks() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.2).generate();
        let cfg = GcaConfig {
            backbone: GclBackboneConfig::tiny(),
            memory: MemoryBudget { bytes: 1024 },
            ..Default::default()
        };
        match Gca::train(&net, &cfg) {
            Err(TrainError::OutOfMemory { .. }) => {}
            other => panic!(
                "expected OOM, got {:?}",
                other.map(|m| m.embeddings.shape())
            ),
        }
    }
}
