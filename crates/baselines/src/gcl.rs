//! Shared scaffolding for the GCL baselines (GraphCL, GCA): a
//! feature-embedding + GAT + projection stack with **shared** parameters
//! across both graph views (unlike SARN's momentum branch).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sarn_core::{DiscretizedFeatures, FeatureEmbedding};
use sarn_roadnet::RoadNetwork;
use sarn_tensor::layers::{Activation, EdgeIndex, Ffn, GatEncoder};
use sarn_tensor::{Graph, ParamStore, Tensor, Var};

/// Backbone dimensions shared by the GCL baselines.
#[derive(Clone, Copy, Debug)]
pub struct GclBackboneConfig {
    /// Output embedding dimensionality.
    pub d: usize,
    /// Projection dimensionality.
    pub d_z: usize,
    /// Per-feature embedding width.
    pub d_per_feature: usize,
    /// GAT layers.
    pub n_layers: usize,
    /// GAT heads.
    pub n_heads: usize,
}

impl Default for GclBackboneConfig {
    fn default() -> Self {
        Self {
            d: 64,
            d_z: 32,
            d_per_feature: 8,
            n_layers: 3,
            n_heads: 4,
        }
    }
}

impl GclBackboneConfig {
    /// Minimal configuration for tests.
    pub fn tiny() -> Self {
        Self {
            d: 16,
            d_z: 8,
            d_per_feature: 4,
            n_layers: 2,
            n_heads: 2,
        }
    }
}

/// The shared-parameter GCL backbone.
pub struct GclBackbone {
    feats: DiscretizedFeatures,
    femb: FeatureEmbedding,
    encoder: GatEncoder,
    proj: Ffn,
    /// Model parameters (single branch — both views share them).
    pub store: ParamStore,
}

impl GclBackbone {
    /// Builds the backbone for a network.
    pub fn new(net: &RoadNetwork, cfg: &GclBackboneConfig, seed: u64) -> Self {
        let feats = DiscretizedFeatures::from_network(net);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let femb = FeatureEmbedding::new(&mut store, &mut rng, "femb", &feats, cfg.d_per_feature);
        let encoder = GatEncoder::new(
            &mut store,
            &mut rng,
            "enc",
            femb.d_f(),
            cfg.d,
            cfg.n_layers,
            cfg.n_heads,
        );
        let proj = Ffn::new(
            &mut store,
            &mut rng,
            "proj",
            &[cfg.d, cfg.d, cfg.d_z],
            Activation::Relu,
        );
        Self {
            feats,
            femb,
            encoder,
            proj,
            store,
        }
    }

    /// Records `H = F(X, view)` on a tape.
    pub fn encode(&self, g: &Graph, edges: &EdgeIndex) -> Var {
        let x = self.femb.forward(g, &self.store, &self.feats);
        self.encoder.forward(g, &self.store, x, edges)
    }

    /// Records `Z = P(H)`.
    pub fn project(&self, g: &Graph, h: Var) -> Var {
        self.proj.forward(g, &self.store, h)
    }

    /// Gradient-free full forward, returning `n x d`.
    pub fn embed_detached(&self, edges: &EdgeIndex) -> Tensor {
        let g = Graph::new();
        let h = self.encode(&g, edges);
        g.value(h)
    }

    /// Gradient-free full forward + projection, returning `n x d_z`.
    pub fn embed_projected_detached(&self, edges: &EdgeIndex) -> Tensor {
        let g = Graph::new();
        let h = self.encode(&g, edges);
        let z = self.project(&g, h);
        g.value(z)
    }
}
