//! GraphCL (You et al., NeurIPS 2020) adapted to road networks: shared
//! encoder over two uniformly edge-dropped views, InfoNCE with in-batch
//! negatives. This is the paper's "representative GCL model" baseline.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sarn_roadnet::RoadNetwork;
use sarn_tensor::layers::EdgeIndex;
use sarn_tensor::optim::Adam;
use sarn_tensor::{Graph, Tensor};

use crate::gcl::{GclBackbone, GclBackboneConfig};

/// GraphCL hyper-parameters.
#[derive(Clone, Debug)]
pub struct GraphClConfig {
    /// Backbone dimensions (same GAT backbone as SARN, for fair comparison).
    pub backbone: GclBackboneConfig,
    /// Uniform edge-drop rate per view.
    pub drop_rate: f64,
    /// InfoNCE temperature.
    pub tau: f32,
    /// Learning rate.
    pub lr: f32,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphClConfig {
    fn default() -> Self {
        Self {
            backbone: GclBackboneConfig::default(),
            drop_rate: 0.4,
            tau: 0.05,
            lr: 0.005,
            batch_size: 128,
            epochs: 20,
            seed: 21,
        }
    }
}

/// A trained GraphCL model.
pub struct GraphCl {
    /// `n x d` segment embeddings.
    pub embeddings: Tensor,
    /// Wall-clock training time, seconds.
    pub train_seconds: f64,
    /// Mean loss per epoch.
    pub loss_history: Vec<f32>,
}

impl GraphCl {
    /// Trains GraphCL on the topological graph.
    pub fn train(net: &RoadNetwork, cfg: &GraphClConfig) -> Self {
        let start = Instant::now();
        let n = net.num_segments();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let backbone = GclBackbone::new(net, &cfg.backbone, cfg.seed);
        let mut backbone = backbone;
        let mut opt = Adam::new(cfg.lr);
        let edges: Vec<(usize, usize)> = net.topo_edges().iter().map(|&(i, j, _)| (i, j)).collect();
        let full = view_from(&edges, n, 0.0, &mut rng);
        let mut order: Vec<usize> = (0..n).collect();
        let mut loss_history = Vec::new();

        for _ in 0..cfg.epochs {
            let v1 = view_from(&edges, n, cfg.drop_rate, &mut rng);
            let v2 = view_from(&edges, n, cfg.drop_rate, &mut rng);
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for batch in order.chunks(cfg.batch_size) {
                // Second view detached: with shared parameters this is a
                // stop-gradient on one side, the standard memory-saving
                // variant; positives/negatives still come from view 2.
                let mut z2_full = backbone.embed_projected_detached(&v2);
                normalize_rows(&mut z2_full);
                backbone.store.zero_grads();
                let g = Graph::new();
                let h = backbone.encode(&g, &v1);
                let hb = g.gather_rows(h, batch);
                let z = backbone.project(&g, hb);
                let z = g.l2_normalize_rows(z);
                let d_z = z2_full.cols();
                let cands: Vec<Tensor> = (0..batch.len())
                    .map(|a| {
                        let mut rows = Vec::with_capacity(batch.len() * d_z);
                        rows.extend_from_slice(z2_full.row_slice(batch[a]));
                        for (b, &j) in batch.iter().enumerate() {
                            if b != a {
                                rows.extend_from_slice(z2_full.row_slice(j));
                            }
                        }
                        Tensor::from_vec(batch.len(), d_z, rows)
                    })
                    .collect();
                let loss = g.info_nce(z, cands, cfg.tau);
                epoch_loss += g.value(loss).item();
                batches += 1;
                g.backward(loss);
                g.accumulate_grads(&mut backbone.store);
                opt.step(&mut backbone.store);
            }
            loss_history.push(epoch_loss / batches.max(1) as f32);
        }
        let embeddings = backbone.embed_detached(&full);
        Self {
            embeddings,
            train_seconds: start.elapsed().as_secs_f64(),
            loss_history,
        }
    }
}

/// Uniformly drops a fraction of directed edges and builds the message index.
fn view_from(edges: &[(usize, usize)], n: usize, drop_rate: f64, rng: &mut StdRng) -> EdgeIndex {
    let kept = edges
        .iter()
        .filter(|_| !rng.gen_bool(drop_rate))
        .map(|&(i, j)| (j, i));
    EdgeIndex::with_self_loops(n, kept)
}

/// In-place row L2 normalization (cosine-similarity InfoNCE).
fn normalize_rows(t: &mut Tensor) {
    for i in 0..t.rows() {
        let row = t.row_slice_mut(i);
        let n = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
        for v in row.iter_mut() {
            *v /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};

    #[test]
    fn trains_and_embeds() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
        let cfg = GraphClConfig {
            backbone: GclBackboneConfig::tiny(),
            epochs: 3,
            batch_size: 64,
            ..Default::default()
        };
        let m = GraphCl::train(&net, &cfg);
        assert_eq!(m.embeddings.shape(), (net.num_segments(), 16));
        assert!(m.embeddings.all_finite());
        assert_eq!(m.loss_history.len(), 3);
        let first = m.loss_history[0];
        let last = *m.loss_history.last().unwrap();
        assert!(last < first, "loss did not drop: {first} -> {last}");
    }
}
