//! HRNR (Wu et al., KDD 2020, simplified): hierarchical road-network
//! representation with three levels — segments, structural regions, and
//! functional zones. The original learns the hierarchy with two
//! reconstruction tasks; this reproduction assigns regions/zones
//! geographically (two nested grids) and learns the level mixing end to end
//! with the downstream task, preserving the property the paper credits HRNR
//! for (task-supervised embeddings enriched with multi-granularity
//! structure). Like the original, it stores several dense level-transition
//! matrices, which is what makes it exceed accelerator memory on SF-L
//! (Table 8).

use std::rc::Rc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sarn_core::DiscretizedFeatures;
use sarn_core::FeatureEmbedding;
use sarn_geo::Grid;
use sarn_roadnet::RoadNetwork;
use sarn_tensor::layers::{EdgeIndex, GatEncoder, Linear};
use sarn_tensor::{Graph, ParamId, ParamStore, Tensor, Var};

use crate::common::{MemoryBudget, TrainError};

/// HRNR hyper-parameters.
#[derive(Clone, Debug)]
pub struct HrnrConfig {
    /// Embedding dimensionality.
    pub d: usize,
    /// Per-feature embedding width.
    pub d_per_feature: usize,
    /// GAT layers at the segment level.
    pub n_layers: usize,
    /// GAT heads.
    pub n_heads: usize,
    /// Structural-region grid cell side, meters.
    pub region_cell_m: f64,
    /// Functional-zone grid cell side, meters.
    pub zone_cell_m: f64,
    /// Simulated accelerator memory budget.
    pub memory: MemoryBudget,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HrnrConfig {
    fn default() -> Self {
        Self {
            d: 64,
            d_per_feature: 8,
            n_layers: 2,
            n_heads: 4,
            region_cell_m: 400.0,
            zone_cell_m: 1200.0,
            memory: MemoryBudget::default(),
            seed: 61,
        }
    }
}

impl HrnrConfig {
    /// Minimal configuration for tests.
    pub fn tiny() -> Self {
        Self {
            d: 16,
            d_per_feature: 4,
            n_layers: 1,
            n_heads: 2,
            ..Default::default()
        }
    }
}

/// The HRNR network. Train it end to end with a task head: run
/// [`Hrnr::forward`] on a tape, attach the head, and step the optimizer on
/// [`Hrnr::store`].
pub struct Hrnr {
    feats: DiscretizedFeatures,
    femb: FeatureEmbedding,
    encoder: GatEncoder,
    w_region: Linear,
    w_zone: Linear,
    /// Model parameters.
    pub store: ParamStore,
    edges: EdgeIndex,
    region_of: Rc<Vec<usize>>,
    zone_of: Rc<Vec<usize>>,
    n_regions: usize,
    n_zones: usize,
    region_alpha: Tensor,
    zone_alpha: Tensor,
}

impl Hrnr {
    /// Builds HRNR for a network, or fails with OOM when the dense
    /// level-transition matrices exceed the memory budget.
    pub fn new(net: &RoadNetwork, cfg: &HrnrConfig) -> Result<Self, TrainError> {
        let n = net.num_segments();
        // Dominant allocations: segment-level adjacency plus the
        // segment-to-region and region-to-zone transition matrices and their
        // reconstruction copies (~4 dense n^2 f32 matrices in the original).
        cfg.memory.check(4 * n * n * 4)?;

        let feats = DiscretizedFeatures::from_network(net);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let femb =
            FeatureEmbedding::new(&mut store, &mut rng, "hrnr.femb", &feats, cfg.d_per_feature);
        let encoder = GatEncoder::new(
            &mut store,
            &mut rng,
            "hrnr.enc",
            femb.d_f(),
            cfg.d,
            cfg.n_layers,
            cfg.n_heads,
        );
        let w_region = Linear::new(&mut store, &mut rng, "hrnr.w_region", cfg.d, cfg.d, false);
        let w_zone = Linear::new(&mut store, &mut rng, "hrnr.w_zone", cfg.d, cfg.d, false);

        let region_grid = Grid::new(*net.bbox(), cfg.region_cell_m);
        let zone_grid = Grid::new(*net.bbox(), cfg.zone_cell_m);
        let region_of: Vec<usize> = (0..n)
            .map(|i| region_grid.cell_of(&net.segment(i).midpoint()))
            .collect();
        let zone_of: Vec<usize> = (0..n)
            .map(|i| zone_grid.cell_of(&net.segment(i).midpoint()))
            .collect();
        let region_alpha = mean_pool_alpha(&region_of, region_grid.num_cells());
        let zone_alpha = mean_pool_alpha(&zone_of, zone_grid.num_cells());

        let edges = EdgeIndex::with_self_loops(n, net.topo_edges().iter().map(|&(i, j, _)| (j, i)));
        Ok(Self {
            feats,
            femb,
            encoder,
            w_region,
            w_zone,
            store,
            edges,
            region_of: Rc::new(region_of),
            zone_of: Rc::new(zone_of),
            n_regions: region_grid.num_cells(),
            n_zones: zone_grid.num_cells(),
            region_alpha,
            zone_alpha,
        })
    }

    /// All parameter ids.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.store.ids().collect()
    }

    /// Records the hierarchical forward pass on a tape and returns the
    /// `n x d` segment representations:
    /// `h_i + W_r r(region(i)) + W_z z(zone(i))` with mean-pooled levels.
    pub fn forward(&self, g: &Graph) -> Var {
        self.forward_with(g, &self.store)
    }

    /// Like [`Hrnr::forward`] but against an external parameter store with
    /// the same layout prefix (e.g. a clone extended with task-head
    /// parameters, so the whole stack trains end to end).
    pub fn forward_with(&self, g: &Graph, store: &ParamStore) -> Var {
        let x = self.femb.forward(g, store, &self.feats);
        let h = self.encoder.forward(g, store, x, &self.edges);
        // Mean pooling up the hierarchy.
        let ra = g.input(self.region_alpha.clone());
        let regions = g.segment_weighted_sum(ra, h, Rc::clone(&self.region_of), self.n_regions);
        let za = g.input(self.zone_alpha.clone());
        let zones = g.segment_weighted_sum(za, h, Rc::clone(&self.zone_of), self.n_zones);
        // Broadcast back down and mix.
        let r_per_seg = g.gather_rows(regions, &self.region_of);
        let z_per_seg = g.gather_rows(zones, &self.zone_of);
        let r_mixed = self.w_region.forward(g, store, r_per_seg);
        let z_mixed = self.w_zone.forward(g, store, z_per_seg);
        g.add(g.add(h, r_mixed), z_mixed)
    }

    /// Gradient-free forward pass (for inference after training).
    pub fn embed_detached(&self) -> Tensor {
        let g = Graph::new();
        let h = self.forward(&g);
        g.value(h)
    }
}

/// Per-segment mean-pooling coefficients: `1 / |cell members|`.
fn mean_pool_alpha(assignment: &[usize], n_cells: usize) -> Tensor {
    let mut counts = vec![0usize; n_cells];
    for &c in assignment {
        counts[c] += 1;
    }
    Tensor::col(
        &assignment
            .iter()
            .map(|&c| 1.0 / counts[c] as f32)
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};
    use sarn_tensor::optim::Adam;

    #[test]
    fn forward_produces_finite_embeddings() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
        let hrnr = Hrnr::new(&net, &HrnrConfig::tiny()).unwrap();
        let e = hrnr.embed_detached();
        assert_eq!(e.shape(), (net.num_segments(), 16));
        assert!(e.all_finite());
    }

    #[test]
    fn ooms_when_budget_too_small() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
        let cfg = HrnrConfig {
            memory: MemoryBudget { bytes: 1000 },
            ..HrnrConfig::tiny()
        };
        assert!(matches!(
            Hrnr::new(&net, &cfg),
            Err(TrainError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn trains_end_to_end_with_a_head() {
        // Supervised smoke test: predict road-class index from embeddings.
        let net = SynthConfig::city(City::Chengdu).scaled(0.2).generate();
        let mut hrnr = Hrnr::new(&net, &HrnrConfig::tiny()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let head = Linear::new(&mut hrnr.store, &mut rng, "head", 16, 7, true);
        let labels: Vec<usize> = net.segments().iter().map(|s| s.class.index()).collect();
        let mut opt = Adam::new(0.01);
        let mut losses = Vec::new();
        for _ in 0..6 {
            hrnr.store.zero_grads();
            let g = Graph::new();
            let h = hrnr.forward(&g);
            let logits = head.forward(&g, &hrnr.store, h);
            let loss = g.cross_entropy(logits, &labels);
            losses.push(g.value(loss).item());
            g.backward(loss);
            g.accumulate_grads(&mut hrnr.store);
            opt.step(&mut hrnr.store);
        }
        assert!(
            losses.last().unwrap() < &losses[0],
            "loss did not drop: {losses:?}"
        );
    }
}
