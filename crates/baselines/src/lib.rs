//! # sarn-baselines
//!
//! The competitor models of the SARN evaluation (paper §5.1), implemented
//! from scratch against the same substrates:
//!
//! **Self-supervised**: [`Node2Vec`] (biased walks + skip-gram),
//! [`GraphCl`] (shared-encoder GCL, in-batch negatives), [`Gca`]
//! (adaptive augmentation, all-vertex negatives — with the memory blow-up
//! the paper observes on large networks), [`Srn2Vec`] (spatial pair
//! classification FFN).
//!
//! **Supervised**: [`Hrnr`] (hierarchical, task-supervised; simplified),
//! [`Neutraj`] (trajectory-similarity metric learning; simplified),
//! [`Rne`] (shortest-path-distance-supervised embeddings; simplified).
//!
//! Simplifications relative to the original systems are documented per
//! module and in DESIGN.md.

#![warn(missing_docs)]

mod common;
mod gca;
mod gcl;
mod graphcl;
mod hrnr;
mod neutraj;
mod node2vec;
mod rne;
mod srn2vec;

pub use common::{MemoryBudget, TrainError};
pub use gca::{Gca, GcaConfig};
pub use gcl::{GclBackbone, GclBackboneConfig};
pub use graphcl::{GraphCl, GraphClConfig};
pub use hrnr::{Hrnr, HrnrConfig};
pub use neutraj::{Neutraj, NeutrajConfig};
pub use node2vec::{Node2Vec, Node2VecConfig};
pub use rne::{Rne, RneConfig};
pub use srn2vec::{Srn2Vec, Srn2VecConfig};
