//! NEUTRAJ (Yao et al., ICDE 2019, simplified): a supervised trajectory
//! similarity model. A recurrent encoder maps a trajectory to a vector such
//! that the L1 distance between two vectors approximates their true
//! (Fréchet) distance, enabling linear-time similarity search. The original
//! adds a spatial-attention memory unit; this reproduction keeps the
//! metric-learning core with a 2-layer GRU, which preserves the property
//! the paper compares against (a task-specific model that does not produce
//! road-segment embeddings).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_roadnet::RoadNetwork;
use sarn_tensor::layers::GruStack;
use sarn_tensor::optim::Adam;
use sarn_tensor::{Graph, ParamStore, Tensor};
use sarn_traj::{MatchedTrajectory, TrajDataset};

/// NEUTRAJ hyper-parameters.
#[derive(Clone, Debug)]
pub struct NeutrajConfig {
    /// GRU hidden width (trajectory embedding size).
    pub hidden: usize,
    /// GRU layers.
    pub n_layers: usize,
    /// Training pairs per epoch.
    pub pairs_per_epoch: usize,
    /// Pair mini-batch size.
    pub batch_size: usize,
    /// Epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for NeutrajConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            n_layers: 2,
            pairs_per_epoch: 2000,
            batch_size: 32,
            epochs: 6,
            lr: 0.005,
            seed: 71,
        }
    }
}

impl NeutrajConfig {
    /// Minimal configuration for tests.
    pub fn tiny() -> Self {
        Self {
            hidden: 12,
            n_layers: 2,
            pairs_per_epoch: 200,
            batch_size: 16,
            epochs: 4,
            ..Default::default()
        }
    }
}

/// Per-step input features: normalized (x, y) midpoint + (sin, cos) heading.
const STEP_FEATURES: usize = 4;

/// A trained NEUTRAJ model.
pub struct Neutraj {
    stack: GruStack,
    store: ParamStore,
    /// Distance normalization applied to training targets, meters.
    pub scale_m: f64,
    /// Wall-clock training time, seconds.
    pub train_seconds: f64,
    // feature normalization context
    origin: sarn_geo::Point,
    extent_m: f64,
}

impl Neutraj {
    /// Trains NEUTRAJ on the trajectories at `train_idx` with Fréchet
    /// ground-truth targets.
    pub fn train(
        net: &RoadNetwork,
        data: &TrajDataset,
        train_idx: &[usize],
        cfg: &NeutrajConfig,
    ) -> Self {
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut store = ParamStore::new();
        let stack = GruStack::new(
            &mut store,
            &mut rng,
            "neutraj",
            STEP_FEATURES,
            cfg.hidden,
            cfg.n_layers,
        );
        let bbox = net.bbox();
        let origin = sarn_geo::Point::new(bbox.min_lat, bbox.min_lon);
        let extent_m = bbox.width_m().max(bbox.height_m()).max(1.0);

        let frechet = data.frechet_matrix(net, train_idx);
        let m = train_idx.len();
        let scale_m = (frechet.iter().sum::<f64>() / (m * m).max(1) as f64).max(1.0);

        let mut model = Self {
            stack,
            store,
            scale_m,
            train_seconds: 0.0,
            origin,
            extent_m,
        };
        let mut opt = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            let pairs: Vec<(usize, usize)> = (0..cfg.pairs_per_epoch)
                .map(|_| (rng.gen_range(0..m), rng.gen_range(0..m)))
                .filter(|(a, b)| a != b)
                .collect();
            for chunk in pairs.chunks(cfg.batch_size) {
                let lhs: Vec<&MatchedTrajectory> = chunk
                    .iter()
                    .map(|&(a, _)| &data.trajectories[train_idx[a]])
                    .collect();
                let rhs: Vec<&MatchedTrajectory> = chunk
                    .iter()
                    .map(|&(_, b)| &data.trajectories[train_idx[b]])
                    .collect();
                let target = Tensor::col(
                    &chunk
                        .iter()
                        .map(|&(a, b)| (frechet[a * m + b] / model.scale_m) as f32)
                        .collect::<Vec<_>>(),
                );
                model.store.zero_grads();
                let g = Graph::new();
                let ea = model.encode_batch(&g, net, &lhs);
                let eb = model.encode_batch(&g, net, &rhs);
                let l1 = g.sum_rows(g.abs(g.sub(ea, eb)));
                let loss = g.mse(l1, &target);
                g.backward(loss);
                g.accumulate_grads(&mut model.store);
                opt.step(&mut model.store);
            }
        }
        model.train_seconds = start.elapsed().as_secs_f64();
        model
    }

    /// Per-step features of one trajectory.
    fn step_features(&self, net: &RoadNetwork, t: &MatchedTrajectory) -> Vec<[f32; STEP_FEATURES]> {
        let proj = sarn_geo::LocalProjection::new(self.origin);
        t.segments
            .iter()
            .map(|&sid| {
                let seg = net.segment(sid);
                let (x, y) = proj.project(&seg.midpoint());
                [
                    (x / self.extent_m) as f32,
                    (y / self.extent_m) as f32,
                    seg.radian.sin() as f32,
                    seg.radian.cos() as f32,
                ]
            })
            .collect()
    }

    /// Records the batched encoder on a tape (padded + masked sequences).
    fn encode_batch(
        &self,
        g: &Graph,
        net: &RoadNetwork,
        trajs: &[&MatchedTrajectory],
    ) -> sarn_tensor::Var {
        let feats: Vec<Vec<[f32; STEP_FEATURES]>> =
            trajs.iter().map(|t| self.step_features(net, t)).collect();
        let max_len = feats.iter().map(Vec::len).max().unwrap_or(1);
        let b = trajs.len();
        let mut xs = Vec::with_capacity(max_len);
        let mut masks = Vec::with_capacity(max_len);
        for t in 0..max_len {
            let mut x = Tensor::zeros(b, STEP_FEATURES);
            let mut mask = Tensor::zeros(b, 1);
            for (i, f) in feats.iter().enumerate() {
                if let Some(step) = f.get(t) {
                    x.row_slice_mut(i).copy_from_slice(step);
                    mask.set(i, 0, 1.0);
                }
            }
            xs.push(g.input(x));
            masks.push(mask);
        }
        self.stack.run(g, &self.store, &xs, Some(&masks))
    }

    /// Embeds trajectories into `m x hidden` vectors (inference).
    pub fn embed(&self, net: &RoadNetwork, trajs: &[&MatchedTrajectory]) -> Tensor {
        let g = Graph::new();
        let e = self.encode_batch(&g, net, trajs);
        g.value(e)
    }

    /// Predicted distance between two embedded trajectories, meters.
    pub fn predict_distance_m(&self, emb: &Tensor, a: usize, b: usize) -> f64 {
        let l1: f32 = emb
            .row_slice(a)
            .iter()
            .zip(emb.row_slice(b))
            .map(|(x, y)| (x - y).abs())
            .sum();
        l1 as f64 * self.scale_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};
    use sarn_traj::TrajGenConfig;

    fn setup() -> (RoadNetwork, TrajDataset) {
        let net = SynthConfig::city(City::Chengdu).scaled(0.25).generate();
        let gen = TrajGenConfig {
            count: 24,
            min_segments: 6,
            max_segments: 15,
            ..Default::default()
        };
        let data = TrajDataset::build(&net, &gen, 15);
        (net, data)
    }

    #[test]
    fn trains_and_embeds_trajectories() {
        let (net, data) = setup();
        let idx: Vec<usize> = (0..data.len()).collect();
        let model = Neutraj::train(&net, &data, &idx, &NeutrajConfig::tiny());
        let refs: Vec<&MatchedTrajectory> = data.trajectories.iter().collect();
        let emb = model.embed(&net, &refs);
        assert_eq!(emb.shape(), (data.len(), 12));
        assert!(emb.all_finite());
        assert!(model.predict_distance_m(&emb, 0, 1) >= 0.0);
    }

    #[test]
    fn predictions_correlate_with_frechet() {
        let (net, data) = setup();
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut cfg = NeutrajConfig::tiny();
        cfg.epochs = 10;
        cfg.pairs_per_epoch = 400;
        let model = Neutraj::train(&net, &data, &idx, &cfg);
        let refs: Vec<&MatchedTrajectory> = data.trajectories.iter().collect();
        let emb = model.embed(&net, &refs);
        let truth = data.frechet_matrix(&net, &idx);
        let m = idx.len();
        let mut preds = Vec::new();
        let mut trues = Vec::new();
        for a in 0..m {
            for b in (a + 1)..m {
                preds.push(model.predict_distance_m(&emb, a, b));
                trues.push(truth[a * m + b]);
            }
        }
        let corr = pearson(&preds, &trues);
        assert!(corr > 0.3, "correlation {corr}");
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt() + 1e-12)
    }
}
