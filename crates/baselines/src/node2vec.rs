//! node2vec (Grover & Leskovec, KDD 2016): biased random walks +
//! skip-gram with negative sampling, applied to the road-segment graph.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_graph::{BiasedWalker, WalkConfig};
use sarn_roadnet::RoadNetwork;
use sarn_tensor::{init, Tensor};

/// node2vec hyper-parameters.
#[derive(Clone, Debug)]
pub struct Node2VecConfig {
    /// Embedding dimensionality.
    pub d: usize,
    /// Walk generation parameters.
    pub walks: WalkConfig,
    /// Skip-gram context window.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Training epochs over the walk corpus.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Self {
            d: 64,
            walks: WalkConfig {
                walk_length: 30,
                walks_per_vertex: 6,
                p: 1.0,
                q: 1.0,
            },
            window: 5,
            negatives: 5,
            lr: 0.025,
            epochs: 2,
            seed: 11,
        }
    }
}

/// A trained node2vec model.
pub struct Node2Vec {
    /// `n x d` segment embeddings (the input-vector table).
    pub embeddings: Tensor,
    /// Wall-clock training time, seconds.
    pub train_seconds: f64,
}

impl Node2Vec {
    /// Trains node2vec on the topological graph of a road network.
    pub fn train(net: &RoadNetwork, cfg: &Node2VecConfig) -> Self {
        let start = Instant::now();
        let graph = net.topo_digraph();
        let n = net.num_segments();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let walker = BiasedWalker::new(&graph, cfg.walks);
        let walks = walker.generate_all(&mut rng);

        let mut emb_in = init::uniform(&mut rng, n, cfg.d, -0.5 / cfg.d as f32, 0.5 / cfg.d as f32);
        let mut emb_out = Tensor::zeros(n, cfg.d);

        for _ in 0..cfg.epochs {
            for walk in &walks {
                for (c, &center) in walk.iter().enumerate() {
                    let lo = c.saturating_sub(cfg.window);
                    let hi = (c + cfg.window + 1).min(walk.len());
                    for (t, &context) in walk.iter().enumerate().take(hi).skip(lo) {
                        if t == c {
                            continue;
                        }
                        sgd_pair(&mut emb_in, &mut emb_out, center, context, true, cfg.lr);
                        for _ in 0..cfg.negatives {
                            let neg = rng.gen_range(0..n);
                            if neg != context {
                                sgd_pair(&mut emb_in, &mut emb_out, center, neg, false, cfg.lr);
                            }
                        }
                    }
                }
            }
        }
        Self {
            embeddings: emb_in,
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

/// One skip-gram SGD update on a (center, context) pair.
fn sgd_pair(
    emb_in: &mut Tensor,
    emb_out: &mut Tensor,
    center: usize,
    other: usize,
    positive: bool,
    lr: f32,
) {
    let d = emb_in.cols();
    let mut dot = 0.0f32;
    for k in 0..d {
        dot += emb_in.at(center, k) * emb_out.at(other, k);
    }
    let pred = 1.0 / (1.0 + (-dot).exp());
    let grad = if positive { pred - 1.0 } else { pred };
    for k in 0..d {
        let vi = emb_in.at(center, k);
        let vo = emb_out.at(other, k);
        emb_in.set(center, k, vi - lr * grad * vo);
        emb_out.set(other, k, vo - lr * grad * vi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};

    fn tiny_cfg() -> Node2VecConfig {
        Node2VecConfig {
            d: 16,
            walks: WalkConfig {
                walk_length: 10,
                walks_per_vertex: 2,
                p: 1.0,
                q: 1.0,
            },
            epochs: 1,
            ..Default::default()
        }
    }

    #[test]
    fn produces_finite_embeddings_of_right_shape() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
        let model = Node2Vec::train(&net, &tiny_cfg());
        assert_eq!(model.embeddings.shape(), (net.num_segments(), 16));
        assert!(model.embeddings.all_finite());
        assert!(model.train_seconds > 0.0);
    }

    #[test]
    fn topological_neighbors_are_more_similar_than_random() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
        let mut cfg = tiny_cfg();
        cfg.epochs = 3;
        let model = Node2Vec::train(&net, &cfg);
        let emb = &model.embeddings;
        let cosine = |a: usize, b: usize| {
            let (ra, rb) = (emb.row_slice(a), emb.row_slice(b));
            let dot: f32 = ra.iter().zip(rb).map(|(x, y)| x * y).sum();
            let na: f32 = ra.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = rb.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb + 1e-9)
        };
        let mut adj_sim = 0.0;
        let mut adj_n = 0;
        for &(i, j, _) in net.topo_edges().iter().take(200) {
            adj_sim += cosine(i, j);
            adj_n += 1;
        }
        let mut rng = StdRng::seed_from_u64(5);
        let mut rnd_sim = 0.0;
        for _ in 0..200 {
            let i = rng.gen_range(0..net.num_segments());
            let j = rng.gen_range(0..net.num_segments());
            rnd_sim += cosine(i, j);
        }
        assert!(
            adj_sim / adj_n as f32 > rnd_sim / 200.0,
            "neighbors {} vs random {}",
            adj_sim / adj_n as f32,
            rnd_sim / 200.0
        );
    }
}
