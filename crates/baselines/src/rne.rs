//! RNE (Huang et al., ICDE 2021, simplified): road-segment embeddings
//! trained so the L1 distance between two embeddings approximates the
//! shortest-path distance. The original builds a road-network hierarchy for
//! scalability; at this reproduction's network sizes a flat embedding table
//! trained on sampled Dijkstra distances preserves the property the paper
//! credits RNE for (it "learns pairwise distances of all road segments,
//! which essentially encodes the entire graph structure").

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_graph::dijkstra;
use sarn_roadnet::RoadNetwork;
use sarn_tensor::optim::Adam;
use sarn_tensor::{init, Graph, ParamStore, Tensor};

/// RNE hyper-parameters.
#[derive(Clone, Debug)]
pub struct RneConfig {
    /// Embedding dimensionality.
    pub d: usize,
    /// Dijkstra source vertices sampled for training pairs.
    pub sources: usize,
    /// Training pairs per source.
    pub pairs_per_source: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Epochs over the pair set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RneConfig {
    fn default() -> Self {
        Self {
            d: 64,
            sources: 60,
            pairs_per_source: 120,
            batch_size: 256,
            epochs: 10,
            lr: 0.01,
            seed: 51,
        }
    }
}

/// A trained RNE model.
pub struct Rne {
    /// `n x d` segment embeddings; `|e_i - e_j|_1 * scale` predicts SPD.
    pub embeddings: Tensor,
    /// Distance normalization: targets were divided by this many meters.
    pub scale_m: f64,
    /// Wall-clock training time, seconds.
    pub train_seconds: f64,
}

impl Rne {
    /// Trains RNE on sampled shortest-path distances.
    pub fn train(net: &RoadNetwork, cfg: &RneConfig) -> Self {
        let start = Instant::now();
        let n = net.num_segments();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let routing = net.routing_digraph();

        // Sample (i, j, spd) training triples from full Dijkstra trees.
        let mut triples: Vec<(usize, usize, f64)> = Vec::new();
        for _ in 0..cfg.sources {
            let src = rng.gen_range(0..n);
            let dist = dijkstra(&routing, src);
            for _ in 0..cfg.pairs_per_source {
                let dst = rng.gen_range(0..n);
                if dst != src && dist[dst].is_finite() {
                    triples.push((src, dst, dist[dst]));
                }
            }
        }
        let scale_m =
            (triples.iter().map(|t| t.2).sum::<f64>() / triples.len().max(1) as f64).max(1.0);

        let mut store = ParamStore::new();
        let table = store.add("rne.table", init::normal(&mut rng, n, cfg.d, 0.1));
        let mut opt = Adam::new(cfg.lr);
        for _ in 0..cfg.epochs {
            for chunk in triples.chunks(cfg.batch_size) {
                let is: Vec<usize> = chunk.iter().map(|t| t.0).collect();
                let js: Vec<usize> = chunk.iter().map(|t| t.1).collect();
                let target = Tensor::col(
                    &chunk
                        .iter()
                        .map(|t| (t.2 / scale_m) as f32)
                        .collect::<Vec<_>>(),
                );
                store.zero_grads();
                let g = Graph::new();
                let t = g.param(&store, table);
                let diff = g.sub(g.gather_rows(t, &is), g.gather_rows(t, &js));
                let l1 = g.sum_rows(g.abs(diff));
                let loss = g.mse(l1, &target);
                g.backward(loss);
                g.accumulate_grads(&mut store);
                opt.step(&mut store);
            }
        }
        Self {
            embeddings: store.value(table).clone(),
            scale_m,
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }

    /// Predicts the shortest-path distance between two segments in meters.
    pub fn predict_spd_m(&self, i: usize, j: usize) -> f64 {
        let l1: f32 = self
            .embeddings
            .row_slice(i)
            .iter()
            .zip(self.embeddings.row_slice(j))
            .map(|(a, b)| (a - b).abs())
            .sum();
        l1 as f64 * self.scale_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_graph::dijkstra_path;

    #[test]
    fn learned_distances_correlate_with_true_spd() {
        let net = sarn_roadnet::SynthConfig::city(sarn_roadnet::City::Chengdu)
            .scaled(0.22)
            .generate();
        let cfg = RneConfig {
            d: 16,
            sources: 60,
            pairs_per_source: 120,
            epochs: 40,
            ..Default::default()
        };
        let m = Rne::train(&net, &cfg);
        assert!(m.embeddings.all_finite());
        // Spearman-ish check: predicted vs true distances should be
        // positively correlated on held-out pairs.
        let routing = net.routing_digraph();
        let mut rng = StdRng::seed_from_u64(99);
        let mut preds = Vec::new();
        let mut trues = Vec::new();
        while preds.len() < 200 {
            let i = rng.gen_range(0..net.num_segments());
            let j = rng.gen_range(0..net.num_segments());
            if i == j {
                continue;
            }
            if let Some((d, _)) = dijkstra_path(&routing, i, j) {
                preds.push(m.predict_spd_m(i, j));
                trues.push(d);
            }
        }
        let corr = pearson(&preds, &trues);
        assert!(corr > 0.4, "correlation {corr}");
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let ma = a.iter().sum::<f64>() / n;
        let mb = b.iter().sum::<f64>() / n;
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt() + 1e-12)
    }
}
