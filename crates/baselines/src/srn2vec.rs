//! SRN2Vec (Wang et al., TIST 2020, reimplemented from the paper's
//! description — no code release): an FFN trained to predict whether two
//! road segments are spatially close and whether they share a road type;
//! the learned per-segment table is used as the embedding. Captures spatial
//! proximity but no graph topology.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_geo::{haversine_m, Grid};
use sarn_roadnet::RoadNetwork;
use sarn_tensor::layers::Linear;
use sarn_tensor::optim::Adam;
use sarn_tensor::{init, Graph, ParamStore, Tensor};

/// SRN2Vec hyper-parameters.
#[derive(Clone, Debug)]
pub struct Srn2VecConfig {
    /// Embedding dimensionality.
    pub d: usize,
    /// Hidden width of the pair classifier.
    pub hidden: usize,
    /// "Close" distance threshold in meters.
    pub close_m: f64,
    /// Training pairs per epoch.
    pub pairs_per_epoch: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Srn2VecConfig {
    fn default() -> Self {
        Self {
            d: 64,
            hidden: 64,
            close_m: 250.0,
            pairs_per_epoch: 20_000,
            batch_size: 256,
            epochs: 5,
            lr: 0.01,
            seed: 41,
        }
    }
}

/// A trained SRN2Vec model.
pub struct Srn2Vec {
    /// `n x d` segment embeddings (the first-layer table).
    pub embeddings: Tensor,
    /// Wall-clock training time, seconds.
    pub train_seconds: f64,
}

impl Srn2Vec {
    /// Trains SRN2Vec on spatial-proximity and type-equality pair labels.
    pub fn train(net: &RoadNetwork, cfg: &Srn2VecConfig) -> Self {
        let start = Instant::now();
        let n = net.num_segments();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Spatial hash for positive (close) pair sampling.
        let grid = Grid::new(*net.bbox(), cfg.close_m.max(1.0));
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); grid.num_cells()];
        for i in 0..n {
            members[grid.cell_of(&net.segment(i).midpoint())].push(i);
        }

        let mut store = ParamStore::new();
        let table = store.add("srn2vec.table", init::normal(&mut rng, n, cfg.d, 0.1));
        let fc1 = Linear::new(&mut store, &mut rng, "srn2vec.fc1", cfg.d, cfg.hidden, true);
        let head_close = Linear::new(&mut store, &mut rng, "srn2vec.close", cfg.hidden, 2, true);
        let head_type = Linear::new(&mut store, &mut rng, "srn2vec.type", cfg.hidden, 2, true);
        let mut opt = Adam::new(cfg.lr);

        for _ in 0..cfg.epochs {
            let mut pairs: Vec<(usize, usize)> = Vec::with_capacity(cfg.pairs_per_epoch);
            // Half the pairs from the local neighborhood (mostly close),
            // half uniform (mostly far) — gives both labels support.
            while pairs.len() < cfg.pairs_per_epoch / 2 {
                let i = rng.gen_range(0..n);
                let cell = grid.cell_of(&net.segment(i).midpoint());
                let nearby = grid.neighborhood(cell, 1);
                let cands = &members[nearby[rng.gen_range(0..nearby.len())]];
                if let Some(&j) = cands.get(
                    rng.gen_range(0..cands.len().max(1))
                        .min(cands.len().saturating_sub(1)),
                ) {
                    if i != j {
                        pairs.push((i, j));
                    }
                }
            }
            while pairs.len() < cfg.pairs_per_epoch {
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..n);
                if i != j {
                    pairs.push((i, j));
                }
            }

            for chunk in pairs.chunks(cfg.batch_size) {
                let is: Vec<usize> = chunk.iter().map(|&(i, _)| i).collect();
                let js: Vec<usize> = chunk.iter().map(|&(_, j)| j).collect();
                let y_close: Vec<usize> = chunk
                    .iter()
                    .map(|&(i, j)| {
                        let d = haversine_m(&net.segment(i).midpoint(), &net.segment(j).midpoint());
                        usize::from(d < cfg.close_m)
                    })
                    .collect();
                let y_type: Vec<usize> = chunk
                    .iter()
                    .map(|&(i, j)| usize::from(net.segment(i).class == net.segment(j).class))
                    .collect();
                store.zero_grads();
                let g = Graph::new();
                let t = g.param(&store, table);
                let ei = g.gather_rows(t, &is);
                let ej = g.gather_rows(t, &js);
                // Symmetric pair representation |e_i - e_j|: classifying
                // "close" from it forces spatially close segments toward
                // metrically close embeddings.
                let x = g.abs(g.sub(ei, ej));
                let h = g.relu(fc1.forward(&g, &store, x));
                let lc = g.cross_entropy(head_close.forward(&g, &store, h), &y_close);
                let lt = g.cross_entropy(head_type.forward(&g, &store, h), &y_type);
                let loss = g.add(lc, lt);
                g.backward(loss);
                g.accumulate_grads(&mut store);
                opt.step(&mut store);
            }
        }
        Self {
            embeddings: store.value(table).clone(),
            train_seconds: start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};

    #[test]
    fn close_pairs_end_up_nearer_in_embedding_space() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
        let cfg = Srn2VecConfig {
            d: 16,
            hidden: 16,
            pairs_per_epoch: 4000,
            epochs: 6,
            ..Default::default()
        };
        let m = Srn2Vec::train(&net, &cfg);
        assert_eq!(m.embeddings.shape(), (net.num_segments(), 16));
        assert!(m.embeddings.all_finite());
        // Close pairs should have smaller L2 distance than random pairs.
        let mut rng = StdRng::seed_from_u64(9);
        let l2 = |a: usize, b: usize| -> f32 {
            m.embeddings
                .row_slice(a)
                .iter()
                .zip(m.embeddings.row_slice(b))
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f32>()
                .sqrt()
        };
        let mut close_d = 0.0;
        let mut close_n = 0;
        let mut far_d = 0.0;
        let mut far_n = 0;
        for _ in 0..3000 {
            let i = rng.gen_range(0..net.num_segments());
            let j = rng.gen_range(0..net.num_segments());
            if i == j {
                continue;
            }
            let d = haversine_m(&net.segment(i).midpoint(), &net.segment(j).midpoint());
            if d < 250.0 {
                close_d += l2(i, j);
                close_n += 1;
            } else if d > 400.0 {
                far_d += l2(i, j);
                far_n += 1;
            }
        }
        assert!(close_n > 10 && far_n > 10, "pair sampling degenerate");
        let close = close_d / close_n as f32;
        let far = far_d / far_n as f32;
        assert!(close < far, "close {close} !< far {far}");
    }
}
