//! Serial vs. parallel wall-clock for one SARN training epoch.
//!
//! Each benchmark runs `sarn_core::train` for exactly one epoch — spatial
//! similarity build, two-view augmentation, every mini-batch forward /
//! backward, queue maintenance — at three network scales, once on the
//! serial path (`num_threads = 1`) and once on the parallel backend
//! (`num_threads = 4`). Because every kernel is deterministic, the two
//! configurations compute identical numbers; only the wall-clock differs.
//!
//! On a single-core host the parallel rows measure pure backend overhead
//! (thread spawns with no extra cores to absorb them); the ≥2x headline
//! requires a multi-core machine.

use criterion::{criterion_group, criterion_main, Criterion};
use sarn_core::{train, SarnConfig};
use sarn_roadnet::{City, RoadNetwork, SynthConfig};

/// (label, lattice scale): ~170, ~560, and ~1350 segments.
const SCALES: [(&str, f64); 3] = [("small", 0.3), ("medium", 0.5), ("large", 0.8)];

fn epoch_config(threads: usize) -> SarnConfig {
    let mut cfg = SarnConfig::small();
    cfg.max_epochs = 1;
    cfg.patience = 1;
    cfg.num_threads = threads;
    cfg
}

fn bench_epoch_at(c: &mut Criterion, label: &str, net: &RoadNetwork) {
    for threads in [1usize, 4] {
        let cfg = epoch_config(threads);
        let name = format!("train_epoch_{label}_{}threads", threads);
        c.bench_function(&name, |b| b.iter(|| train(net, &cfg)));
    }
}

fn bench_epochs(c: &mut Criterion) {
    for (label, scale) in SCALES {
        let net = SynthConfig::city(City::Chengdu).scaled(scale).generate();
        println!("network '{label}': {} segments", net.num_segments());
        bench_epoch_at(c, label, &net);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(5);
    targets = bench_epochs
}
criterion_main!(benches);
