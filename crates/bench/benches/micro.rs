//! Criterion micro-benchmarks for the hot building blocks: `A^s`
//! construction, graph augmentation, GAT forward pass, the two-level loss
//! candidates, Fréchet distance, and Dijkstra.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sarn_core::{
    AugmentConfig, Augmenter, CellQueues, SarnConfig, SarnModel, SpatialSimilarity,
    SpatialSimilarityConfig,
};
use sarn_geo::{LocalProjection, Point};
use sarn_graph::dijkstra;
use sarn_roadnet::{City, RoadNetwork, SynthConfig};
use sarn_traj::{discrete_frechet, TrajGenConfig};

fn network() -> RoadNetwork {
    SynthConfig::city(City::Chengdu).scaled(0.5).generate()
}

fn bench_spatial_similarity(c: &mut Criterion) {
    let net = network();
    c.bench_function("spatial_similarity_build", |b| {
        b.iter(|| SpatialSimilarity::build(&net, &SpatialSimilarityConfig::default()))
    });
}

fn bench_augmentation(c: &mut Criterion) {
    let net = network();
    let sim = SpatialSimilarity::build(&net, &SpatialSimilarityConfig::default());
    let aug = Augmenter::new(
        net.num_segments(),
        net.topo_edges().to_vec(),
        sim.edges().to_vec(),
        AugmentConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("graph_augmentation_corrupt", |b| {
        b.iter(|| aug.corrupt(&mut rng))
    });
}

fn bench_gat_forward(c: &mut Criterion) {
    let net = network();
    let mut cfg = SarnConfig::small();
    cfg.seed = 1;
    let model = SarnModel::new(&net, &cfg);
    let sim = SpatialSimilarity::build(&net, &cfg.similarity);
    let aug = Augmenter::new(
        net.num_segments(),
        net.topo_edges().to_vec(),
        sim.edges().to_vec(),
        cfg.augment,
    );
    let edges = aug.full_view().edge_index();
    c.bench_function("gat_encoder_forward", |b| {
        b.iter(|| model.embed_detached(&model.store, &edges))
    });
}

fn bench_negative_sampling(c: &mut Criterion) {
    let net = network();
    let mut queues = CellQueues::new(&net, 600.0, 1000, 32);
    let row = vec![0.5f32; 32];
    for i in 0..net.num_segments() {
        queues.push(i, &row);
    }
    c.bench_function("queue_candidates_local_plus_global", |b| {
        b.iter_batched(
            || (),
            |()| {
                let l = queues.local_candidates(10, &row);
                let g = queues.global_candidates(10, &row);
                (l, g)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_frechet(c: &mut Criterion) {
    let net = network();
    let gen = TrajGenConfig {
        count: 2,
        min_segments: 20,
        max_segments: 60,
        ..Default::default()
    };
    let traces = gen.generate(&net);
    let proj = LocalProjection::new(Point::new(net.bbox().min_lat, net.bbox().min_lon));
    c.bench_function("discrete_frechet_60pt", |b| {
        b.iter(|| discrete_frechet(&traces[0].points, &traces[1].points, &proj))
    });
}

fn bench_dijkstra(c: &mut Criterion) {
    let net = network();
    let g = net.routing_digraph();
    c.bench_function("dijkstra_full_tree", |b| b.iter(|| dijkstra(&g, 0)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_spatial_similarity, bench_augmentation, bench_gat_forward,
              bench_negative_sampling, bench_frechet, bench_dijkstra
}
criterion_main!(benches);
