//! Design-choice ablations called out in DESIGN.md §6 (beyond the paper's
//! own Fig. 5 component ablation): InfoNCE similarity (cosine vs raw dot),
//! global-readout aggregation (mean vs max), and momentum coefficient
//! sensitivity. Reported on SF trajectory similarity, like Fig. 6.

use sarn_bench::{fmt_cell, ExperimentScale, Table};
use sarn_core::{train as sarn_train, LossSimilarity, Readout, SarnConfig};
use sarn_roadnet::{City, RoadNetwork};
use sarn_tasks::{traj_sim, EmbeddingSource, TrajSimConfig};
use sarn_traj::TrajDataset;

fn hr5(net: &RoadNetwork, data: &TrajDataset, cfg: &SarnConfig, seeds: usize) -> Vec<f64> {
    (0..seeds)
        .map(|s| {
            let mut cfg = cfg.clone();
            cfg.seed = s as u64 + 1;
            let trained = sarn_train(net, &cfg);
            let mut src = EmbeddingSource::frozen(&trained.embeddings);
            let probe = TrajSimConfig {
                pairs_per_epoch: 600,
                epochs: 4,
                hidden: 48,
                seed: cfg.seed,
                ..Default::default()
            };
            traj_sim(net, data, &mut src, &probe).hr5_pct
        })
        .collect()
}

fn main() {
    let scale = ExperimentScale::from_env();
    let net = scale.network(City::SanFrancisco);
    let data = scale.trajectories(&net, scale.max_traj_segments, 600);
    let base = scale.sarn_config_for(&net, 1);

    let mut table = Table::new(
        "Design-choice ablations (SF, trajectory similarity HR@5 %)",
        &["Configuration", "HR@5"],
    );
    let cases: Vec<(String, SarnConfig)> = vec![
        ("cosine similarity (default)".into(), base.clone()),
        ("raw dot product (paper literal)".into(), {
            let mut c = base.clone();
            c.loss_similarity = LossSimilarity::Dot;
            c
        }),
        ("max readout".into(), {
            let mut c = base.clone();
            c.readout = Readout::Max;
            c
        }),
        ("momentum m = 0.9".into(), {
            let mut c = base.clone();
            c.momentum = 0.9;
            c
        }),
        ("momentum m = 0.99 (default here)".into(), {
            let mut c = base.clone();
            c.momentum = 0.99;
            c
        }),
        ("momentum m = 0.999 (paper)".into(), {
            let mut c = base.clone();
            c.momentum = 0.999;
            c
        }),
    ];
    for (label, cfg) in cases {
        let vals = hr5(&net, &data, &cfg, scale.seeds);
        table.row(vec![label.clone(), fmt_cell(&vals)]);
        eprintln!("[design_ablations] {label} done");
    }
    table.print();
}
