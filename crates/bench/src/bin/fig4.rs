//! Figure 4: embedding learning time of the self-supervised models on
//! CD / BJ / SF. The reproduction target is the ordering — GCA slowest by a
//! multiple (all-vertex negatives), GraphCL and SRN2Vec fastest, SARN in
//! between — not the absolute seconds.

use sarn_bench::{train_embeddings, ExperimentScale, Method, Table};
use sarn_roadnet::City;

fn main() {
    let scale = ExperimentScale::from_env();
    let cities = [City::Chengdu, City::Beijing, City::SanFrancisco];
    let methods = Method::self_supervised();

    let mut table = Table::new(
        "Figure 4: Embedding learning time (seconds)",
        &["Method", "CD", "BJ", "SF"],
    );
    for method in methods {
        let mut cells = vec![method.label()];
        for &city in &cities {
            let net = scale.network(city);
            match train_embeddings(method, &net, &scale, 1) {
                Ok(out) => cells.push(format!("{:.2}", out.seconds)),
                Err(e) => {
                    eprintln!("{}: {e}", method.label());
                    cells.push("OOM".into());
                }
            }
        }
        table.row(cells);
        eprintln!("[fig4] {} done", method.label());
    }
    table.print();
}
