//! Figure 5: ablation study on SF — SARN-w/o-MNL, SARN-w/o-NL, SARN-w/o-M,
//! and full SARN on all three downstream tasks. Expected shape: metrics
//! improve as components are added; full SARN is best.

use sarn_bench::{
    eval_road_property, eval_spd, eval_traj_sim, fmt_cell, ExperimentScale, Method, Table,
};
use sarn_core::SarnVariant;
use sarn_roadnet::City;

fn main() {
    let scale = ExperimentScale::from_env();
    let net = scale.network(City::SanFrancisco);
    let data = scale.trajectories(&net, scale.max_traj_segments, 400);

    let variants = [
        SarnVariant::WithoutMNL,
        SarnVariant::WithoutNL,
        SarnVariant::WithoutM,
        SarnVariant::Full,
    ];

    let mut table = Table::new(
        "Figure 5: Ablation on SF (F1% | HR@5% | MRE%, MRE smaller is better)",
        &["Variant", "Road property F1", "Traj sim HR@5", "SPD MRE"],
    );
    for v in variants {
        let method = Method::SarnAblation(v);
        let mut f1 = Vec::new();
        let mut hr5 = Vec::new();
        let mut mre = Vec::new();
        for s in 0..scale.seeds {
            let seed = s as u64 + 1;
            if let Ok(r) = eval_road_property(method, &net, &scale, seed) {
                f1.push(r.f1_pct);
            }
            if let Ok(r) = eval_traj_sim(method, &net, &data, &scale, seed) {
                hr5.push(r.hr5_pct);
            }
            if let Ok(r) = eval_spd(method, &net, &scale, seed) {
                mre.push(r.mre_pct);
            }
        }
        table.row(vec![
            v.label().to_string(),
            fmt_cell(&f1),
            fmt_cell(&hr5),
            fmt_cell(&mre),
        ]);
        eprintln!("[fig5] {} done", v.label());
    }
    table.print();
}
