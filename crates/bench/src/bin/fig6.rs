//! Figure 6: parameter study on SF (trajectory similarity HR@5 / HR@20).
//!
//! `--param d|clen|lambda|k|rho` selects one sweep; with no argument every
//! sweep runs. Value grids follow the paper's, scaled where the reduced
//! networks demand it (e.g. the embedding size grid tops out lower on CPU).

use sarn_bench::{fmt_cell, ExperimentScale, Table};
use sarn_core::{train as sarn_train, SarnConfig};
use sarn_roadnet::{City, RoadNetwork};
use sarn_tasks::{traj_sim, EmbeddingSource, TrajSimConfig};
use sarn_traj::TrajDataset;

fn main() {
    let arg = std::env::args()
        .skip_while(|a| a != "--param")
        .nth(1)
        .unwrap_or_else(|| "all".to_string());
    let scale = ExperimentScale::from_env();
    let net = scale.network(City::SanFrancisco);
    let data = scale.trajectories(&net, scale.max_traj_segments, 500);

    if arg == "d" || arg == "all" {
        sweep(
            &scale,
            &net,
            &data,
            "Figure 6a: embedding dimensionality d",
            &[16, 32, 64, 128],
            |cfg, &d| {
                cfg.d = d;
                cfg.d_z = d / 2;
            },
        );
    }
    if arg == "clen" || arg == "all" {
        // The paper sweeps 200-800 m on a ~5.7 km region; sweep the same
        // fractions of this network's extent.
        let extent = net.bbox().width_m().max(net.bbox().height_m());
        let fracs = [0.035, 0.07, 0.105, 0.14, 0.2];
        let values: Vec<usize> = fracs.iter().map(|f| (f * extent) as usize).collect();
        sweep(
            &scale,
            &net,
            &data,
            "Figure 6b: cell side length clen (m)",
            &values,
            |cfg, &c| {
                cfg.clen_m = c as f64;
            },
        );
    }
    if arg == "lambda" || arg == "all" {
        sweep(
            &scale,
            &net,
            &data,
            "Figure 6c: loss trade-off lambda",
            &[0, 20, 40, 60, 80, 100],
            |cfg, &l| {
                cfg.lambda = l as f32 / 100.0;
            },
        );
    }
    if arg == "k" || arg == "all" {
        sweep(
            &scale,
            &net,
            &data,
            "Figure 6d: total negative-queue size K",
            &[250, 500, 1000, 2000, 4000],
            |cfg, &k| {
                cfg.total_k = k;
            },
        );
    }
    if arg == "rho" || arg == "all" {
        rho_heatmap(&scale, &net, &data);
    }
}

fn hr_for(net: &RoadNetwork, data: &TrajDataset, cfg: &SarnConfig, seed: u64) -> (f64, f64) {
    let mut cfg = cfg.clone();
    cfg.seed = seed;
    let trained = sarn_train(net, &cfg);
    let mut src = EmbeddingSource::frozen(&trained.embeddings);
    let probe = TrajSimConfig {
        pairs_per_epoch: 600,
        epochs: 4,
        hidden: 48,
        seed,
        ..Default::default()
    };
    let r = traj_sim(net, data, &mut src, &probe);
    (r.hr5_pct, r.hr20_pct)
}

fn sweep<T: std::fmt::Display>(
    scale: &ExperimentScale,
    net: &RoadNetwork,
    data: &TrajDataset,
    title: &str,
    values: &[T],
    apply: impl Fn(&mut SarnConfig, &T),
) {
    let mut table = Table::new(title, &["Value", "HR@5 (%)", "HR@20 (%)"]);
    for v in values {
        let mut cfg = scale.sarn_config_for(net, 1);
        apply(&mut cfg, v);
        let mut hr5 = Vec::new();
        let mut hr20 = Vec::new();
        for s in 0..scale.seeds {
            let (h5, h20) = hr_for(net, data, &cfg, s as u64 + 1);
            hr5.push(h5);
            hr20.push(h20);
        }
        table.row(vec![v.to_string(), fmt_cell(&hr5), fmt_cell(&hr20)]);
        eprintln!("[fig6] {title}: value {v} done");
    }
    table.print();
}

/// Figure 6e: HR@5 heatmap over (rho_t, rho_s).
fn rho_heatmap(scale: &ExperimentScale, net: &RoadNetwork, data: &TrajDataset) {
    let rhos = [0.2, 0.4, 0.6, 0.8];
    let mut table = Table::new(
        "Figure 6e: HR@5 (%) over (rho_t rows, rho_s cols)",
        &["rho_t \\ rho_s", "0.2", "0.4", "0.6", "0.8"],
    );
    for &rt in &rhos {
        let mut cells = vec![format!("{rt}")];
        for &rs in &rhos {
            let mut cfg = scale.sarn_config_for(net, 1);
            cfg.augment.rho_t = rt;
            cfg.augment.rho_s = rs;
            let mut hr5 = Vec::new();
            for s in 0..scale.seeds {
                let (h5, _) = hr_for(net, data, &cfg, s as u64 + 1);
                hr5.push(h5);
            }
            cells.push(fmt_cell(&hr5));
        }
        table.row(cells);
        eprintln!("[fig6e] rho_t={rt} row done");
    }
    table.print();
}
