//! Kernel and spatial-join benchmark (ROADMAP items 6 and 7).
//!
//! Measures what the execution-strategy knobs actually buy, at the
//! current `SARN_*` scale:
//!
//! 1. **`A^s` build time** — the spatial self-join per `SARN_SPATIAL_JOIN`
//!    mode (`grid` bucketed vs `reference` all-pairs): segments, edges,
//!    wall-clock, and the process peak-RSS high-water mark after each
//!    build. The grid join runs first so its RSS bound is read before the
//!    `O(n^2)` oracle can raise the water mark.
//! 2. **Training epoch time** — one full `train` run per reduction mode;
//!    the table reports total wall-clock and seconds per epoch for
//!    `reference` (bit-exact scalar kernels) vs `fast` (blocked /
//!    lane-accumulator kernels).
//! 3. **Serve k-NN latency** — exact and grid-approximate k-NN p50/p99
//!    against the same published artifact, per mode; the cosine scorer
//!    dispatches on the knob at query time.
//!
//! `SARN_KERNEL_BENCH_LEGS` (comma list of `join`, `train`, `knn`;
//! default all) restricts the run — CI uses `join` alone for the
//! scale-2.0 crossover row, where a full training run would dominate the
//! gate's wall-clock.
//!
//! Emits machine-readable rows through the bench report machinery: run
//! with `SARN_REPORT_JSONL=BENCH_7.json` to produce the committed CI
//! artifact. The process-global knob is restored to `reference` on exit.

use std::time::{Duration, Instant};

use sarn_bench::{ExperimentScale, Table};
use sarn_core::{train, ReductionOrder, SpatialJoin, SpatialSimilarity};
use sarn_roadnet::City;
use sarn_serve::{Deadline, EmbeddingStore, ServeConfig};

const KNN_REPS: usize = 200;
const KNN_K: usize = 10;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn time_knn(mut run: impl FnMut(usize)) -> (f64, f64) {
    let mut samples = Vec::with_capacity(KNN_REPS);
    for i in 0..KNN_REPS {
        let t0 = Instant::now();
        run(i);
        samples.push(t0.elapsed());
    }
    samples.sort();
    (
        percentile(&samples, 0.50).as_secs_f64() * 1e6,
        percentile(&samples, 0.99).as_secs_f64() * 1e6,
    )
}

/// Which benchmark legs to run (`SARN_KERNEL_BENCH_LEGS`, comma list;
/// unknown names are ignored, empty/unset means all).
fn leg_enabled(name: &str) -> bool {
    match std::env::var("SARN_KERNEL_BENCH_LEGS") {
        Ok(v) if !v.trim().is_empty() => v.split(',').any(|l| l.trim() == name),
        _ => true,
    }
}

/// Process peak RSS in MB, or a dash where procfs is unavailable.
fn peak_rss_mb() -> String {
    match sarn_obs::peak_rss_bytes() {
        Some(bytes) => format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
        None => "-".to_string(),
    }
}

fn main() {
    let scale = ExperimentScale::from_env();
    let net = scale.network(City::Chengdu);
    let modes = [ReductionOrder::Reference, ReductionOrder::Fast];

    // Leg 0: the A^s spatial self-join, grid first so its peak-RSS row is
    // read before the all-pairs oracle can raise the high-water mark.
    if leg_enabled("join") {
        let mut join_table = Table::new(
            "spatial_join",
            &["mode", "segments", "edges", "build_ms", "peak_rss_mb"],
        );
        for join in [SpatialJoin::Grid, SpatialJoin::Reference] {
            let cfg = scale.sarn_config_for(&net, 1).with_spatial_join(join);
            eprintln!(
                "[kernel_bench] building A^s over {} segments, join={}",
                net.num_segments(),
                join.label()
            );
            let t0 = Instant::now();
            let sim = SpatialSimilarity::build(&net, &cfg.similarity);
            let build_ms = t0.elapsed().as_secs_f64() * 1e3;
            join_table.row(vec![
                join.label().to_string(),
                net.num_segments().to_string(),
                sim.num_edges().to_string(),
                format!("{build_ms:.2}"),
                peak_rss_mb(),
            ]);
        }
        join_table.print();
    }

    // Leg 1: full training run per mode.
    let mut artifact = None;
    if leg_enabled("train") {
        let mut epoch_table = Table::new(
            "kernel_epoch",
            &["mode", "threads", "epochs", "total_s", "s_per_epoch"],
        );
        for mode in modes {
            let mut cfg = scale.sarn_config_for(&net, 1).with_reduction_order(mode);
            cfg.patience = u32::MAX; // time every epoch, no early stop
            eprintln!(
                "[kernel_bench] training {} segments, {} epochs, mode={}",
                net.num_segments(),
                cfg.max_epochs,
                mode.label()
            );
            let t0 = Instant::now();
            let trained = train(&net, &cfg);
            let total = t0.elapsed().as_secs_f64();
            let epochs = trained.epochs_run.max(1);
            epoch_table.row(vec![
                mode.label().to_string(),
                cfg.num_threads.to_string(),
                epochs.to_string(),
                format!("{total:.3}"),
                format!("{:.4}", total / epochs as f64),
            ]);
            if mode == ReductionOrder::Reference {
                artifact = Some(trained.embeddings);
            }
        }
        epoch_table.print();
    }

    if !leg_enabled("knn") {
        return;
    }

    // Leg 2: serve k-NN latency per mode, against one published artifact
    // (trained here if the train leg was skipped).
    let embeddings =
        artifact.unwrap_or_else(|| train(&net, &scale.sarn_config_for(&net, 1)).embeddings);
    let dir = std::env::temp_dir().join(format!("sarn_kernel_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating the artifact directory");
    let path = dir.join("embeddings.emb");
    embeddings.save(&path).expect("saving the artifact");
    let serve_cfg = ServeConfig::from_env().expect("SARN_SERVE_* knobs");
    let store = EmbeddingStore::for_network(&net, embeddings.cols(), serve_cfg)
        .expect("building the store");
    store.reload(&path).expect("publishing the artifact");
    let n = net.num_segments();

    let mut knn_table = Table::new(
        "kernel_knn",
        &[
            "mode",
            "exact_p50_us",
            "exact_p99_us",
            "approx_p50_us",
            "approx_p99_us",
        ],
    );
    for mode in modes {
        sarn_par::set_reduction_order(mode);
        let (exact_p50, exact_p99) = time_knn(|i| {
            store
                .knn(i % n, KNN_K, Deadline::unbounded())
                .expect("exact knn");
        });
        let (approx_p50, approx_p99) = time_knn(|i| {
            store
                .knn_approx(i % n, KNN_K, Deadline::unbounded())
                .expect("approx knn");
        });
        knn_table.row(vec![
            mode.label().to_string(),
            format!("{exact_p50:.1}"),
            format!("{exact_p99:.1}"),
            format!("{approx_p50:.1}"),
            format!("{approx_p99:.1}"),
        ]);
    }
    sarn_par::set_reduction_order(ReductionOrder::Reference);
    knn_table.print();

    let _ = std::fs::remove_dir_all(&dir);
}
