//! Reduction-order kernel benchmark (ROADMAP item 6).
//!
//! Measures what the `SARN_REDUCTION_ORDER` knob actually buys, at the
//! current `SARN_*` scale:
//!
//! 1. **Training epoch time** — one full `train` run per mode; the table
//!    reports total wall-clock and seconds per epoch for `reference`
//!    (bit-exact scalar kernels) vs `fast` (blocked / lane-accumulator
//!    kernels).
//! 2. **Serve k-NN latency** — exact and grid-approximate k-NN p50/p99
//!    against the same published artifact, per mode; the cosine scorer
//!    dispatches on the knob at query time.
//!
//! Emits machine-readable rows through the bench report machinery: run
//! with `SARN_REPORT_JSONL=BENCH_6.json` to produce the committed CI
//! artifact. The process-global knob is restored to `reference` on exit.

use std::time::{Duration, Instant};

use sarn_bench::{ExperimentScale, Table};
use sarn_core::{train, ReductionOrder};
use sarn_roadnet::City;
use sarn_serve::{Deadline, EmbeddingStore, ServeConfig};

const KNN_REPS: usize = 200;
const KNN_K: usize = 10;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn time_knn(mut run: impl FnMut(usize)) -> (f64, f64) {
    let mut samples = Vec::with_capacity(KNN_REPS);
    for i in 0..KNN_REPS {
        let t0 = Instant::now();
        run(i);
        samples.push(t0.elapsed());
    }
    samples.sort();
    (
        percentile(&samples, 0.50).as_secs_f64() * 1e6,
        percentile(&samples, 0.99).as_secs_f64() * 1e6,
    )
}

fn main() {
    let scale = ExperimentScale::from_env();
    let net = scale.network(City::Chengdu);
    let modes = [ReductionOrder::Reference, ReductionOrder::Fast];

    // Leg 1: full training run per mode.
    let mut epoch_table = Table::new(
        "kernel_epoch",
        &["mode", "threads", "epochs", "total_s", "s_per_epoch"],
    );
    let mut artifact = None;
    for mode in modes {
        let mut cfg = scale.sarn_config_for(&net, 1).with_reduction_order(mode);
        cfg.patience = u32::MAX; // time every epoch, no early stop
        eprintln!(
            "[kernel_bench] training {} segments, {} epochs, mode={}",
            net.num_segments(),
            cfg.max_epochs,
            mode.label()
        );
        let t0 = Instant::now();
        let trained = train(&net, &cfg);
        let total = t0.elapsed().as_secs_f64();
        let epochs = trained.epochs_run.max(1);
        epoch_table.row(vec![
            mode.label().to_string(),
            cfg.num_threads.to_string(),
            epochs.to_string(),
            format!("{total:.3}"),
            format!("{:.4}", total / epochs as f64),
        ]);
        if mode == ReductionOrder::Reference {
            artifact = Some(trained.embeddings);
        }
    }
    epoch_table.print();

    // Leg 2: serve k-NN latency per mode, against one published artifact.
    let embeddings = artifact.expect("reference training ran first");
    let dir = std::env::temp_dir().join(format!("sarn_kernel_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating the artifact directory");
    let path = dir.join("embeddings.emb");
    embeddings.save(&path).expect("saving the artifact");
    let store = EmbeddingStore::for_network(&net, embeddings.cols(), ServeConfig::from_env())
        .expect("building the store");
    store.reload(&path).expect("publishing the artifact");
    let n = net.num_segments();

    let mut knn_table = Table::new(
        "kernel_knn",
        &[
            "mode",
            "exact_p50_us",
            "exact_p99_us",
            "approx_p50_us",
            "approx_p99_us",
        ],
    );
    for mode in modes {
        sarn_par::set_reduction_order(mode);
        let (exact_p50, exact_p99) = time_knn(|i| {
            store
                .knn(i % n, KNN_K, Deadline::unbounded())
                .expect("exact knn");
        });
        let (approx_p50, approx_p99) = time_knn(|i| {
            store
                .knn_approx(i % n, KNN_K, Deadline::unbounded())
                .expect("approx knn");
        });
        knn_table.row(vec![
            mode.label().to_string(),
            format!("{exact_p50:.1}"),
            format!("{exact_p99:.1}"),
            format!("{approx_p50:.1}"),
            format!("{approx_p99:.1}"),
        ]);
    }
    sarn_par::set_reduction_order(ReductionOrder::Reference);
    knn_table.print();

    let _ = std::fs::remove_dir_all(&dir);
}
