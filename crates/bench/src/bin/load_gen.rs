//! Closed-loop (and optionally open-loop) load generator driving the
//! sharded router, comparing per-shard linear-scan serving against the
//! HNSW-backed ANN path at several network scales (DESIGN.md §16).
//!
//! Per scale, two routers over identical synthetic embeddings:
//!
//! - **scan** — `ann_threshold = ∞`: every k-NN is the exact per-shard
//!   linear scan (the pre-ANN serving path, bit for bit).
//! - **hnsw** — `ann_threshold = 1`: every shard builds its HNSW index in
//!   the background; the run waits for the router health report to turn
//!   `Ready` before driving load, and records the slowest shard's build.
//!
//! The closed loop runs a fixed worker pool to completion; the open loop
//! (largest scale only) targets `SARN_LOADGEN_QPS` with a linear ramp
//! over `SARN_LOADGEN_RAMP_S`, reporting achieved throughput. Every
//! query latency is recorded both exactly (for the reported percentiles)
//! and into the `sarn_bench_loadgen_knn_seconds` histogram so the
//! `sarn-obs` export carries the same distribution. Recall@k of the ANN
//! leg is measured against the scan leg's exact answers on the same
//! rows, score-matched so exact-score ties count as hits.
//!
//! Exits non-zero on any query error, a recall below
//! `SARN_LOADGEN_MIN_RECALL`, a p99 over `SARN_LOADGEN_SLO_P99_MS` (when
//! set), or a scan/ANN p99 speedup at the largest scale below
//! `SARN_LOADGEN_MIN_SPEEDUP` (when set). Run with
//! `SARN_REPORT_JSONL=BENCH_10.json` to produce the committed CI
//! artifact.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_bench::Table;
use sarn_geo::Point;
use sarn_serve::{Deadline, IndexState, Router, RouterConfig, ServeConfig, ShardedStore};
use sarn_tensor::Tensor;

fn fail(msg: &str) -> ! {
    eprintln!("[load_gen] FAIL: {msg}");
    std::process::exit(1);
}

fn ensure(cond: bool, msg: &str) {
    if !cond {
        fail(msg);
    }
}

/// Process peak RSS in MB, or a dash where procfs is unavailable.
fn peak_rss_mb() -> String {
    match sarn_obs::peak_rss_bytes() {
        Some(bytes) => format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
        None => "-".to_string(),
    }
}

/// `SARN_LOADGEN_*` knob: unset/empty defaults, malformed fails loudly
/// (same contract as the serve knobs — a typo must not silently shrink
/// the run).
fn env_knob<T: std::str::FromStr>(var: &str, default: T) -> T {
    match std::env::var(var) {
        Err(_) => default,
        Ok(raw) if raw.trim().is_empty() => default,
        Ok(raw) => raw
            .trim()
            .parse()
            .unwrap_or_else(|_| fail(&format!("bad knob {var}={raw:?}"))),
    }
}

fn env_opt(var: &str) -> Option<f64> {
    match std::env::var(var) {
        Err(_) => None,
        Ok(raw) if raw.trim().is_empty() => None,
        Ok(raw) => Some(
            raw.trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad knob {var}={raw:?}"))),
        ),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Closed,
    Open,
    Both,
}

struct LoadCfg {
    scales: Vec<usize>,
    dim: usize,
    shards: usize,
    queries: usize,
    concurrency: usize,
    k: usize,
    mode: Mode,
    qps: f64,
    ramp_s: f64,
    duration_s: f64,
    recall_queries: usize,
    min_recall: f64,
    slo_p99_ms: Option<f64>,
    min_speedup: Option<f64>,
}

impl LoadCfg {
    fn from_env() -> Self {
        let scales_raw: String = env_knob("SARN_LOADGEN_SCALES", "2000,12000,48000".to_string());
        let scales: Vec<usize> = scales_raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad scale in SARN_LOADGEN_SCALES: {s:?}")))
            })
            .collect();
        ensure(!scales.is_empty(), "SARN_LOADGEN_SCALES must name a scale");
        let mode = match env_knob("SARN_LOADGEN_MODE", "both".to_string()).as_str() {
            "closed" => Mode::Closed,
            "open" => Mode::Open,
            "both" => Mode::Both,
            other => fail(&format!("bad SARN_LOADGEN_MODE={other:?}")),
        };
        Self {
            scales,
            dim: env_knob("SARN_LOADGEN_DIM", 32),
            shards: env_knob("SARN_LOADGEN_SHARDS", 4),
            queries: env_knob("SARN_LOADGEN_QUERIES", 2000),
            concurrency: env_knob("SARN_LOADGEN_CONCURRENCY", 8).max(1),
            k: env_knob("SARN_LOADGEN_K", 10),
            mode,
            qps: env_knob("SARN_LOADGEN_QPS", 2000.0),
            ramp_s: env_knob("SARN_LOADGEN_RAMP_S", 1.0),
            duration_s: env_knob("SARN_LOADGEN_DURATION_S", 3.0),
            recall_queries: env_knob("SARN_LOADGEN_RECALL_QUERIES", 256),
            min_recall: env_knob("SARN_LOADGEN_MIN_RECALL", 0.95),
            slo_p99_ms: env_opt("SARN_LOADGEN_SLO_P99_MS"),
            min_speedup: env_opt("SARN_LOADGEN_MIN_SPEEDUP"),
        }
    }
}

/// Segment midpoints on a dense lattice: a `⌈√n⌉`-wide grid of 50-meter
/// steps, so the geo-partitioner produces contiguous non-empty bands.
fn midpoints(n: usize) -> Vec<Point> {
    let w = (n as f64).sqrt().ceil() as usize;
    (0..n)
        .map(|i| {
            Point::new(
                30.64 + (i / w) as f64 * 0.0005,
                104.04 + (i % w) as f64 * 0.0005,
            )
        })
        .collect()
}

/// Seeded, diverse embeddings. A real generator (not a hash lattice):
/// duplicate-free rows keep the recall measurement honest.
fn embeddings(n: usize, dim: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(0x10AD_6E27 ^ n as u64);
    let data = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    Tensor::from_vec(n, dim, data)
}

/// Builds a router over `n` fresh rows with the given ANN threshold and
/// waits for its index lifecycle to settle (`Ready` when ANN is on).
/// Returns the router and the slowest shard's build time in ms.
fn build_router(cfg: &LoadCfg, n: usize, ann_threshold: usize) -> (Router, u64) {
    let serve_cfg = ServeConfig {
        ann_threshold,
        ..ServeConfig::from_env().unwrap_or_else(|e| fail(&format!("bad serve knob: {e}")))
    };
    let sharded = ShardedStore::new(midpoints(n), cfg.dim, serve_cfg, cfg.shards)
        .unwrap_or_else(|e| fail(&format!("building sharded store: {e}")));
    sharded
        .admit(&embeddings(n, cfg.dim))
        .unwrap_or_else(|e| fail(&format!("admitting {n} rows: {e}")));
    let router = Router::new(
        sharded,
        RouterConfig {
            hedge: false,
            ..RouterConfig::from_env().unwrap_or_else(|e| fail(&format!("bad router knob: {e}")))
        },
    );
    let build_ms = if ann_threshold == usize::MAX {
        0
    } else {
        let t0 = Instant::now();
        loop {
            match router.health().index {
                IndexState::Ready { build_ms } => break build_ms,
                IndexState::FellBack => fail("index fell back during a clean build"),
                _ if t0.elapsed() > Duration::from_secs(120) => {
                    fail("HNSW build did not reach Ready within 120s")
                }
                _ => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    };
    (router, build_ms)
}

/// Closed loop: a fixed worker pool drains a shared query counter as
/// fast as the router answers. Returns exact latency samples and the
/// error count.
fn closed_loop(router: &Router, n: usize, cfg: &LoadCfg) -> (Vec<Duration>, u64) {
    let next = AtomicUsize::new(0);
    let errors = AtomicU64::new(0);
    let hist = sarn_obs::histogram("sarn_bench_loadgen_knn_seconds");
    let mut lanes: Vec<Vec<Duration>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.concurrency)
            .map(|_| {
                let (next, errors, hist) = (&next, &errors, &hist);
                s.spawn(move || {
                    let mut samples = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cfg.queries {
                            break samples;
                        }
                        let segment = (i * 37) % n;
                        let t0 = Instant::now();
                        match router.knn(segment, cfg.k, Deadline::unbounded()) {
                            Ok(_) => {
                                let dt = t0.elapsed();
                                hist.observe(dt.as_secs_f64());
                                samples.push(dt);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            lanes.push(h.join().unwrap_or_else(|_| fail("worker panicked")));
        }
    });
    (lanes.concat(), errors.load(Ordering::Relaxed))
}

/// Scheduled issue time of open-loop query `i`: rate ramps linearly from
/// zero to `qps` over `ramp_s`, then holds.
fn open_loop_schedule(i: usize, qps: f64, ramp_s: f64) -> Duration {
    let ramp_queries = qps * ramp_s / 2.0;
    let t = if (i as f64) < ramp_queries {
        (2.0 * i as f64 * ramp_s / qps).sqrt()
    } else {
        ramp_s + (i as f64 - ramp_queries) / qps
    };
    Duration::from_secs_f64(t.max(0.0))
}

/// Open loop: queries are issued on a wall-clock schedule (workers sleep
/// until each query's slot), so queueing delay shows up as latency
/// instead of back-pressure hiding it. Returns samples, errors, and the
/// achieved QPS.
fn open_loop(router: &Router, n: usize, cfg: &LoadCfg) -> (Vec<Duration>, u64, f64) {
    let ramp_s = cfg.ramp_s.min(cfg.duration_s);
    let total = ((cfg.qps * ramp_s / 2.0) + cfg.qps * (cfg.duration_s - ramp_s)).round() as usize;
    ensure(total > 0, "open-loop schedule is empty; raise QPS/DURATION");
    let errors = AtomicU64::new(0);
    let hist = sarn_obs::histogram("sarn_bench_loadgen_knn_seconds");
    let start = Instant::now();
    let mut lanes: Vec<Vec<Duration>> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.concurrency)
            .map(|lane| {
                let (errors, hist, start) = (&errors, &hist, &start);
                s.spawn(move || {
                    let mut samples = Vec::new();
                    let mut i = lane;
                    while i < total {
                        let due = open_loop_schedule(i, cfg.qps, ramp_s);
                        if let Some(nap) = due.checked_sub(start.elapsed()) {
                            std::thread::sleep(nap);
                        }
                        let segment = (i * 37) % n;
                        let t0 = Instant::now();
                        match router.knn(segment, cfg.k, Deadline::unbounded()) {
                            Ok(_) => {
                                let dt = t0.elapsed();
                                hist.observe(dt.as_secs_f64());
                                samples.push(dt);
                            }
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        i += cfg.concurrency;
                    }
                    samples
                })
            })
            .collect();
        for h in handles {
            lanes.push(h.join().unwrap_or_else(|_| fail("worker panicked")));
        }
    });
    let achieved = total as f64 / start.elapsed().as_secs_f64().max(1e-9);
    (lanes.concat(), errors.load(Ordering::Relaxed), achieved)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Recall@k of the ANN router against the scan router's exact answers,
/// score-matched: an ANN neighbor counts as a hit when its similarity is
/// at least the exact k-th best (so exact-score ties — co-located rows —
/// are not spuriously penalized).
fn recall_at_k(scan: &Router, ann: &Router, n: usize, cfg: &LoadCfg) -> f64 {
    let (mut hits, mut want) = (0usize, 0usize);
    for q in 0..cfg.recall_queries {
        let segment = (q * 17 + 1) % n;
        let exact = scan
            .knn(segment, cfg.k, Deadline::unbounded())
            .unwrap_or_else(|e| fail(&format!("exact recall query: {e}")));
        let approx = ann
            .knn(segment, cfg.k, Deadline::unbounded())
            .unwrap_or_else(|e| fail(&format!("ann recall query: {e}")));
        let Some(&(_, kth)) = exact.neighbors.last() else {
            continue;
        };
        want += exact.neighbors.len();
        hits += approx
            .neighbors
            .iter()
            .filter(|&&(_, s)| s >= kth)
            .count()
            .min(exact.neighbors.len());
    }
    if want == 0 {
        1.0
    } else {
        hits as f64 / want as f64
    }
}

fn fmt_us(d: Duration) -> String {
    format!("{:.0}", d.as_secs_f64() * 1e6)
}

/// Single-shard leg: drives one shard's [`sarn_serve::EmbeddingStore`]
/// directly (no fan-out, no router overhead), isolating "per-shard
/// linear scan vs per-shard ANN search" — the comparison the speedup
/// gate is about. Single-threaded so scheduler queueing does not pollute
/// the tail.
fn shard_loop(router: &Router, cfg: &LoadCfg) -> Vec<Duration> {
    let shard = &router.sharded().shards()[0];
    let rows = shard.globals.len();
    let mut samples = Vec::with_capacity(cfg.queries);
    let hist = sarn_obs::histogram("sarn_bench_loadgen_knn_seconds");
    for i in 0..cfg.queries {
        let segment = (i * 37) % rows;
        let t0 = Instant::now();
        shard
            .store
            .knn(segment, cfg.k, Deadline::unbounded())
            .unwrap_or_else(|e| fail(&format!("shard leg query: {e}")));
        let dt = t0.elapsed();
        hist.observe(dt.as_secs_f64());
        samples.push(dt);
    }
    samples
}

fn main() {
    let cfg = LoadCfg::from_env();
    sarn_obs::set_enabled(true);
    let mut table = Table::new(
        "load_gen",
        &[
            "leg",
            "rows",
            "queries",
            "errors",
            "p50_us",
            "p99_us",
            "recall_at_10",
            "build_ms",
            "peak_rss_mb",
        ],
    );
    let largest = *cfg.scales.iter().max().unwrap_or(&0);
    let mut speedup_at_largest = None;
    for &n in &cfg.scales {
        eprintln!("[load_gen] scale {n}: building scan + hnsw routers");
        let (scan_router, _) = build_router(&cfg, n, usize::MAX);
        let (ann_router, build_ms) = build_router(&cfg, n, 1);
        let ann_before = sarn_obs::counter("sarn_serve_knn_ann_total").get();

        let recall = recall_at_k(&scan_router, &ann_router, n, &cfg);
        ensure(
            recall >= cfg.min_recall,
            &format!(
                "recall@{} {recall:.3} below the {:.2} bound at {n} rows",
                cfg.k, cfg.min_recall
            ),
        );
        ensure(
            sarn_obs::counter("sarn_serve_knn_ann_total").get() > ann_before,
            "hnsw leg never served through the ANN index",
        );

        if cfg.mode != Mode::Open {
            // Routed end-to-end closed loops (fan-out overhead included).
            for (leg, router) in [("scan_routed", &scan_router), ("hnsw_routed", &ann_router)] {
                let (mut samples, errors) = closed_loop(router, n, &cfg);
                ensure(
                    errors == 0,
                    &format!("{leg} leg saw {errors} errors at {n} rows"),
                );
                samples.sort();
                let is_ann = leg.starts_with("hnsw");
                table.row(vec![
                    leg.to_string(),
                    n.to_string(),
                    samples.len().to_string(),
                    errors.to_string(),
                    fmt_us(percentile(&samples, 0.50)),
                    fmt_us(percentile(&samples, 0.99)),
                    if is_ann {
                        format!("{recall:.3}")
                    } else {
                        "1.000".to_string()
                    },
                    if is_ann {
                        build_ms.to_string()
                    } else {
                        "-".to_string()
                    },
                    peak_rss_mb(),
                ]);
            }
            // Per-shard legs: the linear-scan-vs-ANN comparison proper.
            let mut shard_p99 = Vec::with_capacity(2);
            for (leg, router) in [("scan_shard", &scan_router), ("hnsw_shard", &ann_router)] {
                let mut samples = shard_loop(router, &cfg);
                samples.sort();
                let (p50, p99) = (percentile(&samples, 0.50), percentile(&samples, 0.99));
                shard_p99.push(p99);
                let is_ann = leg.starts_with("hnsw");
                table.row(vec![
                    leg.to_string(),
                    n.to_string(),
                    samples.len().to_string(),
                    "0".to_string(),
                    fmt_us(p50),
                    fmt_us(p99),
                    if is_ann {
                        format!("{recall:.3}")
                    } else {
                        "1.000".to_string()
                    },
                    if is_ann {
                        build_ms.to_string()
                    } else {
                        "-".to_string()
                    },
                    peak_rss_mb(),
                ]);
            }
            if let [scan_p99, ann_p99] = shard_p99[..] {
                let ratio = scan_p99.as_secs_f64() / ann_p99.as_secs_f64().max(1e-9);
                table.row(vec![
                    "speedup_p99".to_string(),
                    n.to_string(),
                    (2 * cfg.queries).to_string(),
                    "0".to_string(),
                    "-".to_string(),
                    format!("{ratio:.1}x"),
                    "-".to_string(),
                    "-".to_string(),
                    peak_rss_mb(),
                ]);
                if n == largest {
                    speedup_at_largest = Some(ratio);
                    if let Some(slo_ms) = cfg.slo_p99_ms {
                        ensure(
                            ann_p99.as_secs_f64() * 1e3 <= slo_ms,
                            &format!(
                                "hnsw per-shard p99 {:.2}ms over the {slo_ms}ms SLO",
                                ann_p99.as_secs_f64() * 1e3
                            ),
                        );
                    }
                }
            }
        }
        if cfg.mode != Mode::Closed && n == largest {
            let (mut samples, errors, achieved) = open_loop(&ann_router, n, &cfg);
            ensure(errors == 0, &format!("open loop saw {errors} errors"));
            samples.sort();
            table.row(vec![
                format!("hnsw_open@{:.0}qps", achieved),
                n.to_string(),
                samples.len().to_string(),
                errors.to_string(),
                fmt_us(percentile(&samples, 0.50)),
                fmt_us(percentile(&samples, 0.99)),
                format!("{recall:.3}"),
                build_ms.to_string(),
                peak_rss_mb(),
            ]);
        }
    }
    if let (Some(min), Some(got)) = (cfg.min_speedup, speedup_at_largest) {
        ensure(
            got >= min,
            &format!("p99 speedup {got:.1}x at {largest} rows below the {min}x bound"),
        );
    }
    table.print();
    eprintln!("[load_gen] ok");
}
