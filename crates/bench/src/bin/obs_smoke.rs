//! End-to-end smoke check of the telemetry subsystem, for CI.
//!
//! 1. **Overhead + equivalence leg.** Trains the same small SARN config
//!    twice — telemetry off, then on with an end-of-run export — and
//!    asserts the loss history and embeddings are bitwise identical (the
//!    deeper multi-thread version lives in the `obs_equivalence` sys
//!    test) while printing the measured per-epoch overhead for
//!    EXPERIMENTS.md.
//! 2. **Serving leg.** Publishes the artifact through an
//!    [`sarn_serve::EmbeddingStore`] (reload path, so reload telemetry
//!    fires) and answers 100 queries each of lookup / exact k-NN /
//!    approximate k-NN.
//! 3. **Artifact leg.** Re-exports and asserts the Prometheus text
//!    parses with the key training and serving series non-empty, the
//!    JSON snapshot validates, and every journal line is valid JSON.
//!
//! Honors the `SARN_*` training knobs; `SARN_OBS_DIR` overrides the
//! export directory. Exits non-zero on any breach or panic.

use sarn_bench::{fmt_cell, ExperimentScale, Table};
use sarn_core::train;
use sarn_obs::ObsConfig;
use sarn_roadnet::City;
use sarn_serve::{Deadline, EmbeddingStore, ServeConfig};

fn main() {
    let scale = ExperimentScale::from_env();
    let net = scale.network(City::Chengdu);
    let mut cfg = scale.sarn_config_for(&net, 1);
    cfg.max_epochs = cfg.max_epochs.max(2);
    cfg.schedule_epochs = cfg.schedule_horizon();
    let dir = match &scale.obs.export_dir {
        Some(d) => d.clone(),
        None => std::env::temp_dir().join(format!("sarn_obs_smoke_{}", std::process::id())),
    };

    // Leg 1a: baseline with telemetry off (the process default).
    let mut cfg_off = cfg.clone();
    cfg_off.obs = ObsConfig::default();
    sarn_obs::set_enabled(false);
    eprintln!(
        "[obs_smoke] leg 1: training {} segments x {} epochs, telemetry off",
        net.num_segments(),
        cfg.max_epochs
    );
    let off = train(&net, &cfg_off);

    // Leg 1b: identical run with telemetry on. Exporting only at the end
    // of training (`export_every: 0`) isolates the *recording* overhead —
    // the contract in DESIGN.md §11 — from the per-epoch fsync cost of
    // the optional periodic file exports.
    eprintln!(
        "[obs_smoke] leg 1: same run, telemetry on -> {}",
        dir.display()
    );
    let cfg_on = cfg.clone().with_obs(ObsConfig {
        export_dir: Some(dir.clone()),
        export_every: 0,
        ..ObsConfig::default()
    });
    let on = train(&net, &cfg_on);

    assert_eq!(
        off.loss_history, on.loss_history,
        "telemetry perturbed the loss history"
    );
    assert_eq!(
        off.embeddings.data(),
        on.embeddings.data(),
        "telemetry perturbed the embeddings"
    );
    let epochs = on.epochs_run.max(1) as f64;
    let (off_epoch, on_epoch) = (off.train_seconds / epochs, on.train_seconds / epochs);
    let overhead_pct = (on_epoch - off_epoch) / off_epoch * 100.0;

    // Leg 2: serve 100 queries per path through the instrumented store.
    eprintln!("[obs_smoke] leg 2: serving 3 x 100 queries");
    std::fs::create_dir_all(&dir).expect("creating the export directory");
    let artifact = dir.join("embeddings.emb");
    on.embeddings.save(&artifact).expect("saving the artifact");
    let serve_cfg = ServeConfig::from_env().expect("SARN_SERVE_* knobs");
    let store = EmbeddingStore::for_network(&net, cfg.d, serve_cfg).expect("building store");
    store.reload(&artifact).expect("initial reload");
    let n = net.num_segments();
    const QUERIES: usize = 100;
    for i in 0..QUERIES {
        store
            .embedding(i % n, Deadline::unbounded())
            .expect("lookup");
        store.knn(i % n, 5, Deadline::unbounded()).expect("knn");
        store
            .knn_approx(i % n, 5, Deadline::unbounded())
            .expect("approx knn");
    }
    let health = store.health();
    assert_eq!(health.reloads_ok, 1);
    let snap_in_health = health
        .metrics
        .expect("telemetry is on: health carries metrics");
    assert!(snap_in_health.counter("sarn_serve_reloads_ok_total") >= Some(1));

    // The summary table also exercises the bench JSONL emitter.
    let mut table = Table::new(
        "obs_smoke: per-epoch overhead",
        &["Telemetry", "s/epoch", "Overhead"],
    );
    table.row(vec!["off".into(), fmt_cell(&[off_epoch]), "-".into()]);
    table.row(vec![
        "on".into(),
        fmt_cell(&[on_epoch]),
        format!("{overhead_pct:+.2}%"),
    ]);
    table.print();

    // Leg 3: final export, then parse everything back.
    sarn_obs::export_all(&dir).expect("final export");
    let prom_path = dir.join(sarn_obs::PROMETHEUS_FILE);
    let prom = std::fs::read_to_string(&prom_path).expect("reading metrics.prom");
    let samples = sarn_obs::parse_prometheus(&prom).expect("metrics.prom must parse");
    let value_of = |name: &str| -> f64 {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("series `{name}` missing from {}", prom_path.display()))
            .value
    };
    assert!(
        value_of("sarn_train_epochs_total") >= cfg.max_epochs.min(on.epochs_run) as f64,
        "training epochs series too small"
    );
    assert!(value_of("sarn_train_epoch_seconds_count") >= 2.0);
    assert!(value_of("sarn_train_batch_seconds_count") > 0.0);
    assert!(value_of("sarn_serve_reloads_ok_total") >= 1.0);
    for series in [
        "sarn_serve_lookup_seconds_count",
        "sarn_serve_knn_exact_seconds_count",
        "sarn_serve_knn_approx_seconds_count",
    ] {
        assert!(
            value_of(series) >= QUERIES as f64,
            "{series} below the {QUERIES} issued queries"
        );
    }

    let json =
        std::fs::read_to_string(dir.join(sarn_obs::JSON_FILE)).expect("reading metrics.json");
    sarn_obs::validate_json(&json).expect("metrics.json must be valid JSON");
    assert!(json.contains("sarn_train_epochs_total"));

    let events =
        std::fs::read_to_string(dir.join(sarn_obs::EVENTS_FILE)).expect("reading events.jsonl");
    let mut kinds = std::collections::BTreeSet::new();
    for line in events.lines() {
        sarn_obs::validate_json(line).expect("every journal line must be valid JSON");
        for kind in ["epoch_summary", "reload_ok", "bench_row"] {
            if line.contains(&format!("\"type\":\"{kind}\"")) {
                kinds.insert(kind);
            }
        }
    }
    for kind in ["epoch_summary", "reload_ok", "bench_row"] {
        assert!(kinds.contains(kind), "no `{kind}` event in events.jsonl");
    }

    println!(
        "obs_smoke OK: {} prom series, {} journal lines, per-epoch {:.3}s off vs {:.3}s on ({overhead_pct:+.2}%)",
        samples.len(),
        events.lines().count(),
        off_epoch,
        on_epoch,
    );
    if scale.obs.export_dir.is_none() {
        std::fs::remove_dir_all(&dir).ok();
    }
}
