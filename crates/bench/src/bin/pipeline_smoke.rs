//! Online-pipeline fault-injection smoke + incremental-repair benchmark
//! (DESIGN.md §14).
//!
//! Two legs, both exiting non-zero on any breach or panic:
//!
//! 1. **Fault smoke** — bootstrap a pipeline, then drive four edit
//!    batches with one injected fault in every stage of the loop
//!    (corrupt edit record, torn export, reload I/O fault, diverging
//!    retrain, mid-repair crash). Each batch must land: the generation
//!    advances monotonically, the serve front stays healthy (never torn,
//!    never stale beyond the SLO), a probe query returns a full-width
//!    finite row, and at the end the incrementally repaired `A^s` must
//!    equal a from-scratch grid join bit for bit.
//! 2. **Incremental repair vs full rebuild** — apply the same edit
//!    stream through [`LiveNetwork`]'s localized re-joins and time it
//!    against rebuilding `A^s` from scratch, with the process peak-RSS
//!    high-water mark next to each row.
//!
//! `SARN_PIPELINE_SMOKE_LEGS` (comma list of `faults`, `repair`; default
//! all) restricts the run — CI adds a repair-only invocation at scale
//! 2.0, where the localized re-joins separate from the from-scratch
//! rebuild but a training run would dominate the gate's wall-clock.
//!
//! Emits machine-readable rows through the bench report machinery: run
//! with `SARN_REPORT_JSONL=BENCH_8.json` to produce the committed CI
//! artifact. Scale comes from the usual `SARN_*` knobs.

use std::time::{Duration, Instant};

use sarn_bench::{ExperimentScale, Table};
use sarn_core::{SpatialJoin, SpatialSimilarity, SpatialSimilarityConfig};
use sarn_geo::Point;
use sarn_pipeline::{
    EditBatch, LiveNetwork, NetworkEdit, Pipeline, PipelineConfig, PipelineFault, PipelineFaultKind,
};
use sarn_roadnet::{City, HighwayClass};
use sarn_serve::{ServeConfig, ServeState};

/// Breach: report and fail the CI step.
fn fail(msg: &str) -> ! {
    eprintln!("[pipeline_smoke] FAIL: {msg}");
    std::process::exit(1);
}

fn ensure(cond: bool, msg: &str) {
    if !cond {
        fail(msg);
    }
}

/// Which legs to run (`SARN_PIPELINE_SMOKE_LEGS`, comma list; unknown
/// names are ignored, empty/unset means all).
fn leg_enabled(name: &str) -> bool {
    match std::env::var("SARN_PIPELINE_SMOKE_LEGS") {
        Ok(v) if !v.trim().is_empty() => v.split(',').any(|l| l.trim() == name),
        _ => true,
    }
}

/// Process peak RSS in MB, or a dash where procfs is unavailable.
fn peak_rss_mb() -> String {
    match sarn_obs::peak_rss_bytes() {
        Some(bytes) => format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
        None => "-".to_string(),
    }
}

/// Batch `k` (1-based): two adds hanging off existing geometry, one
/// removal, one reclass — every edit kind, deterministic anchors.
fn mixed_batch(live: &LiveNetwork, k: u64) -> EditBatch {
    let n = live.network().num_segments();
    let add = |key: u64, anchor: usize, dlat: f64, dlon: f64| {
        let s = live.network().segment(anchor);
        NetworkEdit::SegmentAdd {
            key,
            class: HighwayClass::Tertiary,
            start: s.end,
            end: Point {
                lat: s.end.lat + dlat,
                lon: s.end.lon + dlon,
            },
            in_neighbors: vec![live.key_of(anchor)],
            out_neighbors: vec![],
        }
    };
    EditBatch::new(vec![
        add(50_000 + 2 * k, (7 * k as usize + 3) % n, 4e-4, -2e-4),
        add(50_001 + 2 * k, (11 * k as usize + 19) % n, -3e-4, 3e-4),
        NetworkEdit::SegmentRemove {
            key: live.key_of((5 * k as usize + 31) % n),
        },
        NetworkEdit::ReclassSegment {
            key: live.key_of((3 * k as usize + 17) % n),
            class: HighwayClass::Primary,
        },
    ])
}

fn grid_cfg(sim: &SpatialSimilarityConfig) -> SpatialSimilarityConfig {
    SpatialSimilarityConfig {
        join: SpatialJoin::Grid,
        ..*sim
    }
}

fn fault_smoke(scale: &ExperimentScale) {
    let net = scale.network(City::Chengdu);
    let state_dir =
        std::env::temp_dir().join(format!("sarn_pipeline_smoke_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    let mut train = scale.sarn_config_for(&net, 1);
    train.checkpoint_every = 1;
    train.checkpoint_dir = Some(state_dir.join("ckpt"));
    let serve = ServeConfig {
        max_staleness: Some(Duration::from_secs(600)),
        reload_backoff: Duration::from_millis(1),
        ..ServeConfig::from_env().expect("SARN_SERVE_* knobs")
    };
    let mut cfg = PipelineConfig::new(train, serve, &state_dir);
    cfg.stage_backoff = Duration::from_millis(1);
    // One fault in every stage of the loop, spread across the batches.
    let faults = [
        (1, PipelineFaultKind::CorruptEditRecord),
        (1, PipelineFaultKind::TornExport),
        (2, PipelineFaultKind::ReloadIoFault),
        (3, PipelineFaultKind::DivergingRetrain),
        (4, PipelineFaultKind::MidRepairCrash),
    ];
    cfg.faults = faults
        .iter()
        .map(|&(batch, kind)| PipelineFault { batch, kind })
        .collect();
    let sim = cfg.train.similarity;

    eprintln!(
        "[pipeline_smoke] bootstrapping over {} segments, {} faults scheduled",
        net.num_segments(),
        faults.len()
    );
    let mut p = match Pipeline::new(cfg, net) {
        Ok(p) => p,
        Err(e) => fail(&format!("bootstrap failed: {e}")),
    };

    let mut table = Table::new(
        "pipeline_smoke",
        &["batch", "faults", "generation", "fallback", "health"],
    );
    for k in 1..=4u64 {
        let bytes = mixed_batch(p.live(), k).encode();
        let report = match p.process_batch(&bytes) {
            Ok(r) => r,
            Err(e) => fail(&format!("batch {k} was not absorbed: {e}")),
        };
        ensure(report.generation == k + 1, "generation did not advance");
        let store = p
            .front()
            .store()
            .unwrap_or_else(|| fail("no store after batch"));
        ensure(
            store.num_segments() == p.live().network().num_segments(),
            "serve geometry lags the edited network",
        );
        let row = store
            .embedding(0, store.deadline())
            .unwrap_or_else(|e| fail(&format!("probe query failed: {e}")));
        ensure(row.len() == store.dim(), "torn row width served");
        ensure(row.iter().all(|v| v.is_finite()), "non-finite value served");
        let health = store.health();
        ensure(
            matches!(health.state, ServeState::Serving { .. }),
            &format!("unhealthy after batch {k}: {health}"),
        );
        let labels: Vec<&str> = faults
            .iter()
            .filter(|&&(b, _)| b == k)
            .map(|&(_, kind)| kind.label())
            .collect();
        table.row(vec![
            k.to_string(),
            if labels.is_empty() {
                "-".to_string()
            } else {
                labels.join("+")
            },
            report.generation.to_string(),
            report.used_fallback.to_string(),
            format!("{:?}", health.state),
        ]);
    }

    // After all the sabotage, the incremental A^s must still equal a
    // from-scratch grid join bit for bit.
    let rebuilt = SpatialSimilarity::build(p.live().network(), &grid_cfg(&sim));
    ensure(
        p.live().spatial_edges() == rebuilt.edges(),
        "incremental A^s diverged from the full rebuild",
    );
    table.print();
    let _ = std::fs::remove_dir_all(&state_dir);
}

fn repair_bench(scale: &ExperimentScale) {
    let net = scale.network(City::Chengdu);
    let sim = grid_cfg(&scale.sarn_config_for(&net, 1).similarity);
    let n0 = net.num_segments();
    const BATCHES: u64 = 16;

    eprintln!("[pipeline_smoke] incremental repair over {n0} segments, {BATCHES} batches");
    let mut live = LiveNetwork::new(net, &sim);
    let mut edits = 0usize;
    let t0 = Instant::now();
    for k in 1..=BATCHES {
        let batch = mixed_batch(&live, k);
        edits += batch.edits.len();
        if let Err(e) = live.apply(&batch) {
            fail(&format!("repair batch {k} rejected: {e}"));
        }
    }
    let incremental_ms = t0.elapsed().as_secs_f64() * 1e3;
    let incremental_rss = peak_rss_mb();

    let t1 = Instant::now();
    let rebuilt = SpatialSimilarity::build(live.network(), &sim);
    let rebuild_ms = t1.elapsed().as_secs_f64() * 1e3;
    ensure(
        live.spatial_edges() == rebuilt.edges(),
        "incremental A^s diverged from the full rebuild",
    );

    // `build_ms` totals all BATCHES batches for the incremental mode but
    // a single from-scratch join for the rebuild mode; `ms_per_batch` is
    // the apples-to-apples cost of keeping A^s current after one batch
    // under each strategy.
    let mut table = Table::new(
        "incremental_repair",
        &[
            "mode",
            "segments",
            "edits",
            "build_ms",
            "ms_per_batch",
            "peak_rss_mb",
        ],
    );
    table.row(vec![
        "incremental".to_string(),
        live.network().num_segments().to_string(),
        edits.to_string(),
        format!("{incremental_ms:.2}"),
        format!("{:.2}", incremental_ms / BATCHES as f64),
        incremental_rss,
    ]);
    table.row(vec![
        "full_rebuild".to_string(),
        live.network().num_segments().to_string(),
        edits.to_string(),
        format!("{rebuild_ms:.2}"),
        format!("{rebuild_ms:.2}"),
        peak_rss_mb(),
    ]);
    table.print();
}

fn main() {
    let scale = ExperimentScale::from_env();
    if leg_enabled("faults") {
        fault_smoke(&scale);
    }
    if leg_enabled("repair") {
        repair_bench(&scale);
    }
    eprintln!("[pipeline_smoke] ok");
}
