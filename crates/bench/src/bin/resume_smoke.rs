//! End-to-end checkpoint/resume smoke check for CI.
//!
//! Drives the harness exactly the way an interrupted table run would:
//! trains the first half of a run with periodic checkpointing (the
//! annealing horizon pinned to the full budget, as every restartable run
//! should), then finishes it with `resume_auto` from the checkpoint
//! directory, and compares against a straight uninterrupted run. Exits
//! non-zero unless the resumed run is bitwise-identical and checkpoint
//! files actually appeared. Scale comes from the usual `SARN_*`
//! environment knobs; `SARN_CKPT_DIR` must be set.

use sarn_bench::ExperimentScale;
use sarn_core::{checkpoint, train};
use sarn_roadnet::City;

fn main() {
    let scale = ExperimentScale::from_env();
    let dir = scale
        .ckpt_dir
        .clone()
        .expect("resume_smoke needs SARN_CKPT_DIR");
    let net = scale.network(City::Chengdu);

    let mut full = scale.sarn_config_for(&net, 1);
    full.schedule_epochs = full.max_epochs;
    let halfway = (full.max_epochs / 2).max(1);

    let mut interrupted = full.clone();
    interrupted.max_epochs = halfway;
    eprintln!(
        "[resume_smoke] leg 1: {halfway} of {} epochs",
        full.max_epochs
    );
    let leg1 = train(&net, &interrupted);
    assert_eq!(leg1.epochs_run, halfway);
    let saved = checkpoint::list_checkpoints(&dir, Some(full.fingerprint()));
    assert!(
        !saved.is_empty(),
        "no checkpoints appeared in {dir:?} — is SARN_CKPT_EVERY > {halfway}?"
    );

    let mut resuming = full.clone();
    resuming.resume_auto = true;
    eprintln!(
        "[resume_smoke] leg 2: resuming from {:?}",
        saved.last().unwrap().1
    );
    let resumed = train(&net, &resuming);

    let mut straight_cfg = full.clone();
    straight_cfg.checkpoint_every = 0;
    straight_cfg.checkpoint_dir = None;
    eprintln!(
        "[resume_smoke] reference: {} epochs straight",
        full.max_epochs
    );
    let straight = train(&net, &straight_cfg);

    assert_eq!(
        straight.loss_history, resumed.loss_history,
        "resumed loss history differs from the uninterrupted run"
    );
    assert_eq!(
        straight.embeddings.data(),
        resumed.embeddings.data(),
        "resumed embeddings differ from the uninterrupted run"
    );
    println!(
        "resume_smoke OK: {} epochs ({} + {} resumed) bitwise-identical, {} checkpoint file(s) retained",
        straight.epochs_run,
        halfway,
        resumed.epochs_run - halfway,
        checkpoint::list_checkpoints(&dir, Some(full.fingerprint())).len()
    );
}
