//! Sharded-router chaos smoke + latency benchmark, for CI (DESIGN.md §15).
//!
//! Four legs, all exiting non-zero on any contract breach or panic:
//!
//! 1. **Identity** — a healthy [`Router`] over a geo-partitioned
//!    [`ShardedStore`] must answer exact and approximate k-NN bitwise
//!    identically to one combined [`EmbeddingStore`], at 1 and at 4
//!    concurrent reader threads.
//! 2. **Chaos** — kill K of N shards with sticky injected faults while a
//!    4-thread query storm runs against per-shard generation churn. The
//!    router must never panic or serve a torn row: every answer is
//!    full-coverage, typed-partial, or a typed `PartialCoverage` shed.
//!    Clearing the faults must recover to full coverage through the
//!    breakers' probed half-open path.
//! 3. **Hedge** — p50/p99 of routed k-NN with a per-query injected slow
//!    shard, hedging off vs on. The hedged tail must beat the unhedged
//!    tail (the slow primary is cancelled by a duplicate on a healthy
//!    generation) and at least one hedge must actually fire.
//! 4. **Batch** — `knn_batch` must match per-query `knn` answers exactly
//!    while amortizing admission and deadline checks.
//!
//! Emits machine-readable rows through the bench report machinery: run
//! with `SARN_REPORT_JSONL=BENCH_9.json` to produce the committed CI
//! artifact, with the process peak-RSS high-water mark on every row.
//! Scale comes from the usual `SARN_*` knobs; router knobs from
//! `SARN_SERVE_*`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use sarn_bench::{ExperimentScale, Table};
use sarn_roadnet::{City, RoadNetwork};
use sarn_serve::{
    BreakerConfig, BreakerState, Deadline, EmbeddingStore, Router, RouterConfig, ServeConfig,
    ServeError, ShardFault, ShardedStore,
};
use sarn_tensor::Tensor;

/// Embedding width for the synthetic artifact (no training run: the
/// router contract is independent of how the rows were produced).
const DIM: usize = 32;
/// Queries per thread in the storm legs.
const STORM_QUERIES: usize = 200;
/// Identity probes are capped so huge `SARN_SCALE` settings stay cheap.
const MAX_IDENTITY_PROBES: usize = 512;

fn fail(msg: &str) -> ! {
    eprintln!("[router_chaos_smoke] FAIL: {msg}");
    std::process::exit(1);
}

fn ensure(cond: bool, msg: &str) {
    if !cond {
        fail(msg);
    }
}

/// Process peak RSS in MB, or a dash where procfs is unavailable.
fn peak_rss_mb() -> String {
    match sarn_obs::peak_rss_bytes() {
        Some(bytes) => format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
        None => "-".to_string(),
    }
}

/// Deterministic, row-distinguishable, finite embeddings; `salt` varies
/// the generation so churned admits actually change rows.
fn synthetic_embeddings(n: usize, salt: u32) -> Tensor {
    let data = (0..n * DIM)
        .map(|p| {
            let (r, c) = (p / DIM, p % DIM);
            let h = (r * 31 + c * 7 + salt as usize * 13) % 97;
            0.1 + h as f32 / 97.0
        })
        .collect();
    Tensor::from_vec(n, DIM, data)
}

fn serve_cfg() -> ServeConfig {
    ServeConfig::from_env().unwrap_or_else(|e| fail(&format!("bad serve knob: {e}")))
}

fn build_router(net: &RoadNetwork, rcfg: RouterConfig) -> Router {
    let sharded = ShardedStore::for_network(net, DIM, serve_cfg(), rcfg.num_shards)
        .unwrap_or_else(|e| fail(&format!("building sharded store: {e}")));
    ensure(
        sharded.num_shards() > 1,
        "geo partition collapsed to one shard; the smoke needs a real fan-out",
    );
    sharded
        .admit(&synthetic_embeddings(net.num_segments(), 0))
        .unwrap_or_else(|e| fail(&format!("admitting generation 1: {e}")));
    Router::new(sharded, rcfg)
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Leg 1: bitwise identity against the combined store at 1 and 4 readers.
fn identity_leg(net: &RoadNetwork, rcfg: &RouterConfig, table: &mut Table) {
    let n = net.num_segments();
    let router = build_router(
        net,
        RouterConfig {
            hedge: false,
            ..*rcfg
        },
    );
    let single = EmbeddingStore::for_network(net, DIM, serve_cfg())
        .unwrap_or_else(|e| fail(&format!("building combined store: {e}")));
    single
        .admit(synthetic_embeddings(n, 0))
        .unwrap_or_else(|e| fail(&format!("admitting combined store: {e}")));

    let stride = n.div_ceil(MAX_IDENTITY_PROBES).max(1);
    for threads in [1usize, 4] {
        let checked = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..threads {
                let (router, single, checked) = (&router, &single, &checked);
                s.spawn(move || {
                    for segment in (0..n).step_by(stride).skip(t).step_by(threads.max(1)) {
                        for k in [1usize, 10] {
                            let ours = router
                                .knn(segment, k, Deadline::unbounded())
                                .unwrap_or_else(|e| fail(&format!("routed knn: {e}")));
                            ensure(ours.coverage.complete(), "healthy fan-out lost coverage");
                            let theirs = single
                                .knn(segment, k, Deadline::unbounded())
                                .unwrap_or_else(|e| fail(&format!("combined knn: {e}")));
                            ensure(
                                ours.neighbors.len() == theirs.neighbors.len(),
                                "routed k-NN width diverged from the combined store",
                            );
                            for (a, b) in ours.neighbors.iter().zip(&theirs.neighbors) {
                                ensure(
                                    a.0 == b.0 && a.1.to_bits() == b.1.to_bits(),
                                    "routed k-NN diverged bitwise from the combined store",
                                );
                            }
                        }
                        let ours = router
                            .knn_approx(segment, 5, Deadline::unbounded())
                            .unwrap_or_else(|e| fail(&format!("routed approx: {e}")));
                        let theirs = single
                            .knn_approx(segment, 5, Deadline::unbounded())
                            .unwrap_or_else(|e| fail(&format!("combined approx: {e}")));
                        let same = ours.neighbors.len() == theirs.neighbors.len()
                            && ours
                                .neighbors
                                .iter()
                                .zip(&theirs.neighbors)
                                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
                        ensure(
                            same,
                            "routed approx diverged bitwise from the combined store",
                        );
                        checked.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        table.row(vec![
            "identity".to_string(),
            format!("threads={threads}"),
            checked.load(Ordering::Relaxed).to_string(),
            "bitwise==combined".to_string(),
            "-".to_string(),
            "-".to_string(),
            peak_rss_mb(),
        ]);
    }
}

/// Leg 2: kill K of N shards under churn, then recover.
fn chaos_leg(net: &RoadNetwork, rcfg: &RouterConfig, table: &mut Table) {
    let n = net.num_segments();
    let router = build_router(
        net,
        RouterConfig {
            hedge: false,
            shard_retries: 1,
            shard_backoff: Duration::from_millis(1),
            breaker: BreakerConfig {
                failure_threshold: 3,
                open_cooldown: Duration::from_millis(10),
            },
            ..*rcfg
        },
    );
    let shards = router.sharded().num_shards();
    let kill = (shards / 2).max(1);
    for victim in 0..kill {
        router.inject_shard_fault(
            victim,
            Some(ShardFault {
                fail_queries: 1,
                sticky: true,
                ..ShardFault::default()
            }),
        );
    }
    eprintln!("[router_chaos_smoke] chaos: killing {kill}/{shards} shards under churn");

    let ok = AtomicU64::new(0);
    let partial = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let churned = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Churn thread: per-shard generation swaps while the storm runs.
        // `admit_changed` flips only the shards whose rows differ, so
        // readers race real pointer swaps, not a quiesced store.
        s.spawn(|| {
            for round in 1..=8u32 {
                let next = synthetic_embeddings(n, round % 2);
                if router.sharded().admit_changed(&next).is_ok() {
                    churned.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        for t in 0..4usize {
            let (ok, partial, shed) = (&ok, &partial, &shed);
            let router = &router;
            s.spawn(move || {
                for i in 0..STORM_QUERIES {
                    let segment = (i * 4 + t) % n;
                    match router.knn(segment, 5, Deadline::unbounded()) {
                        Ok(answer) => {
                            // Torn-generation detector: merged rows must
                            // be finite, in range, and every answered
                            // shard must report a published generation.
                            for &(id, score) in &answer.neighbors {
                                ensure(id < n && score.is_finite(), "torn answer served");
                            }
                            for sc in &answer.coverage.shards {
                                if sc.generation == Some(0) {
                                    fail("answered shard reported an unpublished generation");
                                }
                            }
                            if answer.coverage.complete() {
                                ok.fetch_add(1, Ordering::Relaxed);
                            } else {
                                partial.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(ServeError::PartialCoverage { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => fail(&format!("untyped chaos failure: {e}")),
                    }
                }
            });
        }
    });
    let (ok_n, partial_n, shed_n) = (
        ok.load(Ordering::Relaxed),
        partial.load(Ordering::Relaxed),
        shed.load(Ordering::Relaxed),
    );
    ensure(
        churned.load(Ordering::Relaxed) > 0,
        "churn thread never swapped a generation",
    );
    ensure(
        partial_n + shed_n > 0,
        "killing shards produced no degradation at all: faults did not land",
    );
    table.row(vec![
        "chaos".to_string(),
        format!("kill {kill}/{shards}"),
        (4 * STORM_QUERIES).to_string(),
        format!("ok={ok_n} partial={partial_n} shed={shed_n}"),
        "-".to_string(),
        "-".to_string(),
        peak_rss_mb(),
    ]);

    // Recovery: clear the faults and let the breakers probe half-open.
    for victim in 0..kill {
        router.inject_shard_fault(victim, None);
    }
    let t0 = Instant::now();
    let recovered = loop {
        std::thread::sleep(Duration::from_millis(5));
        let answer = router
            .knn(0, 5, Deadline::unbounded())
            .unwrap_or_else(|e| fail(&format!("query during recovery: {e}")));
        if answer.coverage.complete()
            && (0..shards).all(|i| router.breaker_state(i) == BreakerState::Closed)
        {
            break t0.elapsed();
        }
        if t0.elapsed() > Duration::from_secs(10) {
            fail("router did not recover to full coverage within 10s of faults clearing");
        }
    };
    table.row(vec![
        "chaos".to_string(),
        "recovered".to_string(),
        "-".to_string(),
        format!("full coverage in {:.0} ms", recovered.as_secs_f64() * 1e3),
        "-".to_string(),
        "-".to_string(),
        peak_rss_mb(),
    ]);
}

/// Leg 3: hedged vs unhedged tail latency against a slow shard.
fn hedge_leg(net: &RoadNetwork, rcfg: &RouterConfig, table: &mut Table) {
    let n = net.num_segments();
    let delay_ms = 25u64;
    let mut tails = Vec::new();
    for hedge in [false, true] {
        let router = build_router(
            net,
            RouterConfig {
                hedge,
                hedge_factor: 2.0,
                ..*rcfg
            },
        );
        let slow = router.sharded().num_shards() - 1;
        // Warm the per-shard p99 estimators so hedging can arm.
        for i in 0..64 {
            router
                .knn(i % n, 5, Deadline::unbounded())
                .unwrap_or_else(|e| fail(&format!("warmup query: {e}")));
        }
        let mut samples = Vec::with_capacity(STORM_QUERIES);
        for i in 0..STORM_QUERIES {
            // One delayed attempt per query: the primary leg on `slow`
            // stalls, the retry (or the hedge) lands on a clean slot.
            router.inject_shard_fault(
                slow,
                Some(ShardFault {
                    delay_ms,
                    delay_queries: 1,
                    ..ShardFault::default()
                }),
            );
            let t0 = Instant::now();
            let answer = router
                .knn(i % n, 5, Deadline::unbounded())
                .unwrap_or_else(|e| fail(&format!("hedge-leg query: {e}")));
            samples.push(t0.elapsed());
            ensure(answer.coverage.complete(), "slow shard cost coverage");
        }
        samples.sort();
        let (p50, p99) = (percentile(&samples, 0.50), percentile(&samples, 0.99));
        if hedge {
            ensure(
                router.hedges_fired() > 0,
                "hedging on but no hedge ever fired",
            );
        }
        tails.push(p99);
        table.row(vec![
            "hedge".to_string(),
            format!(
                "hedge={} slow_shard={delay_ms}ms",
                if hedge { "on" } else { "off" }
            ),
            STORM_QUERIES.to_string(),
            format!("hedges={}", router.hedges_fired()),
            format!("{:.0}", p50.as_secs_f64() * 1e6),
            format!("{:.0}", p99.as_secs_f64() * 1e6),
            peak_rss_mb(),
        ]);
    }
    ensure(
        tails[1] < tails[0],
        "hedged p99 did not beat the unhedged p99 against a slow shard",
    );
}

/// Leg 4: batched queries match per-query answers.
fn batch_leg(net: &RoadNetwork, rcfg: &RouterConfig, table: &mut Table) {
    let n = net.num_segments();
    let router = build_router(
        net,
        RouterConfig {
            hedge: false,
            ..*rcfg
        },
    );
    let ids: Vec<usize> = (0..STORM_QUERIES.min(n)).collect();
    let t0 = Instant::now();
    let batched = router
        .knn_batch(&ids, 5, Deadline::unbounded())
        .unwrap_or_else(|e| fail(&format!("knn_batch: {e}")));
    let batch_elapsed = t0.elapsed();
    let t1 = Instant::now();
    for (i, &segment) in ids.iter().enumerate() {
        let single = router
            .knn(segment, 5, Deadline::unbounded())
            .unwrap_or_else(|e| fail(&format!("per-query knn: {e}")));
        let b = match &batched[i] {
            Ok(b) => b,
            Err(e) => fail(&format!("batched slot {i} failed on a healthy router: {e}")),
        };
        let same = b.neighbors.len() == single.neighbors.len()
            && b.neighbors
                .iter()
                .zip(&single.neighbors)
                .all(|(x, y)| x.0 == y.0 && x.1.to_bits() == y.1.to_bits());
        ensure(same, "knn_batch diverged from per-query knn");
    }
    let single_elapsed = t1.elapsed();
    let per = |d: Duration| format!("{:.0}", d.as_secs_f64() * 1e6 / ids.len() as f64);
    table.row(vec![
        "batch".to_string(),
        format!("batch_of_{}", ids.len()),
        ids.len().to_string(),
        "bitwise==per-query".to_string(),
        per(batch_elapsed),
        per(single_elapsed),
        peak_rss_mb(),
    ]);
}

fn main() {
    let scale = ExperimentScale::from_env();
    let net = scale.network(City::Chengdu);
    let rcfg = RouterConfig::from_env().unwrap_or_else(|e| fail(&format!("bad router knob: {e}")));
    eprintln!(
        "[router_chaos_smoke] {} segments, {} shards requested",
        net.num_segments(),
        rcfg.num_shards
    );
    let mut table = Table::new(
        "router_chaos_smoke",
        &[
            "leg",
            "config",
            "queries",
            "outcome",
            "p50_us",
            "p99_us",
            "peak_rss_mb",
        ],
    );
    identity_leg(&net, &rcfg, &mut table);
    chaos_leg(&net, &rcfg, &mut table);
    hedge_leg(&net, &rcfg, &mut table);
    batch_leg(&net, &rcfg, &mut table);
    table.print();
    eprintln!("[router_chaos_smoke] ok");
}
