//! End-to-end fault-injection smoke check of the embedding serving
//! subsystem, for CI.
//!
//! Trains a small SARN run, publishes its embedding artifact through an
//! [`sarn_serve::EmbeddingStore`], then attacks the serving contract the
//! way production would:
//!
//! 1. **Corrupt reload** — garbage and truncated artifacts, plus injected
//!    failing I/O, must each surface as typed errors while the
//!    last-known-good generation keeps answering bit-identically and the
//!    health report turns degraded. A transient injected fault within the
//!    retry budget must be outlasted.
//! 2. **Good reload** — a fresh artifact must flip queries atomically to
//!    the new generation and clear the degradation.
//! 3. **Overload burst** — saturating the admission budget must shed with
//!    `ServeError::Overloaded`; pressure between the degrade threshold
//!    and the ceiling must downgrade exact k-NN to the grid-approximate
//!    path, visibly.
//!
//! Prints lookup / exact-k-NN / approximate-k-NN latency numbers for
//! EXPERIMENTS.md. Honors the `SARN_*` training knobs and the
//! `SARN_SERVE_*` serving knobs. Exits non-zero on any contract breach or
//! panic.

use std::time::{Duration, Instant};

use sarn_bench::ExperimentScale;
use sarn_core::train;
use sarn_roadnet::City;
use sarn_serve::{Deadline, EmbeddingStore, LoadFault, ServeConfig, ServeError, ServeState};
use sarn_tensor::IoError;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn time_queries(label: &str, mut run: impl FnMut(usize)) -> (Duration, Duration) {
    const REPS: usize = 200;
    let mut samples = Vec::with_capacity(REPS);
    for i in 0..REPS {
        let t0 = Instant::now();
        run(i);
        samples.push(t0.elapsed());
    }
    samples.sort();
    let (p50, p99) = (percentile(&samples, 0.50), percentile(&samples, 0.99));
    println!(
        "[serve_smoke] {label}: p50 {:.1} us, p99 {:.1} us",
        p50.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6
    );
    (p50, p99)
}

fn main() {
    let scale = ExperimentScale::from_env();
    let net = scale.network(City::Chengdu);
    let cfg = scale.sarn_config_for(&net, 1);
    eprintln!(
        "[serve_smoke] training {} segments at d={} for the artifact",
        net.num_segments(),
        cfg.d
    );
    let trained = train(&net, &cfg);

    let dir = std::env::temp_dir().join(format!("sarn_serve_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("creating the artifact directory");
    let path = dir.join("embeddings.emb");
    trained.embeddings.save(&path).expect("saving the artifact");

    let serve_cfg = ServeConfig::from_env().expect("SARN_SERVE_* knobs");
    let store = EmbeddingStore::for_network(&net, cfg.d, serve_cfg).expect("building the store");
    assert_eq!(store.health().state, ServeState::Loading);

    // Leg 1: first reload publishes generation 1.
    assert_eq!(store.reload(&path).expect("initial reload"), 1);
    let probe = net.num_segments() / 2;
    let baseline_emb = store
        .embedding(probe, Deadline::unbounded())
        .expect("baseline lookup");
    let baseline_knn = store
        .knn(probe, 10, Deadline::unbounded())
        .expect("baseline knn");
    assert!(!baseline_knn.degraded);
    assert_eq!(baseline_knn.generation, 1);

    // Leg 2: corrupt swaps. Garbage, truncation, and injected I/O faults
    // must each fail typed while generation 1 keeps answering.
    eprintln!("[serve_smoke] leg 2: corrupt-swap storm");
    let good_bytes = std::fs::read(&path).expect("reading the good artifact");
    std::fs::write(&path, b"garbage artifact").expect("corrupting");
    match store.reload(&path) {
        Err(ServeError::Load(IoError::BadMagic { .. })) => {}
        other => panic!("garbage reload: expected BadMagic, got {other:?}"),
    }
    std::fs::write(&path, &good_bytes[..good_bytes.len() / 3]).expect("truncating");
    match store.reload(&path) {
        Err(ServeError::Load(IoError::Truncated { .. })) => {}
        other => panic!("truncated reload: expected Truncated, got {other:?}"),
    }
    let health = store.health();
    assert!(
        matches!(health.state, ServeState::Degraded { generation: 1, .. }),
        "expected degraded health, got {health}"
    );
    assert_eq!(health.consecutive_reload_failures, 2);
    assert_eq!(
        store
            .embedding(probe, Deadline::unbounded())
            .expect("stale lookup"),
        baseline_emb,
        "corrupt reload changed served embeddings"
    );
    assert_eq!(
        store
            .knn(probe, 10, Deadline::unbounded())
            .expect("stale knn"),
        baseline_knn,
        "corrupt reload changed served neighbors"
    );

    // Restore the artifact but inject a transient I/O fault: bounded
    // retry must outlast it.
    std::fs::write(&path, &good_bytes).expect("restoring the artifact");
    let transient = serve_cfg.reload_retries.min(2) as u32;
    store.inject_fault(Some(LoadFault {
        fail_loads: transient,
        delay_ms: 1,
    }));
    let gen2 = store
        .reload(&path)
        .expect("transient injected fault must be outlasted by retry");
    assert_eq!(gen2, 2);
    store.inject_fault(None);

    // Leg 3: a genuinely new artifact flips the answers.
    eprintln!("[serve_smoke] leg 3: good reload flips generations");
    let mut shifted = trained.embeddings.clone();
    for v in shifted.data_mut() {
        *v += 0.25;
    }
    shifted.save(&path).expect("saving the shifted artifact");
    let gen3 = store.reload(&path).expect("good reload");
    assert_eq!(gen3, 3);
    let flipped = store
        .embedding(probe, Deadline::unbounded())
        .expect("flipped lookup");
    assert!(
        flipped
            .iter()
            .zip(&baseline_emb)
            .all(|(new, old)| (new - old - 0.25).abs() < 1e-6),
        "good reload did not atomically publish the new values"
    );
    assert_eq!(store.health().state, ServeState::Serving { generation: 3 });

    // Leg 4: overload burst. Saturate the budget -> typed shed; partial
    // pressure -> exact k-NN degrades to the grid path.
    eprintln!(
        "[serve_smoke] leg 4: overload burst at max_inflight={}",
        serve_cfg.max_inflight
    );
    let full: Vec<_> = (0..serve_cfg.max_inflight)
        .map(|i| {
            store
                .try_ticket()
                .unwrap_or_else(|e| panic!("ticket {i}: {e}"))
        })
        .collect();
    match store.knn(probe, 10, Deadline::unbounded()) {
        Err(ServeError::Overloaded { .. }) => {}
        other => panic!("saturated store: expected Overloaded, got {other:?}"),
    }
    assert!(matches!(store.health().state, ServeState::Shedding { .. }));
    drop(full);
    if serve_cfg.degrade_inflight > 0 && serve_cfg.degrade_inflight < serve_cfg.max_inflight {
        let pressure: Vec<_> = (0..serve_cfg.degrade_inflight)
            .map(|i| {
                store
                    .try_ticket()
                    .unwrap_or_else(|e| panic!("pressure ticket {i}: {e}"))
            })
            .collect();
        let degraded = store
            .knn(probe, 10, Deadline::unbounded())
            .expect("degraded knn under pressure");
        assert!(
            degraded.degraded,
            "pressure between thresholds must degrade exact k-NN"
        );
        drop(pressure);
    }
    let recovered = store
        .knn(probe, 10, Deadline::unbounded())
        .expect("exact knn after the burst");
    assert!(!recovered.degraded);

    // Leg 5: deadlines are typed, not best-effort.
    match store.knn(probe, 10, Deadline::within(Duration::ZERO)) {
        Err(ServeError::DeadlineExceeded { .. }) => {}
        other => panic!("zero deadline: expected DeadlineExceeded, got {other:?}"),
    }

    // Latency numbers (single-threaded, against the live store).
    let n = net.num_segments();
    println!("[serve_smoke] latency over n={} segments, d={}:", n, cfg.d);
    time_queries("embedding lookup", |i| {
        store
            .embedding(i % n, Deadline::unbounded())
            .expect("lookup");
    });
    time_queries("exact knn (k=10)", |i| {
        store.knn(i % n, 10, Deadline::unbounded()).expect("knn");
    });
    time_queries("approx knn (k=10)", |i| {
        store
            .knn_approx(i % n, 10, Deadline::unbounded())
            .expect("approx knn");
    });

    let health = store.health();
    println!(
        "serve_smoke OK: {} served, {} shed, {} degraded, {} good / {} failed reloads, final state {:?}",
        health.served_total,
        health.shed_total,
        health.degraded_total,
        health.reloads_ok,
        health.reloads_failed,
        health.state
    );
    std::fs::remove_dir_all(&dir).ok();
}
