//! Table 3: road network dataset statistics (segments, `A^t` edges,
//! `A^s` edges, area).

use sarn_bench::{ExperimentScale, Table};
use sarn_core::{SpatialSimilarity, SpatialSimilarityConfig};
use sarn_roadnet::City;

fn main() {
    let scale = ExperimentScale::from_env();
    let mut table = Table::new(
        format!(
            "Table 3: Road Network Datasets (net_scale={})",
            scale.net_scale
        ),
        &["", "CD", "BJ", "SF"],
    );
    let cities = [City::Chengdu, City::Beijing, City::SanFrancisco];
    let nets: Vec<_> = cities.iter().map(|&c| scale.network(c)).collect();
    let stats: Vec<_> = nets.iter().map(|n| n.stats()).collect();
    let sims: Vec<_> = nets
        .iter()
        .map(|n| SpatialSimilarity::build(n, &SpatialSimilarityConfig::default()))
        .collect();

    table.row(
        std::iter::once("Number of road segments".to_string())
            .chain(stats.iter().map(|s| s.num_segments.to_string()))
            .collect(),
    );
    table.row(
        std::iter::once("Number of edges in A^t".to_string())
            .chain(stats.iter().map(|s| s.num_topo_edges.to_string()))
            .collect(),
    );
    table.row(
        std::iter::once("Number of edges in A^s".to_string())
            .chain(sims.iter().map(|s| s.num_edges().to_string()))
            .collect(),
    );
    table.row(
        std::iter::once("Area (km^2)".to_string())
            .chain(
                stats
                    .iter()
                    .map(|s| format!("{:.2} x {:.2}", s.width_km, s.height_km)),
            )
            .collect(),
    );
    table.row(
        std::iter::once("Mean segment length (m)".to_string())
            .chain(stats.iter().map(|s| format!("{:.1}", s.mean_segment_len_m)))
            .collect(),
    );
    table.print();
    println!(
        "Paper (full scale): CD 29,593 / 50,325 / 48,002; BJ 36,809 / 66,598 / 63,875; \
         SF 37,284 / 60,410 / 59,606."
    );
}
