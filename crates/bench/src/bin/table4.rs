//! Table 4: road property (speed limit) prediction — F1 and AUC for every
//! method on CD / BJ / SF.

use sarn_bench::{eval_road_property, fmt_cell, ExperimentScale, Method, Table};
use sarn_roadnet::City;

fn main() {
    let scale = ExperimentScale::from_env();
    let cities = [City::Chengdu, City::Beijing, City::SanFrancisco];
    let nets: Vec<_> = cities.iter().map(|&c| scale.network(c)).collect();

    let mut methods = Method::self_supervised();
    methods.extend([Method::SarnStar, Method::Hrnr, Method::Rne]);

    let mut table = Table::new(
        format!(
            "Table 4: Road Property Prediction (F1% / AUC%), {} seed(s)",
            scale.seeds
        ),
        &[
            "Method", "CD F1", "CD AUC", "BJ F1", "BJ AUC", "SF F1", "SF AUC",
        ],
    );
    for method in methods {
        let mut cells = vec![method.label()];
        for net in &nets {
            let mut f1s = Vec::new();
            let mut aucs = Vec::new();
            for s in 0..scale.seeds {
                match eval_road_property(method, net, &scale, s as u64 + 1) {
                    Ok(r) => {
                        f1s.push(r.f1_pct);
                        aucs.push(r.auc_pct);
                    }
                    Err(e) => {
                        eprintln!("{}: {e}", method.label());
                    }
                }
            }
            if f1s.is_empty() {
                cells.push("OOM".into());
                cells.push("OOM".into());
            } else {
                cells.push(fmt_cell(&f1s));
                cells.push(fmt_cell(&aucs));
            }
        }
        table.row(cells);
        eprintln!("[table4] {} done", method.label());
    }
    table.print();
}
