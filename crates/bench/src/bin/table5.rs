//! Table 5: trajectory similarity prediction — HR@5, HR@20, R5@20 for
//! every method on CD / BJ / SF.

use sarn_bench::{eval_traj_sim, fmt_cell, ExperimentScale, Method, Table};
use sarn_roadnet::City;

fn main() {
    let scale = ExperimentScale::from_env();
    let cities = [City::Chengdu, City::Beijing, City::SanFrancisco];

    let mut methods = Method::self_supervised();
    methods.extend([Method::SarnStar, Method::Hrnr, Method::Neutraj, Method::Rne]);

    let mut table = Table::new(
        format!(
            "Table 5: Trajectory Similarity Prediction (HR@5 / HR@20 / R5@20, %), {} seed(s)",
            scale.seeds
        ),
        &[
            "Method", "CD HR@5", "CD HR@20", "CD R5@20", "BJ HR@5", "BJ HR@20", "BJ R5@20",
            "SF HR@5", "SF HR@20", "SF R5@20",
        ],
    );

    let data: Vec<_> = cities
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let net = scale.network(c);
            let trajs = scale.trajectories(&net, scale.max_traj_segments, 100 + i as u64);
            (net, trajs)
        })
        .collect();

    for method in methods {
        let mut cells = vec![method.label()];
        for (net, trajs) in &data {
            let mut hr5 = Vec::new();
            let mut hr20 = Vec::new();
            let mut r520 = Vec::new();
            for s in 0..scale.seeds {
                match eval_traj_sim(method, net, trajs, &scale, s as u64 + 1) {
                    Ok(r) => {
                        hr5.push(r.hr5_pct);
                        hr20.push(r.hr20_pct);
                        r520.push(r.r5at20_pct);
                    }
                    Err(e) => eprintln!("{}: {e}", method.label()),
                }
            }
            if hr5.is_empty() {
                cells.extend(["OOM".to_string(), "OOM".into(), "OOM".into()]);
            } else {
                cells.push(fmt_cell(&hr5));
                cells.push(fmt_cell(&hr20));
                cells.push(fmt_cell(&r520));
            }
        }
        table.row(cells);
        eprintln!("[table5] {} done", method.label());
    }
    table.print();
}
