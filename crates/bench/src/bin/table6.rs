//! Table 6: shortest-path distance prediction — MRE and MAE for every
//! method on CD / BJ / SF (smaller is better).

use sarn_bench::{eval_spd, fmt_cell, ExperimentScale, Method, Table};
use sarn_roadnet::City;

fn main() {
    let scale = ExperimentScale::from_env();
    let cities = [City::Chengdu, City::Beijing, City::SanFrancisco];
    let nets: Vec<_> = cities.iter().map(|&c| scale.network(c)).collect();

    let mut methods = Method::self_supervised();
    methods.extend([Method::SarnStar, Method::Hrnr, Method::Rne]);

    let mut table = Table::new(
        format!(
            "Table 6: Shortest-Path Distance Prediction (MRE% / MAE m; smaller is better), {} seed(s)",
            scale.seeds
        ),
        &["Method", "CD MRE", "CD MAE", "BJ MRE", "BJ MAE", "SF MRE", "SF MAE"],
    );
    for method in methods {
        let mut cells = vec![method.label()];
        for net in &nets {
            let mut mres = Vec::new();
            let mut maes = Vec::new();
            for s in 0..scale.seeds {
                match eval_spd(method, net, &scale, s as u64 + 1) {
                    Ok(r) => {
                        mres.push(r.mre_pct);
                        maes.push(r.mae_m);
                    }
                    Err(e) => eprintln!("{}: {e}", method.label()),
                }
            }
            if mres.is_empty() {
                cells.extend(["OOM".to_string(), "OOM".into()]);
            } else {
                cells.push(fmt_cell(&mres));
                cells.push(fmt_cell(&maes));
            }
        }
        table.row(cells);
        eprintln!("[table6] {} done", method.label());
    }
    table.print();
}
