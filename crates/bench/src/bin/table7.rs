//! Table 7: impact of the number of road segments per trajectory on
//! trajectory similarity (BJ / T-Drive in the paper). The maximum segment
//! count sweeps over three settings; the paper uses {60, 120, 180} — the
//! same 1x/2x/3x progression is applied to the configured base length.

use sarn_bench::{eval_traj_sim, fmt_cell, ExperimentScale, Method, Table};
use sarn_roadnet::City;

fn main() {
    let scale = ExperimentScale::from_env();
    let net = scale.network(City::Beijing);
    let base = scale.max_traj_segments;
    let lengths = [base, base * 2, base * 3];
    let methods = [
        Method::Srn2Vec,
        Method::Sarn,
        Method::SarnStar,
        Method::Neutraj,
    ];

    for (metric_idx, metric_name) in ["HR@5 (%)", "HR@20 (%)", "R5@20 (%)"].iter().enumerate() {
        let mut table = Table::new(
            format!(
                "Table 7: {} vs max segments per trajectory (BJ)",
                metric_name
            ),
            &[
                "Method",
                &lengths[0].to_string(),
                &lengths[1].to_string(),
                &lengths[2].to_string(),
            ],
        );
        for method in methods {
            let mut cells = vec![method.label()];
            for (li, &len) in lengths.iter().enumerate() {
                let trajs = scale.trajectories(&net, len, 200 + li as u64);
                let mut vals = Vec::new();
                for s in 0..scale.seeds {
                    if let Ok(r) = eval_traj_sim(method, &net, &trajs, &scale, s as u64 + 1) {
                        vals.push(match metric_idx {
                            0 => r.hr5_pct,
                            1 => r.hr20_pct,
                            _ => r.r5at20_pct,
                        });
                    }
                }
                cells.push(fmt_cell(&vals));
            }
            table.row(cells);
            eprintln!("[table7] {} / {} done", method.label(), metric_name);
        }
        table.print();
    }
}
