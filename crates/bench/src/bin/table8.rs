//! Table 8: all three downstream tasks on road networks of different sizes
//! (SF-S / SF / SF-L, roughly two-fold steps). GCA and HRNR exceed the
//! simulated accelerator memory budget (`SARN_MEMORY_MB`, default 128) on
//! SF-L, as in the paper. Frozen-embedding methods are trained once per
//! network and reused across the three tasks.

use sarn_bench::{
    eval_road_property, eval_road_property_frozen, eval_spd, eval_spd_frozen, eval_traj_sim,
    eval_traj_sim_frozen, fmt_cell, train_embeddings, ExperimentScale, Method, Table,
};
use sarn_roadnet::City;

fn main() {
    let scale = ExperimentScale::from_env();
    let cities = [
        City::SanFranciscoSmall,
        City::SanFrancisco,
        City::SanFranciscoLarge,
    ];
    let nets: Vec<_> = cities.iter().map(|&c| scale.network(c)).collect();
    for (c, n) in cities.iter().zip(&nets) {
        eprintln!(
            "[table8] {} has {} segments",
            c.short_name(),
            n.num_segments()
        );
    }
    let trajs: Vec<_> = nets
        .iter()
        .enumerate()
        .map(|(i, net)| scale.trajectories(net, scale.max_traj_segments, 300 + i as u64))
        .collect();

    let frozen_methods = [
        Method::Node2Vec,
        Method::Srn2Vec,
        Method::GraphCl,
        Method::Gca,
        Method::Sarn,
        Method::Rne,
    ];
    let live_methods = [Method::SarnStar, Method::Hrnr];

    let mut t_prop = Table::new(
        "Table 8a: Road Property Prediction F1 (%) by network size",
        &["Method", "SF-S", "SF", "SF-L"],
    );
    let mut t_traj = Table::new(
        "Table 8b: Trajectory Similarity HR@5 (%) by network size",
        &["Method", "SF-S", "SF", "SF-L"],
    );
    let mut t_spd = Table::new(
        "Table 8c: Shortest-Path Distance MRE (%) by network size (smaller is better)",
        &["Method", "SF-S", "SF", "SF-L"],
    );

    let cell = |v: &Vec<f64>| -> String {
        if v.is_empty() {
            "OOM".into()
        } else {
            fmt_cell(v)
        }
    };

    for method in frozen_methods {
        let (mut f1c, mut hrc, mut mrec) = (
            vec![method.label()],
            vec![method.label()],
            vec![method.label()],
        );
        for (net, data) in nets.iter().zip(&trajs) {
            let (mut f1, mut hr5, mut mre) = (Vec::new(), Vec::new(), Vec::new());
            for s in 0..scale.seeds {
                let seed = s as u64 + 1;
                match train_embeddings(method, net, &scale, seed) {
                    Ok(out) => {
                        f1.push(eval_road_property_frozen(net, &out.embeddings, seed).f1_pct);
                        hr5.push(eval_traj_sim_frozen(net, data, &out.embeddings, seed).hr5_pct);
                        mre.push(eval_spd_frozen(net, &out.embeddings, seed).mre_pct);
                    }
                    Err(e) => eprintln!("{}: {e}", method.label()),
                }
            }
            f1c.push(cell(&f1));
            hrc.push(cell(&hr5));
            mrec.push(cell(&mre));
        }
        t_prop.row(f1c);
        t_traj.row(hrc);
        t_spd.row(mrec);
        eprintln!("[table8] {} done", method.label());
    }

    for method in live_methods {
        let (mut f1c, mut hrc, mut mrec) = (
            vec![method.label()],
            vec![method.label()],
            vec![method.label()],
        );
        for (net, data) in nets.iter().zip(&trajs) {
            let (mut f1, mut hr5, mut mre) = (Vec::new(), Vec::new(), Vec::new());
            for s in 0..scale.seeds {
                let seed = s as u64 + 1;
                if let Ok(r) = eval_road_property(method, net, &scale, seed) {
                    f1.push(r.f1_pct);
                }
                if let Ok(r) = eval_traj_sim(method, net, data, &scale, seed) {
                    hr5.push(r.hr5_pct);
                }
                if let Ok(r) = eval_spd(method, net, &scale, seed) {
                    mre.push(r.mre_pct);
                }
            }
            f1c.push(cell(&f1));
            hrc.push(cell(&hr5));
            mrec.push(cell(&mre));
        }
        t_prop.row(f1c);
        t_traj.row(hrc);
        t_spd.row(mrec);
        eprintln!("[table8] {} done", method.label());
    }

    t_prop.print();
    t_traj.print();
    t_spd.print();
}
