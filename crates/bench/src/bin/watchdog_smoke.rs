//! End-to-end watchdog fault-injection smoke check for CI.
//!
//! Exercises the two halves of the recovery contract on a real (small)
//! training run:
//!
//! 1. **Transient fault** — a one-shot NaN injected into the gradient
//!    stream mid-run must be detected within the batch, rolled back to the
//!    last healthy snapshot, and the run must still finish with an
//!    all-finite loss history. A rerun with the identical configuration
//!    must be bitwise-identical (recovery is part of the deterministic
//!    trajectory, not a wall-clock race).
//! 2. **Sticky fault** — a fault that re-fires on every retry must exhaust
//!    `max_recoveries` and surface as a typed [`sarn_core::TrainError`]
//!    divergence report naming the violation, never a panic.
//!
//! Scale comes from the usual `SARN_*` environment knobs; the watchdog
//! knobs (`SARN_WATCHDOG_MAX_RECOVERIES`, `SARN_WATCHDOG_LR_BACKOFF`,
//! `SARN_WATCHDOG_GRAD_RATIO`) are honored too. Exits non-zero on any
//! contract breach.

use sarn_bench::ExperimentScale;
use sarn_core::{try_train, FaultKind, FaultSpec, TrainError};
use sarn_roadnet::City;

fn main() {
    let mut scale = ExperimentScale::from_env();
    scale.watchdog = true;
    let net = scale.network(City::Chengdu);

    let mut cfg = scale.sarn_config_for(&net, 1);
    // A mid-run fault needs epochs on both sides of it, and recovery can
    // repeat the faulted epoch, so hold early stopping open.
    cfg.max_epochs = cfg.max_epochs.max(4);
    cfg.patience = 1000;
    let fault_epoch = cfg.max_epochs / 2;

    // Leg 1: transient NaN in the gradient stream — recover and finish.
    let mut transient = cfg.clone();
    transient.fault = Some(FaultSpec {
        epoch: fault_epoch,
        batch: 0,
        kind: FaultKind::NanGrad,
        sticky: false,
    });
    eprintln!("[watchdog_smoke] leg 1: one-shot NaN gradient at epoch {fault_epoch}");
    let recovered = match try_train(&net, &transient) {
        Ok(t) => t,
        Err(e) => panic!("transient fault should recover, got: {e}"),
    };
    assert_eq!(
        recovered.recoveries.len(),
        1,
        "expected exactly one recovery event"
    );
    assert!(
        recovered.loss_history.iter().all(|l| l.is_finite()),
        "loss history contains non-finite entries after recovery"
    );

    eprintln!("[watchdog_smoke] leg 2: rerun must be bitwise-identical");
    let rerun = try_train(&net, &transient).expect("rerun of the recovered configuration");
    assert_eq!(
        recovered.loss_history, rerun.loss_history,
        "recovered run is not deterministic (loss history differs)"
    );
    assert_eq!(
        recovered.embeddings.data(),
        rerun.embeddings.data(),
        "recovered run is not deterministic (embeddings differ)"
    );

    // Leg 3: sticky fault — retries burn out into a typed report.
    let mut sticky = cfg.clone();
    sticky.fault = Some(FaultSpec {
        epoch: fault_epoch,
        batch: 0,
        kind: FaultKind::NanGrad,
        sticky: true,
    });
    eprintln!(
        "[watchdog_smoke] leg 3: sticky fault, expecting divergence after {} recoveries",
        sticky.watchdog.max_recoveries
    );
    match try_train(&net, &sticky) {
        Ok(_) => panic!("sticky fault must not converge"),
        Err(TrainError::Diverged(report)) => {
            assert_eq!(report.recoveries.len(), report.max_recoveries);
            assert_eq!(report.violation.epoch(), fault_epoch);
            eprintln!("[watchdog_smoke] divergence report: {report}");
        }
        Err(e) => panic!("expected a divergence report, got: {e}"),
    }

    println!(
        "watchdog_smoke OK: 1 recovery, bitwise rerun, sticky fault diverged after {} retries",
        sticky.watchdog.max_recoveries
    );
}
