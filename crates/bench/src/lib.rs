//! # sarn-bench
//!
//! Experiment harness regenerating every table and figure of the SARN
//! evaluation (paper §5). Each `table*`/`fig*` binary prints the same rows
//! or series the paper reports; absolute numbers differ (synthetic data,
//! CPU training at reduced scale) but the comparisons — who wins, by
//! roughly what factor, where crossovers fall — are the reproduction
//! target (see EXPERIMENTS.md).
//!
//! Scale is controlled by environment variables so the same binaries serve
//! quick smoke runs and larger reproductions:
//!
//! - `SARN_NET_SCALE` — lattice scale factor (default 0.45; 1.0 ≈ 2.2–4.9k
//!   segments per city);
//! - `SARN_SEEDS` — repeated runs per cell (default 2; paper uses 5);
//! - `SARN_EPOCHS` — self-supervised training epochs (default 15).
//!
//! Long runs can be made restartable with the checkpoint knobs (see
//! `sarn_core::checkpoint`): `SARN_CKPT_DIR` turns on periodic training
//! checkpoints into that directory, `SARN_CKPT_EVERY` sets the epoch period
//! (default 5), `SARN_CKPT_KEEP` the rolling retention (default 3), and
//! `SARN_RESUME=1` resumes each training run from its newest compatible
//! checkpoint — every city/seed/variant is fingerprinted separately, so one
//! directory serves an entire interrupted table sweep.

#![warn(missing_docs)]

pub mod methods;
pub mod report;
pub mod scale;

pub use methods::{
    eval_road_property, eval_road_property_frozen, eval_spd, eval_spd_frozen, eval_traj_sim,
    eval_traj_sim_frozen, memory_budget, train_embeddings, EmbedOutcome, Method,
};
pub use report::{fmt_cell, Table};
pub use scale::ExperimentScale;
