//! Uniform interface over all evaluated methods (paper §5.1 "Competitors").

use sarn_baselines::{
    Gca, GcaConfig, GclBackboneConfig, GraphCl, GraphClConfig, Hrnr, HrnrConfig, Neutraj,
    NeutrajConfig, Node2Vec, Node2VecConfig, Rne, RneConfig, Srn2Vec, Srn2VecConfig, TrainError,
};
use sarn_core::{train as sarn_train, SarnVariant};
use sarn_roadnet::RoadNetwork;
use sarn_tasks::{
    metrics, road_property, spd, traj_sim, EmbeddingSource, RoadPropertyConfig, RoadPropertyResult,
    SpdConfig, SpdResult, TrajSimConfig, TrajSimResult,
};
use sarn_tensor::Tensor;
use sarn_traj::{split_indices, MatchedTrajectory, TrajDataset};

use crate::scale::ExperimentScale;

/// Simulated accelerator memory budget for the quadratic-memory methods
/// (GCA, HRNR), in bytes. `SARN_MEMORY_MB` overrides the 128 MB default so
/// Table 8's OOM regime can be reproduced at reduced network scales.
pub fn memory_budget() -> sarn_baselines::MemoryBudget {
    let mb = std::env::var("SARN_MEMORY_MB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(128);
    sarn_baselines::MemoryBudget {
        bytes: mb * 1024 * 1024,
    }
}

/// A method under evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// node2vec (self-supervised).
    Node2Vec,
    /// SRN2Vec (self-supervised).
    Srn2Vec,
    /// GraphCL (self-supervised).
    GraphCl,
    /// GCA (self-supervised).
    Gca,
    /// SARN (self-supervised; this paper).
    Sarn,
    /// An ablation variant of SARN (Fig. 5).
    SarnAblation(SarnVariant),
    /// SARN* — SARN fine-tuned per task.
    SarnStar,
    /// HRNR (supervised).
    Hrnr,
    /// NEUTRAJ (supervised; trajectory similarity only).
    Neutraj,
    /// RNE (supervised).
    Rne,
}

impl Method {
    /// Display label matching the paper's tables.
    pub fn label(&self) -> String {
        match self {
            Method::Node2Vec => "node2vec".into(),
            Method::Srn2Vec => "SRN2Vec".into(),
            Method::GraphCl => "GraphCL".into(),
            Method::Gca => "GCA".into(),
            Method::Sarn => "SARN".into(),
            Method::SarnAblation(v) => v.label().into(),
            Method::SarnStar => "SARN*".into(),
            Method::Hrnr => "HRNR".into(),
            Method::Neutraj => "NEUTRAJ".into(),
            Method::Rne => "RNE".into(),
        }
    }

    /// The self-supervised methods of Tables 4–6.
    pub fn self_supervised() -> Vec<Method> {
        vec![
            Method::Node2Vec,
            Method::Srn2Vec,
            Method::GraphCl,
            Method::Gca,
            Method::Sarn,
        ]
    }
}

/// Embeddings plus the wall-clock seconds spent learning them.
pub struct EmbedOutcome {
    /// `n x d` segment embeddings.
    pub embeddings: Tensor,
    /// Training time in seconds (Fig. 4).
    pub seconds: f64,
}

/// Trains a frozen-embedding method (the self-supervised methods, RNE, or a
/// SARN ablation) and returns its embeddings.
///
/// # Panics
/// Panics for methods that do not produce frozen segment embeddings
/// (SARN\*, HRNR, NEUTRAJ) — use the task-specific evaluators for those.
pub fn train_embeddings(
    method: Method,
    net: &RoadNetwork,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<EmbedOutcome, TrainError> {
    match method {
        Method::Node2Vec => {
            let cfg = Node2VecConfig {
                seed,
                ..Default::default()
            };
            let m = Node2Vec::train(net, &cfg);
            Ok(EmbedOutcome {
                embeddings: m.embeddings,
                seconds: m.train_seconds,
            })
        }
        Method::Srn2Vec => {
            // Pair-sampling budget matched to the original's coverage: the
            // released description samples a vanishing fraction of all n^2
            // pairs on 30k-segment networks; keep the same relative
            // coverage on reduced networks instead of saturating them.
            let n = net.num_segments();
            let cfg = Srn2VecConfig {
                seed,
                pairs_per_epoch: (20 * n).max(2000),
                epochs: 5,
                ..Default::default()
            };
            let m = Srn2Vec::train(net, &cfg);
            Ok(EmbedOutcome {
                embeddings: m.embeddings,
                seconds: m.train_seconds,
            })
        }
        Method::GraphCl => {
            let cfg = GraphClConfig {
                backbone: GclBackboneConfig::default(),
                epochs: scale.epochs,
                seed,
                ..Default::default()
            };
            let m = GraphCl::train(net, &cfg);
            Ok(EmbedOutcome {
                embeddings: m.embeddings,
                seconds: m.train_seconds,
            })
        }
        Method::Gca => {
            let cfg = GcaConfig {
                backbone: GclBackboneConfig::default(),
                epochs: scale.epochs,
                seed,
                memory: memory_budget(),
                ..Default::default()
            };
            let m = Gca::train(net, &cfg)?;
            Ok(EmbedOutcome {
                embeddings: m.embeddings,
                seconds: m.train_seconds,
            })
        }
        Method::Sarn => {
            let cfg = scale.sarn_config_for(net, seed);
            let t = sarn_train(net, &cfg);
            Ok(EmbedOutcome {
                embeddings: t.embeddings,
                seconds: t.train_seconds,
            })
        }
        Method::SarnAblation(v) => {
            let cfg = scale.sarn_config_for(net, seed).with_variant(v);
            let t = sarn_train(net, &cfg);
            Ok(EmbedOutcome {
                embeddings: t.embeddings,
                seconds: t.train_seconds,
            })
        }
        Method::Rne => {
            let cfg = RneConfig {
                seed,
                sources: 150,
                pairs_per_source: 150,
                epochs: 20,
                ..Default::default()
            };
            let m = Rne::train(net, &cfg);
            Ok(EmbedOutcome {
                embeddings: m.embeddings,
                seconds: m.train_seconds,
            })
        }
        Method::SarnStar | Method::Hrnr | Method::Neutraj => {
            panic!("{} does not produce frozen embeddings", method.label())
        }
    }
}

fn road_property_cfg(seed: u64) -> RoadPropertyConfig {
    RoadPropertyConfig {
        epochs: 80,
        seed,
        ..Default::default()
    }
}

fn traj_cfg(seed: u64) -> TrajSimConfig {
    TrajSimConfig {
        pairs_per_epoch: 600,
        epochs: 4,
        hidden: 48,
        seed,
        ..Default::default()
    }
}

fn spd_cfg(seed: u64) -> SpdConfig {
    SpdConfig {
        train_pairs: 2500,
        test_pairs: 300,
        epochs: 20,
        seed,
        ..Default::default()
    }
}

/// Evaluates a method on road property prediction (Table 4).
pub fn eval_road_property(
    method: Method,
    net: &RoadNetwork,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<RoadPropertyResult, TrainError> {
    let cfg = road_property_cfg(seed);
    match method {
        Method::SarnStar => {
            let trained = sarn_train(net, &scale.sarn_config_for(net, seed));
            let mut src = EmbeddingSource::sarn_finetune(&trained);
            Ok(road_property(net, &mut src, &cfg))
        }
        Method::Hrnr => {
            let hrnr = Hrnr::new(
                net,
                &HrnrConfig {
                    seed,
                    memory: memory_budget(),
                    ..Default::default()
                },
            )?;
            let store = hrnr.store.clone();
            let mut src = EmbeddingSource::trainable_model(
                Box::new(move |g, s| hrnr.forward_with(g, s)),
                store,
                HrnrConfig::default().d,
            );
            Ok(road_property(net, &mut src, &cfg))
        }
        Method::Neutraj => panic!("NEUTRAJ does not apply to road property prediction"),
        _ => {
            let emb = train_embeddings(method, net, scale, seed)?;
            let mut src = EmbeddingSource::frozen(&emb.embeddings);
            Ok(road_property(net, &mut src, &cfg))
        }
    }
}

/// Evaluates a method on trajectory similarity prediction (Table 5).
pub fn eval_traj_sim(
    method: Method,
    net: &RoadNetwork,
    data: &TrajDataset,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<TrajSimResult, TrainError> {
    let cfg = traj_cfg(seed);
    match method {
        Method::SarnStar => {
            let trained = sarn_train(net, &scale.sarn_config_for(net, seed));
            let mut src = EmbeddingSource::sarn_finetune(&trained);
            Ok(traj_sim(net, data, &mut src, &cfg))
        }
        Method::Hrnr => {
            let hrnr = Hrnr::new(
                net,
                &HrnrConfig {
                    seed,
                    memory: memory_budget(),
                    ..Default::default()
                },
            )?;
            let store = hrnr.store.clone();
            let mut src = EmbeddingSource::trainable_model(
                Box::new(move |g, s| hrnr.forward_with(g, s)),
                store,
                HrnrConfig::default().d,
            );
            Ok(traj_sim(net, data, &mut src, &cfg))
        }
        Method::Neutraj => Ok(eval_neutraj(net, data, seed)),
        _ => {
            let emb = train_embeddings(method, net, scale, seed)?;
            let mut src = EmbeddingSource::frozen(&emb.embeddings);
            Ok(traj_sim(net, data, &mut src, &cfg))
        }
    }
}

/// Evaluates a method on shortest-path distance prediction (Table 6).
pub fn eval_spd(
    method: Method,
    net: &RoadNetwork,
    scale: &ExperimentScale,
    seed: u64,
) -> Result<SpdResult, TrainError> {
    let cfg = spd_cfg(seed);
    match method {
        Method::SarnStar => {
            let trained = sarn_train(net, &scale.sarn_config_for(net, seed));
            let mut src = EmbeddingSource::sarn_finetune(&trained);
            Ok(spd(net, &mut src, &cfg))
        }
        Method::Hrnr => {
            let hrnr = Hrnr::new(
                net,
                &HrnrConfig {
                    seed,
                    memory: memory_budget(),
                    ..Default::default()
                },
            )?;
            let store = hrnr.store.clone();
            let mut src = EmbeddingSource::trainable_model(
                Box::new(move |g, s| hrnr.forward_with(g, s)),
                store,
                HrnrConfig::default().d,
            );
            Ok(spd(net, &mut src, &cfg))
        }
        Method::Neutraj => panic!("NEUTRAJ does not apply to SPD prediction"),
        _ => {
            let emb = train_embeddings(method, net, scale, seed)?;
            let mut src = EmbeddingSource::frozen(&emb.embeddings);
            Ok(spd(net, &mut src, &cfg))
        }
    }
}

/// NEUTRAJ's own pipeline on the same split the probe-based methods use.
fn eval_neutraj(net: &RoadNetwork, data: &TrajDataset, seed: u64) -> TrajSimResult {
    let probe_seed = traj_cfg(seed).seed;
    let (train, _val, test) = split_indices(data.len(), probe_seed);
    let cfg = NeutrajConfig {
        seed,
        pairs_per_epoch: 600,
        epochs: 4,
        hidden: 48,
        ..Default::default()
    };
    let model = Neutraj::train(net, data, &train, &cfg);
    let test_refs: Vec<&MatchedTrajectory> = test.iter().map(|&i| &data.trajectories[i]).collect();
    let emb = model.embed(net, &test_refs);
    let truth = data.frechet_matrix(net, &test);
    let k = test.len();
    let (mut hr5, mut hr20, mut r520) = (0.0, 0.0, 0.0);
    for q in 0..k {
        let true_rank = metrics::ranking_by(k, q, |i| truth[q * k + i]);
        let pred_rank = metrics::ranking_by(k, q, |i| model.predict_distance_m(&emb, q, i));
        hr5 += metrics::hit_ratio_at_k(&true_rank, &pred_rank, 5);
        hr20 += metrics::hit_ratio_at_k(&true_rank, &pred_rank, 20);
        r520 += metrics::recall_k_at_m(&true_rank, &pred_rank, 5, 20);
    }
    TrajSimResult {
        hr5_pct: 100.0 * hr5 / k as f64,
        hr20_pct: 100.0 * hr20 / k as f64,
        r5at20_pct: 100.0 * r520 / k as f64,
    }
}

/// Road-property evaluation of precomputed frozen embeddings (lets a
/// harness train a method once and reuse it across tasks).
pub fn eval_road_property_frozen(
    net: &RoadNetwork,
    embeddings: &Tensor,
    seed: u64,
) -> RoadPropertyResult {
    let mut src = EmbeddingSource::frozen(embeddings);
    road_property(net, &mut src, &road_property_cfg(seed))
}

/// Trajectory-similarity evaluation of precomputed frozen embeddings.
pub fn eval_traj_sim_frozen(
    net: &RoadNetwork,
    data: &TrajDataset,
    embeddings: &Tensor,
    seed: u64,
) -> TrajSimResult {
    let mut src = EmbeddingSource::frozen(embeddings);
    traj_sim(net, data, &mut src, &traj_cfg(seed))
}

/// SPD evaluation of precomputed frozen embeddings.
pub fn eval_spd_frozen(net: &RoadNetwork, embeddings: &Tensor, seed: u64) -> SpdResult {
    let mut src = EmbeddingSource::frozen(embeddings);
    spd(net, &mut src, &spd_cfg(seed))
}
