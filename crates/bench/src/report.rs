//! Plain-text table rendering for experiment output.

use sarn_tasks::metrics::Stats;

/// Formats a `mean±std` cell from repeated measurements.
pub fn fmt_cell(samples: &[f64]) -> String {
    let s = Stats::of(samples);
    format!("{:.2}±{:.2}", s.mean, s.std)
}

/// A simple aligned text table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders to an aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("Demo", &["Method", "F1"]);
        t.row(vec!["SARN".into(), "98.70".into()]);
        t.row(vec!["node2vec".into(), "89.11".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("SARN"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn fmt_cell_renders_mean_std() {
        assert_eq!(fmt_cell(&[1.0, 3.0]), "2.00±1.00");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("X", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
