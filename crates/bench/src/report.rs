//! Plain-text table rendering for experiment output, with a
//! machine-readable JSONL twin: every printed table also lands in the
//! telemetry event journal as [`sarn_obs::Event::BenchRow`]s and — when
//! `SARN_REPORT_JSONL` names a file — is appended there as JSONL, so a
//! sweep's artifacts can be parsed without scraping aligned text.

use std::io::Write;

use sarn_obs::{Event, EventJournal, TimedEvent};
use sarn_tasks::metrics::Stats;

/// Formats a `mean±std` cell from repeated measurements.
pub fn fmt_cell(samples: &[f64]) -> String {
    let s = Stats::of(samples);
    format!("{:.2}±{:.2}", s.mean, s.std)
}

/// A simple aligned text table.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders to an aligned string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout and emits its machine-readable
    /// twin (journal events + optional `SARN_REPORT_JSONL` append).
    pub fn print(&self) {
        println!("{}", self.render());
        self.emit();
    }

    /// One [`Event::BenchRow`] per data row, in order.
    fn events(&self) -> Vec<Event> {
        self.rows
            .iter()
            .map(|row| Event::BenchRow {
                table: self.title.clone(),
                cells: self
                    .header
                    .iter()
                    .cloned()
                    .zip(row.iter().cloned())
                    .collect(),
            })
            .collect()
    }

    /// Emits the table's rows into the global event journal (always — the
    /// bench artifact must exist even in un-instrumented runs) and appends
    /// them as JSONL to the file named by `SARN_REPORT_JSONL`, if set. An
    /// unwritable sink is reported on stderr, never fatal to the run.
    pub fn emit(&self) {
        let timed: Vec<TimedEvent> = self.events().into_iter().map(TimedEvent::now).collect();
        for t in &timed {
            EventJournal::global().record_forced(t.event.clone());
        }
        let Ok(path) = std::env::var("SARN_REPORT_JSONL") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let mut lines = String::new();
        for t in &timed {
            lines.push_str(&t.to_json());
            lines.push('\n');
        }
        let written = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(lines.as_bytes()));
        if let Err(e) = written {
            eprintln!("warning: could not append bench rows to {path}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = Table::new("Demo", &["Method", "F1"]);
        t.row(vec!["SARN".into(), "98.70".into()]);
        t.row(vec!["node2vec".into(), "89.11".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("SARN"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn fmt_cell_renders_mean_std() {
        assert_eq!(fmt_cell(&[1.0, 3.0]), "2.00±1.00");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("X", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn emit_journals_one_bench_row_per_data_row() {
        let mut t = Table::new("Emit Demo", &["Method", "F1"]);
        t.row(vec!["SARN".into(), "98.70".into()]);
        t.row(vec!["GCL".into(), "91.20".into()]);
        t.emit(); // journal recording is forced: works with telemetry off
        let rows: Vec<_> = EventJournal::global()
            .snapshot_events()
            .into_iter()
            .filter_map(|e| match e.event {
                Event::BenchRow { table, cells } if table == "Emit Demo" => Some(cells),
                _ => None,
            })
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], ("Method".to_string(), "SARN".to_string()));
        assert_eq!(rows[1][1], ("F1".to_string(), "91.20".to_string()));
    }
}
