//! Experiment scale knobs (environment-variable driven).

use sarn_core::SarnConfig;
use sarn_roadnet::{City, RoadNetwork, SynthConfig};
use sarn_traj::{TrajDataset, TrajGenConfig};

/// Scale configuration shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct ExperimentScale {
    /// Road-network lattice scale factor.
    pub net_scale: f64,
    /// Repeated runs (different seeds) per reported cell.
    pub seeds: usize,
    /// Self-supervised training epochs.
    pub epochs: usize,
    /// Pinned cosine-annealing horizon (`SARN_SCHEDULE_EPOCHS`; 0 =
    /// follow `SARN_EPOCHS`). Set it when resuming with a larger
    /// `SARN_EPOCHS` than the interrupted run so both legs train on the
    /// same learning-rate curve (and hence share a config fingerprint).
    pub schedule_epochs: usize,
    /// Trajectories generated per dataset.
    pub traj_count: usize,
    /// Maximum segments per trajectory (paper default: 60).
    pub max_traj_segments: usize,
    /// Worker threads for the parallel compute backend (`SARN_NUM_THREADS`;
    /// `0` = automatic, `1` = serial).
    pub num_threads: usize,
    /// Kernel reduction order (`SARN_REDUCTION_ORDER`: `reference` |
    /// `fast`; default `reference` — the bit-exact scalar path).
    pub reduction_order: sarn_par::ReductionOrder,
    /// `A^s` spatial-join strategy (`SARN_SPATIAL_JOIN`: `grid` |
    /// `reference`; default `grid` — both build the identical edge list,
    /// the reference all-pairs scan is the O(n^2) equivalence oracle).
    pub spatial_join: sarn_core::SpatialJoin,
    /// Checkpoint directory (`SARN_CKPT_DIR`; unset = no checkpointing).
    pub ckpt_dir: Option<std::path::PathBuf>,
    /// Save a checkpoint every this many epochs (`SARN_CKPT_EVERY`,
    /// default 5; effective only with `ckpt_dir` set).
    pub ckpt_every: usize,
    /// Rolling retention per configuration (`SARN_CKPT_KEEP`, default 3;
    /// `0` keeps everything).
    pub ckpt_keep: usize,
    /// Resume interrupted runs from the newest compatible checkpoint in
    /// `ckpt_dir` (`SARN_RESUME=1`; fresh runs are unaffected). Each
    /// city/seed/variant has its own config fingerprint, so one directory
    /// serves a whole table sweep.
    pub resume: bool,
    /// Enable the training watchdog (`SARN_WATCHDOG=1`; off by default).
    pub watchdog: bool,
    /// Rollback/retry budget before a run reports divergence
    /// (`SARN_WATCHDOG_MAX_RECOVERIES`, default 3).
    pub watchdog_max_recoveries: usize,
    /// Learning-rate multiplier compounded on every recovery
    /// (`SARN_WATCHDOG_LR_BACKOFF`, default 0.5).
    pub watchdog_lr_backoff: f32,
    /// Gradient-norm explosion threshold as a multiple of the EMA baseline
    /// (`SARN_WATCHDOG_GRAD_RATIO`, default 25; `0` disables the ratio
    /// probe while keeping the non-finite scans).
    pub watchdog_grad_ratio: f32,
    /// Global gradient-norm clip applied before every Adam step
    /// (`SARN_CLIP_NORM`, default 0 = off).
    pub clip_norm: f32,
    /// Telemetry knobs (`SARN_OBS=1` enables recording, `SARN_OBS_DIR`
    /// adds periodic file exports, `SARN_OBS_EVERY` /
    /// `SARN_OBS_JOURNAL_CAP` tune them; off by default).
    pub obs: sarn_obs::ObsConfig,
}

impl ExperimentScale {
    /// Reads the scale from the environment (see crate docs), falling back
    /// to quick-run defaults.
    pub fn from_env() -> Self {
        let get = |k: &str, d: f64| -> f64 {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        Self {
            net_scale: get("SARN_NET_SCALE", 0.45),
            seeds: get("SARN_SEEDS", 2.0) as usize,
            epochs: get("SARN_EPOCHS", 15.0) as usize,
            schedule_epochs: get("SARN_SCHEDULE_EPOCHS", 0.0) as usize,
            traj_count: get("SARN_TRAJ_COUNT", 140.0) as usize,
            max_traj_segments: get("SARN_MAX_TRAJ_SEGMENTS", 30.0) as usize,
            num_threads: get("SARN_NUM_THREADS", 1.0) as usize,
            reduction_order: sarn_par::ReductionOrder::from_env(),
            spatial_join: sarn_core::SpatialJoin::from_env(),
            ckpt_dir: std::env::var("SARN_CKPT_DIR")
                .ok()
                .filter(|v| !v.is_empty())
                .map(std::path::PathBuf::from),
            ckpt_every: get("SARN_CKPT_EVERY", 5.0) as usize,
            ckpt_keep: get("SARN_CKPT_KEEP", 3.0) as usize,
            resume: get("SARN_RESUME", 0.0) != 0.0,
            watchdog: get("SARN_WATCHDOG", 0.0) != 0.0,
            watchdog_max_recoveries: get("SARN_WATCHDOG_MAX_RECOVERIES", 3.0) as usize,
            watchdog_lr_backoff: get("SARN_WATCHDOG_LR_BACKOFF", 0.5) as f32,
            watchdog_grad_ratio: get("SARN_WATCHDOG_GRAD_RATIO", 25.0) as f32,
            clip_norm: get("SARN_CLIP_NORM", 0.0) as f32,
            obs: sarn_obs::ObsConfig::from_env(),
        }
    }

    /// Builds a city road network at this scale.
    ///
    /// When scaling a lattice down, the speed-limit label *fraction* is
    /// scaled up (capped at 0.5) so the label *count* stays large enough
    /// for the road-property task to produce meaningful F1/AUC.
    pub fn network(&self, city: City) -> RoadNetwork {
        let mut cfg = SynthConfig::city(city).scaled(self.net_scale);
        if self.net_scale < 1.0 {
            cfg.label_frac = (cfg.label_frac / (self.net_scale * self.net_scale)).min(0.5);
        }
        let net = cfg.generate();
        // Guarantee a usable label count (>= ~200) even on small lattices.
        let min_frac = (200.0 / net.num_segments() as f64).min(0.5);
        if cfg.label_frac < min_frac {
            cfg.label_frac = min_frac;
            return cfg.generate();
        }
        net
    }

    /// Builds the trajectory dataset for a network (max length per Table 7
    /// sweeps is passed explicitly).
    pub fn trajectories(&self, net: &RoadNetwork, max_segments: usize, seed: u64) -> TrajDataset {
        let gen = TrajGenConfig {
            count: self.traj_count,
            min_segments: 6,
            max_segments: max_segments.max(8),
            seed,
            ..Default::default()
        };
        TrajDataset::build(net, &gen, max_segments)
    }

    /// SARN configuration at this scale. With `SARN_CKPT_DIR` set, training
    /// checkpoints periodically and (under `SARN_RESUME=1`) resumes the
    /// newest compatible checkpoint, making interrupted table/figure runs
    /// restartable with the same command line.
    pub fn sarn_config(&self, seed: u64) -> SarnConfig {
        let mut cfg = SarnConfig::small();
        cfg.max_epochs = self.epochs;
        cfg.schedule_epochs = self.schedule_epochs;
        cfg.patience = (self.epochs as u32 / 3).max(3);
        cfg.seed = seed;
        cfg.num_threads = self.num_threads;
        cfg.reduction_order = self.reduction_order;
        cfg.similarity.join = self.spatial_join;
        if let Some(dir) = &self.ckpt_dir {
            cfg = cfg.with_checkpointing(dir, self.ckpt_every);
            cfg.checkpoint_keep = self.ckpt_keep;
            cfg.resume_auto = self.resume;
        }
        if self.watchdog {
            cfg = cfg.with_watchdog(sarn_core::WatchdogConfig {
                enabled: true,
                max_recoveries: self.watchdog_max_recoveries,
                lr_backoff: self.watchdog_lr_backoff,
                grad_ratio: self.watchdog_grad_ratio,
                ..Default::default()
            });
        }
        if self.clip_norm > 0.0 {
            cfg = cfg.with_clip_norm(self.clip_norm);
        }
        cfg.obs = self.obs.clone();
        cfg
    }

    /// SARN configuration with the negative-sampling grid matched to a
    /// network's extent: the paper's `clen = 600 m` is ~10.5% of the SF
    /// region's side, and the per-cell queue size phi = K / #cells lands at
    /// 10-16; reduced-scale maps need a proportionally smaller `clen` to
    /// keep the same local/global structure.
    pub fn sarn_config_for(&self, net: &RoadNetwork, seed: u64) -> SarnConfig {
        let mut cfg = self.sarn_config(seed);
        let extent = net.bbox().width_m().max(net.bbox().height_m());
        cfg.clen_m = (0.105 * extent).max(50.0);
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build_usable_networks() {
        let s = ExperimentScale {
            net_scale: 0.3,
            seeds: 1,
            epochs: 2,
            schedule_epochs: 0,
            traj_count: 20,
            max_traj_segments: 15,
            num_threads: 1,
            reduction_order: Default::default(),
            spatial_join: Default::default(),
            ckpt_dir: None,
            ckpt_every: 5,
            ckpt_keep: 3,
            resume: false,
            watchdog: false,
            watchdog_max_recoveries: 3,
            watchdog_lr_backoff: 0.5,
            watchdog_grad_ratio: 25.0,
            clip_norm: 0.0,
            obs: Default::default(),
        };
        let net = s.network(City::Chengdu);
        assert!(net.num_segments() > 100);
        let data = s.trajectories(&net, 15, 1);
        assert!(data.len() >= 15);
        let cfg = s.sarn_config(1);
        assert_eq!(cfg.max_epochs, 2);
        // Checkpointing stays off unless a directory is given.
        assert_eq!(cfg.checkpoint_every, 0);
        assert!(!cfg.resume_auto);
    }

    #[test]
    fn checkpoint_knobs_flow_into_the_config() {
        let s = ExperimentScale {
            net_scale: 0.3,
            seeds: 1,
            epochs: 2,
            schedule_epochs: 0,
            traj_count: 20,
            max_traj_segments: 15,
            num_threads: 1,
            reduction_order: Default::default(),
            spatial_join: Default::default(),
            ckpt_dir: Some("/tmp/sarn-ckpts".into()),
            ckpt_every: 4,
            ckpt_keep: 2,
            resume: true,
            watchdog: true,
            watchdog_max_recoveries: 5,
            watchdog_lr_backoff: 0.25,
            watchdog_grad_ratio: 40.0,
            clip_norm: 1.5,
            obs: Default::default(),
        };
        let cfg = s.sarn_config(7);
        assert_eq!(cfg.checkpoint_every, 4);
        assert_eq!(cfg.checkpoint_keep, 2);
        assert_eq!(
            cfg.checkpoint_dir.as_deref(),
            Some(std::path::Path::new("/tmp/sarn-ckpts"))
        );
        assert!(cfg.resume_auto);
        assert!(cfg.watchdog.enabled);
        assert_eq!(cfg.watchdog.max_recoveries, 5);
        assert_eq!(cfg.watchdog.lr_backoff, 0.25);
        assert_eq!(cfg.watchdog.grad_ratio, 40.0);
        assert_eq!(cfg.clip_norm, 1.5);
        // The watchdog and clip knobs must not fork the checkpoint
        // fingerprint lineage of an existing resumable run... except for
        // clip_norm, which changes the trajectory and therefore must.
        let mut off = s.clone();
        off.watchdog = false;
        off.clip_norm = 0.0;
        let mut wd_only = s.clone();
        wd_only.clip_norm = 0.0;
        assert_eq!(
            off.sarn_config(7).fingerprint(),
            wd_only.sarn_config(7).fingerprint()
        );
        assert_ne!(
            off.sarn_config(7).fingerprint(),
            s.sarn_config(7).fingerprint()
        );
        // Different seeds are different runs: their checkpoints must not
        // collide in the shared directory.
        assert_ne!(
            s.sarn_config(7).fingerprint(),
            s.sarn_config(8).fingerprint()
        );
    }
}
