//! Spatial importance-based graph augmentation (paper §4.2, Technical
//! Contribution 2).
//!
//! Each training epoch corrupts `G` into two graph views by removing a
//! fixed fraction (`ρ_t`, `ρ_s`) of topological and spatial edges via
//! weighted sampling *without replacement*. The corruption probability of a
//! topological edge decreases with its Eq. 1 weight (Eq. 6, min-max
//! normalized); a spatial edge's decreases with `A^s_{i,j}` (Eq. 7). Both
//! are clamped into `[ε, 1-ε]`. When a pair carries a *dual-typed* edge
//! (both topological and spatial), sampling either copy removes both.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use rand::{Rng, SeedableRng};
use sarn_tensor::layers::EdgeIndex;

/// Augmentation parameters.
#[derive(Clone, Copy, Debug)]
pub struct AugmentConfig {
    /// Corruption rate of topological edges `ρ_t` (paper default 0.4).
    pub rho_t: f64,
    /// Corruption rate of spatial edges `ρ_s` (paper default 0.4).
    pub rho_s: f64,
    /// Probability clamp `ε` keeping every edge removable and retainable.
    pub epsilon: f64,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        Self {
            rho_t: 0.4,
            rho_s: 0.4,
            epsilon: 0.05,
        }
    }
}

/// A corrupted graph view: the retained directed message edges
/// `(center, neighbor)` over both edge types, ready for the GAT encoder.
#[derive(Clone, Debug)]
pub struct GraphView {
    /// Retained directed topological edges `(i, j)` (message `i -> j`).
    pub topo: Vec<(usize, usize)>,
    /// Retained undirected spatial edges `(i, j)` with `i < j`.
    pub spatial: Vec<(usize, usize)>,
    /// Number of vertices.
    pub n: usize,
}

impl GraphView {
    /// The uncorrupted view of a graph (used to produce final embeddings).
    pub fn full(
        n: usize,
        topo: impl IntoIterator<Item = (usize, usize)>,
        spatial: impl IntoIterator<Item = (usize, usize)>,
    ) -> Self {
        Self {
            topo: topo.into_iter().collect(),
            spatial: spatial.into_iter().collect(),
            n,
        }
    }

    /// Message edge index for the GAT encoder: every topological edge
    /// `i -> j` sends a message into `j`; every spatial edge sends messages
    /// both ways; self-loops are appended.
    pub fn edge_index(&self) -> EdgeIndex {
        let pairs = self
            .topo
            .iter()
            .map(|&(i, j)| (j, i))
            .chain(self.spatial.iter().flat_map(|&(i, j)| [(i, j), (j, i)]));
        EdgeIndex::with_self_loops(self.n, pairs)
    }

    /// Total retained edges (directed topological + undirected spatial).
    pub fn num_edges(&self) -> usize {
        self.topo.len() + self.spatial.len()
    }
}

/// Augmenter corrupting a road-network graph into views.
pub struct Augmenter {
    n: usize,
    topo: Vec<(usize, usize, f64)>,
    spatial: Vec<(usize, usize, f64)>,
    topo_corruption: Vec<f64>,
    spatial_corruption: Vec<f64>,
    cfg: AugmentConfig,
}

impl Augmenter {
    /// Prepares corruption probabilities for the given weighted edges.
    pub fn new(
        n: usize,
        topo: Vec<(usize, usize, f64)>,
        spatial: Vec<(usize, usize, f64)>,
        cfg: AugmentConfig,
    ) -> Self {
        // Eq. 6: min-max normalize A^t weights over non-zero entries.
        let (mut wmin, mut wmax) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(_, _, w) in &topo {
            wmin = wmin.min(w);
            wmax = wmax.max(w);
        }
        let span = (wmax - wmin).max(1e-12);
        let clamp = |p: f64| cfg.epsilon + p.clamp(0.0, 1.0) * (1.0 - 2.0 * cfg.epsilon);
        let topo_corruption = topo
            .iter()
            .map(|&(_, _, w)| clamp(1.0 - (w - wmin) / span))
            .collect();
        // Eq. 7: spatial weights are already in (0, 1).
        let spatial_corruption = spatial.iter().map(|&(_, _, w)| clamp(1.0 - w)).collect();
        Self {
            n,
            topo,
            spatial,
            topo_corruption,
            spatial_corruption,
            cfg,
        }
    }

    /// The uncorrupted view.
    pub fn full_view(&self) -> GraphView {
        GraphView::full(
            self.n,
            self.topo.iter().map(|&(i, j, _)| (i, j)),
            self.spatial.iter().map(|&(i, j, _)| (i, j)),
        )
    }

    /// Generates one corrupted view from a dedicated RNG stream.
    ///
    /// The stream is owned by this call, so the result depends only on
    /// `seed` — not on the calling thread or on any other sampling running
    /// concurrently. The training loop draws one seed per view from its
    /// main RNG and runs the two views through [`sarn_par::join`]; because
    /// each view replays exactly the serial draw order of
    /// [`Augmenter::corrupt`] under its own stream, the views are
    /// bit-identical at every thread count.
    pub fn corrupt_with_seed(&self, seed: u64) -> GraphView {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.corrupt(&mut rng)
    }

    /// Generates one corrupted view.
    pub fn corrupt(&self, rng: &mut impl Rng) -> GraphView {
        let drop_topo = weighted_sample_without_replacement(
            rng,
            &self.topo_corruption,
            (self.cfg.rho_t * self.topo.len() as f64).round() as usize,
        );
        let drop_spatial = weighted_sample_without_replacement(
            rng,
            &self.spatial_corruption,
            (self.cfg.rho_s * self.spatial.len() as f64).round() as usize,
        );
        // Dual-typed rule: removing either copy removes both. Collect the
        // removed pair set (unordered) from both samplings.
        let mut removed_pairs: HashSet<(usize, usize)> = HashSet::new();
        for &e in &drop_topo {
            let (i, j, _) = self.topo[e];
            removed_pairs.insert(unordered(i, j));
        }
        for &e in &drop_spatial {
            let (i, j, _) = self.spatial[e];
            removed_pairs.insert(unordered(i, j));
        }
        let topo = self
            .topo
            .iter()
            .filter(|&&(i, j, _)| !removed_pairs.contains(&unordered(i, j)))
            .map(|&(i, j, _)| (i, j))
            .collect();
        let spatial = self
            .spatial
            .iter()
            .filter(|&&(i, j, _)| !removed_pairs.contains(&unordered(i, j)))
            .map(|&(i, j, _)| (i, j))
            .collect();
        GraphView {
            topo,
            spatial,
            n: self.n,
        }
    }
}

fn unordered(i: usize, j: usize) -> (usize, usize) {
    if i <= j {
        (i, j)
    } else {
        (j, i)
    }
}

/// An Efraimidis–Spirakis key with its item index, totally ordered by
/// `(key, index)` via `f64::total_cmp` — exactly the order a stable
/// ascending sort of the keys would produce (stability breaks key ties by
/// index).
struct SampleKey(f64, usize);

impl PartialEq for SampleKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for SampleKey {}

impl PartialOrd for SampleKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SampleKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Weighted sampling without replacement (Efraimidis–Spirakis): draw `k`
/// indices with probability proportional to `weights`, by taking the `k`
/// smallest keys `-ln(U) / w`.
///
/// The selection streams over the weights with a bounded max-heap of the
/// `k` smallest `(key, index)` pairs — `O(m log k)` time and `O(k)`
/// auxiliary memory instead of materializing and sorting all `m` keys.
/// The drawn RNG stream (one uniform per weight, in index order), the
/// selected set, and the returned ascending-key order are all identical to
/// the sort-everything formulation, so per-epoch augmentation is bit-for-bit
/// unchanged by the streaming rewrite.
pub fn weighted_sample_without_replacement(
    rng: &mut impl Rng,
    weights: &[f64],
    k: usize,
) -> Vec<usize> {
    let k = k.min(weights.len());
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<SampleKey> = BinaryHeap::with_capacity(k);
    for (i, &w) in weights.iter().enumerate() {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let key = if w > 0.0 { -u.ln() / w } else { f64::INFINITY };
        let entry = SampleKey(key, i);
        if heap.len() < k {
            heap.push(entry);
        } else if heap.peek().is_some_and(|top| entry < *top) {
            heap.pop();
            heap.push(entry);
        }
    }
    let mut picked = heap.into_vec();
    picked.sort_unstable();
    picked.into_iter().map(|s| s.1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn augmenter() -> Augmenter {
        // 6 vertices; topo chain with varying weights; 2 spatial edges, one
        // duplicating a topo pair (dual-typed).
        Augmenter::new(
            6,
            vec![
                (0, 1, 6.0),
                (1, 2, 2.0),
                (2, 3, 4.0),
                (3, 4, 2.0),
                (4, 5, 3.0),
            ],
            vec![(0, 2, 0.9), (1, 2, 0.4)],
            AugmentConfig::default(),
        )
    }

    #[test]
    fn corruption_removes_requested_fraction() {
        let a = augmenter();
        let mut rng = StdRng::seed_from_u64(1);
        let v = a.corrupt(&mut rng);
        // rho_t = 0.4 over 5 topo edges -> 2 sampled; rho_s = 0.4 over 2 -> 1.
        // Dual-typed coupling can remove extra copies but never fewer.
        assert!(v.topo.len() <= 3, "{} topo kept", v.topo.len());
        assert!(v.spatial.len() <= 1, "{} spatial kept", v.spatial.len());
    }

    #[test]
    fn dual_typed_edges_vanish_together() {
        let a = augmenter();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = a.corrupt(&mut rng);
            let topo_has = v.topo.contains(&(1, 2));
            let spatial_has = v.spatial.contains(&(1, 2));
            // (1,2) is dual-typed: both present or both absent.
            assert_eq!(topo_has, spatial_has, "dual edge split: {v:?}");
        }
    }

    #[test]
    fn heavy_edges_survive_more_often() {
        let a = augmenter();
        let mut rng = StdRng::seed_from_u64(7);
        let (mut heavy, mut light) = (0, 0);
        for _ in 0..400 {
            let v = a.corrupt(&mut rng);
            if v.topo.contains(&(0, 1)) {
                heavy += 1; // weight 6.0 edge
            }
            if v.topo.contains(&(3, 4)) {
                light += 1; // weight 2.0 edge
            }
        }
        assert!(heavy > light + 40, "heavy kept {heavy}, light kept {light}");
    }

    #[test]
    fn epsilon_keeps_every_edge_mortal() {
        // Even the max-weight edge must be removable: over many draws the
        // heaviest edge disappears at least once.
        let a = augmenter();
        let mut rng = StdRng::seed_from_u64(11);
        let mut removed_once = false;
        for _ in 0..300 {
            if !a.corrupt(&mut rng).topo.contains(&(0, 1)) {
                removed_once = true;
                break;
            }
        }
        assert!(
            removed_once,
            "epsilon clamp failed to keep heavy edge mortal"
        );
    }

    #[test]
    fn edge_index_unions_both_types_with_self_loops() {
        let a = augmenter();
        let v = a.full_view();
        let idx = v.edge_index();
        // 5 directed topo + 2*2 spatial + 6 self-loops
        assert_eq!(idx.num_edges(), 5 + 4 + 6);
    }

    #[test]
    fn weighted_sampling_without_replacement_is_exact_k_and_unique() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = vec![1.0; 10];
        let s = weighted_sample_without_replacement(&mut rng, &w, 4);
        assert_eq!(s.len(), 4);
        let mut u = s.clone();
        u.sort_unstable();
        u.dedup();
        assert_eq!(u.len(), 4);
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = vec![10.0, 0.1, 0.1, 0.1];
        let mut count0 = 0;
        for _ in 0..200 {
            if weighted_sample_without_replacement(&mut rng, &w, 1)[0] == 0 {
                count0 += 1;
            }
        }
        assert!(count0 > 150, "item 0 sampled {count0}/200");
    }
}
