//! Crash-safe training checkpoints.
//!
//! A checkpoint captures the **complete** state of a [`crate::train`] run at
//! an epoch boundary — query and momentum parameter branches, Adam moments
//! and step count, every grid cell's negative-sample queue (contents and
//! eviction cursor), the main RNG stream that seeds the per-epoch two-view
//! augmentation and batch shuffling, the current shuffle order, and the loss
//! history — so a killed process resumes **bitwise identically**: a run
//! interrupted at any epoch and resumed produces the same loss history and
//! final embeddings as one that never stopped, at every thread count.
//!
//! ## File format (version 1)
//!
//! Little-endian throughout. One self-describing artifact:
//!
//! ```text
//! magic   8 B   b"SARNCKPT"
//! version 4 B   u32 (currently 1)
//! then 5 framed sections, in order META, QRYS, MOMS, OPTM, QUEU:
//!   tag   4 B   section tag
//!   len   8 B   u64 payload length
//!   crc   4 B   CRC-32 (IEEE) of the payload
//!   payload
//! ```
//!
//! Section payloads:
//!
//! - **META** — config fingerprint (`u64`), next epoch (`u32`), accumulated
//!   wall-clock seconds (`f64`), RNG state (4 × `u64`), loss history
//!   (`u32` count + `f32`s), shuffle order (`u32` count + `u32`s);
//! - **QRYS** / **MOMS** — query / momentum [`ParamStore`] values in the
//!   `sarn_tensor::io` stream layout (names + shapes + data);
//! - **OPTM** — Adam step count (`u64`) and first/second moment tensors;
//! - **QUEU** — presence flag, then dim/capacity/cell count and every cell's
//!   FIFO entries front-first (`u32` segment id + `f32` embedding).
//!
//! Writes go to a `.tmp` sibling that is fsynced and atomically renamed
//! over the target, so a crash mid-save never clobbers the previous
//! checkpoint. Loads verify magic, version, section framing, and per-section
//! checksums, returning a typed [`CheckpointError`] naming the corrupt
//! section — never panicking and never silently accepting damaged state.

use std::fmt;
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use sarn_tensor::io::{
    read_str_from, read_tensor_from, read_u32_from, read_u64_from, write_str_to, write_tensor_to,
    write_u32_to, write_u64_to,
};
use sarn_tensor::{ParamStore, Tensor};

/// File magic of every checkpoint artifact.
pub const MAGIC: &[u8; 8] = b"SARNCKPT";

/// Current format version. Any change to the layout below must bump this —
/// the committed golden-file test fails otherwise.
pub const FORMAT_VERSION: u32 = 1;

/// Section names in file order, as reported by [`CheckpointError`].
pub const SECTION_NAMES: [&str; 5] = ["META", "QRYS", "MOMS", "OPTM", "QUEU"];

const SECTION_TAGS: [&[u8; 4]; 5] = [b"META", b"QRYS", b"MOMS", b"OPTM", b"QUEU"];

/// Everything that can go wrong saving or loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The file ends before the named section is complete.
    Truncated {
        /// Section that was being read when the data ran out.
        section: &'static str,
    },
    /// The named section is present but damaged (bad tag, checksum
    /// mismatch, or inconsistent internal structure).
    Corrupt {
        /// Damaged section.
        section: &'static str,
        /// What exactly failed.
        detail: String,
    },
    /// The checkpoint was produced under different hyper-parameters than
    /// the resuming configuration.
    ConfigMismatch {
        /// Fingerprint recorded in the checkpoint.
        expected: u64,
        /// Fingerprint of the resuming configuration.
        found: u64,
    },
    /// The checkpoint is internally valid but does not fit the model /
    /// optimizer / queue geometry it is being restored into.
    StateMismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a SARN checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported checkpoint version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            CheckpointError::Truncated { section } => {
                write!(f, "checkpoint truncated in section {section}")
            }
            CheckpointError::Corrupt { section, detail } => {
                write!(f, "checkpoint section {section} corrupt: {detail}")
            }
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different configuration \
                 (fingerprint {expected:016x}, resuming config is {found:016x})"
            ),
            CheckpointError::StateMismatch(d) => {
                write!(f, "checkpoint does not fit the training state: {d}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl CheckpointError {
    /// The section a [`CheckpointError::Truncated`] / [`CheckpointError::Corrupt`]
    /// error points at, if any.
    pub fn section(&self) -> Option<&'static str> {
        match self {
            CheckpointError::Truncated { section } | CheckpointError::Corrupt { section, .. } => {
                Some(section)
            }
            _ => None,
        }
    }
}

/// Scalar training-loop state (everything outside the tensors and queues).
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointMeta {
    /// [`crate::SarnConfig::fingerprint`] of the producing run.
    pub fingerprint: u64,
    /// First epoch the resumed run will execute.
    pub next_epoch: u32,
    /// Wall-clock seconds accumulated before the snapshot (resumes add to
    /// it; not part of the bitwise-equivalence guarantee).
    pub train_seconds: f64,
    /// Main RNG stream (xoshiro256++ state) that seeds per-epoch
    /// augmentation views and shuffles the batch order.
    pub rng_state: [u64; 4],
    /// Mean loss per completed epoch.
    pub loss_history: Vec<f32>,
    /// Segment visit order as shuffled by the last completed epoch.
    pub order: Vec<u32>,
}

/// Adam optimizer state.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimState {
    /// Update steps taken (drives bias correction).
    pub step: u64,
    /// First-moment tensors, one per parameter (empty before step 1).
    pub m: Vec<Tensor>,
    /// Second-moment tensors, one per parameter (empty before step 1).
    pub v: Vec<Tensor>,
}

/// Per-cell negative-sample queue contents.
#[derive(Clone, Debug, PartialEq)]
pub struct QueueState {
    /// Embedding dimensionality of the entries.
    pub dim: u32,
    /// Per-cell capacity `φ`.
    pub capacity: u32,
    /// FIFO entries per cell, front (next to evict) first.
    pub cells: Vec<Vec<(u32, Vec<f32>)>>,
}

/// A complete training snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// Scalar loop state.
    pub meta: CheckpointMeta,
    /// Query-branch parameter values.
    pub query: ParamStoreSnapshot,
    /// Momentum-branch parameter values.
    pub momentum: ParamStoreSnapshot,
    /// Optimizer state.
    pub optim: OptimState,
    /// Negative-sample queues (`None` for variants without grid negatives).
    pub queues: Option<QueueState>,
}

/// Named parameter values of one branch, in registration order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParamStoreSnapshot {
    /// `(name, value)` pairs.
    pub params: Vec<(String, Tensor)>,
}

impl ParamStoreSnapshot {
    /// Snapshots a store's values.
    pub fn of(store: &ParamStore) -> Self {
        Self {
            params: store
                .ids()
                .map(|id| (store.name(id).to_string(), store.value(id).clone()))
                .collect(),
        }
    }

    /// Copies the snapshot into a live store after validating that names
    /// and shapes match exactly; a mismatch leaves the store untouched.
    pub fn apply_to(&self, store: &mut ParamStore) -> Result<(), CheckpointError> {
        let mut as_store = ParamStore::new();
        for (name, value) in &self.params {
            as_store.add(name.clone(), value.clone());
        }
        store
            .copy_values_validated(&as_store)
            .map_err(|e| CheckpointError::StateMismatch(e.to_string()))
    }
}

impl Checkpoint {
    /// Serializes to the on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        frame(&mut out, SECTION_TAGS[0], &encode_meta(&self.meta));
        frame(&mut out, SECTION_TAGS[1], &encode_store(&self.query));
        frame(&mut out, SECTION_TAGS[2], &encode_store(&self.momentum));
        frame(&mut out, SECTION_TAGS[3], &encode_optim(&self.optim));
        frame(
            &mut out,
            SECTION_TAGS[4],
            &encode_queues(self.queues.as_ref()),
        );
        out
    }

    /// Parses the on-disk format, verifying magic, version, framing, and
    /// per-section checksums.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < MAGIC.len() {
            return Err(CheckpointError::Truncated { section: "header" });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < MAGIC.len() + 4 {
            return Err(CheckpointError::Truncated { section: "header" });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let mut frames = Frames {
            buf: bytes,
            pos: 12,
        };
        let meta = decode_meta(frames.section(0)?)?;
        let query = decode_store(frames.section(1)?, SECTION_NAMES[1])?;
        let momentum = decode_store(frames.section(2)?, SECTION_NAMES[2])?;
        let optim = decode_optim(frames.section(3)?)?;
        let queues = decode_queues(frames.section(4)?)?;
        Ok(Checkpoint {
            meta,
            query,
            momentum,
            optim,
            queues,
        })
    }

    /// Atomically writes the checkpoint: the bytes go to a `.tmp` sibling,
    /// are fsynced, and renamed over `path`. A crash at any point leaves
    /// either the previous file or the new one — never a torn mix.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let t0 = sarn_obs::enabled().then(std::time::Instant::now);
        let path = path.as_ref();
        let tmp = tmp_sibling(path);
        let bytes = self.to_bytes();
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        if let Err(e) = fs::rename(&tmp, path) {
            fs::remove_file(&tmp).ok();
            return Err(e.into());
        }
        if let Some(t0) = t0 {
            record_io(
                t0,
                bytes.len(),
                self.meta.next_epoch as usize,
                "sarn_checkpoint_write",
                false,
            );
        }
        Ok(())
    }

    /// Loads and validates a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
        let t0 = sarn_obs::enabled().then(std::time::Instant::now);
        let mut bytes = Vec::new();
        File::open(path.as_ref())?.read_to_end(&mut bytes)?;
        let ckpt = Checkpoint::from_bytes(&bytes)?;
        if let Some(t0) = t0 {
            record_io(
                t0,
                bytes.len(),
                ckpt.meta.next_epoch as usize,
                "sarn_checkpoint_load",
                true,
            );
        }
        Ok(ckpt)
    }

    /// Reads only the header and META section of a checkpoint file —
    /// magic, version, and the scalar [`CheckpointMeta`] — without
    /// touching the (much larger) tensor sections. Warm-start uses this
    /// compatibility probe to reject an incompatible candidate (foreign
    /// file, newer format, different config fingerprint, damaged META)
    /// with a typed error *before* committing to a full load, so a bad
    /// checkpoint can never fail a retrain mid-restore.
    pub fn probe_header(path: impl AsRef<Path>) -> Result<CheckpointMeta, CheckpointError> {
        let mut f = File::open(path.as_ref())?;
        let mut head = [0u8; 12];
        read_exact_or(&mut f, &mut head, "header")?;
        if &head[..8] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u32::from_le_bytes(head[8..12].try_into().expect("4-byte slice"));
        if version != FORMAT_VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let name = SECTION_NAMES[0];
        let mut sh = [0u8; 16];
        read_exact_or(&mut f, &mut sh, name)?;
        if &sh[..4] != SECTION_TAGS[0] {
            return Err(corrupt(
                name,
                format!(
                    "unexpected section tag {:?}",
                    String::from_utf8_lossy(&sh[..4])
                ),
            ));
        }
        let len = u64::from_le_bytes(sh[4..12].try_into().expect("8-byte slice"));
        let crc = u32::from_le_bytes(sh[12..16].try_into().expect("4-byte slice"));
        // META holds scalars plus the loss history and shuffle order — a
        // length beyond this bound cannot be a sane section and must not
        // drive a giant allocation.
        if len > (1 << 28) {
            return Err(corrupt(name, format!("implausible META length {len}")));
        }
        let mut payload = vec![0u8; len as usize];
        read_exact_or(&mut f, &mut payload, name)?;
        if crc32(&payload) != crc {
            return Err(corrupt(name, "checksum mismatch"));
        }
        decode_meta(&payload)
    }
}

/// `read_exact` with `UnexpectedEof` mapped to the typed truncation error
/// (any other I/O failure stays an I/O error).
fn read_exact_or(
    f: &mut File,
    buf: &mut [u8],
    section: &'static str,
) -> Result<(), CheckpointError> {
    f.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated { section }
        } else {
            CheckpointError::Io(e)
        }
    })
}

/// Telemetry for one checkpoint write/load: duration and size histograms
/// plus a journal event. Only called with telemetry enabled.
fn record_io(t0: std::time::Instant, bytes: usize, epoch: usize, stem: &str, is_load: bool) {
    let seconds = t0.elapsed().as_secs_f64();
    let r = sarn_obs::Registry::global();
    r.histogram(&format!("{stem}_seconds")).observe(seconds);
    r.histogram_with(&format!("{stem}_bytes"), sarn_obs::magnitude_boundaries())
        .observe(bytes as f64);
    r.counter(&format!("{stem}s_total")).inc();
    sarn_obs::record(if is_load {
        sarn_obs::Event::CheckpointLoad {
            epoch,
            bytes,
            seconds,
        }
    } else {
        sarn_obs::Event::CheckpointWrite {
            epoch,
            bytes,
            seconds,
        }
    });
}

/// The `.tmp` sibling a [`Checkpoint::save`] stages its bytes in (same
/// directory, so the final rename stays atomic).
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Canonical file name of the checkpoint for `fingerprint` at `epoch`.
pub fn checkpoint_file_name(fingerprint: u64, epoch: usize) -> String {
    format!("ckpt-{fingerprint:016x}-ep{epoch:06}.sarnckpt")
}

fn parse_file_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".sarnckpt")?;
    let (fp, ep) = rest.split_once("-ep")?;
    Some((u64::from_str_radix(fp, 16).ok()?, ep.parse().ok()?))
}

/// Checkpoints in `dir` (optionally restricted to one config fingerprint),
/// sorted by epoch ascending. Staged `.tmp` files and foreign files are
/// ignored. A missing directory yields an empty list.
pub fn list_checkpoints(dir: &Path, fingerprint: Option<u64>) -> Vec<(usize, PathBuf)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut found: Vec<(usize, PathBuf)> = entries
        .filter_map(|e| {
            let path = e.ok()?.path();
            let (fp, epoch) = parse_file_name(path.file_name()?.to_str()?)?;
            if fingerprint.is_some_and(|want| want != fp) {
                return None;
            }
            Some((epoch, path))
        })
        .collect();
    found.sort();
    found
}

/// Newest checkpoint in `dir` for the given fingerprint (or any, if `None`).
pub fn latest_checkpoint(dir: &Path, fingerprint: Option<u64>) -> Option<PathBuf> {
    list_checkpoints(dir, fingerprint).pop().map(|(_, p)| p)
}

/// Rolling retention: deletes all but the newest `keep` checkpoints of this
/// fingerprint (`keep == 0` keeps everything). Other configurations'
/// checkpoints in the same directory are untouched.
pub fn prune_checkpoints(dir: &Path, fingerprint: u64, keep: usize) -> io::Result<()> {
    if keep == 0 {
        return Ok(());
    }
    let found = list_checkpoints(dir, Some(fingerprint));
    for (_, path) in found.iter().take(found.len().saturating_sub(keep)) {
        fs::remove_file(path)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Section framing
// ---------------------------------------------------------------------------

fn frame(out: &mut Vec<u8>, tag: &[u8; 4], payload: &[u8]) {
    out.extend_from_slice(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

struct Frames<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Frames<'a> {
    fn section(&mut self, idx: usize) -> Result<&'a [u8], CheckpointError> {
        let name = SECTION_NAMES[idx];
        let header_end = self.pos + 16;
        if header_end > self.buf.len() {
            return Err(CheckpointError::Truncated { section: name });
        }
        let header = &self.buf[self.pos..header_end];
        if &header[..4] != SECTION_TAGS[idx] {
            return Err(CheckpointError::Corrupt {
                section: name,
                detail: format!(
                    "unexpected section tag {:?}",
                    String::from_utf8_lossy(&header[..4])
                ),
            });
        }
        let len = u64::from_le_bytes(header[4..12].try_into().expect("8-byte slice")) as usize;
        let crc = u32::from_le_bytes(header[12..16].try_into().expect("4-byte slice"));
        let payload_end = match header_end.checked_add(len) {
            Some(end) if end <= self.buf.len() => end,
            _ => return Err(CheckpointError::Truncated { section: name }),
        };
        let payload = &self.buf[header_end..payload_end];
        if crc32(payload) != crc {
            return Err(CheckpointError::Corrupt {
                section: name,
                detail: "checksum mismatch".to_string(),
            });
        }
        self.pos = payload_end;
        Ok(payload)
    }
}

fn corrupt(section: &'static str, e: impl fmt::Display) -> CheckpointError {
    CheckpointError::Corrupt {
        section,
        detail: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Section payloads
// ---------------------------------------------------------------------------

fn encode_meta(meta: &CheckpointMeta) -> Vec<u8> {
    let mut p = Vec::new();
    let w = &mut p;
    write_u64_to(w, meta.fingerprint).expect("Vec writes are infallible");
    write_u32_to(w, meta.next_epoch).expect("Vec writes are infallible");
    write_u64_to(w, meta.train_seconds.to_bits()).expect("Vec writes are infallible");
    for s in meta.rng_state {
        write_u64_to(w, s).expect("Vec writes are infallible");
    }
    write_u32_to(w, meta.loss_history.len() as u32).expect("Vec writes are infallible");
    for &l in &meta.loss_history {
        w.extend_from_slice(&l.to_le_bytes());
    }
    write_u32_to(w, meta.order.len() as u32).expect("Vec writes are infallible");
    for &o in &meta.order {
        write_u32_to(w, o).expect("Vec writes are infallible");
    }
    p
}

fn decode_meta(payload: &[u8]) -> Result<CheckpointMeta, CheckpointError> {
    let name = SECTION_NAMES[0];
    let r = &mut &payload[..];
    let err = |e: sarn_tensor::IoError| corrupt(name, e);
    let fingerprint = read_u64_from(r).map_err(err)?;
    let next_epoch = read_u32_from(r).map_err(err)?;
    let train_seconds = f64::from_bits(read_u64_from(r).map_err(err)?);
    let mut rng_state = [0u64; 4];
    for s in &mut rng_state {
        *s = read_u64_from(r).map_err(err)?;
    }
    let n_loss = read_u32_from(r).map_err(err)? as usize;
    let mut loss_history = Vec::with_capacity(n_loss.min(1 << 20));
    for _ in 0..n_loss {
        loss_history.push(f32::from_bits(read_u32_from(r).map_err(err)?));
    }
    let n_order = read_u32_from(r).map_err(err)? as usize;
    let mut order = Vec::with_capacity(n_order.min(1 << 24));
    for _ in 0..n_order {
        order.push(read_u32_from(r).map_err(err)?);
    }
    Ok(CheckpointMeta {
        fingerprint,
        next_epoch,
        train_seconds,
        rng_state,
        loss_history,
        order,
    })
}

fn encode_store(snap: &ParamStoreSnapshot) -> Vec<u8> {
    let mut p = Vec::new();
    write_u32_to(&mut p, snap.params.len() as u32).expect("Vec writes are infallible");
    for (name, value) in &snap.params {
        write_str_to(&mut p, name).expect("Vec writes are infallible");
        write_tensor_to(&mut p, value).expect("Vec writes are infallible");
    }
    p
}

fn decode_store(payload: &[u8], name: &'static str) -> Result<ParamStoreSnapshot, CheckpointError> {
    let r = &mut &payload[..];
    let count = read_u32_from(r).map_err(|e| corrupt(name, e))? as usize;
    let mut params = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let pname = read_str_from(r).map_err(|e| corrupt(name, e))?;
        let value = read_tensor_from(r).map_err(|e| corrupt(name, e))?;
        params.push((pname, value));
    }
    Ok(ParamStoreSnapshot { params })
}

fn encode_optim(optim: &OptimState) -> Vec<u8> {
    let mut p = Vec::new();
    write_u64_to(&mut p, optim.step).expect("Vec writes are infallible");
    write_u32_to(&mut p, optim.m.len() as u32).expect("Vec writes are infallible");
    for t in optim.m.iter().chain(&optim.v) {
        write_tensor_to(&mut p, t).expect("Vec writes are infallible");
    }
    p
}

fn decode_optim(payload: &[u8]) -> Result<OptimState, CheckpointError> {
    let name = SECTION_NAMES[3];
    let r = &mut &payload[..];
    let step = read_u64_from(r).map_err(|e| corrupt(name, e))?;
    let count = read_u32_from(r).map_err(|e| corrupt(name, e))? as usize;
    let mut read_tensors = |n: usize| -> Result<Vec<Tensor>, CheckpointError> {
        (0..n)
            .map(|_| read_tensor_from(r).map_err(|e| corrupt(name, e)))
            .collect()
    };
    let m = read_tensors(count)?;
    let v = read_tensors(count)?;
    Ok(OptimState { step, m, v })
}

fn encode_queues(queues: Option<&QueueState>) -> Vec<u8> {
    let mut p = Vec::new();
    match queues {
        None => p.push(0),
        Some(q) => {
            p.push(1);
            write_u32_to(&mut p, q.dim).expect("Vec writes are infallible");
            write_u32_to(&mut p, q.capacity).expect("Vec writes are infallible");
            write_u32_to(&mut p, q.cells.len() as u32).expect("Vec writes are infallible");
            for cell in &q.cells {
                write_u32_to(&mut p, cell.len() as u32).expect("Vec writes are infallible");
                for (seg, e) in cell {
                    write_u32_to(&mut p, *seg).expect("Vec writes are infallible");
                    for &x in e {
                        p.extend_from_slice(&x.to_le_bytes());
                    }
                }
            }
        }
    }
    p
}

fn decode_queues(payload: &[u8]) -> Result<Option<QueueState>, CheckpointError> {
    let name = SECTION_NAMES[4];
    let r = &mut &payload[..];
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag).map_err(|e| corrupt(name, e))?;
    match flag[0] {
        0 => Ok(None),
        1 => {
            let dim = read_u32_from(r).map_err(|e| corrupt(name, e))?;
            let capacity = read_u32_from(r).map_err(|e| corrupt(name, e))?;
            let n_cells = read_u32_from(r).map_err(|e| corrupt(name, e))? as usize;
            let mut cells = Vec::with_capacity(n_cells.min(1 << 20));
            for _ in 0..n_cells {
                let n_entries = read_u32_from(r).map_err(|e| corrupt(name, e))? as usize;
                let mut cell = Vec::with_capacity(n_entries.min(1 << 16));
                for _ in 0..n_entries {
                    let seg = read_u32_from(r).map_err(|e| corrupt(name, e))?;
                    let mut e = Vec::with_capacity(dim as usize);
                    for _ in 0..dim {
                        e.push(f32::from_bits(
                            read_u32_from(r).map_err(|e| corrupt(name, e))?,
                        ));
                    }
                    cell.push((seg, e));
                }
                cells.push(cell);
            }
            Ok(Some(QueueState {
                dim,
                capacity,
                cells,
            }))
        }
        other => Err(corrupt(
            name,
            format!("invalid queue presence flag {other}"),
        )),
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected)
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE) of a byte slice — the per-section checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(name: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "sarn_ckpt_{name}_{}_{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_checkpoint() -> Checkpoint {
        let mut store = ParamStore::new();
        store.add(
            "enc.w",
            Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]),
        );
        store.add("proj.b", Tensor::row(&[0.5, -0.5]));
        Checkpoint {
            meta: CheckpointMeta {
                fingerprint: 0xDEAD_BEEF_CAFE_F00D,
                next_epoch: 3,
                train_seconds: 1.25,
                rng_state: [1, 2, 3, 4],
                loss_history: vec![0.5, 0.25, 0.125],
                order: vec![2, 0, 1],
            },
            query: ParamStoreSnapshot::of(&store),
            momentum: ParamStoreSnapshot::of(&store),
            optim: OptimState {
                step: 7,
                m: vec![Tensor::ones(2, 3), Tensor::zeros(1, 2)],
                v: vec![Tensor::full(2, 3, 0.5), Tensor::zeros(1, 2)],
            },
            queues: Some(QueueState {
                dim: 2,
                capacity: 4,
                cells: vec![vec![(0, vec![1.0, 2.0]), (1, vec![3.0, 4.0])], vec![]],
            }),
        }
    }

    #[test]
    fn crc32_matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bytes_roundtrip_exactly() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt, back);
        // Queue-less variants too.
        let mut no_q = ckpt;
        no_q.queues = None;
        assert_eq!(Checkpoint::from_bytes(&no_q.to_bytes()).unwrap(), no_q);
    }

    #[test]
    fn file_roundtrip_is_atomic_and_leaves_no_tmp() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join(checkpoint_file_name(1, 5));
        let ckpt = sample_checkpoint();
        ckpt.save(&path).unwrap();
        assert!(!tmp_sibling(&path).exists());
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn file_names_parse_back() {
        assert_eq!(
            parse_file_name(&checkpoint_file_name(0xABCD, 12)),
            Some((0xABCD, 12))
        );
        assert_eq!(parse_file_name("ckpt-zz-ep1.sarnckpt"), None);
        assert_eq!(parse_file_name("other.bin"), None);
    }

    #[test]
    fn latest_and_prune_respect_fingerprints() {
        let dir = tmp_dir("retention");
        let ckpt = sample_checkpoint();
        for epoch in [1, 2, 3, 4] {
            ckpt.save(dir.join(checkpoint_file_name(0xA, epoch)))
                .unwrap();
        }
        ckpt.save(dir.join(checkpoint_file_name(0xB, 9))).unwrap();
        // A staged tmp file (crash leftover) is ignored.
        fs::write(
            dir.join("ckpt-000000000000000a-ep000099.sarnckpt.tmp"),
            b"junk",
        )
        .unwrap();

        assert_eq!(
            latest_checkpoint(&dir, Some(0xA)),
            Some(dir.join(checkpoint_file_name(0xA, 4)))
        );
        assert_eq!(
            latest_checkpoint(&dir, None),
            Some(dir.join(checkpoint_file_name(0xB, 9)))
        );
        prune_checkpoints(&dir, 0xA, 2).unwrap();
        let left = list_checkpoints(&dir, Some(0xA));
        assert_eq!(left.iter().map(|(e, _)| *e).collect::<Vec<_>>(), vec![3, 4]);
        // The other fingerprint's checkpoint survives.
        assert!(latest_checkpoint(&dir, Some(0xB)).is_some());
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn probe_header_reads_meta_without_the_tensor_sections() {
        let dir = tmp_dir("probe");
        let path = dir.join(checkpoint_file_name(0xC0FFEE, 3));
        let ckpt = sample_checkpoint();
        ckpt.save(&path).unwrap();
        // The probe's meta is the full load's meta.
        assert_eq!(Checkpoint::probe_header(&path).unwrap(), ckpt.meta);
        // It still works when every section *after* META is torn off —
        // proof it never touches the tensor payloads.
        let bytes = ckpt.to_bytes();
        let meta_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
        let beheaded = dir.join("beheaded.sarnckpt");
        fs::write(&beheaded, &bytes[..12 + 16 + meta_len]).unwrap();
        assert_eq!(Checkpoint::probe_header(&beheaded).unwrap(), ckpt.meta);
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn probe_header_rejects_damage_with_typed_errors() {
        let dir = tmp_dir("probe_bad");
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();

        let garbage = dir.join("garbage.sarnckpt");
        fs::write(&garbage, b"not a checkpoint at all").unwrap();
        assert!(matches!(
            Checkpoint::probe_header(&garbage),
            Err(CheckpointError::BadMagic)
        ));

        let truncated = dir.join("truncated.sarnckpt");
        fs::write(&truncated, &bytes[..20]).unwrap();
        assert!(matches!(
            Checkpoint::probe_header(&truncated),
            Err(CheckpointError::Truncated { section: "META" })
        ));

        let mut flipped = bytes.clone();
        flipped[30] ^= 0xFF; // inside the META payload
        let corrupt = dir.join("corrupt.sarnckpt");
        fs::write(&corrupt, &flipped).unwrap();
        assert!(matches!(
            Checkpoint::probe_header(&corrupt),
            Err(CheckpointError::Corrupt {
                section: "META",
                ..
            })
        ));

        let mut versioned = bytes;
        versioned[8..12].copy_from_slice(&99u32.to_le_bytes());
        let newer = dir.join("newer.sarnckpt");
        fs::write(&newer, &versioned).unwrap();
        assert!(matches!(
            Checkpoint::probe_header(&newer),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
        fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn snapshot_apply_is_validated() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        let snap = ParamStoreSnapshot::of(&store);
        let mut other = ParamStore::new();
        other.add("w", Tensor::zeros(2, 2));
        assert!(matches!(
            snap.apply_to(&mut other),
            Err(CheckpointError::StateMismatch(_))
        ));
        let mut ok = ParamStore::new();
        let ok_id = ok.add("w", Tensor::zeros(1, 2));
        snap.apply_to(&mut ok).unwrap();
        assert_eq!(ok.value(ok_id).data(), store.value(id).data());
    }
}
