//! SARN hyper-parameters (paper §5.1 "Implementation details").

use crate::augment::AugmentConfig;
use crate::similarity::SpatialSimilarityConfig;

/// Which SARN components are active — the paper's ablation variants (§5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SarnVariant {
    /// All four technical contributions.
    Full,
    /// Without the spatial similarity **M**atrix: topology-only encoding and
    /// augmentation; keeps grid negatives and the two-level loss.
    WithoutM,
    /// Without **N**egative sampling and the two-level **L**oss: keeps the
    /// spatial matrix and spatial augmentation; trains with plain InfoNCE on
    /// in-batch negatives.
    WithoutNL,
    /// Without all three: the baseline GCL of §3 (weighted topological
    /// augmentation + in-batch InfoNCE).
    WithoutMNL,
}

impl SarnVariant {
    /// Whether the spatial similarity matrix / spatial edges are used.
    pub fn uses_spatial_matrix(self) -> bool {
        matches!(self, SarnVariant::Full | SarnVariant::WithoutNL)
    }

    /// Whether grid queues + the two-level loss are used.
    pub fn uses_grid_negatives(self) -> bool {
        matches!(self, SarnVariant::Full | SarnVariant::WithoutM)
    }

    /// Ablation label used in the paper's Fig. 5.
    pub fn label(self) -> &'static str {
        match self {
            SarnVariant::Full => "SARN",
            SarnVariant::WithoutM => "SARN-w/o-M",
            SarnVariant::WithoutNL => "SARN-w/o-NL",
            SarnVariant::WithoutMNL => "SARN-w/o-MNL",
        }
    }
}

/// Similarity used inside the InfoNCE losses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LossSimilarity {
    /// Dot product on L2-normalized projections (cosine; the MoCo
    /// convention, numerically stable at small temperatures).
    #[default]
    Cosine,
    /// Raw dot product (the paper's literal description of Λ).
    Dot,
}

/// Aggregation used for the global-negative cell readouts `R(·)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Readout {
    /// Mean of the queue (the paper's choice).
    #[default]
    Mean,
    /// Elementwise maximum (design-choice ablation).
    Max,
}

/// Full hyper-parameter set of SARN.
#[derive(Clone, Debug)]
pub struct SarnConfig {
    /// Embedding dimensionality `d` (paper: 128).
    pub d: usize,
    /// Projection dimensionality `d_z < d`.
    pub d_z: usize,
    /// Per-feature embedding width (`d_f = 7 *` this).
    pub d_per_feature: usize,
    /// GAT layers (paper: 3).
    pub n_layers: usize,
    /// Attention heads `L` (paper: 4).
    pub n_heads: usize,
    /// `A^s` thresholds (paper: 200 m, π/8).
    pub similarity: SpatialSimilarityConfig,
    /// Edge corruption configuration (paper: ρ_t = ρ_s = 0.4).
    pub augment: AugmentConfig,
    /// Grid cell side `clen` in meters.
    pub clen_m: f64,
    /// Total negative-sample queue budget `K` (paper: 1000).
    pub total_k: usize,
    /// InfoNCE temperature `τ` (paper: 0.05).
    pub tau: f32,
    /// Local/global loss trade-off `λ` (paper: 0.4).
    pub lambda: f32,
    /// Momentum coefficient `m` (paper: 0.999).
    pub momentum: f32,
    /// Initial learning rate (paper: 0.005, cosine annealed).
    pub lr: f32,
    /// Mini-batch size (paper: 128).
    pub batch_size: usize,
    /// Maximum training epochs (paper: 200).
    pub max_epochs: usize,
    /// Early-stopping patience in epochs (paper: 20).
    pub patience: u32,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel compute backend: `0` = automatic
    /// (`RAYON_NUM_THREADS`, then the machine), `1` = serial (default),
    /// `n` = exactly `n`. Results are identical at every setting — the
    /// backend only splits work, never reorders accumulation.
    pub num_threads: usize,
    /// Active components.
    pub variant: SarnVariant,
    /// InfoNCE similarity (design-choice ablation; default cosine).
    pub loss_similarity: LossSimilarity,
    /// Global-negative readout aggregation (design-choice ablation).
    pub readout: Readout,
}

impl Default for SarnConfig {
    /// The paper's defaults. Expensive on a CPU — prefer
    /// [`SarnConfig::small`] for experiments and [`SarnConfig::tiny`] in
    /// tests.
    fn default() -> Self {
        Self {
            d: 128,
            d_z: 64,
            d_per_feature: 16,
            n_layers: 3,
            n_heads: 4,
            similarity: SpatialSimilarityConfig::default(),
            augment: AugmentConfig::default(),
            clen_m: 600.0,
            total_k: 1000,
            tau: 0.05,
            lambda: 0.4,
            momentum: 0.999,
            lr: 0.005,
            batch_size: 128,
            max_epochs: 200,
            patience: 20,
            seed: 1,
            num_threads: 1,
            variant: SarnVariant::Full,
            loss_similarity: LossSimilarity::Cosine,
            readout: Readout::Mean,
        }
    }
}

impl SarnConfig {
    /// CPU-friendly configuration used by the experiment harness: same
    /// structure as the paper's setup with reduced width and epoch budget.
    pub fn small() -> Self {
        Self {
            d: 64,
            d_z: 32,
            d_per_feature: 8,
            max_epochs: 30,
            patience: 8,
            momentum: 0.99,
            ..Self::default()
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            d: 16,
            d_z: 8,
            d_per_feature: 4,
            n_layers: 2,
            n_heads: 2,
            max_epochs: 3,
            patience: 3,
            batch_size: 64,
            total_k: 200,
            momentum: 0.9,
            ..Self::default()
        }
    }

    /// Sets the ablation variant.
    pub fn with_variant(mut self, v: SarnVariant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count of the parallel compute backend
    /// (`0` = automatic, `1` = serial, `n` = exactly `n`).
    pub fn with_num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SarnConfig::default();
        assert_eq!(c.d, 128);
        assert_eq!(c.n_layers, 3);
        assert_eq!(c.n_heads, 4);
        assert_eq!(c.total_k, 1000);
        assert!((c.tau - 0.05).abs() < 1e-9);
        assert!((c.lambda - 0.4).abs() < 1e-9);
        assert!((c.augment.rho_t - 0.4).abs() < 1e-12);
        assert!((c.similarity.delta_ds_m - 200.0).abs() < 1e-12);
        assert_eq!(c.max_epochs, 200);
        assert_eq!(c.patience, 20);
        assert_eq!(c.batch_size, 128);
        // The compute backend defaults to the serial path.
        assert_eq!(c.num_threads, 1);
        assert_eq!(c.with_num_threads(4).num_threads, 4);
    }

    #[test]
    fn variant_component_flags() {
        assert!(SarnVariant::Full.uses_spatial_matrix());
        assert!(SarnVariant::Full.uses_grid_negatives());
        assert!(!SarnVariant::WithoutM.uses_spatial_matrix());
        assert!(SarnVariant::WithoutM.uses_grid_negatives());
        assert!(SarnVariant::WithoutNL.uses_spatial_matrix());
        assert!(!SarnVariant::WithoutNL.uses_grid_negatives());
        assert!(!SarnVariant::WithoutMNL.uses_spatial_matrix());
        assert!(!SarnVariant::WithoutMNL.uses_grid_negatives());
    }
}
