//! SARN hyper-parameters (paper §5.1 "Implementation details").

use crate::augment::AugmentConfig;
use crate::similarity::SpatialSimilarityConfig;
use crate::watchdog::{FaultSpec, WatchdogConfig};

/// Which SARN components are active — the paper's ablation variants (§5.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SarnVariant {
    /// All four technical contributions.
    Full,
    /// Without the spatial similarity **M**atrix: topology-only encoding and
    /// augmentation; keeps grid negatives and the two-level loss.
    WithoutM,
    /// Without **N**egative sampling and the two-level **L**oss: keeps the
    /// spatial matrix and spatial augmentation; trains with plain InfoNCE on
    /// in-batch negatives.
    WithoutNL,
    /// Without all three: the baseline GCL of §3 (weighted topological
    /// augmentation + in-batch InfoNCE).
    WithoutMNL,
}

impl SarnVariant {
    /// Whether the spatial similarity matrix / spatial edges are used.
    pub fn uses_spatial_matrix(self) -> bool {
        matches!(self, SarnVariant::Full | SarnVariant::WithoutNL)
    }

    /// Whether grid queues + the two-level loss are used.
    pub fn uses_grid_negatives(self) -> bool {
        matches!(self, SarnVariant::Full | SarnVariant::WithoutM)
    }

    /// Ablation label used in the paper's Fig. 5.
    pub fn label(self) -> &'static str {
        match self {
            SarnVariant::Full => "SARN",
            SarnVariant::WithoutM => "SARN-w/o-M",
            SarnVariant::WithoutNL => "SARN-w/o-NL",
            SarnVariant::WithoutMNL => "SARN-w/o-MNL",
        }
    }
}

/// Similarity used inside the InfoNCE losses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LossSimilarity {
    /// Dot product on L2-normalized projections (cosine; the MoCo
    /// convention, numerically stable at small temperatures).
    #[default]
    Cosine,
    /// Raw dot product (the paper's literal description of Λ).
    Dot,
}

/// Aggregation used for the global-negative cell readouts `R(·)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Readout {
    /// Mean of the queue (the paper's choice).
    #[default]
    Mean,
    /// Elementwise maximum (design-choice ablation).
    Max,
}

/// Full hyper-parameter set of SARN.
#[derive(Clone, Debug)]
pub struct SarnConfig {
    /// Embedding dimensionality `d` (paper: 128).
    pub d: usize,
    /// Projection dimensionality `d_z < d`.
    pub d_z: usize,
    /// Per-feature embedding width (`d_f = 7 *` this).
    pub d_per_feature: usize,
    /// GAT layers (paper: 3).
    pub n_layers: usize,
    /// Attention heads `L` (paper: 4).
    pub n_heads: usize,
    /// `A^s` thresholds (paper: 200 m, π/8).
    pub similarity: SpatialSimilarityConfig,
    /// Edge corruption configuration (paper: ρ_t = ρ_s = 0.4).
    pub augment: AugmentConfig,
    /// Grid cell side `clen` in meters.
    pub clen_m: f64,
    /// Total negative-sample queue budget `K` (paper: 1000).
    pub total_k: usize,
    /// InfoNCE temperature `τ` (paper: 0.05).
    pub tau: f32,
    /// Local/global loss trade-off `λ` (paper: 0.4).
    pub lambda: f32,
    /// Momentum coefficient `m` (paper: 0.999).
    pub momentum: f32,
    /// Initial learning rate (paper: 0.005, cosine annealed).
    pub lr: f32,
    /// Mini-batch size (paper: 128).
    pub batch_size: usize,
    /// Maximum training epochs (paper: 200).
    pub max_epochs: usize,
    /// Cosine-annealing horizon in epochs; `0` (default) follows
    /// `max_epochs`. Pin this when an invocation's epoch budget differs
    /// from the schedule's intended total — e.g. a run that will be
    /// interrupted and resumed trains every leg with the same horizon, so
    /// the learning-rate curve (and hence the trajectory) is unchanged.
    pub schedule_epochs: usize,
    /// Early-stopping patience in epochs (paper: 20).
    pub patience: u32,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for the parallel compute backend: `0` = automatic
    /// (`RAYON_NUM_THREADS`, then the machine), `1` = serial (default),
    /// `n` = exactly `n`. Results are identical at every setting — the
    /// backend only splits work, never reorders accumulation.
    pub num_threads: usize,
    /// Floating-point reduction order of the tensor kernels
    /// ([`sarn_par::ReductionOrder`]): `Reference` (default) is the scalar
    /// bit-exact path every determinism suite runs against; `Fast` enables
    /// the SIMD-friendly blocked kernels, which re-associate sums — still
    /// deterministic for a fixed mode, but not bitwise comparable across
    /// modes. An execution-strategy knob like `num_threads`, so it is *not*
    /// part of the checkpoint fingerprint; the bitwise resume guarantee
    /// holds within a fixed mode only.
    pub reduction_order: sarn_par::ReductionOrder,
    /// Active components.
    pub variant: SarnVariant,
    /// InfoNCE similarity (design-choice ablation; default cosine).
    pub loss_similarity: LossSimilarity,
    /// Global-negative readout aggregation (design-choice ablation).
    pub readout: Readout,
    /// Save a training checkpoint every this many epochs (`0` = never).
    pub checkpoint_every: usize,
    /// Directory receiving checkpoint files (required when
    /// `checkpoint_every > 0`; created on first save).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Rolling retention: keep only the newest this many checkpoints of
    /// this configuration (`0` = keep everything).
    pub checkpoint_keep: usize,
    /// Resume training from this checkpoint file; loading or validation
    /// failures abort the run with a typed error.
    pub resume_from: Option<std::path::PathBuf>,
    /// When set (and `resume_from` is not), resume from the newest
    /// compatible checkpoint found in `checkpoint_dir`, starting fresh if
    /// there is none — the mode the bench harness uses, making interrupted
    /// table/figure runs restartable with the same command line.
    pub resume_auto: bool,
    /// Warm-start: seed the model parameters from this checkpoint file and
    /// then train a *fresh* run (epoch 0, fresh optimizer/queues/RNG) — the
    /// online pipeline's retrain mode after a network edit, where the old
    /// weights are a good initialization but the exact trajectory cannot
    /// continue (the segment set changed). The checkpoint must pass the
    /// [`crate::Checkpoint::probe_header`] fingerprint check; parameter
    /// tensors whose shape depends on network content (the feature-
    /// embedding vocab tables) are copied row-prefix-wise. Mutually
    /// exclusive with `resume_from`/`resume_auto`. Excluded from the
    /// fingerprint: it changes the initialization, not the hyper-parameter
    /// trajectory a checkpoint lineage is keyed by — warm-started runs are
    /// a new lineage by construction (fresh epoch 0).
    pub warm_start_from: Option<std::path::PathBuf>,
    /// Wall-clock training budget in seconds (`0` = unbounded, the
    /// default). Checked at epoch boundaries; an exceeded budget aborts
    /// the run with [`crate::watchdog::TrainError::DeadlineExceeded`]
    /// instead of returning partial embeddings. Excluded from the
    /// fingerprint like `max_epochs`: it bounds how *long* a run gets,
    /// never which trajectory it takes.
    pub max_train_seconds: f64,
    /// Global gradient-norm clip applied by the optimizer before each step
    /// (`0` = no clipping, the default). Clipping reshapes the trajectory,
    /// so this knob is part of the config fingerprint.
    pub clip_norm: f32,
    /// Training watchdog: numerical-health probes plus automatic
    /// rollback-to-checkpoint recovery (see [`crate::watchdog`]). Disabled
    /// by default; a healthy watched run is bitwise-identical to an
    /// unwatched one, so these knobs are *not* fingerprinted.
    pub watchdog: WatchdogConfig,
    /// Deterministic fault injection for watchdog tests and the
    /// `watchdog_smoke` bench binary (never set in real runs; excluded
    /// from the fingerprint).
    pub fault: Option<FaultSpec>,
    /// Telemetry (see [`sarn_obs`]): counters/histograms/spans plus the
    /// event journal and periodic file exports. Disabled by default;
    /// recording only ever *reads* training state, so an instrumented
    /// run is bitwise-identical to an uninstrumented one and these
    /// knobs are *not* fingerprinted.
    pub obs: sarn_obs::ObsConfig,
}

impl Default for SarnConfig {
    /// The paper's defaults. Expensive on a CPU — prefer
    /// [`SarnConfig::small`] for experiments and [`SarnConfig::tiny`] in
    /// tests.
    fn default() -> Self {
        Self {
            d: 128,
            d_z: 64,
            d_per_feature: 16,
            n_layers: 3,
            n_heads: 4,
            similarity: SpatialSimilarityConfig::default(),
            augment: AugmentConfig::default(),
            clen_m: 600.0,
            total_k: 1000,
            tau: 0.05,
            lambda: 0.4,
            momentum: 0.999,
            lr: 0.005,
            batch_size: 128,
            max_epochs: 200,
            schedule_epochs: 0,
            patience: 20,
            seed: 1,
            num_threads: 1,
            reduction_order: sarn_par::ReductionOrder::Reference,
            variant: SarnVariant::Full,
            loss_similarity: LossSimilarity::Cosine,
            readout: Readout::Mean,
            checkpoint_every: 0,
            checkpoint_dir: None,
            checkpoint_keep: 3,
            resume_from: None,
            resume_auto: false,
            warm_start_from: None,
            max_train_seconds: 0.0,
            clip_norm: 0.0,
            watchdog: WatchdogConfig::default(),
            fault: None,
            obs: sarn_obs::ObsConfig::default(),
        }
    }
}

impl SarnConfig {
    /// CPU-friendly configuration used by the experiment harness: same
    /// structure as the paper's setup with reduced width and epoch budget.
    pub fn small() -> Self {
        Self {
            d: 64,
            d_z: 32,
            d_per_feature: 8,
            max_epochs: 30,
            patience: 8,
            momentum: 0.99,
            ..Self::default()
        }
    }

    /// Minimal configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            d: 16,
            d_z: 8,
            d_per_feature: 4,
            n_layers: 2,
            n_heads: 2,
            max_epochs: 3,
            patience: 3,
            batch_size: 64,
            total_k: 200,
            momentum: 0.9,
            ..Self::default()
        }
    }

    /// Sets the ablation variant.
    pub fn with_variant(mut self, v: SarnVariant) -> Self {
        self.variant = v;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count of the parallel compute backend
    /// (`0` = automatic, `1` = serial, `n` = exactly `n`).
    pub fn with_num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Sets the kernel reduction order (`Reference` = bit-exact scalar,
    /// `Fast` = SIMD-friendly re-associated sums).
    pub fn with_reduction_order(mut self, order: sarn_par::ReductionOrder) -> Self {
        self.reduction_order = order;
        self
    }

    /// Sets the `A^s` spatial-join strategy (`Reference` = all-pairs
    /// oracle, `Grid` = bucketed near-linear join; bit-identical output,
    /// so not fingerprinted).
    pub fn with_spatial_join(mut self, join: crate::similarity::SpatialJoin) -> Self {
        self.similarity.join = join;
        self
    }

    /// Enables periodic checkpointing into `dir` every `every` epochs.
    pub fn with_checkpointing(mut self, dir: impl Into<std::path::PathBuf>, every: usize) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self.checkpoint_every = every;
        self
    }

    /// Resumes training from an explicit checkpoint file.
    pub fn with_resume_from(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Warm-starts a fresh run from a checkpoint's parameters (see
    /// [`SarnConfig::warm_start_from`]).
    pub fn with_warm_start_from(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.warm_start_from = Some(path.into());
        self
    }

    /// Sets the wall-clock training budget (`0` = unbounded).
    pub fn with_max_train_seconds(mut self, seconds: f64) -> Self {
        self.max_train_seconds = seconds;
        self
    }

    /// Enables the training watchdog with the given knobs (the `enabled`
    /// flag inside `wd` is forced on).
    pub fn with_watchdog(mut self, wd: WatchdogConfig) -> Self {
        self.watchdog = WatchdogConfig {
            enabled: true,
            ..wd
        };
        self
    }

    /// Enables telemetry with the given knobs (the `enabled` flag inside
    /// `obs` is forced on).
    pub fn with_obs(mut self, obs: sarn_obs::ObsConfig) -> Self {
        self.obs = sarn_obs::ObsConfig {
            enabled: true,
            ..obs
        };
        self
    }

    /// Sets the global gradient-norm clip (`0` disables clipping).
    pub fn with_clip_norm(mut self, clip_norm: f32) -> Self {
        self.clip_norm = clip_norm;
        self
    }

    /// Effective cosine-annealing horizon: `schedule_epochs` when pinned,
    /// otherwise `max_epochs`.
    pub fn schedule_horizon(&self) -> usize {
        if self.schedule_epochs > 0 {
            self.schedule_epochs
        } else {
            self.max_epochs
        }
    }

    /// Fingerprint of every hyper-parameter that shapes the training
    /// trajectory (model widths, seed, loss knobs, augmentation, variant,
    /// the annealing horizon…). Checkpoints record it and refuse to resume
    /// under a different value. Deliberately excluded: `max_epochs` itself
    /// (with the horizon pinned via `schedule_epochs`, a larger budget
    /// *extends* a run), `patience`, `num_threads` (training is bitwise
    /// identical at every thread count), `reduction_order` (an execution
    /// strategy, not a hyper-parameter: resuming a checkpoint under the
    /// other mode is permitted and continues the run under that mode's
    /// arithmetic — bitwise resume guarantees hold within a fixed mode),
    /// `similarity.join` (the `A^s` spatial-join strategy builds the
    /// identical edge list either way —
    /// `crates/core/tests/spatial_join_equivalence.rs` proves it — so it
    /// can never fork a trajectory), the checkpoint knobs themselves,
    /// the watchdog/fault knobs (a healthy watched run is bitwise
    /// identical to an unwatched one), and the telemetry knobs (recording
    /// only reads training state; an instrumented run is bitwise identical
    /// to an uninstrumented one — `tests/sys/tests/obs_equivalence.rs`
    /// proves it). `clip_norm` IS included — clipping reshapes every step
    /// that trips it.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for v in [
            self.schedule_horizon() as u64,
            self.d as u64,
            self.d_z as u64,
            self.d_per_feature as u64,
            self.n_layers as u64,
            self.n_heads as u64,
            self.similarity.delta_ds_m.to_bits(),
            self.similarity.delta_as_rad.to_bits(),
            self.augment.rho_t.to_bits(),
            self.augment.rho_s.to_bits(),
            self.augment.epsilon.to_bits(),
            self.clen_m.to_bits(),
            self.total_k as u64,
            self.tau.to_bits() as u64,
            self.lambda.to_bits() as u64,
            self.momentum.to_bits() as u64,
            self.lr.to_bits() as u64,
            self.batch_size as u64,
            self.seed,
            self.variant as u64,
            self.loss_similarity as u64,
            self.readout as u64,
            self.clip_norm.to_bits() as u64,
        ] {
            h.write_u64(v);
        }
        h.finish()
    }
}

/// Minimal FNV-1a hasher for the config fingerprint (stable across builds,
/// unlike `std::collections`' randomized hashers).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SarnConfig::default();
        assert_eq!(c.d, 128);
        assert_eq!(c.n_layers, 3);
        assert_eq!(c.n_heads, 4);
        assert_eq!(c.total_k, 1000);
        assert!((c.tau - 0.05).abs() < 1e-9);
        assert!((c.lambda - 0.4).abs() < 1e-9);
        assert!((c.augment.rho_t - 0.4).abs() < 1e-12);
        assert!((c.similarity.delta_ds_m - 200.0).abs() < 1e-12);
        assert_eq!(c.max_epochs, 200);
        assert_eq!(c.patience, 20);
        assert_eq!(c.batch_size, 128);
        // The compute backend defaults to the serial path.
        assert_eq!(c.num_threads, 1);
        assert_eq!(c.with_num_threads(4).num_threads, 4);
    }

    #[test]
    fn fingerprint_tracks_trajectory_knobs_only() {
        let base = SarnConfig::tiny();
        assert_eq!(base.fingerprint(), SarnConfig::tiny().fingerprint());
        // Trajectory-shaping knobs change the fingerprint.
        assert_ne!(base.fingerprint(), base.clone().with_seed(2).fingerprint());
        assert_ne!(
            base.fingerprint(),
            base.clone()
                .with_variant(SarnVariant::WithoutM)
                .fingerprint()
        );
        let mut wide = base.clone();
        wide.d += 8;
        assert_ne!(base.fingerprint(), wide.fingerprint());
        // The annealing horizon is part of the trajectory: growing
        // `max_epochs` alone stretches the cosine schedule.
        let mut stretched = base.clone();
        stretched.max_epochs += 100;
        assert_ne!(base.fingerprint(), stretched.fingerprint());
        // With the horizon pinned, a larger epoch budget extends the same
        // run; patience/backend/checkpoint knobs never matter.
        let mut longer = base.clone();
        longer.schedule_epochs = base.max_epochs;
        longer.max_epochs += 100;
        longer.patience += 5;
        assert_eq!(base.fingerprint(), longer.fingerprint());
        assert_eq!(
            base.fingerprint(),
            base.clone().with_num_threads(8).fingerprint()
        );
        // The reduction order is an execution strategy, like the thread
        // count: it never forks a checkpoint lineage.
        assert_eq!(
            base.fingerprint(),
            base.clone()
                .with_reduction_order(sarn_par::ReductionOrder::Fast)
                .fingerprint()
        );
        assert_eq!(
            base.fingerprint(),
            base.clone().with_checkpointing("/tmp/x", 2).fingerprint()
        );
        // The spatial-join strategy builds the identical `A^s` edge list
        // either way, so it is likewise excluded.
        assert_eq!(
            base.fingerprint(),
            base.clone()
                .with_spatial_join(crate::similarity::SpatialJoin::Reference)
                .fingerprint()
        );
        // Gradient clipping reshapes the trajectory; the watchdog does not.
        assert_ne!(
            base.fingerprint(),
            base.clone().with_clip_norm(5.0).fingerprint()
        );
        assert_eq!(
            base.fingerprint(),
            base.clone()
                .with_watchdog(WatchdogConfig::default())
                .fingerprint()
        );
        // Warm-start changes the initialization (a new lineage, fresh
        // epoch 0), not the trajectory knobs a lineage is keyed by; the
        // deadline only bounds a run's length. Both are excluded.
        assert_eq!(
            base.fingerprint(),
            base.clone()
                .with_warm_start_from("/tmp/ck/x.sarnckpt")
                .with_max_train_seconds(30.0)
                .fingerprint()
        );
        // Telemetry never perturbs the trajectory either.
        assert_eq!(
            base.fingerprint(),
            base.clone()
                .with_obs(sarn_obs::ObsConfig {
                    export_dir: Some("/tmp/obs".into()),
                    export_every: 2,
                    ..sarn_obs::ObsConfig::default()
                })
                .fingerprint()
        );
    }

    #[test]
    fn obs_is_off_by_default_and_with_obs_forces_it_on() {
        let c = SarnConfig::default();
        assert!(!c.obs.enabled);
        let on = c.with_obs(sarn_obs::ObsConfig {
            enabled: false, // forced on by the builder
            export_every: 3,
            ..sarn_obs::ObsConfig::default()
        });
        assert!(on.obs.enabled);
        assert_eq!(on.obs.export_every, 3);
    }

    #[test]
    fn watchdog_is_off_by_default_and_with_watchdog_forces_it_on() {
        let c = SarnConfig::default();
        assert!(!c.watchdog.enabled);
        assert!((c.clip_norm - 0.0).abs() < f32::EPSILON);
        assert!(c.fault.is_none());
        let on = c.with_watchdog(WatchdogConfig {
            enabled: false, // forced on by the builder
            max_recoveries: 5,
            ..WatchdogConfig::default()
        });
        assert!(on.watchdog.enabled);
        assert_eq!(on.watchdog.max_recoveries, 5);
    }

    #[test]
    fn checkpointing_is_off_by_default() {
        let c = SarnConfig::default();
        assert_eq!(c.checkpoint_every, 0);
        assert!(c.checkpoint_dir.is_none());
        assert!(c.resume_from.is_none());
        assert!(!c.resume_auto);
        assert_eq!(c.checkpoint_keep, 3);
        let c = c
            .with_checkpointing("/tmp/ck", 5)
            .with_resume_from("/tmp/ck/x");
        assert_eq!(c.checkpoint_every, 5);
        assert!(c.checkpoint_dir.is_some() && c.resume_from.is_some());
    }

    #[test]
    fn variant_component_flags() {
        assert!(SarnVariant::Full.uses_spatial_matrix());
        assert!(SarnVariant::Full.uses_grid_negatives());
        assert!(!SarnVariant::WithoutM.uses_spatial_matrix());
        assert!(SarnVariant::WithoutM.uses_grid_negatives());
        assert!(SarnVariant::WithoutNL.uses_spatial_matrix());
        assert!(!SarnVariant::WithoutNL.uses_grid_negatives());
        assert!(!SarnVariant::WithoutMNL.uses_spatial_matrix());
        assert!(!SarnVariant::WithoutMNL.uses_grid_negatives());
    }
}
