//! Road-segment feature discretization and embedding (paper §4.3, "Feature
//! embedding layer").
//!
//! Each segment is a 5-tuple with seven feature values: road type, length,
//! radian, and the start/end coordinates (two values each). Real-valued
//! features are discretized into equi-sized bins — 5 m for length, 10° for
//! radian, 50 m for coordinates — and every feature value is embedded by its
//! own linear layer (equivalently: a per-feature embedding table), with the
//! seven outputs concatenated into `x_i ∈ R^{d_f}`.

use rand::Rng;
use sarn_geo::LocalProjection;
use sarn_roadnet::{HighwayClass, RoadNetwork};
use sarn_tensor::{init, Graph, ParamId, ParamStore, Var};

/// Bin width for segment length, meters.
const LENGTH_BIN_M: f64 = 5.0;
/// Bin width for radian, degrees.
const RADIAN_BIN_DEG: f64 = 10.0;
/// Bin width for coordinates, meters.
const COORD_BIN_M: f64 = 50.0;

/// Number of discrete features per segment.
pub const NUM_FEATURES: usize = 7;

/// Discretized integer features for every segment of a network.
#[derive(Clone, Debug)]
pub struct DiscretizedFeatures {
    /// `n x NUM_FEATURES` bin ids, row-major.
    ids: Vec<usize>,
    /// Vocabulary size per feature.
    vocab: [usize; NUM_FEATURES],
    n: usize,
}

impl DiscretizedFeatures {
    /// Discretizes all segments of a network.
    pub fn from_network(net: &RoadNetwork) -> Self {
        let bbox = net.bbox();
        let proj = LocalProjection::new(sarn_geo::Point::new(bbox.min_lat, bbox.min_lon));
        let n = net.num_segments();
        let mut ids = Vec::with_capacity(n * NUM_FEATURES);
        let mut vocab = [0usize; NUM_FEATURES];
        for seg in net.segments() {
            let (sx, sy) = proj.project(&seg.start);
            let (ex, ey) = proj.project(&seg.end);
            let radian_deg = seg.radian.to_degrees();
            let row = [
                seg.class.index(),
                (seg.length_m / LENGTH_BIN_M).floor().max(0.0) as usize,
                (radian_deg / RADIAN_BIN_DEG).floor().rem_euclid(36.0) as usize,
                (sx / COORD_BIN_M).floor().max(0.0) as usize,
                (sy / COORD_BIN_M).floor().max(0.0) as usize,
                (ex / COORD_BIN_M).floor().max(0.0) as usize,
                (ey / COORD_BIN_M).floor().max(0.0) as usize,
            ];
            for (f, &id) in row.iter().enumerate() {
                vocab[f] = vocab[f].max(id + 1);
            }
            ids.extend_from_slice(&row);
        }
        vocab[0] = HighwayClass::ALL.len();
        Self { ids, vocab, n }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no segments are present.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bin id of feature `f` for segment `i`.
    pub fn id(&self, i: usize, f: usize) -> usize {
        self.ids[i * NUM_FEATURES + f]
    }

    /// Vocabulary size of feature `f`.
    pub fn vocab(&self, f: usize) -> usize {
        self.vocab[f]
    }

    /// Bin ids of one feature across all segments.
    pub fn feature_column(&self, f: usize) -> Vec<usize> {
        (0..self.n).map(|i| self.id(i, f)).collect()
    }
}

/// The shared feature-embedding layer: one embedding table per feature,
/// concatenated. `d_f = NUM_FEATURES * d_per_feature`.
pub struct FeatureEmbedding {
    tables: Vec<ParamId>,
    d_per_feature: usize,
}

impl FeatureEmbedding {
    /// Registers the per-feature embedding tables.
    pub fn new(
        store: &mut ParamStore,
        rng: &mut impl Rng,
        name: &str,
        feats: &DiscretizedFeatures,
        d_per_feature: usize,
    ) -> Self {
        let tables = (0..NUM_FEATURES)
            .map(|f| {
                store.add(
                    format!("{name}.emb{f}"),
                    init::normal(rng, feats.vocab(f), d_per_feature, 0.1),
                )
            })
            .collect();
        Self {
            tables,
            d_per_feature,
        }
    }

    /// Output width `d_f`.
    pub fn d_f(&self) -> usize {
        NUM_FEATURES * self.d_per_feature
    }

    /// Parameter ids of the embedding tables.
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.tables.clone()
    }

    /// Records the lookup of all segments on the tape: returns the
    /// `n x d_f` feature matrix `X`.
    pub fn forward(&self, g: &Graph, store: &ParamStore, feats: &DiscretizedFeatures) -> Var {
        let parts: Vec<Var> = (0..NUM_FEATURES)
            .map(|f| {
                let table = g.param(store, self.tables[f]);
                g.gather_rows(table, &feats.feature_column(f))
            })
            .collect();
        g.concat_cols(&parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sarn_roadnet::{City, SynthConfig};

    fn feats() -> (RoadNetwork, DiscretizedFeatures) {
        let net = SynthConfig::city(City::Chengdu).scaled(0.3).generate();
        let f = DiscretizedFeatures::from_network(&net);
        (net, f)
    }

    #[test]
    fn discretization_covers_all_segments() {
        let (net, f) = feats();
        assert_eq!(f.len(), net.num_segments());
        for i in 0..f.len() {
            for c in 0..NUM_FEATURES {
                assert!(f.id(i, c) < f.vocab(c), "feature {c} id out of vocab");
            }
        }
    }

    #[test]
    fn radian_bins_have_36_buckets_max() {
        let (_, f) = feats();
        assert!(f.vocab(2) <= 36);
    }

    #[test]
    fn type_vocab_is_highway_class_count() {
        let (_, f) = feats();
        assert_eq!(f.vocab(0), 7);
    }

    #[test]
    fn embedding_forward_shapes_and_grads() {
        let (_, f) = feats();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let emb = FeatureEmbedding::new(&mut store, &mut rng, "fe", &f, 4);
        assert_eq!(emb.d_f(), 28);
        let g = Graph::new();
        let x = emb.forward(&g, &store, &f);
        assert_eq!(g.shape(x), (f.len(), 28));
        let loss = g.mean_all(g.sqr(x));
        g.backward(loss);
        g.accumulate_grads(&mut store);
        for id in emb.param_ids() {
            assert!(store.grad(id).norm_sq() > 0.0);
        }
    }

    #[test]
    fn nearby_parallel_segments_share_coordinate_bins() {
        let (net, f) = feats();
        // Find two segments whose midpoints are < 10 m apart; they should
        // agree on most coordinate bins.
        let mut found = false;
        'outer: for i in 0..net.num_segments() {
            for j in (i + 1)..net.num_segments() {
                let d =
                    sarn_geo::haversine_m(&net.segment(i).midpoint(), &net.segment(j).midpoint());
                if d < 10.0 {
                    let agree = (3..7).filter(|&c| f.id(i, c) == f.id(j, c)).count();
                    assert!(agree >= 2, "only {agree} coord bins agree");
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "no close pair in synthetic network");
    }
}
