//! # sarn-core
//!
//! Rust implementation of **SARN** — *Spatial Structure-Aware Road Network
//! Embedding via Graph Contrastive Learning* (Chang, Tanin, Cao, Qi;
//! EDBT 2023). SARN learns generic, task-agnostic road-segment embeddings
//! with self-supervised graph contrastive learning, augmented with four
//! spatial components:
//!
//! 1. [`SpatialSimilarity`] — the spatial similarity matrix `A^s` (Eq. 3–5);
//! 2. [`Augmenter`] — spatial importance-based graph augmentation (Eq. 6–7);
//! 3. [`CellQueues`] — spatial distance-based negative sampling (Eq. 13–14);
//! 4. the two-level contrastive loss (Eq. 15–17), applied by [`train`].
//!
//! ## Quickstart
//!
//! ```no_run
//! use sarn_core::{train, SarnConfig};
//! use sarn_roadnet::{City, SynthConfig};
//!
//! let net = SynthConfig::city(City::Chengdu).generate();
//! let trained = train(&net, &SarnConfig::small());
//! let h = &trained.embeddings; // n x d road-segment embeddings
//! assert_eq!(h.rows(), net.num_segments());
//! ```

#![warn(missing_docs)]

mod augment;
pub mod checkpoint;
mod config;
mod features;
mod model;
mod queues;
mod similarity;
mod train;
pub mod watchdog;

pub use augment::{weighted_sample_without_replacement, AugmentConfig, Augmenter, GraphView};
pub use checkpoint::{Checkpoint, CheckpointError, CheckpointMeta, OptimState, QueueState};
pub use config::{LossSimilarity, Readout, SarnConfig, SarnVariant};
pub use features::{DiscretizedFeatures, FeatureEmbedding, NUM_FEATURES};
pub use model::SarnModel;
pub use queues::CellQueues;
pub use sarn_par::ReductionOrder;
pub use similarity::{
    join_cell_side_m, pairwise_similarity, SpatialIndex, SpatialJoin, SpatialSimilarity,
    SpatialSimilarityConfig,
};
pub use train::{train, try_train, warm_start_apply, zero_grads_except, SarnTrained};
pub use watchdog::{
    embedding_defect, DivergenceReport, EmbeddingDefect, FaultKind, FaultSpec, HealthViolation,
    RecoveryEvent, TrainError, Watchdog, WatchdogConfig,
};
