//! The SARN network: shared feature embedding, GAT encoder `F`, projection
//! head `P`, and a momentum branch `F'`, `P'` with the same layout
//! (paper §4.3, Fig. 2).

use rand::rngs::StdRng;
use rand::SeedableRng;
use sarn_roadnet::RoadNetwork;
use sarn_tensor::layers::{Activation, EdgeIndex, Ffn, GatEncoder};
use sarn_tensor::{Graph, ParamId, ParamStore, Tensor, Var};

use crate::config::SarnConfig;
use crate::features::{DiscretizedFeatures, FeatureEmbedding};

/// The SARN model: layer definitions plus the query (`F`, `P`) and momentum
/// (`F'`, `P'`) parameter stores. The two stores share one layout, so every
/// layer can run against either.
pub struct SarnModel {
    feats: DiscretizedFeatures,
    femb: FeatureEmbedding,
    encoder: GatEncoder,
    proj: Ffn,
    /// Query branch parameters (updated by gradient descent).
    pub store: ParamStore,
    /// Momentum branch parameters (updated by Eq. 12 EMA).
    pub store_momentum: ParamStore,
}

impl SarnModel {
    /// Builds the model for a road network, initializing both branches to
    /// identical weights.
    pub fn new(net: &RoadNetwork, cfg: &SarnConfig) -> Self {
        let feats = DiscretizedFeatures::from_network(net);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let femb = FeatureEmbedding::new(&mut store, &mut rng, "femb", &feats, cfg.d_per_feature);
        let encoder = GatEncoder::new(
            &mut store,
            &mut rng,
            "enc",
            femb.d_f(),
            cfg.d,
            cfg.n_layers,
            cfg.n_heads,
        );
        let proj = Ffn::new(
            &mut store,
            &mut rng,
            "proj",
            &[cfg.d, cfg.d, cfg.d_z],
            Activation::Relu,
        );
        let store_momentum = store.clone();
        Self {
            feats,
            femb,
            encoder,
            proj,
            store,
            store_momentum,
        }
    }

    /// Discretized features of the underlying network.
    pub fn features(&self) -> &DiscretizedFeatures {
        &self.feats
    }

    /// Records the encoder forward pass `H = F(X, view)` on a tape using the
    /// given parameter store (query or momentum branch).
    pub fn encode(&self, g: &Graph, store: &ParamStore, edges: &EdgeIndex) -> Var {
        let x = self.femb.forward(g, store, &self.feats);
        self.encoder.forward(g, store, x, edges)
    }

    /// Records the projection `Z = P(H)` on a tape.
    pub fn project(&self, g: &Graph, store: &ParamStore, h: Var) -> Var {
        self.proj.forward(g, store, h)
    }

    /// Runs a full, gradient-free forward pass and returns the `n x d`
    /// embedding matrix (used after training and by the momentum branch).
    pub fn embed_detached(&self, store: &ParamStore, edges: &EdgeIndex) -> Tensor {
        let g = Graph::new();
        let h = self.encode(&g, store, edges);
        g.value(h)
    }

    /// Runs a gradient-free forward + projection and returns `n x d_z`.
    pub fn embed_projected_detached(&self, store: &ParamStore, edges: &EdgeIndex) -> Tensor {
        let g = Graph::new();
        let h = self.encode(&g, store, edges);
        let z = self.project(&g, store, h);
        g.value(z)
    }

    /// Applies the Eq. 12 momentum update `W' = m W' + (1-m) W`.
    pub fn momentum_update(&mut self, m: f32) {
        self.store_momentum.momentum_update_from(&self.store, m);
    }

    /// Parameter ids of the final GAT layer (the part SARN* fine-tunes).
    pub fn last_gat_layer_ids(&self) -> Vec<ParamId> {
        self.encoder.last_layer_param_ids()
    }

    /// All parameter ids of the query branch.
    pub fn all_param_ids(&self) -> Vec<ParamId> {
        self.store.ids().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augment::GraphView;
    use sarn_roadnet::{City, SynthConfig};

    fn setup() -> (RoadNetwork, SarnModel, EdgeIndex) {
        let net = SynthConfig::city(City::Chengdu).scaled(0.25).generate();
        let cfg = SarnConfig::tiny();
        let model = SarnModel::new(&net, &cfg);
        let view = GraphView::full(
            net.num_segments(),
            net.topo_edges().iter().map(|&(i, j, _)| (i, j)),
            std::iter::empty(),
        );
        let idx = view.edge_index();
        (net, model, idx)
    }

    #[test]
    fn branches_start_identical() {
        let (net, model, idx) = setup();
        let hq = model.embed_detached(&model.store, &idx);
        let hm = model.embed_detached(&model.store_momentum, &idx);
        assert_eq!(hq.shape(), (net.num_segments(), SarnConfig::tiny().d));
        for (a, b) in hq.data().iter().zip(hm.data().iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn momentum_update_moves_momentum_toward_query() {
        let (_, mut model, idx) = setup();
        // Perturb the query branch.
        for id in model.all_param_ids() {
            model
                .store
                .value_mut(id)
                .data_mut()
                .iter_mut()
                .for_each(|v| *v += 0.1);
        }
        let before = model.embed_detached(&model.store_momentum, &idx);
        model.momentum_update(0.5);
        let after = model.embed_detached(&model.store_momentum, &idx);
        let query = model.embed_detached(&model.store, &idx);
        // After the EMA step the momentum output moves toward the query's.
        let d_before: f32 = before
            .data()
            .iter()
            .zip(query.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        let d_after: f32 = after
            .data()
            .iter()
            .zip(query.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(d_after < d_before);
    }

    #[test]
    fn projection_reduces_dimension() {
        let (net, model, idx) = setup();
        let z = model.embed_projected_detached(&model.store, &idx);
        let cfg = SarnConfig::tiny();
        assert_eq!(z.shape(), (net.num_segments(), cfg.d_z));
        assert!(cfg.d_z < cfg.d);
        assert!(z.all_finite());
    }
}
