//! Spatial distance-based negative sampling (paper §4.4, Technical
//! Contribution 3).
//!
//! The road-network space is partitioned by a uniform grid; each cell keeps
//! a MoCo-style FIFO queue of the last `φ` projected embeddings produced by
//! the momentum branch for segments whose midpoints fall in the cell. For a
//! target segment `s_i`:
//!
//! - **local negatives** `N_l(s_i)`: entries of `s_i`'s own cell queue that
//!   belong to other segments (Eq. 13);
//! - **global negatives** `N_g(s_i)`: the mean readout `R(Q(c_k))` of every
//!   other cell's queue (Eq. 14), with `R(Q(s_i.cell))` serving as the
//!   positive of the global contrastive loss.

use std::collections::VecDeque;

use sarn_geo::Grid;
use sarn_roadnet::RoadNetwork;
use sarn_tensor::Tensor;

use crate::config::Readout;
use crate::watchdog::{embedding_defect, EmbeddingDefect};

/// Below this many cells the batched readout stays serial.
const PAR_MIN_CELLS: usize = 16;

/// Per-cell embedding queues over a road network.
pub struct CellQueues {
    grid: Grid,
    /// Cell id per segment (midpoint-based).
    segment_cell: Vec<usize>,
    /// FIFO queues of `(segment id, embedding row)` per cell.
    queues: Vec<VecDeque<(usize, Vec<f32>)>>,
    /// Queue capacity `φ` per cell.
    capacity: usize,
    dim: usize,
    readout: Readout,
}

impl CellQueues {
    /// Builds queues over `net` with cell side `clen_m` and a **total**
    /// sample budget `total_k` split evenly across cells (the paper fixes
    /// `K = 1000` and derives `φ` from the cell count).
    pub fn new(net: &RoadNetwork, clen_m: f64, total_k: usize, dim: usize) -> Self {
        Self::with_readout(net, clen_m, total_k, dim, Readout::Mean)
    }

    /// Like [`CellQueues::new`] with an explicit readout aggregation.
    pub fn with_readout(
        net: &RoadNetwork,
        clen_m: f64,
        total_k: usize,
        dim: usize,
        readout: Readout,
    ) -> Self {
        let grid = Grid::new(*net.bbox(), clen_m);
        let capacity = (total_k / grid.num_cells()).max(2);
        let segment_cell = (0..net.num_segments())
            .map(|i| grid.cell_of(&net.segment(i).midpoint()))
            .collect();
        Self {
            queues: vec![VecDeque::new(); grid.num_cells()],
            grid,
            segment_cell,
            capacity,
            dim,
            readout,
        }
    }

    /// Queue capacity `φ` per cell.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Embedding dimensionality of the queued entries.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Snapshot of every cell queue's contents in FIFO order (front first),
    /// for checkpointing. Re-pushing the entries of each cell in this order
    /// reproduces the queue state — including its eviction cursor — exactly.
    pub fn export_entries(&self) -> Vec<Vec<(usize, Vec<f32>)>> {
        self.queues
            .iter()
            .map(|q| q.iter().cloned().collect())
            .collect()
    }

    /// Restores a snapshot taken by [`CellQueues::export_entries`],
    /// replacing the current contents. The snapshot must match this queue
    /// set's geometry: same cell count, entry dimensionality, per-cell
    /// occupancy within capacity, and every entry's segment must map to the
    /// cell it is stored under.
    pub fn restore_entries(&mut self, cells: &[Vec<(usize, Vec<f32>)>]) -> Result<(), String> {
        if cells.len() != self.num_cells() {
            return Err(format!(
                "queue cell count mismatch: expected {}, found {}",
                self.num_cells(),
                cells.len()
            ));
        }
        for (c, entries) in cells.iter().enumerate() {
            if entries.len() > self.capacity {
                return Err(format!(
                    "cell {c} holds {} entries, capacity is {}",
                    entries.len(),
                    self.capacity
                ));
            }
            for (seg, e) in entries {
                if e.len() != self.dim {
                    return Err(format!(
                        "cell {c} entry for segment {seg} has dim {}, expected {}",
                        e.len(),
                        self.dim
                    ));
                }
                if *self
                    .segment_cell
                    .get(*seg)
                    .ok_or_else(|| format!("cell {c} entry references unknown segment {seg}"))?
                    != c
                {
                    return Err(format!(
                        "segment {seg} stored under cell {c} but maps to cell {}",
                        self.segment_cell[*seg]
                    ));
                }
            }
        }
        for (q, entries) in self.queues.iter_mut().zip(cells) {
            *q = entries.iter().cloned().collect();
        }
        Ok(())
    }

    /// Number of grid cells.
    pub fn num_cells(&self) -> usize {
        self.grid.num_cells()
    }

    /// Cell of a segment.
    pub fn cell_of_segment(&self, seg: usize) -> usize {
        self.segment_cell[seg]
    }

    /// Pushes the momentum-branch embedding of `seg` into its cell queue,
    /// evicting the oldest entry when full.
    pub fn push(&mut self, seg: usize, embedding: &[f32]) {
        debug_assert_eq!(embedding.len(), self.dim);
        let q = &mut self.queues[self.segment_cell[seg]];
        if q.len() == self.capacity {
            q.pop_front();
        }
        q.push_back((seg, embedding.to_vec()));
    }

    /// [`CellQueues::push`] with admission checks, used by the training
    /// watchdog: a wrong-dimension or non-finite embedding is rejected with
    /// a typed [`EmbeddingDefect`] and the queue is left untouched — a
    /// corrupt entry would otherwise poison every later batch that draws it
    /// as a negative candidate. The same screen guards the serving store's
    /// artifact admission.
    pub fn push_checked(&mut self, seg: usize, embedding: &[f32]) -> Result<(), EmbeddingDefect> {
        if let Some(defect) = embedding_defect(embedding, self.dim) {
            return Err(defect);
        }
        self.push(seg, embedding);
        Ok(())
    }

    /// Local negatives of `seg`: embeddings in its own cell queue from other
    /// segments (Eq. 13). Rows of the returned matrix; empty when the queue
    /// holds nothing usable.
    pub fn local_negatives(&self, seg: usize) -> Vec<&[f32]> {
        self.queues[self.segment_cell[seg]]
            .iter()
            .filter(|(s, _)| *s != seg)
            .map(|(_, e)| e.as_slice())
            .collect()
    }

    /// Readout `R(Q(c))` of one cell (mean by default, max when configured),
    /// or `None` when empty.
    pub fn readout(&self, cell: usize) -> Option<Vec<f32>> {
        let q = &self.queues[cell];
        if q.is_empty() {
            return None;
        }
        match self.readout {
            Readout::Mean => {
                let mut acc = vec![0.0f32; self.dim];
                for (_, e) in q {
                    for (a, &v) in acc.iter_mut().zip(e.iter()) {
                        *a += v;
                    }
                }
                let inv = 1.0 / q.len() as f32;
                for a in &mut acc {
                    *a *= inv;
                }
                Some(acc)
            }
            Readout::Max => {
                let mut acc = vec![f32::NEG_INFINITY; self.dim];
                for (_, e) in q {
                    for (a, &v) in acc.iter_mut().zip(e.iter()) {
                        *a = a.max(v);
                    }
                }
                Some(acc)
            }
        }
    }

    /// Global negatives of `seg`: readouts of every *other* non-empty cell
    /// (Eq. 14).
    pub fn global_negatives(&self, seg: usize) -> Vec<Vec<f32>> {
        let own = self.segment_cell[seg];
        (0..self.num_cells())
            .filter(|&c| c != own)
            .filter_map(|c| self.readout(c))
            .collect()
    }

    /// Builds the candidate matrix of the **local** loss for `seg`:
    /// row 0 is the positive `z'_i`, the rest are local negatives (Eq. 15).
    pub fn local_candidates(&self, seg: usize, positive: &[f32]) -> Tensor {
        let negs = self.local_negatives(seg);
        let mut data = Vec::with_capacity((1 + negs.len()) * self.dim);
        data.extend_from_slice(positive);
        for n in &negs {
            data.extend_from_slice(n);
        }
        Tensor::from_vec(1 + negs.len(), self.dim, data)
    }

    /// Builds the candidate matrix of the **global** loss for `seg`: row 0
    /// is the own-cell readout `z_i^+ = R(Q(s_i.cell))` (falling back to
    /// `z'_i` while the queue is still empty), the rest are the other cells'
    /// readouts (Eq. 16).
    pub fn global_candidates(&self, seg: usize, fallback_positive: &[f32]) -> Tensor {
        let own = self.segment_cell[seg];
        let pos = self
            .readout(own)
            .unwrap_or_else(|| fallback_positive.to_vec());
        let negs = self.global_negatives(seg);
        let mut data = Vec::with_capacity((1 + negs.len()) * self.dim);
        data.extend_from_slice(&pos);
        for n in &negs {
            data.extend_from_slice(n);
        }
        Tensor::from_vec(1 + negs.len(), self.dim, data)
    }

    /// Readouts of every cell, computed once (for batched candidate
    /// assembly — the readouts are shared by all anchors of a mini-batch).
    /// Cells are independent, so ranges of them are reduced concurrently
    /// when the parallel backend is enabled; each readout is produced by
    /// exactly one thread with the serial accumulation order, and the
    /// per-range results concatenate back into cell order.
    pub fn all_readouts(&self) -> Vec<Option<Vec<f32>>> {
        let parts = sarn_par::par_ranges(self.num_cells(), PAR_MIN_CELLS, |range| {
            range.map(|c| self.readout(c)).collect::<Vec<_>>()
        });
        parts.into_iter().flatten().collect()
    }

    /// Like [`CellQueues::global_candidates`] but assembling from
    /// precomputed [`CellQueues::all_readouts`].
    pub fn global_candidates_from(
        &self,
        readouts: &[Option<Vec<f32>>],
        seg: usize,
        fallback_positive: &[f32],
    ) -> Tensor {
        let own = self.segment_cell[seg];
        let pos = readouts[own].as_deref().unwrap_or(fallback_positive);
        let mut rows = 1;
        let mut data = Vec::with_capacity(readouts.len() * self.dim);
        data.extend_from_slice(pos);
        for (c, r) in readouts.iter().enumerate() {
            if c == own {
                continue;
            }
            if let Some(r) = r {
                data.extend_from_slice(r);
                rows += 1;
            }
        }
        Tensor::from_vec(rows, self.dim, data)
    }

    /// Total entries across all queues (bounded by `num_cells * φ`).
    pub fn total_entries(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_roadnet::{City, SynthConfig};

    fn queues() -> (RoadNetwork, CellQueues) {
        let net = SynthConfig::city(City::Chengdu).scaled(0.3).generate();
        let q = CellQueues::new(&net, 600.0, 100, 4);
        (net, q)
    }

    #[test]
    fn capacity_divides_budget_across_cells() {
        let (_, q) = queues();
        assert_eq!(q.capacity(), (100 / q.num_cells()).max(2));
    }

    #[test]
    fn push_evicts_fifo() {
        let (_, mut q) = queues();
        let cap = q.capacity();
        // All pushes to the same segment's cell.
        for k in 0..(cap + 3) {
            q.push(0, &[k as f32; 4]);
        }
        let cell = q.cell_of_segment(0);
        assert_eq!(q.queues[cell].len(), cap);
        // Oldest entries evicted: first remaining has value cap+3-cap = 3.
        assert_eq!(q.queues[cell][0].1[0], 3.0);
    }

    #[test]
    fn local_negatives_exclude_own_entries() {
        let (net, mut q) = queues();
        let seg = 0;
        let cell = q.cell_of_segment(seg);
        // Find another segment in the same cell.
        let other = (1..net.num_segments())
            .find(|&s| q.cell_of_segment(s) == cell)
            .expect("cell with two segments");
        q.push(seg, &[1.0; 4]);
        q.push(other, &[2.0; 4]);
        let negs = q.local_negatives(seg);
        assert_eq!(negs.len(), 1);
        assert_eq!(negs[0][0], 2.0);
    }

    #[test]
    fn max_readout_takes_elementwise_maximum() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.3).generate();
        let mut q = CellQueues::with_readout(&net, 600.0, 100, 4, crate::config::Readout::Max);
        q.push(0, &[1.0, 9.0, 3.0, 4.0]);
        q.push(0, &[5.0, 2.0, 3.0, 8.0]);
        let r = q.readout(q.cell_of_segment(0)).unwrap();
        assert_eq!(r, vec![5.0, 9.0, 3.0, 8.0]);
    }

    #[test]
    fn readout_is_mean_of_queue() {
        let (_, mut q) = queues();
        q.push(0, &[1.0, 2.0, 3.0, 4.0]);
        q.push(0, &[3.0, 4.0, 5.0, 6.0]);
        let r = q.readout(q.cell_of_segment(0)).unwrap();
        assert_eq!(r, vec![2.0, 3.0, 4.0, 5.0]);
        assert!(
            q.readout(q.num_cells() - 1).is_none() || q.cell_of_segment(0) == q.num_cells() - 1
        );
    }

    #[test]
    fn global_negatives_skip_own_and_empty_cells() {
        let (net, mut q) = queues();
        // Fill two distinct cells.
        let a = 0;
        let b = (1..net.num_segments())
            .find(|&s| q.cell_of_segment(s) != q.cell_of_segment(a))
            .expect("second cell");
        q.push(a, &[1.0; 4]);
        q.push(b, &[5.0; 4]);
        let negs = q.global_negatives(a);
        assert_eq!(negs.len(), 1);
        assert_eq!(negs[0][0], 5.0);
    }

    #[test]
    fn candidate_matrices_place_positive_first() {
        let (net, mut q) = queues();
        let a = 0;
        let b = (1..net.num_segments())
            .find(|&s| q.cell_of_segment(s) != q.cell_of_segment(a))
            .unwrap();
        q.push(a, &[1.0; 4]);
        q.push(b, &[5.0; 4]);
        let local = q.local_candidates(a, &[9.0; 4]);
        assert_eq!(local.row_slice(0), &[9.0; 4]);
        let global = q.global_candidates(a, &[7.0; 4]);
        // Own-cell readout is the positive.
        assert_eq!(global.row_slice(0), &[1.0; 4]);
        assert_eq!(global.rows(), 2);
    }

    #[test]
    fn cached_readout_assembly_matches_direct_path() {
        let (net, mut q) = queues();
        let a = 0;
        let b = (1..net.num_segments())
            .find(|&s| q.cell_of_segment(s) != q.cell_of_segment(a))
            .unwrap();
        q.push(a, &[1.0; 4]);
        q.push(b, &[5.0; 4]);
        let direct = q.global_candidates(a, &[7.0; 4]);
        let readouts = q.all_readouts();
        let cached = q.global_candidates_from(&readouts, a, &[7.0; 4]);
        assert_eq!(direct, cached);
    }

    #[test]
    fn export_restore_roundtrips_contents_and_cursor() {
        let (net, mut q) = queues();
        let cap = q.capacity();
        for k in 0..(cap + 2) {
            q.push(0, &[k as f32; 4]); // wraps: eviction cursor advanced
        }
        let other = (1..net.num_segments())
            .find(|&s| q.cell_of_segment(s) != q.cell_of_segment(0))
            .unwrap();
        q.push(other, &[7.0; 4]);
        let snap = q.export_entries();

        let mut fresh = CellQueues::new(&net, 600.0, 100, 4);
        fresh.restore_entries(&snap).unwrap();
        assert_eq!(fresh.export_entries(), snap);
        assert_eq!(fresh.total_entries(), q.total_entries());
        // The restored FIFO evicts in the same order as the original.
        fresh.push(0, &[99.0; 4]);
        q.push(0, &[99.0; 4]);
        assert_eq!(fresh.export_entries(), q.export_entries());
    }

    #[test]
    fn restore_rejects_mismatched_geometry() {
        let (net, q) = queues();
        let mut other = CellQueues::new(&net, 600.0, 100, 4);
        // Wrong cell count.
        assert!(other.restore_entries(&snapless(q.num_cells() + 1)).is_err());
        // Entry under the wrong cell.
        let seg = 0;
        let wrong_cell = (0..q.num_cells())
            .find(|&c| c != q.cell_of_segment(seg))
            .unwrap();
        let mut cells = snapless(q.num_cells());
        cells[wrong_cell].push((seg, vec![1.0; 4]));
        assert!(other.restore_entries(&cells).is_err());
        // Wrong dimensionality.
        let mut cells = snapless(q.num_cells());
        cells[q.cell_of_segment(seg)].push((seg, vec![1.0; 3]));
        assert!(other.restore_entries(&cells).is_err());
        // Over capacity.
        let mut cells = snapless(q.num_cells());
        for _ in 0..(q.capacity() + 1) {
            cells[q.cell_of_segment(seg)].push((seg, vec![1.0; 4]));
        }
        assert!(other.restore_entries(&cells).is_err());
    }

    fn snapless(cells: usize) -> Vec<Vec<(usize, Vec<f32>)>> {
        vec![Vec::new(); cells]
    }

    #[test]
    fn push_checked_rejects_corrupt_entries_and_admits_clean_ones() {
        let (_, mut q) = queues();
        // Wrong dimension: rejected, queue untouched.
        let err = q.push_checked(0, &[1.0; 3]).unwrap_err();
        assert_eq!(
            err,
            EmbeddingDefect::DimMismatch {
                found: 3,
                expected: 4
            }
        );
        assert!(err.to_string().contains("dim 3"), "{err}");
        assert_eq!(q.total_entries(), 0);
        // Non-finite component: rejected with its position.
        let err = q.push_checked(0, &[1.0, f32::NAN, 2.0, 3.0]).unwrap_err();
        assert!(matches!(
            err,
            EmbeddingDefect::NonFinite { component: 1, .. }
        ));
        assert!(err.to_string().contains("component 1"), "{err}");
        assert_eq!(q.total_entries(), 0);
        // Clean entry: admitted exactly like push.
        q.push_checked(0, &[1.0; 4]).unwrap();
        assert_eq!(q.total_entries(), 1);
    }

    #[test]
    fn global_positive_falls_back_when_own_cell_empty() {
        let (net, mut q) = queues();
        let a = 0;
        let b = (1..net.num_segments())
            .find(|&s| q.cell_of_segment(s) != q.cell_of_segment(a))
            .unwrap();
        q.push(b, &[5.0; 4]);
        let global = q.global_candidates(a, &[7.0; 4]);
        assert_eq!(global.row_slice(0), &[7.0; 4]);
    }
}
