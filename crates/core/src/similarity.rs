//! The spatial similarity matrix `A^s` (paper §4.1, Technical Contribution 1).
//!
//! `A^s_{i,j}` averages a distance similarity and an angular similarity
//! (Eq. 3–5), each normalized to `[0, 1]` by a cosine ramp with thresholds
//! `δ_ds` (meters, haversine between midpoints) and `δ_as` (radians,
//! absolute angular distance). A pair gets an undirected *spatial edge*
//! when it is both within `δ_ds` and within `δ_as` (otherwise one of the
//! cosine terms is zero and the pair carries no usable spatial signal —
//! this keeps `A^s` as sparse as the paper's Table 3 reports).
//!
//! Construction uses a `δ_ds`-sized spatial hash, so the cost is near-linear
//! in the number of segments instead of `O(n^2)`. When the parallel backend
//! is enabled (see [`sarn_par::set_num_threads`]), segments are partitioned
//! into contiguous index ranges scanned concurrently; each range emits its
//! edges in the serial scan order and the per-range results are concatenated
//! in range order, so the edge list is identical to the serial build.

use std::f64::consts::PI;

use sarn_geo::{angular_distance, haversine_m, Grid};
use sarn_roadnet::RoadNetwork;

/// Below this many segments the build stays serial: the whole scan is
/// cheaper than a thread spawn.
const PAR_MIN_SEGMENTS: usize = 512;

/// Parameters of `A^s`.
#[derive(Clone, Copy, Debug)]
pub struct SpatialSimilarityConfig {
    /// Spatial distance threshold `δ_ds` in meters (paper default: 200 m).
    pub delta_ds_m: f64,
    /// Angular distance threshold `δ_as` in radians (paper default: π/8).
    pub delta_as_rad: f64,
}

impl Default for SpatialSimilarityConfig {
    fn default() -> Self {
        Self {
            delta_ds_m: 200.0,
            delta_as_rad: PI / 8.0,
        }
    }
}

/// The sparse spatial similarity matrix: undirected weighted edges,
/// stored once with `i < j`.
#[derive(Clone, Debug)]
pub struct SpatialSimilarity {
    edges: Vec<(usize, usize, f64)>,
}

impl SpatialSimilarity {
    /// Builds `A^s` for a road network.
    pub fn build(net: &RoadNetwork, cfg: &SpatialSimilarityConfig) -> Self {
        let n = net.num_segments();
        let midpoints: Vec<_> = (0..n).map(|i| net.segment(i).midpoint()).collect();
        let grid = Grid::new(*net.bbox(), cfg.delta_ds_m.max(1.0));
        let mut cell_members: Vec<Vec<usize>> = vec![Vec::new(); grid.num_cells()];
        for (i, mp) in midpoints.iter().enumerate() {
            cell_members[grid.cell_of(mp)].push(i);
        }
        let parts = sarn_par::par_ranges(n, PAR_MIN_SEGMENTS, |range| {
            let mut edges = Vec::new();
            for i in range {
                let mp = &midpoints[i];
                for cell in grid.neighborhood(grid.cell_of(mp), 1) {
                    for &j in &cell_members[cell] {
                        if j <= i {
                            continue;
                        }
                        if let Some(w) = pairwise_similarity(net, i, j, cfg) {
                            edges.push((i, j, w));
                        }
                    }
                }
            }
            edges
        });
        Self {
            edges: parts.into_iter().flatten().collect(),
        }
    }

    /// Undirected spatial edges `(i, j, A^s_{i,j})` with `i < j`.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Number of spatial edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// `A^s_{i,j}` for one pair, or `None` when either threshold is exceeded.
pub fn pairwise_similarity(
    net: &RoadNetwork,
    i: usize,
    j: usize,
    cfg: &SpatialSimilarityConfig,
) -> Option<f64> {
    if i == j {
        return None;
    }
    let (si, sj) = (net.segment(i), net.segment(j));
    let sp = haversine_m(&si.midpoint(), &sj.midpoint());
    if sp >= cfg.delta_ds_m {
        return None;
    }
    let ag = angular_distance(si.radian, sj.radian);
    if ag >= cfg.delta_as_rad {
        return None;
    }
    let ds = (PI * sp.min(cfg.delta_ds_m) / (2.0 * cfg.delta_ds_m)).cos();
    let asim = (PI * ag.min(cfg.delta_as_rad) / (2.0 * cfg.delta_as_rad)).cos();
    Some((ds + asim) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_geo::Point;
    use sarn_roadnet::{City, HighwayClass, RoadSegment, SynthConfig};

    fn seg(start: (f64, f64), end: (f64, f64)) -> RoadSegment {
        RoadSegment::between(
            HighwayClass::Primary,
            Point::new(start.0, start.1),
            Point::new(end.0, end.1),
        )
    }

    fn tiny_net() -> RoadNetwork {
        // Three northbound parallel segments ~55 m apart, plus one eastbound.
        let a = seg((30.0, 104.0), (30.0008, 104.0));
        let b = seg((30.0, 104.0006), (30.0008, 104.0006));
        let c = seg((30.0, 104.01), (30.0008, 104.01)); // ~960 m away
        let d = seg((30.0004, 104.0), (30.0004, 104.0008)); // eastbound
        RoadNetwork::new(vec![a, b, c, d], &[(0, 1)])
    }

    #[test]
    fn close_parallel_segments_get_high_similarity() {
        let net = tiny_net();
        let cfg = SpatialSimilarityConfig::default();
        let w = pairwise_similarity(&net, 0, 1, &cfg).expect("should be similar");
        assert!(w > 0.7, "similarity {w}");
    }

    #[test]
    fn identical_direction_zero_distance_maxes_out() {
        let net = tiny_net();
        let cfg = SpatialSimilarityConfig::default();
        // A segment vs itself is excluded by definition (Eq. 3 diagonal).
        assert!(pairwise_similarity(&net, 0, 0, &cfg).is_none());
    }

    #[test]
    fn far_segments_are_pruned_by_delta_ds() {
        let net = tiny_net();
        let cfg = SpatialSimilarityConfig::default();
        assert!(pairwise_similarity(&net, 0, 2, &cfg).is_none());
    }

    #[test]
    fn perpendicular_segments_are_pruned_by_delta_as() {
        let net = tiny_net();
        let cfg = SpatialSimilarityConfig::default();
        assert!(pairwise_similarity(&net, 0, 3, &cfg).is_none());
    }

    #[test]
    fn similarity_decreases_with_distance() {
        let net = tiny_net();
        let near = SpatialSimilarityConfig::default();
        let w_near = pairwise_similarity(&net, 0, 1, &near).unwrap();
        // Same pair with a tighter threshold: normalized distance is larger,
        // so the cosine ramp value must shrink.
        let tight = SpatialSimilarityConfig {
            delta_ds_m: 80.0,
            ..near
        };
        let w_tight = pairwise_similarity(&net, 0, 1, &tight).unwrap();
        assert!(w_tight < w_near, "{w_tight} !< {w_near}");
    }

    #[test]
    fn build_on_synthetic_city_matches_table3_sparsity() {
        let net = SynthConfig::city(City::Chengdu).generate();
        let sim = SpatialSimilarity::build(&net, &SpatialSimilarityConfig::default());
        let n = net.num_segments() as f64;
        let ratio = sim.num_edges() as f64 / n;
        // The paper reports |A^s| ≈ 1.6 |S| on real cities; our lattice is
        // denser, so allow a broad but still sparse band.
        assert!(ratio > 0.5 && ratio < 12.0, "A^s ratio {ratio}");
        // All weights must be in (0, 1].
        for &(i, j, w) in sim.edges() {
            assert!(i < j);
            assert!(w > 0.0 && w <= 1.0, "weight {w}");
        }
    }

    #[test]
    fn build_finds_no_duplicate_pairs() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.3).generate();
        let sim = SpatialSimilarity::build(&net, &SpatialSimilarityConfig::default());
        let mut pairs: Vec<(usize, usize)> = sim.edges().iter().map(|&(i, j, _)| (i, j)).collect();
        let before = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), before);
    }
}
