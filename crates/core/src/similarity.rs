//! The spatial similarity matrix `A^s` (paper §4.1, Technical Contribution 1).
//!
//! `A^s_{i,j}` averages a distance similarity and an angular similarity
//! (Eq. 3–5), each normalized to `[0, 1]` by a cosine ramp with thresholds
//! `δ_ds` (meters, haversine between midpoints) and `δ_as` (radians,
//! absolute angular distance). A pair gets an undirected *spatial edge*
//! when it is both within `δ_ds` and within `δ_as` (otherwise one of the
//! cosine terms is zero and the pair carries no usable spatial signal —
//! this keeps `A^s` as sparse as the paper's Table 3 reports).
//!
//! # Join strategies
//!
//! Construction is a spatial self-join over segment midpoints, selected by
//! [`SpatialJoin`] (DESIGN.md §13):
//!
//! * [`SpatialJoin::Reference`] — the literal all-pairs `O(n^2)` scan. It is
//!   the *oracle*: trivially correct, and the order every suite pins — each
//!   `i` emits its partners `j > i` in ascending order.
//! * [`SpatialJoin::Grid`] (default) — a grid-bucketed join over
//!   [`sarn_geo::Grid`]: midpoints are bucketed into cells sized to cover
//!   the `δ_ds` ring (see [`join_cell_side_m`]), and each segment is
//!   compared only against candidates from its Chebyshev-1 cell
//!   neighborhood. Near-linear time on real road networks. Candidates are
//!   sorted per segment before scoring, and the weight of every surviving
//!   pair comes from the same [`pairwise_similarity`] call — so the edge
//!   list is **bit-for-bit identical** to the reference scan (same pairs,
//!   same weights, same order; `crates/core/tests/spatial_join_equivalence.rs`
//!   enforces it).
//!
//! Both joins parallelize identically when the backend is enabled (see
//! [`sarn_par::set_num_threads`]): segments are partitioned into contiguous
//! index ranges scanned concurrently, each range emits its edges in the
//! serial scan order, and the per-range results are concatenated in range
//! order — so the edge list does not depend on the thread count either.

use std::f64::consts::PI;

use sarn_geo::{angular_distance, haversine_m, BoundingBox, Grid, EARTH_RADIUS_M};
use sarn_roadnet::RoadNetwork;

/// Below this many segments the build stays serial: the whole scan is
/// cheaper than a thread spawn.
const PAR_MIN_SEGMENTS: usize = 512;

/// Which spatial self-join builds `A^s`.
///
/// An execution-strategy knob like [`sarn_par::ReductionOrder`]: both
/// strategies produce bit-identical edge lists, so the choice is excluded
/// from the checkpoint config fingerprint and may differ between a
/// checkpoint's producer and its resumer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SpatialJoin {
    /// All-pairs `O(n^2)` scan — the exactness oracle the equivalence
    /// suites compare against.
    Reference,
    /// Grid-bucketed join over [`sarn_geo::Grid`] cells sized to the
    /// `δ_ds` ring — near-linear on road networks, bit-identical output.
    #[default]
    Grid,
}

impl SpatialJoin {
    /// Parses the conventional knob spelling (case-insensitive
    /// `"reference"`/`"grid"`); anything else is `None`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "reference" | "ref" | "allpairs" => Some(Self::Reference),
            "grid" => Some(Self::Grid),
            _ => None,
        }
    }

    /// Reads `SARN_SPATIAL_JOIN` from the environment, defaulting to
    /// `Grid` when unset or unparseable.
    pub fn from_env() -> Self {
        std::env::var("SARN_SPATIAL_JOIN")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Stable lowercase label (`"reference"` / `"grid"`), the inverse of
    /// [`SpatialJoin::parse`].
    pub fn label(self) -> &'static str {
        match self {
            Self::Reference => "reference",
            Self::Grid => "grid",
        }
    }
}

/// Parameters of `A^s`.
#[derive(Clone, Copy, Debug)]
pub struct SpatialSimilarityConfig {
    /// Spatial distance threshold `δ_ds` in meters (paper default: 200 m).
    pub delta_ds_m: f64,
    /// Angular distance threshold `δ_as` in radians (paper default: π/8).
    pub delta_as_rad: f64,
    /// Join strategy building the matrix. Excluded from the config
    /// fingerprint: both strategies emit bit-identical edge lists.
    pub join: SpatialJoin,
}

impl Default for SpatialSimilarityConfig {
    fn default() -> Self {
        Self {
            delta_ds_m: 200.0,
            delta_as_rad: PI / 8.0,
            join: SpatialJoin::default(),
        }
    }
}

/// The sparse spatial similarity matrix: undirected weighted edges,
/// stored once with `i < j`.
#[derive(Clone, Debug)]
pub struct SpatialSimilarity {
    edges: Vec<(usize, usize, f64)>,
}

impl SpatialSimilarity {
    /// Builds `A^s` for a road network with the join strategy named in
    /// `cfg` (bit-identical output either way).
    pub fn build(net: &RoadNetwork, cfg: &SpatialSimilarityConfig) -> Self {
        let edges = match cfg.join {
            SpatialJoin::Reference => build_reference(net, cfg),
            SpatialJoin::Grid => build_grid(net, cfg),
        };
        Self { edges }
    }

    /// Undirected spatial edges `(i, j, A^s_{i,j})` with `i < j`.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Number of spatial edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }
}

/// The all-pairs oracle: every `(i, j)` with `i < j`, in ascending `(i, j)`
/// order.
fn build_reference(net: &RoadNetwork, cfg: &SpatialSimilarityConfig) -> Vec<(usize, usize, f64)> {
    let n = net.num_segments();
    sarn_par::par_flat_ranges(n, PAR_MIN_SEGMENTS, |range| {
        let mut edges = Vec::new();
        for i in range {
            for j in (i + 1)..n {
                if let Some(w) = pairwise_similarity(net, i, j, cfg) {
                    edges.push((i, j, w));
                }
            }
        }
        edges
    })
}

/// The grid-bucketed join: bucket midpoints into cells wide enough to
/// cover the `δ_ds` ring, then compare each segment only against the
/// sorted candidates of its Chebyshev-1 neighborhood. Sorting the
/// candidate list per segment restores the oracle's ascending-`j` emission
/// order, and the accept/weight decision is the same [`pairwise_similarity`]
/// call — hence bitwise-identical output.
fn build_grid(net: &RoadNetwork, cfg: &SpatialSimilarityConfig) -> Vec<(usize, usize, f64)> {
    let n = net.num_segments();
    let grid = Grid::new(*net.bbox(), join_cell_side_m(net.bbox(), cfg.delta_ds_m));
    // Midpoints are averages of in-box endpoints, so every one maps to a
    // real (unclamped) cell.
    let cell_of: Vec<usize> = (0..n)
        .map(|i| grid.cell_of(&net.segment(i).midpoint()))
        .collect();
    let mut cell_members: Vec<Vec<usize>> = vec![Vec::new(); grid.num_cells()];
    for (i, &c) in cell_of.iter().enumerate() {
        cell_members[c].push(i);
    }
    sarn_par::par_flat_ranges(n, PAR_MIN_SEGMENTS, |range| {
        let mut edges = Vec::new();
        // Both scratch buffers are reused across the whole range — the hot
        // loop performs no per-query allocation.
        let mut cells: Vec<usize> = Vec::new();
        let mut candidates: Vec<usize> = Vec::new();
        for i in range {
            grid.neighborhood_into(cell_of[i], 1, &mut cells);
            candidates.clear();
            for &cell in &cells {
                candidates.extend(cell_members[cell].iter().copied().filter(|&j| j > i));
            }
            // Cells are distinct, members within a cell ascend, but members
            // of *different* cells interleave arbitrarily: sort to restore
            // the oracle's ascending-j order.
            candidates.sort_unstable();
            for &j in &candidates {
                if let Some(w) = pairwise_similarity(net, i, j, cfg) {
                    edges.push((i, j, w));
                }
            }
        }
        edges
    })
}

/// Cell side (meters) guaranteeing that any pair within haversine `δ_ds`
/// lands in Chebyshev-adjacent cells of the join grid.
///
/// The grid buckets by [`sarn_geo::LocalProjection`] — an equirectangular
/// projection whose east-west scale is fixed at the box's minimum latitude
/// — while the pair predicate uses the haversine distance. North-south the
/// projection never exceeds the haversine (`d >= R·|Δφ|` exactly), but
/// east-west a pair at haversine `d` can project up to
/// `d · cos(φ_ref) / cos(φ)` apart when it sits at a latitude `φ` with a
/// smaller cosine than the reference. The side is therefore stretched by
/// the worst-case ratio over the box (plus a curvature term for
/// `sin x <= x` and an epsilon for rounding), so the radius-1 neighborhood
/// provably covers the `δ_ds` ring and the grid join misses no pair the
/// all-pairs oracle accepts.
pub fn join_cell_side_m(bbox: &BoundingBox, delta_ds_m: f64) -> f64 {
    let delta = delta_ds_m.max(1.0);
    let ref_cos = bbox.min_lat.to_radians().cos().max(1e-9);
    let max_abs_lat = bbox.min_lat.abs().max(bbox.max_lat.abs());
    let min_cos = max_abs_lat.to_radians().cos().max(1e-9);
    let stretch = (ref_cos / min_cos).max(1.0);
    // Largest longitude gap (radians) a within-δ pair can span, and the
    // matching bound on how much `sin(Δλ/2)` undershoots `Δλ/2`.
    let dlam = (delta / (EARTH_RADIUS_M * min_cos)).min(PI);
    let curvature = 1.0 / (1.0 - (dlam / 2.0).powi(2) / 6.0).max(0.5);
    delta * stretch * curvature * (1.0 + 1e-9)
}

/// Incrementally maintained `A^s`: the grid-bucketed join's state (grid,
/// per-cell member lists) kept alive between edits so a single-segment
/// change re-scores only the candidates inside the edited segment's
/// `δ_ds` ring instead of rebuilding the whole matrix.
///
/// The maintained edge list is **bitwise identical** to a from-scratch
/// [`SpatialSimilarity::build`] on the current network after every
/// operation, at every thread count:
///
/// * **insert** — the appended segment holds the maximum index, so its
///   edges `(j, new)` sort after every existing `(j, j')` and before
///   `(j + 1, ·)`; one ordered merge pass splices them in. Weights come
///   from the same [`pairwise_similarity`] call the full build makes.
///   A midpoint outside the grid's box triggers an `O(n)` re-bucketing
///   over the grown box (no re-scoring) — a clamped boundary cell's
///   radius-1 neighborhood would no longer provably cover the ring.
/// * **remove** — edges touching the segment are dropped and surviving
///   endpoints renumbered monotonically, which preserves the ascending
///   `(i, j)` order; geometry of the survivors is untouched, so no
///   weight changes.
/// * **reclass** — a no-op: `A^s` weights depend only on geometry
///   (midpoint distance and heading), never on the highway class.
///
/// `crates/core/tests/spatial_join_equivalence.rs` and the pipeline sys
/// suite enforce the equivalence against both join oracles.
#[derive(Clone, Debug)]
pub struct SpatialIndex {
    cfg: SpatialSimilarityConfig,
    grid: Grid,
    /// Cell of each segment's midpoint (index = segment id).
    cell_of: Vec<usize>,
    /// Segment ids bucketed by cell, ascending within each bucket.
    cell_members: Vec<Vec<usize>>,
    edges: Vec<(usize, usize, f64)>,
}

impl SpatialIndex {
    /// Builds the index for a network: the canonical edge list (via
    /// [`SpatialSimilarity::build`], honoring `cfg.join`) plus the live
    /// grid buckets subsequent edits are repaired against.
    pub fn build(net: &RoadNetwork, cfg: &SpatialSimilarityConfig) -> Self {
        let edges = SpatialSimilarity::build(net, cfg).edges().to_vec();
        let mut index = Self {
            cfg: *cfg,
            grid: Grid::new(*net.bbox(), join_cell_side_m(net.bbox(), cfg.delta_ds_m)),
            cell_of: Vec::new(),
            cell_members: Vec::new(),
            edges,
        };
        index.rebucket(net);
        index
    }

    /// The maintained undirected spatial edges `(i, j, A^s_{i,j})`,
    /// `i < j`, ascending — bitwise what a full rebuild would produce.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Number of segments currently indexed.
    pub fn num_segments(&self) -> usize {
        self.cell_of.len()
    }

    /// The thresholds and join strategy the index was built with.
    pub fn config(&self) -> &SpatialSimilarityConfig {
        &self.cfg
    }

    /// Repairs the index after `net` gained one appended segment (id
    /// `net.num_segments() - 1`): buckets the new midpoint (re-gridding
    /// over the grown box if it falls outside), scores only the radius-1
    /// ring candidates, and splices the fresh edges in order. Returns the
    /// number of spatial edges the new segment gained.
    ///
    /// # Panics
    /// Panics unless `net` has exactly one more segment than the index.
    pub fn insert(&mut self, net: &RoadNetwork) -> usize {
        let n = net.num_segments();
        assert_eq!(
            n,
            self.cell_of.len() + 1,
            "insert repairs exactly one appended segment"
        );
        let new = n - 1;
        let mp = net.segment(new).midpoint();
        if self.grid.contains(&mp) {
            let c = self.grid.cell_of(&mp);
            self.cell_of.push(c);
            // `new` is the maximum id, so pushing keeps the bucket ascending.
            self.cell_members[c].push(new);
        } else {
            self.rebucket(net);
        }
        let mut cells = Vec::new();
        self.grid
            .neighborhood_into(self.cell_of[new], 1, &mut cells);
        let mut candidates: Vec<usize> = cells
            .iter()
            .flat_map(|&c| self.cell_members[c].iter().copied())
            .filter(|&j| j != new)
            .collect();
        candidates.sort_unstable();
        // Same scoring call as the full build, ascending j — so the fresh
        // `(j, new)` edges are exactly the full build's missing suffix of
        // each `i == j` run.
        let fresh: Vec<(usize, usize, f64)> = candidates
            .iter()
            .filter_map(|&j| pairwise_similarity(net, j, new, &self.cfg).map(|w| (j, new, w)))
            .collect();
        let gained = fresh.len();
        let mut merged = Vec::with_capacity(self.edges.len() + fresh.len());
        let mut fi = 0;
        for &e in &self.edges {
            // `(j, new)` precedes `(i, j2)` iff `j < i`: `new` is the
            // maximum id, so at equal first components the old edge wins.
            while fi < fresh.len() && fresh[fi].0 < e.0 {
                merged.push(fresh[fi]);
                fi += 1;
            }
            merged.push(e);
        }
        merged.extend_from_slice(&fresh[fi..]);
        self.edges = merged;
        gained
    }

    /// Repairs the index after segment `r` was removed from its network:
    /// drops `r`'s edges and bucket entry and renumbers every surviving
    /// id above `r` down by one — the same monotone renumbering
    /// [`sarn_roadnet::RoadNetwork::remove_segment`] applies, which
    /// preserves the ascending edge order. No re-scoring: the survivors'
    /// geometry is unchanged.
    ///
    /// # Panics
    /// Panics if `r` is out of range.
    pub fn remove(&mut self, r: usize) {
        assert!(r < self.cell_of.len(), "segment {r} out of range");
        let cell = self.cell_of.remove(r);
        self.cell_members[cell].retain(|&m| m != r);
        for bucket in &mut self.cell_members {
            for m in bucket.iter_mut() {
                if *m > r {
                    *m -= 1;
                }
            }
        }
        self.edges.retain(|&(i, j, _)| i != r && j != r);
        for e in &mut self.edges {
            if e.0 > r {
                e.0 -= 1;
            }
            if e.1 > r {
                e.1 -= 1;
            }
        }
    }

    /// Re-grids over the network's current bounding box and re-buckets
    /// every midpoint. `O(n)` bookkeeping, **zero** similarity re-scoring
    /// — the edge list is untouched.
    fn rebucket(&mut self, net: &RoadNetwork) {
        let bbox = *net.bbox();
        self.grid = Grid::new(bbox, join_cell_side_m(&bbox, self.cfg.delta_ds_m));
        let n = net.num_segments();
        self.cell_of = (0..n)
            .map(|i| self.grid.cell_of(&net.segment(i).midpoint()))
            .collect();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); self.grid.num_cells()];
        for (i, &c) in self.cell_of.iter().enumerate() {
            members[c].push(i);
        }
        self.cell_members = members;
    }
}

/// `A^s_{i,j}` for one pair, or `None` when either threshold is exceeded.
pub fn pairwise_similarity(
    net: &RoadNetwork,
    i: usize,
    j: usize,
    cfg: &SpatialSimilarityConfig,
) -> Option<f64> {
    if i == j {
        return None;
    }
    let (si, sj) = (net.segment(i), net.segment(j));
    let sp = haversine_m(&si.midpoint(), &sj.midpoint());
    if sp >= cfg.delta_ds_m {
        return None;
    }
    let ag = angular_distance(si.radian, sj.radian);
    if ag >= cfg.delta_as_rad {
        return None;
    }
    let ds = (PI * sp.min(cfg.delta_ds_m) / (2.0 * cfg.delta_ds_m)).cos();
    let asim = (PI * ag.min(cfg.delta_as_rad) / (2.0 * cfg.delta_as_rad)).cos();
    Some((ds + asim) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_geo::Point;
    use sarn_roadnet::{City, HighwayClass, RoadSegment, SynthConfig};

    fn seg(start: (f64, f64), end: (f64, f64)) -> RoadSegment {
        RoadSegment::between(
            HighwayClass::Primary,
            Point::new(start.0, start.1),
            Point::new(end.0, end.1),
        )
    }

    fn tiny_net() -> RoadNetwork {
        // Three northbound parallel segments ~55 m apart, plus one eastbound.
        let a = seg((30.0, 104.0), (30.0008, 104.0));
        let b = seg((30.0, 104.0006), (30.0008, 104.0006));
        let c = seg((30.0, 104.01), (30.0008, 104.01)); // ~960 m away
        let d = seg((30.0004, 104.0), (30.0004, 104.0008)); // eastbound
        RoadNetwork::new(vec![a, b, c, d], &[(0, 1)])
    }

    #[test]
    fn close_parallel_segments_get_high_similarity() {
        let net = tiny_net();
        let cfg = SpatialSimilarityConfig::default();
        let w = pairwise_similarity(&net, 0, 1, &cfg).expect("should be similar");
        assert!(w > 0.7, "similarity {w}");
    }

    #[test]
    fn identical_direction_zero_distance_maxes_out() {
        let net = tiny_net();
        let cfg = SpatialSimilarityConfig::default();
        // A segment vs itself is excluded by definition (Eq. 3 diagonal).
        assert!(pairwise_similarity(&net, 0, 0, &cfg).is_none());
    }

    #[test]
    fn far_segments_are_pruned_by_delta_ds() {
        let net = tiny_net();
        let cfg = SpatialSimilarityConfig::default();
        assert!(pairwise_similarity(&net, 0, 2, &cfg).is_none());
    }

    #[test]
    fn perpendicular_segments_are_pruned_by_delta_as() {
        let net = tiny_net();
        let cfg = SpatialSimilarityConfig::default();
        assert!(pairwise_similarity(&net, 0, 3, &cfg).is_none());
    }

    #[test]
    fn similarity_decreases_with_distance() {
        let net = tiny_net();
        let near = SpatialSimilarityConfig::default();
        let w_near = pairwise_similarity(&net, 0, 1, &near).unwrap();
        // Same pair with a tighter threshold: normalized distance is larger,
        // so the cosine ramp value must shrink.
        let tight = SpatialSimilarityConfig {
            delta_ds_m: 80.0,
            ..near
        };
        let w_tight = pairwise_similarity(&net, 0, 1, &tight).unwrap();
        assert!(w_tight < w_near, "{w_tight} !< {w_near}");
    }

    #[test]
    fn build_on_synthetic_city_matches_table3_sparsity() {
        let net = SynthConfig::city(City::Chengdu).generate();
        let sim = SpatialSimilarity::build(&net, &SpatialSimilarityConfig::default());
        let n = net.num_segments() as f64;
        let ratio = sim.num_edges() as f64 / n;
        // The paper reports |A^s| ≈ 1.6 |S| on real cities; our lattice is
        // denser, so allow a broad but still sparse band.
        assert!(ratio > 0.5 && ratio < 12.0, "A^s ratio {ratio}");
        // All weights must be in (0, 1].
        for &(i, j, w) in sim.edges() {
            assert!(i < j);
            assert!(w > 0.0 && w <= 1.0, "weight {w}");
        }
    }

    #[test]
    fn build_finds_no_duplicate_pairs() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.3).generate();
        let sim = SpatialSimilarity::build(&net, &SpatialSimilarityConfig::default());
        let mut pairs: Vec<(usize, usize)> = sim.edges().iter().map(|&(i, j, _)| (i, j)).collect();
        let before = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), before);
    }

    #[test]
    fn grid_join_matches_reference_on_a_city() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.4).generate();
        let reference = SpatialSimilarity::build(
            &net,
            &SpatialSimilarityConfig {
                join: SpatialJoin::Reference,
                ..SpatialSimilarityConfig::default()
            },
        );
        let grid = SpatialSimilarity::build(
            &net,
            &SpatialSimilarityConfig {
                join: SpatialJoin::Grid,
                ..SpatialSimilarityConfig::default()
            },
        );
        assert!(reference.num_edges() > 0);
        assert_eq!(reference.edges(), grid.edges());
    }

    #[test]
    fn join_cell_side_covers_delta_and_is_finite() {
        let bb = BoundingBox {
            min_lat: 30.63,
            min_lon: 104.03,
            max_lat: 30.68,
            max_lon: 104.088,
        };
        let side = join_cell_side_m(&bb, 200.0);
        assert!(side >= 200.0, "side {side} below delta");
        assert!(side < 220.0, "side {side} over-inflated at city scale");
        // Degenerate threshold clamps to the 1 m floor.
        assert!(join_cell_side_m(&bb, 0.0) >= 1.0);
        // High-latitude boxes stretch the side but keep it finite.
        let polar = BoundingBox {
            min_lat: 69.0,
            min_lon: 18.0,
            max_lat: 69.4,
            max_lon: 19.0,
        };
        let polar_side = join_cell_side_m(&polar, 200.0);
        assert!(polar_side.is_finite() && polar_side >= 200.0);
    }

    /// Splitmix64 — enough randomness to scramble an edit schedule
    /// deterministically without pulling the rand shim into core.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn assert_index_matches_rebuild(index: &SpatialIndex, net: &RoadNetwork) {
        for join in [SpatialJoin::Reference, SpatialJoin::Grid] {
            let oracle = SpatialSimilarity::build(
                net,
                &SpatialSimilarityConfig {
                    join,
                    ..*index.config()
                },
            );
            assert_eq!(
                index.edges(),
                oracle.edges(),
                "index diverged from {} rebuild at n={}",
                join.label(),
                net.num_segments()
            );
        }
    }

    #[test]
    fn spatial_index_tracks_random_edits_bitwise() {
        let mut net = SynthConfig::city(City::Chengdu).scaled(0.25).generate();
        let cfg = SpatialSimilarityConfig::default();
        let mut index = SpatialIndex::build(&net, &cfg);
        assert!(index.edges().len() > 10, "seed network too sparse to test");
        assert_index_matches_rebuild(&index, &net);

        let bbox = *net.bbox();
        let mut rng = 0x5a17_u64;
        let mut inserted = 0usize;
        for step in 0..30 {
            match splitmix(&mut rng) % 3 {
                0 => {
                    // Insert near a random existing midpoint so the new
                    // segment actually gains spatial edges.
                    let anchor = (splitmix(&mut rng) as usize) % net.num_segments();
                    let mp = net.segment(anchor).midpoint();
                    let jitter = |r: &mut u64| ((splitmix(r) % 2001) as f64 - 1000.0) * 1e-7;
                    let start = Point::new(mp.lat + jitter(&mut rng), mp.lon + jitter(&mut rng));
                    let end = Point::new(start.lat + 0.0007, start.lon + jitter(&mut rng));
                    let new = RoadSegment::between(HighwayClass::Secondary, start, end);
                    let a = (splitmix(&mut rng) as usize) % net.num_segments();
                    net.add_segment(new, &[a], &[]);
                    inserted += index.insert(&net);
                }
                1 => {
                    let r = (splitmix(&mut rng) as usize) % net.num_segments();
                    net.remove_segment(r);
                    index.remove(r);
                }
                _ => {
                    // Reclass never touches A^s — geometry-only weights.
                    let r = (splitmix(&mut rng) as usize) % net.num_segments();
                    net.reclass_segment(r, HighwayClass::Service);
                }
            }
            assert_eq!(index.num_segments(), net.num_segments());
            // Full-rebuild comparison is O(n^2); check a prefix of steps
            // plus the final state rather than every iteration.
            if step < 6 || step == 29 {
                assert_index_matches_rebuild(&index, &net);
            }
        }
        assert!(inserted > 0, "no insert ever gained a spatial edge");
        assert_index_matches_rebuild(&index, &net);
        // The grid never regrew: every jittered insert stayed in the box.
        assert!(bbox.contains(&Point::new(bbox.min_lat, bbox.min_lon)));
    }

    #[test]
    fn spatial_index_rebuckets_when_an_insert_outgrows_the_box() {
        let mut net = tiny_net();
        let cfg = SpatialSimilarityConfig::default();
        let mut index = SpatialIndex::build(&net, &cfg);
        assert_index_matches_rebuild(&index, &net);
        // ~550 m north of the old box: outside the grid, inside δ_ds of
        // nothing at first hop, then a second insert bridges back.
        let far = seg((30.006, 104.0), (30.0068, 104.0));
        net.add_segment(far, &[0], &[]);
        assert_eq!(index.insert(&net), 0, "far segment gains no edges");
        assert_index_matches_rebuild(&index, &net);
        let bridge = seg((30.0055, 104.0), (30.0063, 104.0));
        net.add_segment(bridge, &[0], &[]);
        assert!(index.insert(&net) >= 1, "bridge should pair with far");
        assert_index_matches_rebuild(&index, &net);
    }

    #[test]
    fn spatial_index_remove_renumbers_without_rescoring() {
        let net = SynthConfig::city(City::Chengdu).scaled(0.2).generate();
        let cfg = SpatialSimilarityConfig::default();
        let mut index = SpatialIndex::build(&net, &cfg);
        let mut shadow = net.clone();
        // Remove a middle segment; surviving weights must be the exact
        // bits the original build produced for those pairs.
        let r = shadow.num_segments() / 2;
        let expected: Vec<(usize, usize, f64)> = index
            .edges()
            .iter()
            .filter(|&&(i, j, _)| i != r && j != r)
            .map(|&(i, j, w)| {
                (
                    if i > r { i - 1 } else { i },
                    if j > r { j - 1 } else { j },
                    w,
                )
            })
            .collect();
        shadow.remove_segment(r);
        index.remove(r);
        assert_eq!(index.edges(), &expected[..]);
        assert_index_matches_rebuild(&index, &shadow);
    }

    #[test]
    #[should_panic(expected = "exactly one appended segment")]
    fn spatial_index_insert_rejects_unsynced_network() {
        let net = tiny_net();
        let mut index = SpatialIndex::build(&net, &SpatialSimilarityConfig::default());
        index.insert(&net); // no segment was appended
    }

    #[test]
    fn spatial_join_parsing_and_labels() {
        assert_eq!(
            SpatialJoin::parse("reference"),
            Some(SpatialJoin::Reference)
        );
        assert_eq!(SpatialJoin::parse("REF"), Some(SpatialJoin::Reference));
        assert_eq!(SpatialJoin::parse("Grid"), Some(SpatialJoin::Grid));
        assert_eq!(SpatialJoin::parse("kdtree"), None);
        for j in [SpatialJoin::Reference, SpatialJoin::Grid] {
            assert_eq!(SpatialJoin::parse(j.label()), Some(j));
        }
        assert_eq!(SpatialJoin::default(), SpatialJoin::Grid);
    }
}
