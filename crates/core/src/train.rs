//! SARN training (paper §4.5, Algorithm 1), with crash-safe periodic
//! checkpointing and bitwise-identical resume (see [`crate::checkpoint`]),
//! and an optional numerical-health watchdog with automatic
//! rollback-to-checkpoint recovery (see [`crate::watchdog`]).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngCore, SeedableRng};
use sarn_roadnet::RoadNetwork;
use sarn_tensor::layers::EdgeIndex;
use sarn_tensor::optim::{Adam, CosineAnnealing, EarlyStopping};
use sarn_tensor::{Graph, ParamStore, Tensor};

use crate::augment::Augmenter;
use crate::checkpoint::{
    self, Checkpoint, CheckpointError, CheckpointMeta, OptimState, ParamStoreSnapshot, QueueState,
};
use crate::config::{LossSimilarity, SarnConfig};
use crate::model::SarnModel;
use crate::queues::CellQueues;
use crate::similarity::SpatialSimilarity;
use crate::watchdog::{
    retry_seed, DivergenceReport, FaultKind, HealthViolation, RecoveryEvent, TrainError, Watchdog,
};

/// A trained SARN model plus its frozen road-segment embeddings.
pub struct SarnTrained {
    /// The model (both branches).
    pub model: SarnModel,
    /// Final `n x d` embeddings `H` from the query encoder on the
    /// uncorrupted graph.
    pub embeddings: Tensor,
    /// Mean training loss per epoch.
    pub loss_history: Vec<f32>,
    /// Epochs actually run (early stopping may cut the budget short).
    pub epochs_run: usize,
    /// Wall-clock training time in seconds (Fig. 4).
    pub train_seconds: f64,
    /// Edge index of the uncorrupted graph (for fine-tuning forward passes).
    pub full_edges: EdgeIndex,
    /// Watchdog recoveries performed during training, in order (empty when
    /// the watchdog is disabled or the run stayed healthy).
    pub recoveries: Vec<RecoveryEvent>,
    cfg: SarnConfig,
}

impl SarnTrained {
    /// The configuration used at training time.
    pub fn config(&self) -> &SarnConfig {
        &self.cfg
    }

    /// Recomputes embeddings from the current query store (after
    /// fine-tuning the model in place).
    pub fn refresh_embeddings(&mut self) {
        self.embeddings = self
            .model
            .embed_detached(&self.model.store, &self.full_edges);
    }

    /// Persists the embeddings and both parameter branches to
    /// `<stem>.emb` / `<stem>.query` / `<stem>.momentum`.
    pub fn save(&self, stem: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let stem = stem.as_ref();
        self.embeddings.save(stem.with_extension("emb"))?;
        self.model.store.save(stem.with_extension("query"))?;
        self.model
            .store_momentum
            .save(stem.with_extension("momentum"))?;
        Ok(())
    }

    /// Restores parameters saved by [`SarnTrained::save`] into a model with
    /// the same configuration, then refreshes the embeddings.
    ///
    /// Both files are read and validated against the model's layout (names
    /// and shapes, in order) **before** any parameter is written, so a
    /// mismatch — e.g. a model built with a different `d` — errors out and
    /// leaves the model exactly as it was, never partially loaded.
    pub fn load_into(&mut self, stem: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let stem = stem.as_ref();
        let query = ParamStore::load(stem.with_extension("query"))?;
        let momentum = ParamStore::load(stem.with_extension("momentum"))?;
        self.model.store.validate_layout_of(&query)?;
        self.model.store_momentum.validate_layout_of(&momentum)?;
        self.model.store.copy_values_validated(&query)?;
        self.model.store_momentum.copy_values_validated(&momentum)?;
        self.refresh_embeddings();
        Ok(())
    }
}

/// Trains SARN on a road network (Algorithm 1) and returns the model and
/// embeddings.
///
/// # Panics
/// Panics if checkpointing or resuming is configured and fails (missing or
/// corrupt checkpoint, mismatched configuration, unwritable directory), or
/// if the training watchdog gives up after exhausting its retry budget;
/// use [`try_train`] to handle those as typed errors.
pub fn train(net: &RoadNetwork, cfg: &SarnConfig) -> SarnTrained {
    try_train(net, cfg).unwrap_or_else(|e| panic!("sarn training failure: {e}"))
}

/// [`train`] with failures surfaced as a typed [`TrainError`] instead of
/// panics: checkpoint/resume problems as [`TrainError::Checkpoint`], an
/// exhausted watchdog retry budget as [`TrainError::Diverged`].
pub fn try_train(net: &RoadNetwork, cfg: &SarnConfig) -> Result<SarnTrained, TrainError> {
    let start = Instant::now();
    cfg.obs.apply();
    sarn_par::set_num_threads(cfg.num_threads);
    sarn_par::set_reduction_order(cfg.reduction_order);
    let n = net.num_segments();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5A4E);

    // Graph construction: A^t from the network, A^s per variant.
    let spatial_edges: Vec<(usize, usize, f64)> = if cfg.variant.uses_spatial_matrix() {
        SpatialSimilarity::build(net, &cfg.similarity)
            .edges()
            .to_vec()
    } else {
        Vec::new()
    };
    let augmenter = Augmenter::new(n, net.topo_edges().to_vec(), spatial_edges, cfg.augment);
    let full_view = augmenter.full_view();
    let full_edge_count = full_view.num_edges();
    let full_edges = full_view.edge_index();

    let mut model = SarnModel::new(net, cfg);
    let mut queues = cfg
        .variant
        .uses_grid_negatives()
        .then(|| CellQueues::with_readout(net, cfg.clen_m, cfg.total_k, cfg.d_z, cfg.readout));

    let mut opt = Adam::new(cfg.lr).with_clip_norm(cfg.clip_norm);
    let schedule = CosineAnnealing::new(cfg.lr, cfg.lr * 0.01, cfg.schedule_horizon() as u64);
    let mut stopper = EarlyStopping::new(cfg.patience);
    let mut loss_history: Vec<f32> = Vec::new();
    let mut order: Vec<usize> = (0..n).collect();

    let fingerprint = cfg.fingerprint();
    let mut start_epoch = 0usize;
    let mut base_seconds = 0.0f64;
    let mut already_stopped = false;
    if cfg.warm_start_from.is_some() && (cfg.resume_from.is_some() || cfg.resume_auto) {
        return Err(CheckpointError::StateMismatch(
            "warm_start_from is mutually exclusive with resume_from/resume_auto: \
             a warm start begins a fresh run, a resume continues an old one"
                .to_string(),
        )
        .into());
    }
    let resume_path = match (&cfg.resume_from, cfg.resume_auto, &cfg.checkpoint_dir) {
        (Some(p), _, _) => Some(p.clone()),
        (None, true, Some(dir)) => checkpoint::latest_checkpoint(dir, Some(fingerprint)),
        _ => None,
    };
    if let Some(path) = resume_path {
        let ckpt = Checkpoint::load(&path)?;
        if ckpt.meta.fingerprint != fingerprint {
            return Err(CheckpointError::ConfigMismatch {
                expected: ckpt.meta.fingerprint,
                found: fingerprint,
            }
            .into());
        }
        restore_state(
            &ckpt,
            n,
            &mut model,
            &mut opt,
            queues.as_mut(),
            &mut rng,
            &mut order,
        )?;
        loss_history = ckpt.meta.loss_history;
        // Replaying the history through a fresh stopper reproduces its
        // best/patience counters exactly (update order matches the
        // uninterrupted run).
        for &l in &loss_history {
            if stopper.update(l) {
                already_stopped = true;
            }
        }
        start_epoch = ckpt.meta.next_epoch as usize;
        base_seconds = ckpt.meta.train_seconds;
    }

    // Warm start: seed both parameter branches from a compatible
    // checkpoint, then proceed as a fresh run (epoch 0, fresh optimizer,
    // queues, and RNG) — the old weights initialize, nothing else carries
    // over. The online pipeline retrains this way after a network edit.
    if let Some(path) = &cfg.warm_start_from {
        // Probe first: an incompatible candidate is rejected on its META
        // section alone, before any tensor payload is read.
        let meta = Checkpoint::probe_header(path)?;
        if meta.fingerprint != fingerprint {
            return Err(CheckpointError::ConfigMismatch {
                expected: meta.fingerprint,
                found: fingerprint,
            }
            .into());
        }
        let ckpt = Checkpoint::load(path)?;
        let applied = warm_start_apply(&ckpt.query, &mut model.store)?
            + warm_start_apply(&ckpt.momentum, &mut model.store_momentum)?;
        if sarn_obs::enabled() {
            sarn_obs::counter("sarn_train_warm_starts_total").inc();
            sarn_obs::Registry::global()
                .gauge("sarn_train_warm_start_params_applied")
                .set(applied as f64);
        }
    }

    // Watchdog state. The rollback anchor is a full in-memory checkpoint
    // (the same structure the crash-safe subsystem persists), refreshed at
    // every healthy epoch boundary — recovery therefore works even when
    // disk checkpointing is off.
    let watching = cfg.watchdog.enabled;
    let mut watchdog = watching.then(|| Watchdog::new(cfg.watchdog));
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut lr_scale = 1.0f32;
    let mut fault_spent = false;
    let mut anchor: Option<Box<Checkpoint>> = watching.then(|| {
        Box::new(capture_state(
            fingerprint,
            start_epoch,
            base_seconds,
            &model,
            &opt,
            queues.as_ref(),
            &rng,
            &order,
            &loss_history,
        ))
    });

    let mut epoch = start_epoch;
    while epoch < cfg.max_epochs {
        if already_stopped {
            break;
        }
        // Deadline probe at the epoch boundary: a budgeted run that ran
        // out of wall clock aborts with a typed error rather than handing
        // back half-trained embeddings as if they were final.
        if cfg.max_train_seconds > 0.0 {
            let elapsed = base_seconds + start.elapsed().as_secs_f64();
            if elapsed > cfg.max_train_seconds {
                export_obs(&cfg.obs);
                return Err(TrainError::DeadlineExceeded {
                    elapsed_seconds: elapsed,
                    budget_seconds: cfg.max_train_seconds,
                    epochs_run: loss_history.len(),
                });
            }
        }
        let epoch_span = sarn_obs::span!("sarn_train_epoch_seconds");
        let epoch_lr = schedule.lr_at(epoch as u64) * lr_scale;
        opt.set_lr(epoch_lr);
        // Two-view sampling: the seeds are drawn serially from the main
        // stream (view 1's first), then each view is corrupted under its
        // own stream — so the pair of views is the same whether the two
        // tasks run concurrently or back-to-back.
        let (seed1, seed2) = (rng.next_u64(), rng.next_u64());
        let (view1, view2) = {
            let _aug = sarn_obs::span!("sarn_train_augment_seconds");
            sarn_par::join(
                || augmenter.corrupt_with_seed(seed1),
                || augmenter.corrupt_with_seed(seed2),
            )
        };
        let edges_removed = 2 * full_edge_count - view1.num_edges() - view2.num_edges();
        let (view1, view2) = (view1.edge_index(), view2.edge_index());
        order.shuffle(&mut rng);

        let mut epoch_loss = 0.0;
        let mut batches = 0;
        let mut violation: Option<HealthViolation> = None;
        for (batch_idx, batch) in order.chunks(cfg.batch_size).enumerate() {
            let _batch_span = sarn_obs::span!("sarn_train_batch_seconds");
            let fault = cfg
                .fault
                .filter(|f| f.epoch == epoch && f.batch == batch_idx && (f.sticky || !fault_spent));
            if fault.is_some() {
                fault_spent = true;
            }
            match train_batch(
                &mut model,
                cfg,
                &view1,
                &view2,
                batch,
                &mut opt,
                queues.as_mut(),
                watchdog.as_mut(),
                fault.map(|f| f.kind),
                epoch,
                batch_idx,
            ) {
                Ok(loss) => {
                    epoch_loss += loss;
                    batches += 1;
                }
                Err(v) => {
                    violation = Some(v);
                    break;
                }
            }
        }
        if watching && violation.is_none() {
            violation = Watchdog::check_epoch_params(&model, epoch).err();
        }

        if let Some(v) = violation {
            crate::watchdog::obs_violation(&v);
            let snap = anchor
                .as_deref()
                .expect("violations are only raised with the watchdog (and its anchor) in place");
            if recoveries.len() >= cfg.watchdog.max_recoveries {
                let report = Box::new(DivergenceReport {
                    violation: v,
                    recoveries,
                    max_recoveries: cfg.watchdog.max_recoveries,
                    loss_history: snap.meta.loss_history.clone(),
                });
                crate::watchdog::obs_divergence(&report);
                export_obs(&cfg.obs);
                return Err(TrainError::Diverged(report));
            }
            // Roll back through the same validated path a disk resume uses,
            // discarding every poisoned tensor, queue entry, and history
            // suffix…
            restore_state(
                snap,
                n,
                &mut model,
                &mut opt,
                queues.as_mut(),
                &mut rng,
                &mut order,
            )?;
            loss_history = snap.meta.loss_history.clone();
            stopper = EarlyStopping::new(cfg.patience);
            already_stopped = false;
            for &l in &loss_history {
                if stopper.update(l) {
                    already_stopped = true;
                }
            }
            // …then back off the learning rate and re-derive the RNG stream
            // from the anchor's saved state plus the retry ordinal:
            // deterministic and replayable, but exploring different views
            // and batch orders than the leg that diverged.
            let retry = recoveries.len() as u64 + 1;
            rng = StdRng::seed_from_u64(retry_seed(snap.meta.rng_state, retry));
            lr_scale *= cfg.watchdog.lr_backoff;
            if let Some(w) = watchdog.as_mut() {
                w.reset();
            }
            let resume_epoch = snap.meta.next_epoch as usize;
            recoveries.push(RecoveryEvent {
                violation: v,
                rolled_back_to_epoch: resume_epoch,
                lr_scale,
            });
            if let Some(ev) = recoveries.last() {
                crate::watchdog::obs_recovery(ev, retry as usize);
            }
            epoch = resume_epoch;
            continue;
        }

        let mean_loss = epoch_loss / batches.max(1) as f32;
        loss_history.push(mean_loss);

        if sarn_obs::enabled() {
            let grad_norm = global_grad_norm(&model.store);
            let queue_entries = queues.as_ref().map_or(0, |q| q.total_entries());
            let r = sarn_obs::Registry::global();
            r.counter("sarn_train_epochs_total").inc();
            r.gauge("sarn_train_loss").set(mean_loss as f64);
            r.gauge("sarn_train_lr").set(epoch_lr as f64);
            r.gauge("sarn_train_grad_norm").set(grad_norm);
            r.gauge("sarn_train_queue_entries")
                .set(queue_entries as f64);
            r.counter("sarn_train_aug_edges_removed_total")
                .add(edges_removed as u64);
            sarn_obs::record(sarn_obs::Event::EpochSummary {
                epoch,
                loss: mean_loss as f64,
                lr: epoch_lr as f64,
                grad_norm,
                seconds: epoch_span.elapsed_seconds().unwrap_or(0.0),
                queue_entries,
                edges_removed,
            });
            if cfg.obs.export_every > 0 && (epoch + 1).is_multiple_of(cfg.obs.export_every) {
                export_obs(&cfg.obs);
            }
        }

        if cfg.checkpoint_every > 0 && (epoch + 1).is_multiple_of(cfg.checkpoint_every) {
            if let Some(dir) = &cfg.checkpoint_dir {
                let ckpt = capture_state(
                    fingerprint,
                    epoch + 1,
                    base_seconds + start.elapsed().as_secs_f64(),
                    &model,
                    &opt,
                    queues.as_ref(),
                    &rng,
                    &order,
                    &loss_history,
                );
                std::fs::create_dir_all(dir).map_err(CheckpointError::Io)?;
                ckpt.save(dir.join(checkpoint::checkpoint_file_name(fingerprint, epoch + 1)))?;
                checkpoint::prune_checkpoints(dir, fingerprint, cfg.checkpoint_keep)
                    .map_err(CheckpointError::Io)?;
            }
        }

        if watching {
            anchor = Some(Box::new(capture_state(
                fingerprint,
                epoch + 1,
                base_seconds + start.elapsed().as_secs_f64(),
                &model,
                &opt,
                queues.as_ref(),
                &rng,
                &order,
                &loss_history,
            )));
        }

        if stopper.update(mean_loss) {
            break;
        }
        epoch += 1;
    }

    export_obs(&cfg.obs);
    let embeddings = model.embed_detached(&model.store, &full_edges);
    let epochs_run = loss_history.len();
    Ok(SarnTrained {
        model,
        embeddings,
        loss_history,
        epochs_run,
        train_seconds: base_seconds + start.elapsed().as_secs_f64(),
        full_edges,
        recoveries,
        cfg: cfg.clone(),
    })
}

/// Global L2 norm over every parameter's current gradient (telemetry
/// only — reads the store without touching it).
fn global_grad_norm(store: &ParamStore) -> f64 {
    store
        .ids()
        .map(|id| store.grad(id).norm_sq() as f64)
        .sum::<f64>()
        .sqrt()
}

/// Writes the telemetry exports if an export directory is configured. An
/// export failure must never kill a training run: it is reported on
/// stderr and swallowed.
fn export_obs(obs: &sarn_obs::ObsConfig) {
    if !obs.enabled {
        return;
    }
    if let Some(dir) = &obs.export_dir {
        if let Err(e) = sarn_obs::export_all(dir) {
            eprintln!("warning: telemetry export to {} failed: {e}", dir.display());
        }
    }
}

/// Snapshots the full training state after a completed epoch.
#[allow(clippy::too_many_arguments)]
fn capture_state(
    fingerprint: u64,
    next_epoch: usize,
    train_seconds: f64,
    model: &SarnModel,
    opt: &Adam,
    queues: Option<&CellQueues>,
    rng: &StdRng,
    order: &[usize],
    loss_history: &[f32],
) -> Checkpoint {
    Checkpoint {
        meta: CheckpointMeta {
            fingerprint,
            next_epoch: next_epoch as u32,
            train_seconds,
            rng_state: rng.state(),
            loss_history: loss_history.to_vec(),
            order: order.iter().map(|&o| o as u32).collect(),
        },
        query: ParamStoreSnapshot::of(&model.store),
        momentum: ParamStoreSnapshot::of(&model.store_momentum),
        optim: OptimState {
            step: opt.step_count(),
            m: opt.first_moments().to_vec(),
            v: opt.second_moments().to_vec(),
        },
        queues: queues.map(|q| QueueState {
            dim: q.dim() as u32,
            capacity: q.capacity() as u32,
            cells: q
                .export_entries()
                .into_iter()
                .map(|cell| cell.into_iter().map(|(seg, e)| (seg as u32, e)).collect())
                .collect(),
        }),
    }
}

/// Seeds a freshly built store from a warm-start snapshot. Same-name
/// parameters with equal shapes are copied whole; the feature-embedding
/// vocab tables — whose row count tracks the *network's* bin contents, not
/// the hyper-parameters — copy the common row prefix when the embedding
/// width matches (rows are keyed by bin id, so a shared prefix means the
/// same bins). Parameters with no usable counterpart keep their fresh
/// initialization. Returns how many parameters received values; zero means
/// the checkpoint has nothing in common with this model and is an error.
///
/// Public because the online pipeline reuses it for its last-known-good
/// fallback: re-seeding a fresh model on the *edited* network from the
/// last healthy parameter snapshot, then embedding without training.
pub fn warm_start_apply(
    snap: &ParamStoreSnapshot,
    store: &mut ParamStore,
) -> Result<usize, CheckpointError> {
    let by_name: std::collections::HashMap<&str, &Tensor> = snap
        .params
        .iter()
        .map(|(name, t)| (name.as_str(), t))
        .collect();
    let mut applied = 0usize;
    for id in store.ids().collect::<Vec<_>>() {
        let Some(&src) = by_name.get(store.name(id)) else {
            continue;
        };
        let dst = store.value_mut(id);
        let (src_rows, src_cols) = src.shape();
        let (dst_rows, dst_cols) = dst.shape();
        if src_cols != dst_cols {
            continue;
        }
        let rows = src_rows.min(dst_rows);
        dst.data_mut()[..rows * dst_cols].copy_from_slice(&src.data()[..rows * src_cols]);
        applied += 1;
    }
    if applied == 0 {
        return Err(CheckpointError::StateMismatch(
            "warm-start checkpoint shares no applicable parameters with the model".to_string(),
        ));
    }
    Ok(applied)
}

/// Restores a loaded checkpoint into freshly built training state,
/// validating every piece against the run's geometry first.
fn restore_state(
    ckpt: &Checkpoint,
    n: usize,
    model: &mut SarnModel,
    opt: &mut Adam,
    queues: Option<&mut CellQueues>,
    rng: &mut StdRng,
    order: &mut Vec<usize>,
) -> Result<(), CheckpointError> {
    ckpt.query.apply_to(&mut model.store)?;
    ckpt.momentum.apply_to(&mut model.store_momentum)?;

    let optim = &ckpt.optim;
    if optim.m.len() != optim.v.len() {
        return Err(CheckpointError::StateMismatch(format!(
            "optimizer moment counts differ: {} vs {}",
            optim.m.len(),
            optim.v.len()
        )));
    }
    if !optim.m.is_empty() {
        if optim.m.len() != model.store.len() {
            return Err(CheckpointError::StateMismatch(format!(
                "optimizer tracks {} params, model has {}",
                optim.m.len(),
                model.store.len()
            )));
        }
        for (id, (m, v)) in model.store.ids().zip(optim.m.iter().zip(&optim.v)) {
            let want = model.store.value(id).shape();
            if m.shape() != want || v.shape() != want {
                return Err(CheckpointError::StateMismatch(format!(
                    "optimizer moment shape mismatch at {}: expected {:?}, found {:?}/{:?}",
                    model.store.name(id),
                    want,
                    m.shape(),
                    v.shape()
                )));
            }
        }
    }
    opt.restore_state(optim.step, optim.m.clone(), optim.v.clone());

    match (queues, &ckpt.queues) {
        (None, None) => {}
        (Some(q), Some(state)) => {
            if state.dim as usize != q.dim() || state.capacity as usize != q.capacity() {
                return Err(CheckpointError::StateMismatch(format!(
                    "queue geometry mismatch: checkpoint dim/cap {}/{}, run has {}/{}",
                    state.dim,
                    state.capacity,
                    q.dim(),
                    q.capacity()
                )));
            }
            let cells: Vec<Vec<(usize, Vec<f32>)>> = state
                .cells
                .iter()
                .map(|cell| {
                    cell.iter()
                        .map(|(seg, e)| (*seg as usize, e.clone()))
                        .collect()
                })
                .collect();
            q.restore_entries(&cells)
                .map_err(CheckpointError::StateMismatch)?;
        }
        (run, ckpt_q) => {
            return Err(CheckpointError::StateMismatch(format!(
                "queue presence mismatch: run {}, checkpoint {}",
                if run.is_some() {
                    "uses queues"
                } else {
                    "has none"
                },
                if ckpt_q.is_some() {
                    "has them"
                } else {
                    "does not"
                },
            )));
        }
    }

    *rng = StdRng::from_state(ckpt.meta.rng_state);

    if ckpt.meta.order.len() != n {
        return Err(CheckpointError::StateMismatch(format!(
            "shuffle order covers {} segments, network has {n}",
            ckpt.meta.order.len()
        )));
    }
    let mut seen = vec![false; n];
    for &o in &ckpt.meta.order {
        if (o as usize) >= n || seen[o as usize] {
            return Err(CheckpointError::StateMismatch(
                "shuffle order is not a permutation".to_string(),
            ));
        }
        seen[o as usize] = true;
    }
    *order = ckpt.meta.order.iter().map(|&o| o as usize).collect();
    Ok(())
}

/// One mini-batch step: forward both branches, build candidate sets, apply
/// the two-level (or plain) InfoNCE loss, update the query branch, momentum-
/// update the other, and refresh the queues (Algorithm 1 lines 5–15).
///
/// With a watchdog present, the health probe runs after the backward pass
/// and **before** the optimizer step — a sick gradient is caught within the
/// batch that produced it and never touches the parameters — and queue
/// admission is checked. `fault` deliberately corrupts this batch (test
/// injection only).
#[allow(clippy::too_many_arguments)]
fn train_batch(
    model: &mut SarnModel,
    cfg: &SarnConfig,
    view1: &EdgeIndex,
    view2: &EdgeIndex,
    batch: &[usize],
    opt: &mut Adam,
    queues: Option<&mut CellQueues>,
    watchdog: Option<&mut Watchdog>,
    fault: Option<FaultKind>,
    epoch: usize,
    batch_idx: usize,
) -> Result<f32, HealthViolation> {
    // Momentum branch on view 2, detached (gradients flow only into the
    // query branch, per MoCo). Projections are L2-normalized so the
    // dot-product similarity at tau = 0.05 operates on the unit sphere
    // (the MoCo convention the paper builds on).
    let mut z_prime_full = model.embed_projected_detached(&model.store_momentum, view2);
    if cfg.loss_similarity == LossSimilarity::Cosine {
        normalize_rows(&mut z_prime_full);
    }
    let z_prime: Vec<&[f32]> = batch.iter().map(|&i| z_prime_full.row_slice(i)).collect();

    // Query branch on view 1.
    model.store.zero_grads();
    let g = Graph::new();
    let h = model.encode(&g, &model.store, view1);
    let h_batch = g.gather_rows(h, batch);
    let z = model.project(&g, &model.store, h_batch);
    let z = if cfg.loss_similarity == LossSimilarity::Cosine {
        g.l2_normalize_rows(z)
    } else {
        z
    };

    let loss = match queues.as_deref() {
        Some(q) => {
            // Two-level loss (Eq. 15–17).
            let local: Vec<Tensor> = batch
                .iter()
                .zip(&z_prime)
                .map(|(&i, zp)| q.local_candidates(i, zp))
                .collect();
            let readouts = q.all_readouts();
            let global: Vec<Tensor> = batch
                .iter()
                .zip(&z_prime)
                .map(|(&i, zp)| q.global_candidates_from(&readouts, i, zp))
                .collect();
            let l_local = g.info_nce(z, local, cfg.tau);
            let l_global = g.info_nce(z, global, cfg.tau);
            g.add(
                g.scale(l_local, cfg.lambda),
                g.scale(l_global, 1.0 - cfg.lambda),
            )
        }
        None => {
            // Plain InfoNCE with in-batch negatives (baseline GCL, §3).
            let cands: Vec<Tensor> = (0..batch.len())
                .map(|a| {
                    let mut rows = Vec::with_capacity(batch.len() * cfg.d_z);
                    rows.extend_from_slice(z_prime[a]);
                    for (b, zp) in z_prime.iter().enumerate() {
                        if b != a {
                            rows.extend_from_slice(zp);
                        }
                    }
                    Tensor::from_vec(batch.len(), cfg.d_z, rows)
                })
                .collect();
            g.info_nce(z, cands, cfg.tau)
        }
    };
    let mut loss_value = g.value(loss).item();
    g.backward(loss);
    g.accumulate_grads(&mut model.store);

    match fault {
        Some(FaultKind::NanLoss) => loss_value = f32::NAN,
        Some(FaultKind::NanGrad) => {
            if let Some(id) = model.store.ids().next() {
                model.store.grad_mut(id).data_mut()[0] = f32::NAN;
            }
        }
        Some(FaultKind::HugeGrad) => {
            for id in model.store.ids().collect::<Vec<_>>() {
                model.store.grad_mut(id).scale_mut(1e20);
            }
        }
        None => {}
    }

    let watching = watchdog.is_some();
    if let Some(w) = watchdog {
        // Probing before `opt.step` means a sick gradient never reaches the
        // parameters — the rollback only has to unwind queue-free state.
        w.check_batch(&model.store, loss_value, epoch, batch_idx)?;
    }
    opt.step(&mut model.store);
    model.momentum_update(cfg.momentum);

    if let Some(q) = queues {
        for (&i, zp) in batch.iter().zip(&z_prime) {
            if watching {
                q.push_checked(i, zp)
                    .map_err(|defect| HealthViolation::CorruptQueueEntry {
                        epoch,
                        batch: batch_idx,
                        segment: i,
                        detail: defect.to_string(),
                    })?;
            } else {
                q.push(i, zp);
            }
        }
    }
    Ok(loss_value)
}

/// In-place row L2 normalization of a raw tensor (the norm honors the
/// reduction-order knob through the shared kernel).
fn normalize_rows(t: &mut Tensor) {
    for i in 0..t.rows() {
        let row = t.row_slice_mut(i);
        let n = sarn_tensor::kernels::squared_norm(row).sqrt().max(1e-12);
        for v in row.iter_mut() {
            *v /= n;
        }
    }
}

/// Zeroes the gradients of every parameter **not** listed in `keep` — used
/// by SARN* fine-tuning, which trains only the final GAT layer together
/// with the downstream head.
pub fn zero_grads_except(store: &mut ParamStore, keep: &[sarn_tensor::ParamId]) {
    let keep_set: std::collections::HashSet<usize> = keep.iter().map(|p| p.index()).collect();
    for id in store.ids().collect::<Vec<_>>() {
        if !keep_set.contains(&id.index()) {
            store.grad_mut(id).scale_mut(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SarnVariant;
    use sarn_roadnet::{City, SynthConfig};

    fn tiny_net() -> RoadNetwork {
        SynthConfig::city(City::Chengdu).scaled(0.22).generate()
    }

    #[test]
    fn training_runs_and_produces_finite_history() {
        let net = tiny_net();
        let mut cfg = SarnConfig::tiny();
        cfg.max_epochs = 5;
        let trained = train(&net, &cfg);
        assert_eq!(trained.embeddings.shape(), (net.num_segments(), cfg.d));
        assert!(trained.embeddings.all_finite());
        assert_eq!(trained.loss_history.len(), trained.epochs_run);
        assert!(trained.loss_history.iter().all(|l| l.is_finite()));
        assert!(trained.train_seconds > 0.0);
    }

    #[test]
    fn in_batch_variant_loss_decreases() {
        // The full model's loss is non-stationary while the MoCo queues warm
        // up, so descent is asserted on the stationary in-batch objective.
        let net = tiny_net();
        let mut cfg = SarnConfig::tiny().with_variant(SarnVariant::WithoutMNL);
        cfg.max_epochs = 8;
        let trained = train(&net, &cfg);
        let first = trained.loss_history[0];
        let last = *trained.loss_history.last().unwrap();
        assert!(last < first, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn all_variants_train() {
        let net = tiny_net();
        for variant in [
            SarnVariant::Full,
            SarnVariant::WithoutM,
            SarnVariant::WithoutNL,
            SarnVariant::WithoutMNL,
        ] {
            let mut cfg = SarnConfig::tiny().with_variant(variant);
            cfg.max_epochs = 2;
            let trained = train(&net, &cfg);
            assert!(
                trained.embeddings.all_finite(),
                "{variant:?} produced non-finite embeddings"
            );
        }
    }

    #[test]
    fn positive_pairs_end_up_more_similar_than_random() {
        // After training, a segment's embedding should be closer (dot
        // product) to its spatial neighbors than to random far segments.
        let net = tiny_net();
        let mut cfg = SarnConfig::tiny();
        cfg.max_epochs = 8;
        let trained = train(&net, &cfg);
        let emb = &trained.embeddings;
        let sim = SpatialSimilarity::build(&net, &cfg.similarity);
        let mut close_sim = 0.0f64;
        let mut close_n = 0;
        for &(i, j, _) in sim.edges().iter().take(300) {
            close_sim += cosine(emb.row_slice(i), emb.row_slice(j)) as f64;
            close_n += 1;
        }
        let mut rng = StdRng::seed_from_u64(3);
        let mut far_sim = 0.0f64;
        let mut far_n = 0;
        use rand::Rng;
        for _ in 0..300 {
            let i = rng.gen_range(0..net.num_segments());
            let j = rng.gen_range(0..net.num_segments());
            if i == j {
                continue;
            }
            far_sim += cosine(emb.row_slice(i), emb.row_slice(j)) as f64;
            far_n += 1;
        }
        let close = close_sim / close_n.max(1) as f64;
        let far = far_sim / far_n.max(1) as f64;
        assert!(
            close > far,
            "spatial neighbors not more similar: close {close:.4} vs far {far:.4}"
        );
    }

    #[test]
    fn refresh_embeddings_tracks_store_changes() {
        let net = tiny_net();
        let mut cfg = SarnConfig::tiny();
        cfg.max_epochs = 1;
        let mut trained = train(&net, &cfg);
        let before = trained.embeddings.clone();
        for id in trained.model.all_param_ids() {
            trained
                .model
                .store
                .value_mut(id)
                .data_mut()
                .iter_mut()
                .for_each(|v| *v += 0.05);
        }
        trained.refresh_embeddings();
        assert_ne!(before.data(), trained.embeddings.data());
    }

    #[test]
    fn dot_similarity_variant_trains_to_finite_embeddings() {
        let net = tiny_net();
        let mut cfg = SarnConfig::tiny();
        cfg.loss_similarity = crate::config::LossSimilarity::Dot;
        cfg.max_epochs = 3;
        let trained = train(&net, &cfg);
        assert!(trained.embeddings.all_finite());
    }

    #[test]
    fn max_readout_variant_trains_to_finite_embeddings() {
        let net = tiny_net();
        let mut cfg = SarnConfig::tiny();
        cfg.readout = crate::config::Readout::Max;
        cfg.max_epochs = 3;
        let trained = train(&net, &cfg);
        assert!(trained.embeddings.all_finite());
    }

    #[test]
    fn save_and_load_roundtrip_restores_embeddings() {
        let net = tiny_net();
        let mut cfg = SarnConfig::tiny();
        cfg.max_epochs = 2;
        let trained = train(&net, &cfg);
        let stem = std::env::temp_dir().join(format!("sarn_ckpt_{}", std::process::id()));
        trained.save(&stem).unwrap();
        // A freshly initialized model diverges; loading restores it.
        let mut fresh = train(&net, &cfg.clone().with_seed(777));
        assert_ne!(fresh.embeddings.data(), trained.embeddings.data());
        fresh.load_into(&stem).unwrap();
        assert_eq!(fresh.embeddings.data(), trained.embeddings.data());
        for ext in ["emb", "query", "momentum"] {
            std::fs::remove_file(stem.with_extension(ext)).ok();
        }
    }

    #[test]
    fn load_into_rejects_shape_mismatch_without_mutating() {
        let net = tiny_net();
        let mut cfg = SarnConfig::tiny();
        cfg.max_epochs = 1;
        let trained = train(&net, &cfg);
        let stem = std::env::temp_dir().join(format!("sarn_mismatch_{}", std::process::id()));
        trained.save(&stem).unwrap();

        // A model with a different width has the same parameter names but
        // different shapes; loading must fail and leave it untouched.
        let mut wider = cfg.clone();
        wider.d = cfg.d * 2;
        wider.d_z = cfg.d_z * 2;
        let mut other = train(&net, &wider);
        let before: Vec<Vec<f32>> = other
            .model
            .store
            .ids()
            .map(|id| other.model.store.value(id).data().to_vec())
            .collect();
        let err = other.load_into(&stem).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let after: Vec<Vec<f32>> = other
            .model
            .store
            .ids()
            .map(|id| other.model.store.value(id).data().to_vec())
            .collect();
        assert_eq!(before, after, "failed load must not mutate the store");
        for ext in ["emb", "query", "momentum"] {
            std::fs::remove_file(stem.with_extension(ext)).ok();
        }
    }

    #[test]
    fn warm_start_seeds_a_fresh_run_across_a_network_edit() {
        let net = tiny_net();
        let dir = std::env::temp_dir().join(format!(
            "sarn_warm_{}_{:p}",
            std::process::id(),
            &net as *const _
        ));
        let mut cfg = SarnConfig::tiny().with_checkpointing(&dir, 1);
        cfg.max_epochs = 2;
        train(&net, &cfg);
        let latest = checkpoint::latest_checkpoint(&dir, Some(cfg.fingerprint())).unwrap();

        // Edit the network (append a segment), then warm-start on it: the
        // vocab tables may have grown, so this exercises the prefix path.
        let mut edited = net.clone();
        let seg = {
            let s = edited.segment(0).clone();
            sarn_roadnet::RoadSegment::between(s.class, s.start, s.end)
        };
        edited.add_segment(seg, &[0], &[]);
        let mut warm_cfg = cfg.clone().with_warm_start_from(&latest);
        warm_cfg.checkpoint_every = 0;
        warm_cfg.checkpoint_dir = None;
        let warm = try_train(&edited, &warm_cfg).unwrap();
        assert_eq!(warm.embeddings.rows(), edited.num_segments());
        assert!(warm.embeddings.all_finite());
        // A warm start is a fresh run: the history restarts at epoch 0.
        assert_eq!(warm.epochs_run, warm_cfg.max_epochs);

        // The seeded run differs from a cold run on the same network —
        // proof the checkpoint's weights actually reached the model.
        let cold = try_train(&edited, &{
            let mut c = warm_cfg.clone();
            c.warm_start_from = None;
            c
        })
        .unwrap();
        assert_ne!(warm.embeddings.data(), cold.embeddings.data());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn warm_start_rejects_incompatibility_with_typed_errors() {
        let net = tiny_net();
        let dir = std::env::temp_dir().join(format!(
            "sarn_warmbad_{}_{:p}",
            std::process::id(),
            &net as *const _
        ));
        let mut cfg = SarnConfig::tiny().with_checkpointing(&dir, 1);
        cfg.max_epochs = 1;
        train(&net, &cfg);
        let latest = checkpoint::latest_checkpoint(&dir, Some(cfg.fingerprint())).unwrap();

        // A different seed is a different fingerprint: probe rejects it.
        let other = cfg.clone().with_seed(99).with_warm_start_from(&latest);
        assert!(matches!(
            try_train(&net, &other),
            Err(TrainError::Checkpoint(
                CheckpointError::ConfigMismatch { .. }
            ))
        ));

        // Warm start and resume are mutually exclusive.
        let mut both = cfg.clone().with_warm_start_from(&latest);
        both.resume_auto = true;
        assert!(matches!(
            try_train(&net, &both),
            Err(TrainError::Checkpoint(CheckpointError::StateMismatch(_)))
        ));

        // Garbage file: the probe's typed error surfaces, not a mid-load
        // failure.
        let junk = dir.join("junk.sarnckpt");
        std::fs::write(&junk, b"???").unwrap();
        let mut junk_cfg = cfg.clone().with_warm_start_from(&junk);
        junk_cfg.checkpoint_every = 0;
        assert!(matches!(
            try_train(&net, &junk_cfg),
            Err(TrainError::Checkpoint(
                CheckpointError::BadMagic | CheckpointError::Truncated { .. }
            ))
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn deadline_aborts_with_a_typed_error_not_partial_output() {
        let net = tiny_net();
        let mut cfg = SarnConfig::tiny();
        cfg.max_epochs = 3;
        cfg.max_train_seconds = 1e-9; // already spent by the A^s build
        match try_train(&net, &cfg) {
            Err(TrainError::DeadlineExceeded {
                elapsed_seconds,
                budget_seconds,
                epochs_run,
            }) => {
                assert!(elapsed_seconds > budget_seconds);
                assert_eq!(epochs_run, 0);
            }
            Err(e) => panic!("expected DeadlineExceeded, got {e}"),
            Ok(_) => panic!("expected DeadlineExceeded, got a trained model"),
        }
        // Zero disables the deadline entirely.
        cfg.max_train_seconds = 0.0;
        assert!(try_train(&net, &cfg).is_ok());
    }

    #[test]
    fn zero_grads_except_keeps_only_requested() {
        let net = tiny_net();
        let cfg = SarnConfig::tiny();
        let mut model = SarnModel::new(&net, &cfg);
        // Fill all grads with ones.
        for id in model.all_param_ids() {
            let (r, c) = model.store.value(id).shape();
            model.store.grad_mut(id).axpy(1.0, &Tensor::ones(r, c));
        }
        let keep = model.last_gat_layer_ids();
        zero_grads_except(&mut model.store, &keep);
        for id in model.all_param_ids() {
            let expect_nonzero = keep.contains(&id);
            assert_eq!(model.store.grad(id).norm_sq() > 0.0, expect_nonzero);
        }
    }

    fn cosine(a: &[f32], b: &[f32]) -> f32 {
        sarn_tensor::kernels::cosine(a, b)
    }
}
