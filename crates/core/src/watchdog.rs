//! Training watchdog: numerical-health monitoring, a typed failure
//! taxonomy, and automatic rollback-to-checkpoint recovery.
//!
//! A long contrastive-learning run has three ways to die silently: a
//! non-finite loss (which corrupts the history and early stopping), a
//! non-finite or exploding gradient (which poisons the parameters on the
//! next optimizer step), and a corrupted negative-queue entry (which
//! poisons every later batch that draws it as a candidate). The watchdog
//! guards all three with cheap probes in the hot loop and, on violation,
//! drives the recovery state machine
//!
//! ```text
//! healthy --violation--> rollback --backoff--> healthy (retry)
//!                           |
//!                           +--max_recoveries exhausted--> give-up
//! ```
//!
//! - **healthy**: every probe passes; at each epoch boundary the trainer
//!   refreshes an in-memory rollback anchor (a full [`crate::Checkpoint`],
//!   the same structure PR'd for crash-safe persistence — parameters, Adam
//!   moments, queues, RNG state, shuffle order, loss history).
//! - **violation**: a probe fails. The batch's update is *not* applied
//!   (gradient probes run before `Adam::step`), and the trainer abandons
//!   the epoch.
//! - **rollback**: the anchor is restored through the same validation path
//!   used when resuming a disk checkpoint, discarding every poisoned
//!   tensor, queue entry, and history suffix.
//! - **backoff**: the learning rate is scaled by
//!   [`WatchdogConfig::lr_backoff`] (compounding per recovery) and the
//!   main RNG stream is re-derived from the anchor's saved state plus the
//!   retry ordinal — deterministic and replayable, but exploring different
//!   augmentation views and batch orders than the leg that diverged.
//! - **give-up**: after [`WatchdogConfig::max_recoveries`] failed retries
//!   the run returns a structured [`TrainError::Diverged`] report naming
//!   the violation, epoch, and batch — never a panic.
//!
//! Supervision is free when healthy in the bitwise sense: a watched run
//! that never trips a probe produces exactly the history and embeddings of
//! an unwatched one (the probes only read). The probes themselves are
//! serial scalar scans, so results stay identical at every thread count.

use std::fmt;

use sarn_tensor::ParamStore;

use crate::checkpoint::CheckpointError;
use crate::model::SarnModel;

/// Which parameter branch a violation was observed in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Branch {
    /// The gradient-trained query branch (`F`, `P`).
    Query,
    /// The EMA momentum branch (`F'`, `P'`).
    Momentum,
}

impl fmt::Display for Branch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Branch::Query => write!(f, "query"),
            Branch::Momentum => write!(f, "momentum"),
        }
    }
}

/// A defect disqualifying one embedding vector, shared by every admission
/// gate that screens embeddings before letting them influence others: the
/// training watchdog's negative-queue probe (a corrupt entry would poison
/// every later batch that draws it) and the serving store's artifact
/// admission (a corrupt row must keep the last-known-good generation in
/// place, per DESIGN.md §10).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EmbeddingDefect {
    /// The vector's length disagrees with the expected dimension.
    DimMismatch {
        /// Length found.
        found: usize,
        /// Length required.
        expected: usize,
    },
    /// A component is NaN or ±∞.
    NonFinite {
        /// Index of the first offending component.
        component: usize,
        /// The offending value.
        value: f32,
    },
}

impl fmt::Display for EmbeddingDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbeddingDefect::DimMismatch { found, expected } => {
                write!(f, "embedding has dim {found}, expected {expected}")
            }
            EmbeddingDefect::NonFinite { component, value } => {
                write!(f, "non-finite value {value} at component {component}")
            }
        }
    }
}

/// Screens one embedding vector against `expected_dim`, returning the
/// first [`EmbeddingDefect`] found (`None` means admissible).
pub fn embedding_defect(embedding: &[f32], expected_dim: usize) -> Option<EmbeddingDefect> {
    if embedding.len() != expected_dim {
        return Some(EmbeddingDefect::DimMismatch {
            found: embedding.len(),
            expected: expected_dim,
        });
    }
    embedding
        .iter()
        .position(|v| !v.is_finite())
        .map(|component| EmbeddingDefect::NonFinite {
            component,
            value: embedding[component],
        })
}

/// One numerical-health violation caught by a watchdog probe.
#[derive(Clone, Debug, PartialEq)]
pub enum HealthViolation {
    /// The batch loss evaluated to NaN or ±∞.
    NonFiniteLoss {
        /// Epoch of the sick batch.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
    },
    /// A parameter gradient contains NaN or ±∞ (caught *before* the
    /// optimizer step, so the parameters are still clean).
    NonFiniteGrad {
        /// Epoch of the sick batch.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// Name of the first offending parameter.
        param: String,
    },
    /// The global gradient norm exploded past
    /// [`WatchdogConfig::grad_ratio`] times the EMA baseline (or became
    /// non-finite despite finite entries).
    GradExplosion {
        /// Epoch of the sick batch.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// Observed global gradient norm.
        norm: f32,
        /// EMA baseline the norm was compared against.
        baseline: f32,
    },
    /// A parameter value went non-finite (end-of-epoch scan of both
    /// branches).
    NonFiniteParam {
        /// Epoch whose closing scan caught the value.
        epoch: usize,
        /// Branch holding the parameter.
        branch: Branch,
        /// Name of the first offending parameter.
        param: String,
    },
    /// A non-finite embedding was about to enter a negative-sample queue.
    CorruptQueueEntry {
        /// Epoch of the sick batch.
        epoch: usize,
        /// Batch index within the epoch.
        batch: usize,
        /// Segment whose embedding was rejected.
        segment: usize,
        /// What exactly was wrong with the entry.
        detail: String,
    },
}

impl HealthViolation {
    /// Epoch the violation was observed in.
    pub fn epoch(&self) -> usize {
        match self {
            HealthViolation::NonFiniteLoss { epoch, .. }
            | HealthViolation::NonFiniteGrad { epoch, .. }
            | HealthViolation::GradExplosion { epoch, .. }
            | HealthViolation::NonFiniteParam { epoch, .. }
            | HealthViolation::CorruptQueueEntry { epoch, .. } => *epoch,
        }
    }

    /// Batch index within the epoch, if the probe is per-batch (the
    /// end-of-epoch parameter scan has none).
    pub fn batch(&self) -> Option<usize> {
        match self {
            HealthViolation::NonFiniteLoss { batch, .. }
            | HealthViolation::NonFiniteGrad { batch, .. }
            | HealthViolation::GradExplosion { batch, .. }
            | HealthViolation::CorruptQueueEntry { batch, .. } => Some(*batch),
            HealthViolation::NonFiniteParam { .. } => None,
        }
    }
}

impl fmt::Display for HealthViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthViolation::NonFiniteLoss { epoch, batch } => {
                write!(f, "non-finite loss at epoch {epoch}, batch {batch}")
            }
            HealthViolation::NonFiniteGrad {
                epoch,
                batch,
                param,
            } => write!(
                f,
                "non-finite gradient in {param} at epoch {epoch}, batch {batch}"
            ),
            HealthViolation::GradExplosion {
                epoch,
                batch,
                norm,
                baseline,
            } => write!(
                f,
                "gradient norm {norm:.3e} exploded past baseline {baseline:.3e} \
                 at epoch {epoch}, batch {batch}"
            ),
            HealthViolation::NonFiniteParam {
                epoch,
                branch,
                param,
            } => write!(
                f,
                "non-finite value in {branch} parameter {param} after epoch {epoch}"
            ),
            HealthViolation::CorruptQueueEntry {
                epoch,
                batch,
                segment,
                detail,
            } => write!(
                f,
                "corrupt queue entry for segment {segment} at epoch {epoch}, \
                 batch {batch}: {detail}"
            ),
        }
    }
}

/// One recovery the watchdog performed: the violation that triggered it,
/// where training rolled back to, and the compounded learning-rate scale
/// the retry ran under.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryEvent {
    /// The violation that triggered the rollback.
    pub violation: HealthViolation,
    /// Epoch the run rolled back to (the anchor's next epoch).
    pub rolled_back_to_epoch: usize,
    /// Learning-rate scale in effect after this recovery's backoff
    /// (`lr_backoff` compounded once per recovery so far).
    pub lr_scale: f32,
}

impl fmt::Display for RecoveryEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}; rolled back to epoch {}, lr scaled to {:.4}",
            self.violation, self.rolled_back_to_epoch, self.lr_scale
        )
    }
}

/// Structured give-up report: what finally killed the run and everything
/// the watchdog tried before giving up.
#[derive(Clone, Debug)]
pub struct DivergenceReport {
    /// The violation that exhausted the retry budget.
    pub violation: HealthViolation,
    /// Every recovery attempted before giving up, in order.
    pub recoveries: Vec<RecoveryEvent>,
    /// The retry budget that was exhausted.
    pub max_recoveries: usize,
    /// Mean loss of every healthy epoch completed before the final
    /// violation (the anchor's history — all entries are finite).
    pub loss_history: Vec<f32>,
}

impl fmt::Display for DivergenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "training diverged after {} of {} recoveries: {} (epoch {}",
            self.recoveries.len(),
            self.max_recoveries,
            self.violation,
            self.violation.epoch(),
        )?;
        match self.violation.batch() {
            Some(b) => write!(f, ", batch {b})")?,
            None => write!(f, ", epoch-boundary scan)")?,
        }
        Ok(())
    }
}

/// Telemetry for a watchdog violation: a counter bump plus a journal
/// event (no-ops while telemetry is disabled).
pub(crate) fn obs_violation(v: &HealthViolation) {
    if !sarn_obs::enabled() {
        return;
    }
    sarn_obs::counter("sarn_watchdog_violations_total").inc();
    sarn_obs::record(sarn_obs::Event::WatchdogViolation {
        epoch: v.epoch(),
        batch: v.batch(),
        detail: v.to_string(),
    });
}

/// Telemetry for one completed rollback recovery (`retry` is 1-based).
pub(crate) fn obs_recovery(ev: &RecoveryEvent, retry: usize) {
    if !sarn_obs::enabled() {
        return;
    }
    sarn_obs::counter("sarn_watchdog_recoveries_total").inc();
    sarn_obs::record(sarn_obs::Event::WatchdogRecovery {
        rolled_back_to_epoch: ev.rolled_back_to_epoch,
        lr_scale: ev.lr_scale as f64,
        retry,
    });
}

/// Telemetry for a run that exhausted its retry budget.
pub(crate) fn obs_divergence(report: &DivergenceReport) {
    if !sarn_obs::enabled() {
        return;
    }
    sarn_obs::counter("sarn_watchdog_divergences_total").inc();
    sarn_obs::record(sarn_obs::Event::WatchdogDivergence {
        recoveries: report.recoveries.len(),
        detail: report.violation.to_string(),
    });
}

/// Everything that can abort [`crate::try_train`].
#[derive(Debug)]
pub enum TrainError {
    /// Saving, loading, or validating a checkpoint failed.
    Checkpoint(CheckpointError),
    /// The watchdog exhausted its retry budget; the report names the
    /// violation, epoch, and batch, plus every recovery attempted.
    Diverged(Box<DivergenceReport>),
    /// [`crate::SarnConfig::max_train_seconds`] elapsed before the run
    /// finished its epochs. Checked only at epoch boundaries, so the
    /// overrun can exceed the deadline by up to one epoch.
    DeadlineExceeded {
        /// Wall-clock seconds the run had consumed at the check.
        elapsed_seconds: f64,
        /// The configured budget.
        budget_seconds: f64,
        /// Epochs fully completed before the run was cut short.
        epochs_run: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Checkpoint(e) => write!(f, "{e}"),
            TrainError::Diverged(report) => write!(f, "{report}"),
            TrainError::DeadlineExceeded {
                elapsed_seconds,
                budget_seconds,
                epochs_run,
            } => write!(
                f,
                "training deadline exceeded: {elapsed_seconds:.2}s elapsed of a \
                 {budget_seconds:.2}s budget after {epochs_run} epochs"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Watchdog knobs (part of [`crate::SarnConfig`]). Disabled by default;
/// none of these shape a healthy run's trajectory, so they are excluded
/// from the config fingerprint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WatchdogConfig {
    /// Master switch. Off by default: the unwatched hot loop runs exactly
    /// as before, with zero probe overhead.
    pub enabled: bool,
    /// Rollback retries before giving up with [`TrainError::Diverged`].
    pub max_recoveries: usize,
    /// Learning-rate multiplier applied per recovery (compounding).
    pub lr_backoff: f32,
    /// Gradient-norm explosion threshold as a multiple of the EMA
    /// baseline (`0` disables the explosion probe; non-finite norms are
    /// always violations).
    pub grad_ratio: f32,
    /// Healthy batches observed before the explosion probe arms (the EMA
    /// baseline is meaningless while it warms up).
    pub warmup_batches: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            max_recoveries: 3,
            lr_backoff: 0.5,
            grad_ratio: 25.0,
            warmup_batches: 20,
        }
    }
}

/// Which quantity a [`FaultSpec`] corrupts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Overwrite one gradient entry with NaN after the backward pass.
    NanGrad,
    /// Replace the batch loss value with NaN.
    NanLoss,
    /// Scale every gradient by `1e20` (trips the explosion probe, or the
    /// non-finite probes once the values overflow).
    HugeGrad,
}

/// Deterministic fault injection for watchdog tests and the
/// `watchdog_smoke` bench binary: detonates the training run at a chosen
/// epoch and batch. Excluded from the config fingerprint — it is injected
/// damage, not a trajectory knob — and never set outside tests/benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Epoch to detonate in.
    pub epoch: usize,
    /// Batch index within the epoch.
    pub batch: usize,
    /// What to corrupt.
    pub kind: FaultKind,
    /// `true` re-fires on every visit to (epoch, batch) — including
    /// post-rollback replays, which exhausts the retry budget; `false`
    /// fires once per process run, so a watched run recovers.
    pub sticky: bool,
}

/// Per-run monitor: cheap numerical-health probes plus the EMA
/// gradient-norm baseline for the explosion check.
pub struct Watchdog {
    cfg: WatchdogConfig,
    ema_grad_norm: f32,
    healthy_batches: usize,
}

impl Watchdog {
    /// Creates a monitor with the given knobs.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Self {
            cfg,
            ema_grad_norm: 0.0,
            healthy_batches: 0,
        }
    }

    /// Resets the EMA baseline and warmup counter (called after a
    /// rollback: the restored state re-warms from scratch, so a retried
    /// leg is judged by its own gradients, not the diverged leg's).
    pub fn reset(&mut self) {
        self.ema_grad_norm = 0.0;
        self.healthy_batches = 0;
    }

    /// EMA gradient-norm baseline (0 until the first healthy batch).
    pub fn grad_norm_baseline(&self) -> f32 {
        self.ema_grad_norm
    }

    /// Per-batch probe, run after the backward pass and **before** the
    /// optimizer step: loss finiteness, per-parameter gradient
    /// finiteness, and gradient-norm explosion against the EMA baseline.
    /// On success the baseline absorbs this batch's norm.
    pub fn check_batch(
        &mut self,
        store: &ParamStore,
        loss: f32,
        epoch: usize,
        batch: usize,
    ) -> Result<(), HealthViolation> {
        if !loss.is_finite() {
            return Err(HealthViolation::NonFiniteLoss { epoch, batch });
        }
        let mut norm_sq = 0.0f32;
        for id in store.ids() {
            let g = store.grad(id);
            if !g.all_finite() {
                return Err(HealthViolation::NonFiniteGrad {
                    epoch,
                    batch,
                    param: store.name(id).to_string(),
                });
            }
            norm_sq += g.norm_sq();
        }
        let norm = norm_sq.sqrt();
        // Finite entries can still overflow the squared sum.
        if !norm.is_finite() {
            return Err(HealthViolation::GradExplosion {
                epoch,
                batch,
                norm,
                baseline: self.ema_grad_norm,
            });
        }
        if self.cfg.grad_ratio > 0.0
            && self.healthy_batches >= self.cfg.warmup_batches
            && norm > self.cfg.grad_ratio * self.ema_grad_norm
        {
            return Err(HealthViolation::GradExplosion {
                epoch,
                batch,
                norm,
                baseline: self.ema_grad_norm,
            });
        }
        self.ema_grad_norm = if self.healthy_batches == 0 {
            norm
        } else {
            0.9 * self.ema_grad_norm + 0.1 * norm
        };
        self.healthy_batches += 1;
        Ok(())
    }

    /// End-of-epoch probe: every parameter of both branches is finite.
    /// Catches poison that slipped past the gradient probes (e.g. a huge
    /// but finite update overflowing a weight).
    pub fn check_epoch_params(model: &SarnModel, epoch: usize) -> Result<(), HealthViolation> {
        for (store, branch) in [
            (&model.store, Branch::Query),
            (&model.store_momentum, Branch::Momentum),
        ] {
            for id in store.ids() {
                if !store.value(id).all_finite() {
                    return Err(HealthViolation::NonFiniteParam {
                        epoch,
                        branch,
                        param: store.name(id).to_string(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Seed of the re-derived RNG stream for retry number `retry` (1-based)
/// from a rollback anchor's saved xoshiro state. Deterministic, so a
/// recovered run replays bitwise-identically, yet distinct per retry and
/// from the stream that diverged — the retried leg samples different
/// augmentation views and batch orders.
pub(crate) fn retry_seed(rng_state: [u64; 4], retry: u64) -> u64 {
    let mut seed = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(retry.wrapping_add(1));
    for (i, s) in rng_state.iter().enumerate() {
        seed ^= s.rotate_left(11 * (i as u32 + 1));
        seed = seed.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    }
    seed
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_tensor::Tensor;

    fn store_with_grad(grad: &[f32]) -> ParamStore {
        let mut s = ParamStore::new();
        let id = s.add("w", Tensor::zeros(1, grad.len()));
        s.grad_mut(id).data_mut().copy_from_slice(grad);
        s
    }

    #[test]
    fn clean_batches_pass_and_warm_the_baseline() {
        let mut w = Watchdog::new(WatchdogConfig::default());
        let s = store_with_grad(&[3.0, 4.0]);
        for b in 0..5 {
            w.check_batch(&s, 0.5, 0, b).unwrap();
        }
        assert!((w.grad_norm_baseline() - 5.0).abs() < 1e-5);
    }

    #[test]
    fn non_finite_loss_is_a_violation() {
        let mut w = Watchdog::new(WatchdogConfig::default());
        let s = store_with_grad(&[1.0]);
        let err = w.check_batch(&s, f32::NAN, 2, 3).unwrap_err();
        assert_eq!(err, HealthViolation::NonFiniteLoss { epoch: 2, batch: 3 });
        assert_eq!(err.epoch(), 2);
        assert_eq!(err.batch(), Some(3));
    }

    #[test]
    fn non_finite_grad_names_the_parameter() {
        let mut w = Watchdog::new(WatchdogConfig::default());
        let s = store_with_grad(&[1.0, f32::NAN]);
        match w.check_batch(&s, 0.5, 1, 0).unwrap_err() {
            HealthViolation::NonFiniteGrad { param, .. } => assert_eq!(param, "w"),
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn explosion_probe_arms_after_warmup() {
        let cfg = WatchdogConfig {
            enabled: true,
            warmup_batches: 3,
            grad_ratio: 10.0,
            ..WatchdogConfig::default()
        };
        let mut w = Watchdog::new(cfg);
        let calm = store_with_grad(&[1.0]);
        let wild = store_with_grad(&[1000.0]);
        // During warmup even a wild norm passes (and skews the EMA, which
        // reset() clears).
        w.check_batch(&wild, 0.5, 0, 0).unwrap();
        w.reset();
        for b in 0..3 {
            w.check_batch(&calm, 0.5, 0, b).unwrap();
        }
        match w.check_batch(&wild, 0.5, 0, 3).unwrap_err() {
            HealthViolation::GradExplosion { norm, baseline, .. } => {
                assert!(norm > 999.0);
                assert!((baseline - 1.0).abs() < 1e-6);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn epoch_param_scan_names_branch_and_param() {
        use crate::SarnConfig;
        use sarn_roadnet::{City, SynthConfig};
        let net = SynthConfig::city(City::Chengdu).scaled(0.22).generate();
        let mut model = SarnModel::new(&net, &SarnConfig::tiny());
        Watchdog::check_epoch_params(&model, 4).unwrap();
        let id = model
            .store_momentum
            .ids()
            .next()
            .expect("model has parameters");
        model.store_momentum.value_mut(id).data_mut()[0] = f32::INFINITY;
        match Watchdog::check_epoch_params(&model, 4).unwrap_err() {
            HealthViolation::NonFiniteParam { branch, epoch, .. } => {
                assert_eq!(branch, Branch::Momentum);
                assert_eq!(epoch, 4);
            }
            other => panic!("unexpected violation {other:?}"),
        }
    }

    #[test]
    fn embedding_defect_screens_dim_and_finiteness() {
        assert_eq!(embedding_defect(&[1.0, 2.0], 2), None);
        assert_eq!(
            embedding_defect(&[1.0], 2),
            Some(EmbeddingDefect::DimMismatch {
                found: 1,
                expected: 2
            })
        );
        match embedding_defect(&[0.0, f32::NEG_INFINITY], 2) {
            Some(EmbeddingDefect::NonFinite {
                component: 1,
                value,
            }) => assert_eq!(value, f32::NEG_INFINITY),
            other => panic!("expected NonFinite at component 1, got {other:?}"),
        }
        // An empty expectation screens an empty vector cleanly.
        assert_eq!(embedding_defect(&[], 0), None);
    }

    #[test]
    fn retry_seeds_are_deterministic_and_distinct() {
        let state = [1, 2, 3, 4];
        assert_eq!(retry_seed(state, 1), retry_seed(state, 1));
        assert_ne!(retry_seed(state, 1), retry_seed(state, 2));
        assert_ne!(retry_seed(state, 1), retry_seed([5, 6, 7, 8], 1));
    }

    #[test]
    fn divergence_report_names_violation_epoch_and_batch() {
        let report = DivergenceReport {
            violation: HealthViolation::NonFiniteLoss { epoch: 7, batch: 2 },
            recoveries: vec![RecoveryEvent {
                violation: HealthViolation::NonFiniteLoss { epoch: 7, batch: 2 },
                rolled_back_to_epoch: 6,
                lr_scale: 0.5,
            }],
            max_recoveries: 1,
            loss_history: vec![1.0, 0.5],
        };
        let msg = TrainError::Diverged(Box::new(report)).to_string();
        assert!(msg.contains("epoch 7"), "{msg}");
        assert!(msg.contains("batch 2"), "{msg}");
        assert!(msg.contains("non-finite loss"), "{msg}");
    }
}
