//! Fault injection against the checkpoint format.
//!
//! Every damaged artifact must fail with a typed [`CheckpointError`] naming
//! the affected section — never a panic, never silently accepted state.
//! The tests walk the file's own framing (magic + version, then five
//! `tag | len | crc | payload` frames) to find section boundaries, so they
//! exercise truncation at every boundary and a bit flip inside every
//! payload without hard-coding offsets.

use sarn_core::checkpoint;
use sarn_core::checkpoint::{
    tmp_sibling, Checkpoint, CheckpointError, CheckpointMeta, OptimState, ParamStoreSnapshot,
    QueueState, SECTION_NAMES,
};
use sarn_tensor::Tensor;
use std::path::PathBuf;

/// A small but fully populated checkpoint: every section has a non-empty
/// payload, so every section is a corruption target.
fn sample() -> Checkpoint {
    Checkpoint {
        meta: CheckpointMeta {
            fingerprint: 0x00C0_FFEE_F00D_BA5E,
            next_epoch: 3,
            train_seconds: 1.25,
            rng_state: [9, 8, 7, 6],
            loss_history: vec![0.9, 0.7, 0.6],
            order: vec![2, 0, 1, 3],
        },
        query: ParamStoreSnapshot {
            params: vec![
                (
                    "enc.w".to_string(),
                    Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]),
                ),
                (
                    "enc.b".to_string(),
                    Tensor::from_vec(1, 3, vec![0.1, 0.2, 0.3]),
                ),
            ],
        },
        momentum: ParamStoreSnapshot {
            params: vec![
                (
                    "enc.w".to_string(),
                    Tensor::from_vec(2, 3, vec![6., 5., 4., 3., 2., 1.]),
                ),
                (
                    "enc.b".to_string(),
                    Tensor::from_vec(1, 3, vec![0.3, 0.2, 0.1]),
                ),
            ],
        },
        optim: OptimState {
            step: 42,
            m: vec![
                Tensor::from_vec(2, 3, vec![0.0; 6]),
                Tensor::from_vec(1, 3, vec![0.0; 3]),
            ],
            v: vec![
                Tensor::from_vec(2, 3, vec![0.5; 6]),
                Tensor::from_vec(1, 3, vec![0.5; 3]),
            ],
        },
        queues: Some(QueueState {
            dim: 2,
            capacity: 4,
            cells: vec![
                vec![(0, vec![0.1, 0.2]), (5, vec![0.3, 0.4])],
                vec![(1, vec![0.5, 0.6])],
            ],
        }),
    }
}

/// `(frame_start, payload_end)` of each of the five sections, recovered by
/// walking the framing exactly as the parser does.
fn section_bounds(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut pos = 12; // magic (8) + version (4)
    for _ in 0..SECTION_NAMES.len() {
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap()) as usize;
        let payload_end = pos + 16 + len;
        bounds.push((pos, payload_end));
        pos = payload_end;
    }
    assert_eq!(pos, bytes.len(), "framing walk must consume the whole file");
    bounds
}

#[test]
fn truncation_at_every_boundary_names_the_section() {
    let bytes = sample().to_bytes();
    // Inside the 12-byte header.
    for cut in [0, 4, 8, 11] {
        match Checkpoint::from_bytes(&bytes[..cut]) {
            Err(CheckpointError::Truncated { section: "header" }) => {}
            other => panic!("cut at {cut}: expected header truncation, got {other:?}"),
        }
    }
    // At and inside every section: cutting at the frame start, mid-header,
    // just after the header, and mid-payload must all blame that section.
    for (idx, &(start, end)) in section_bounds(&bytes).iter().enumerate() {
        let payload_mid = start + 16 + (end - start - 16) / 2;
        for cut in [start, start + 7, start + 16, payload_mid, end - 1] {
            match Checkpoint::from_bytes(&bytes[..cut]) {
                Err(CheckpointError::Truncated { section }) if section == SECTION_NAMES[idx] => {}
                other => panic!(
                    "cut at {cut} (section {}): expected Truncated there, got {other:?}",
                    SECTION_NAMES[idx]
                ),
            }
        }
    }
}

#[test]
fn one_flipped_byte_per_payload_is_caught_by_the_checksum() {
    let bytes = sample().to_bytes();
    for (idx, &(start, end)) in section_bounds(&bytes).iter().enumerate() {
        let mut damaged = bytes.clone();
        let target = start + 16 + (end - start - 16) / 2;
        damaged[target] ^= 0x40;
        match Checkpoint::from_bytes(&damaged) {
            Err(e @ CheckpointError::Corrupt { .. }) => {
                assert_eq!(
                    e.section(),
                    Some(SECTION_NAMES[idx]),
                    "wrong section blamed"
                );
            }
            other => panic!(
                "flip at {target} (section {}): expected Corrupt, got {other:?}",
                SECTION_NAMES[idx]
            ),
        }
    }
}

#[test]
fn flipped_tag_is_reported_as_corrupt_framing() {
    let bytes = sample().to_bytes();
    let (start, _) = section_bounds(&bytes)[2]; // MOMS
    let mut damaged = bytes.clone();
    damaged[start] ^= 0x20;
    match Checkpoint::from_bytes(&damaged) {
        Err(CheckpointError::Corrupt {
            section: "MOMS",
            detail,
        }) => {
            assert!(
                detail.contains("tag"),
                "detail should mention the tag: {detail}"
            );
        }
        other => panic!("expected corrupt MOMS tag, got {other:?}"),
    }
}

#[test]
fn bad_magic_and_future_version_are_typed_errors() {
    let bytes = sample().to_bytes();
    let mut not_ours = bytes.clone();
    not_ours[0] = b'X';
    assert!(matches!(
        Checkpoint::from_bytes(&not_ours),
        Err(CheckpointError::BadMagic)
    ));

    let mut future = bytes.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        Checkpoint::from_bytes(&future),
        Err(CheckpointError::UnsupportedVersion(99))
    ));
}

#[test]
fn crc_header_flip_is_caught() {
    // Damaging the stored CRC itself (not the payload) must also fail.
    let bytes = sample().to_bytes();
    let (start, _) = section_bounds(&bytes)[0];
    let mut damaged = bytes.clone();
    damaged[start + 12] ^= 0x01;
    match Checkpoint::from_bytes(&damaged) {
        Err(CheckpointError::Corrupt {
            section: "META", ..
        }) => {}
        other => panic!("expected META checksum failure, got {other:?}"),
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sarn_faults_{}_{}", std::process::id(), tag));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn crash_between_write_and_rename_keeps_the_previous_checkpoint() {
    let dir = scratch_dir("crash");
    let ckpt = sample();
    let path = dir.join(checkpoint::checkpoint_file_name(ckpt.meta.fingerprint, 3));
    ckpt.save(&path).unwrap();

    // Simulate a crash mid-save of the next snapshot: the staging `.tmp`
    // sibling exists (torn, half-written) but the rename never happened.
    let torn = &ckpt.to_bytes()[..40];
    std::fs::write(tmp_sibling(&path), torn).unwrap();

    // The previous artifact is untouched and fully loadable…
    let reloaded = Checkpoint::load(&path).unwrap();
    assert_eq!(reloaded, ckpt);
    // …and directory scans never mistake the staging file for a checkpoint.
    let found = checkpoint::list_checkpoints(&dir, None);
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].1, path);
    assert_eq!(
        checkpoint::latest_checkpoint(&dir, Some(ckpt.meta.fingerprint)),
        Some(path)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loading_a_missing_file_is_an_io_error() {
    let err = Checkpoint::load("/nonexistent/sarn/ckpt.sarnckpt").unwrap_err();
    assert!(matches!(err, CheckpointError::Io(_)));
    assert_eq!(err.section(), None);
}
