//! Golden-file pin of checkpoint format version 1.
//!
//! `tests/golden/checkpoint_v1.sarnckpt` is a committed artifact produced by
//! [`golden_checkpoint`]. The test below requires today's code to read it
//! back *and* to re-serialize it to the identical bytes — so any change to
//! the on-disk layout breaks this test until [`FORMAT_VERSION`] is bumped
//! (and a new fixture is committed under the new version's name).
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! cargo test -p sarn-core --test checkpoint_golden regenerate -- --ignored
//! ```

use sarn_core::checkpoint::{
    Checkpoint, CheckpointMeta, OptimState, ParamStoreSnapshot, QueueState, FORMAT_VERSION,
};
use sarn_tensor::Tensor;
use std::path::PathBuf;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("checkpoint_v{FORMAT_VERSION}.sarnckpt"))
}

/// The fixture's contents, fixed forever (for format version 1).
fn golden_checkpoint() -> Checkpoint {
    Checkpoint {
        meta: CheckpointMeta {
            fingerprint: 0x5A4E_2023_EDB7_0001,
            next_epoch: 7,
            train_seconds: 12.5,
            rng_state: [
                0x0123_4567_89AB_CDEF,
                0xFEDC_BA98_7654_3210,
                0x0F0F_0F0F_0F0F_0F0F,
                0xF0F0_F0F0_F0F0_F0F0,
            ],
            loss_history: vec![1.5, 1.25, 1.0, 0.875, 0.75, 0.625, 0.5],
            order: vec![4, 2, 0, 3, 1],
        },
        query: ParamStoreSnapshot {
            params: vec![
                (
                    "gat.0.w".to_string(),
                    Tensor::from_vec(2, 3, vec![0.125, -0.25, 0.5, -1.0, 2.0, -4.0]),
                ),
                (
                    "gat.0.a".to_string(),
                    Tensor::from_vec(1, 2, vec![0.75, -0.375]),
                ),
            ],
        },
        momentum: ParamStoreSnapshot {
            params: vec![
                (
                    "gat.0.w".to_string(),
                    Tensor::from_vec(2, 3, vec![0.0625, -0.125, 0.25, -0.5, 1.0, -2.0]),
                ),
                (
                    "gat.0.a".to_string(),
                    Tensor::from_vec(1, 2, vec![0.5, -0.25]),
                ),
            ],
        },
        optim: OptimState {
            step: 42,
            m: vec![
                Tensor::from_vec(2, 3, vec![0.01, 0.02, 0.03, 0.04, 0.05, 0.06]),
                Tensor::from_vec(1, 2, vec![0.07, 0.08]),
            ],
            v: vec![
                Tensor::from_vec(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
                Tensor::from_vec(1, 2, vec![0.7, 0.8]),
            ],
        },
        queues: Some(QueueState {
            dim: 2,
            capacity: 3,
            cells: vec![
                vec![
                    (11, vec![0.5, -0.5]),
                    (22, vec![0.25, -0.25]),
                    (33, vec![1.0, -1.0]),
                ],
                vec![(44, vec![2.0, -2.0])],
                vec![],
            ],
        }),
    }
}

#[test]
fn format_version_is_one() {
    // Bumping this constant is the deliberate act the golden test forces;
    // when you do, regenerate the fixture under the new file name and
    // update this assertion.
    assert_eq!(FORMAT_VERSION, 1);
}

#[test]
fn golden_fixture_reads_back_and_reserializes_identically() {
    let path = fixture_path();
    let on_disk = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path:?} ({e}); regenerate with \
             `cargo test -p sarn-core --test checkpoint_golden regenerate -- --ignored`"
        )
    });
    let parsed = Checkpoint::from_bytes(&on_disk).expect("golden fixture no longer parses");
    assert_eq!(
        parsed,
        golden_checkpoint(),
        "golden fixture decodes to different contents — the format changed; bump FORMAT_VERSION"
    );
    assert_eq!(
        golden_checkpoint().to_bytes(),
        on_disk,
        "serializer no longer produces the golden bytes — the format changed; bump FORMAT_VERSION"
    );
}

/// Writes the fixture. Run only after an intentional format change (with
/// `FORMAT_VERSION` bumped), then commit the new file.
#[test]
#[ignore = "regenerates the committed golden fixture"]
fn regenerate() {
    let path = fixture_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, golden_checkpoint().to_bytes()).unwrap();
    eprintln!("wrote {path:?}");
}
