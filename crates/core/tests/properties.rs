//! Property-based tests on SARN's spatial components.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use sarn_core::checkpoint::{
    Checkpoint, CheckpointMeta, OptimState, ParamStoreSnapshot, QueueState,
};
use sarn_core::{
    pairwise_similarity, weighted_sample_without_replacement, AugmentConfig, Augmenter,
    SpatialSimilarity, SpatialSimilarityConfig,
};
use sarn_geo::Point;
use sarn_roadnet::{City, HighwayClass, RoadNetwork, RoadSegment, SynthConfig};
use sarn_tensor::Tensor;

fn seg(lat: f64, lon: f64, dlat: f64, dlon: f64) -> RoadSegment {
    RoadSegment::between(
        HighwayClass::Primary,
        Point::new(lat, lon),
        Point::new(lat + dlat, lon + dlon),
    )
}

proptest! {
    #[test]
    fn similarity_is_symmetric_and_bounded(
        lat in 30.0f64..30.01,
        lon in 104.0f64..104.01,
        dlat1 in 0.0002f64..0.001,
        dlon2 in 0.0002f64..0.001,
    ) {
        let a = seg(lat, lon, dlat1, 0.0);
        let b = seg(lat, lon + 0.0005, dlon2, 0.0002);
        let net = RoadNetwork::new(vec![a, b], &[]);
        let cfg = SpatialSimilarityConfig::default();
        let s_ab = pairwise_similarity(&net, 0, 1, &cfg);
        let s_ba = pairwise_similarity(&net, 1, 0, &cfg);
        prop_assert_eq!(s_ab.is_some(), s_ba.is_some());
        if let (Some(x), Some(y)) = (s_ab, s_ba) {
            prop_assert!((x - y).abs() < 1e-12);
            prop_assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn tighter_thresholds_never_increase_similarity(
        scale in 0.3f64..1.0,
    ) {
        let a = seg(30.0, 104.0, 0.0008, 0.0);
        let b = seg(30.0, 104.0008, 0.0008, 0.0001);
        let net = RoadNetwork::new(vec![a, b], &[]);
        let base = SpatialSimilarityConfig::default();
        let tight = SpatialSimilarityConfig {
            delta_ds_m: base.delta_ds_m * scale,
            delta_as_rad: base.delta_as_rad * scale,
            ..SpatialSimilarityConfig::default()
        };
        if let (Some(loose_v), Some(tight_v)) = (
            pairwise_similarity(&net, 0, 1, &base),
            pairwise_similarity(&net, 0, 1, &tight),
        ) {
            prop_assert!(tight_v <= loose_v + 1e-9);
        }
    }

    #[test]
    fn weighted_sampling_returns_k_distinct_valid_indices(
        weights in proptest::collection::vec(0.01f64..10.0, 1..40),
        k_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let k = ((weights.len() as f64) * k_frac) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = weighted_sample_without_replacement(&mut rng, &weights, k);
        prop_assert_eq!(sample.len(), k.min(weights.len()));
        let mut uniq = sample.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), sample.len());
        prop_assert!(sample.iter().all(|&i| i < weights.len()));
    }

    #[test]
    fn corruption_preserves_vertex_count_and_drops_edges(
        seed in 0u64..500,
        rho in 0.1f64..0.9,
    ) {
        // A small chain graph with spatial duplicates.
        let topo: Vec<(usize, usize, f64)> =
            (0..9).map(|i| (i, i + 1, 2.0 + (i % 3) as f64)).collect();
        let spatial: Vec<(usize, usize, f64)> =
            (0..5).map(|i| (i, i + 2, 0.3 + 0.1 * (i % 4) as f64)).collect();
        let aug = Augmenter::new(
            10,
            topo.clone(),
            spatial.clone(),
            AugmentConfig { rho_t: rho, rho_s: rho, epsilon: 0.05 },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let view = aug.corrupt(&mut rng);
        prop_assert_eq!(view.n, 10);
        prop_assert!(view.topo.len() <= topo.len());
        prop_assert!(view.spatial.len() <= spatial.len());
        // Requested removals are lower bounds (dual-typed coupling may drop more).
        let expect_topo_max = topo.len() - (rho * topo.len() as f64).round() as usize;
        prop_assert!(view.topo.len() <= expect_topo_max);
        // Every retained edge existed in the original sets.
        for e in &view.topo {
            prop_assert!(topo.iter().any(|&(a, b, _)| (a, b) == *e));
        }
        for e in &view.spatial {
            prop_assert!(spatial.iter().any(|&(a, b, _)| (a, b) == *e));
        }
    }

    #[test]
    fn seeded_corruption_is_identical_across_thread_counts(
        seed in 0u64..1000,
        threads in 2usize..6,
    ) {
        let topo: Vec<(usize, usize, f64)> =
            (0..40).map(|i| (i, i + 1, 1.0 + (i % 5) as f64)).collect();
        let spatial: Vec<(usize, usize, f64)> =
            (0..12).map(|i| (i, i + 3, 0.2 + 0.06 * (i % 9) as f64)).collect();
        let aug = Augmenter::new(41, topo, spatial, AugmentConfig::default());
        let serial = with_threads(1, || aug.corrupt_with_seed(seed));
        let parallel = with_threads(threads, || aug.corrupt_with_seed(seed));
        prop_assert_eq!(serial.topo, parallel.topo);
        prop_assert_eq!(serial.spatial, parallel.spatial);
    }

    #[test]
    fn edge_index_self_loops_cover_all_vertices(seed in 0u64..100) {
        let topo: Vec<(usize, usize, f64)> = (0..7).map(|i| (i, (i + 1) % 8, 2.0)).collect();
        let aug = Augmenter::new(8, topo, Vec::new(), AugmentConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = aug.corrupt(&mut rng).edge_index();
        // Every vertex appears as a center at least once (its self-loop),
        // so segment softmax is defined everywhere.
        let mut seen = [false; 8];
        for &c in idx.center.iter() {
            seen[c] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}

/// Runs `f` under a temporary thread-count setting, restoring the serial
/// default afterwards. The knob is process-global, but every primitive is
/// deterministic at any setting, so concurrent tests observing a transient
/// value still compute identical results.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    sarn_par::set_num_threads(n);
    let r = f();
    sarn_par::set_num_threads(1);
    r
}

proptest! {
    // These cases build a city-scale network each; a handful suffices.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn parallel_similarity_build_matches_serial(
        delta_ds in 120.0f64..260.0,
        threads in 2usize..6,
    ) {
        // 800 segments at scale 0.6 clear the build's 512-segment serial
        // fallback, so the parallel range scan actually runs. The edge
        // *list* (order included) must match the serial build exactly.
        let net = SynthConfig::city(City::Chengdu).scaled(0.6).generate();
        let cfg = SpatialSimilarityConfig {
            delta_ds_m: delta_ds,
            ..SpatialSimilarityConfig::default()
        };
        let serial = with_threads(1, || SpatialSimilarity::build(&net, &cfg));
        let parallel = with_threads(threads, || SpatialSimilarity::build(&net, &cfg));
        prop_assert!(serial.num_edges() > 0, "degenerate case: no spatial edges");
        prop_assert!(
            serial.edges() == parallel.edges(),
            "edge lists differ at {} threads", threads
        );
    }

    #[test]
    fn corruption_rate_stays_clamped_under_parallel_sampler(base_seed in 0u64..100) {
        // The epsilon clamp keeps every edge's corruption probability inside
        // [eps, 1 - eps]: over repeated parallel draws each edge must be
        // removed at least once and retained at least once, and each draw
        // must remove exactly the requested fraction (the sampler is
        // without replacement, so the count is fixed).
        let m = 10usize;
        let topo: Vec<(usize, usize, f64)> =
            (0..m).map(|i| (i, i + 1, 1.0 + i as f64)).collect();
        let cfg = AugmentConfig { rho_t: 0.4, rho_s: 0.4, epsilon: 0.05 };
        let aug = Augmenter::new(m + 1, topo, Vec::new(), cfg);
        let draws = 300u64;
        let expect_drop = (cfg.rho_t * m as f64).round() as usize;
        let mut removals = vec![0u32; m];
        for d in 0..draws {
            let view = with_threads(4, || aug.corrupt_with_seed(base_seed * draws + d));
            prop_assert_eq!(m - view.topo.len(), expect_drop);
            for (i, r) in removals.iter_mut().enumerate() {
                if !view.topo.iter().any(|&(a, b)| (a, b) == (i, i + 1)) {
                    *r += 1;
                }
            }
        }
        for (i, &r) in removals.iter().enumerate() {
            prop_assert!(
                r > 0 && r < draws as u32,
                "edge {} removed {}/{} times — outside the epsilon clamp", i, r, draws
            );
        }
    }
}

/// Deterministically fills a tensor with finite values from `rng`.
fn arb_tensor(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| (rng.next_u64() % 20_001) as f32 / 100.0 - 100.0)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Builds an arbitrary (but `seed`-deterministic) checkpoint: varying
/// parameter counts and shapes, optimizer moments, loss history, shuffle
/// order, and optionally populated queues.
fn arb_checkpoint(seed: u64, n_params: usize, with_queues: bool, n_cells: usize) -> Checkpoint {
    let mut rng = StdRng::seed_from_u64(seed);
    let shapes: Vec<(usize, usize)> = (0..n_params)
        .map(|_| {
            (
                1 + (rng.next_u64() % 4) as usize,
                1 + (rng.next_u64() % 5) as usize,
            )
        })
        .collect();
    let store_of = |rng: &mut StdRng| ParamStoreSnapshot {
        params: shapes
            .iter()
            .enumerate()
            .map(|(i, &(r, c))| (format!("p{i}.w"), arb_tensor(rng, r, c)))
            .collect(),
    };
    let query = store_of(&mut rng);
    let momentum = store_of(&mut rng);
    let optim = OptimState {
        step: rng.next_u64() % 1_000_000,
        m: shapes
            .iter()
            .map(|&(r, c)| arb_tensor(&mut rng, r, c))
            .collect(),
        v: shapes
            .iter()
            .map(|&(r, c)| arb_tensor(&mut rng, r, c))
            .collect(),
    };
    let dim = 1 + (rng.next_u64() % 4) as usize;
    let capacity = 1 + (rng.next_u64() % 5) as u32;
    let queues = with_queues.then(|| QueueState {
        dim: dim as u32,
        capacity,
        cells: (0..n_cells)
            .map(|_| {
                let fill = rng.next_u64() % (capacity as u64 + 1);
                (0..fill)
                    .map(|_| {
                        let seg = (rng.next_u64() % 10_000) as u32;
                        let emb = (0..dim)
                            .map(|_| (rng.next_u64() % 1000) as f32 / 500.0 - 1.0)
                            .collect();
                        (seg, emb)
                    })
                    .collect()
            })
            .collect(),
    });
    let n_losses = rng.next_u64() % 20;
    let n_order = rng.next_u64() % 50;
    Checkpoint {
        meta: CheckpointMeta {
            fingerprint: rng.next_u64(),
            next_epoch: (rng.next_u64() % 100_000) as u32,
            train_seconds: (rng.next_u64() % 1_000_000) as f64 / 7.0,
            rng_state: [
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            ],
            loss_history: (0..n_losses)
                .map(|_| (rng.next_u64() % 2000) as f32 / 100.0)
                .collect(),
            order: (0..n_order)
                .map(|_| (rng.next_u64() % 10_000) as u32)
                .collect(),
        },
        query,
        momentum,
        optim,
        queues,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn checkpoint_roundtrips_bitwise(
        seed in 0u64..u64::MAX,
        n_params in 0usize..5,
        with_queues in 0u8..2,
        n_cells in 0usize..5,
    ) {
        let ckpt = arb_checkpoint(seed, n_params, with_queues == 1, n_cells);
        // Bytes → struct → bytes is the identity…
        let bytes = ckpt.to_bytes();
        let parsed = Checkpoint::from_bytes(&bytes);
        prop_assert!(parsed.is_ok(), "parse failed: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        prop_assert!(parsed == ckpt, "round-tripped checkpoint differs");
        prop_assert_eq!(parsed.to_bytes(), bytes, "re-serialization differs");
        // …and so is the atomic save → load path.
        let path = std::env::temp_dir().join(format!(
            "sarn_prop_ckpt_{}_{seed:016x}.sarnckpt",
            std::process::id()
        ));
        ckpt.save(&path).unwrap();
        let reloaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert!(reloaded == ckpt, "file round-trip differs");
    }
}
