//! Property-based tests on SARN's spatial components.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sarn_core::{
    pairwise_similarity, weighted_sample_without_replacement, AugmentConfig, Augmenter,
    SpatialSimilarityConfig,
};
use sarn_geo::Point;
use sarn_roadnet::{HighwayClass, RoadNetwork, RoadSegment};

fn seg(lat: f64, lon: f64, dlat: f64, dlon: f64) -> RoadSegment {
    RoadSegment::between(
        HighwayClass::Primary,
        Point::new(lat, lon),
        Point::new(lat + dlat, lon + dlon),
    )
}

proptest! {
    #[test]
    fn similarity_is_symmetric_and_bounded(
        lat in 30.0f64..30.01,
        lon in 104.0f64..104.01,
        dlat1 in 0.0002f64..0.001,
        dlon2 in 0.0002f64..0.001,
    ) {
        let a = seg(lat, lon, dlat1, 0.0);
        let b = seg(lat, lon + 0.0005, dlon2, 0.0002);
        let net = RoadNetwork::new(vec![a, b], &[]);
        let cfg = SpatialSimilarityConfig::default();
        let s_ab = pairwise_similarity(&net, 0, 1, &cfg);
        let s_ba = pairwise_similarity(&net, 1, 0, &cfg);
        prop_assert_eq!(s_ab.is_some(), s_ba.is_some());
        if let (Some(x), Some(y)) = (s_ab, s_ba) {
            prop_assert!((x - y).abs() < 1e-12);
            prop_assert!(x > 0.0 && x <= 1.0);
        }
    }

    #[test]
    fn tighter_thresholds_never_increase_similarity(
        scale in 0.3f64..1.0,
    ) {
        let a = seg(30.0, 104.0, 0.0008, 0.0);
        let b = seg(30.0, 104.0008, 0.0008, 0.0001);
        let net = RoadNetwork::new(vec![a, b], &[]);
        let base = SpatialSimilarityConfig::default();
        let tight = SpatialSimilarityConfig {
            delta_ds_m: base.delta_ds_m * scale,
            delta_as_rad: base.delta_as_rad * scale,
        };
        if let (Some(loose_v), Some(tight_v)) = (
            pairwise_similarity(&net, 0, 1, &base),
            pairwise_similarity(&net, 0, 1, &tight),
        ) {
            prop_assert!(tight_v <= loose_v + 1e-9);
        }
    }

    #[test]
    fn weighted_sampling_returns_k_distinct_valid_indices(
        weights in proptest::collection::vec(0.01f64..10.0, 1..40),
        k_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let k = ((weights.len() as f64) * k_frac) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = weighted_sample_without_replacement(&mut rng, &weights, k);
        prop_assert_eq!(sample.len(), k.min(weights.len()));
        let mut uniq = sample.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), sample.len());
        prop_assert!(sample.iter().all(|&i| i < weights.len()));
    }

    #[test]
    fn corruption_preserves_vertex_count_and_drops_edges(
        seed in 0u64..500,
        rho in 0.1f64..0.9,
    ) {
        // A small chain graph with spatial duplicates.
        let topo: Vec<(usize, usize, f64)> =
            (0..9).map(|i| (i, i + 1, 2.0 + (i % 3) as f64)).collect();
        let spatial: Vec<(usize, usize, f64)> =
            (0..5).map(|i| (i, i + 2, 0.3 + 0.1 * (i % 4) as f64)).collect();
        let aug = Augmenter::new(
            10,
            topo.clone(),
            spatial.clone(),
            AugmentConfig { rho_t: rho, rho_s: rho, epsilon: 0.05 },
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let view = aug.corrupt(&mut rng);
        prop_assert_eq!(view.n, 10);
        prop_assert!(view.topo.len() <= topo.len());
        prop_assert!(view.spatial.len() <= spatial.len());
        // Requested removals are lower bounds (dual-typed coupling may drop more).
        let expect_topo_max = topo.len() - (rho * topo.len() as f64).round() as usize;
        prop_assert!(view.topo.len() <= expect_topo_max);
        // Every retained edge existed in the original sets.
        for e in &view.topo {
            prop_assert!(topo.iter().any(|&(a, b, _)| (a, b) == *e));
        }
        for e in &view.spatial {
            prop_assert!(spatial.iter().any(|&(a, b, _)| (a, b) == *e));
        }
    }

    #[test]
    fn edge_index_self_loops_cover_all_vertices(seed in 0u64..100) {
        let topo: Vec<(usize, usize, f64)> = (0..7).map(|i| (i, (i + 1) % 8, 2.0)).collect();
        let aug = Augmenter::new(8, topo, Vec::new(), AugmentConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let idx = aug.corrupt(&mut rng).edge_index();
        // Every vertex appears as a center at least once (its self-loop),
        // so segment softmax is defined everywhere.
        let mut seen = vec![false; 8];
        for &c in idx.center.iter() {
            seen[c] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }
}
