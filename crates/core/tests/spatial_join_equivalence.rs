//! Grid join ≡ all-pairs oracle, bitwise, on adversarial geometry.
//!
//! `SpatialJoin::Grid` promises the **identical** edge list to
//! `SpatialJoin::Reference` — same pairs, same `f64` weight bits, same
//! order — at every thread count (DESIGN.md §13). This suite attacks the
//! promise with the network shapes most likely to break a bucketed join:
//!
//! * **clustered** — dense blobs with empty space between them, so cell
//!   occupancy is wildly uneven and many candidates share a cell;
//! * **collinear** — every midpoint on one parallel of latitude, so the
//!   grid degenerates to a single row and the bounding box has zero
//!   height;
//! * **single-cell** — the whole network inside one grid cell, where the
//!   join must fall back to an in-cell all-pairs scan bit-for-bit;
//! * **boundary-straddling** — midpoints jittered a few meters around the
//!   cell-side spacing, so qualifying pairs constantly cross cell
//!   boundaries and any off-by-one in the neighborhood ring drops edges.
//!
//! Each network is checked at 1 and 4 threads for both joins; the
//! clustered and collinear generators exceed the build's 512-segment
//! serial fallback so the parallel range scan genuinely runs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_core::{SpatialJoin, SpatialSimilarity, SpatialSimilarityConfig};
use sarn_geo::Point;
use sarn_roadnet::{HighwayClass, RoadNetwork, RoadSegment};

/// One degree of latitude in meters, for sizing jitter in test geometry.
const M_PER_DEG_LAT: f64 = 111_320.0;

fn cfg(join: SpatialJoin) -> SpatialSimilarityConfig {
    SpatialSimilarityConfig {
        join,
        ..SpatialSimilarityConfig::default()
    }
}

/// A short segment whose midpoint is `(lat, lon)`, with a random-ish
/// bearing driven by `dir` so angular pruning stays exercised.
fn seg_at(lat: f64, lon: f64, dir: f64) -> RoadSegment {
    let half = 0.0003; // ~33 m half-length
    let (dlat, dlon) = (half * dir.cos(), half * dir.sin());
    RoadSegment::between(
        HighwayClass::Primary,
        Point::new(lat - dlat, lon - dlon),
        Point::new(lat + dlat, lon + dlon),
    )
}

/// Runs `f` under a temporary thread-count setting, restoring the serial
/// default afterwards.
fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    sarn_par::set_num_threads(n);
    let r = f();
    sarn_par::set_num_threads(1);
    r
}

/// Builds the reference edge list serially, then asserts the grid join —
/// and the parallel variants of both joins — reproduce it bit for bit.
fn assert_joins_agree(net: &RoadNetwork) -> Result<(), String> {
    let oracle = with_threads(1, || {
        SpatialSimilarity::build(net, &cfg(SpatialJoin::Reference))
    });
    let bits = |s: &SpatialSimilarity| -> Vec<(usize, usize, u64)> {
        s.edges()
            .iter()
            .map(|&(i, j, w)| (i, j, w.to_bits()))
            .collect()
    };
    let want = bits(&oracle);
    for (join, threads) in [
        (SpatialJoin::Reference, 4),
        (SpatialJoin::Grid, 1),
        (SpatialJoin::Grid, 4),
    ] {
        let got = with_threads(threads, || SpatialSimilarity::build(net, &cfg(join)));
        prop_assert_eq!(
            &want,
            &bits(&got),
            "{} join at {} threads diverged from the serial oracle",
            join.label(),
            threads
        );
    }
    Ok(())
}

/// Dense blobs separated by empty space; >512 segments so the parallel
/// range scan engages.
fn clustered_net(seed: u64, num_clusters: usize) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<(f64, f64)> = (0..num_clusters)
        .map(|_| {
            (
                30.63 + rng.gen_range(0.0..0.04),
                104.03 + rng.gen_range(0.0..0.05),
            )
        })
        .collect();
    let segs: Vec<RoadSegment> = (0..560)
        .map(|k| {
            let (clat, clon) = centers[k % centers.len()];
            seg_at(
                clat + rng.gen_range(-0.002..0.002),
                clon + rng.gen_range(-0.002..0.002),
                rng.gen_range(0.0..std::f64::consts::TAU),
            )
        })
        .collect();
    RoadNetwork::new(segs, &[])
}

/// Everything on one parallel of latitude: the bounding box has zero
/// height, so the join grid collapses to a single row.
fn collinear_net(seed: u64, n: usize) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let lat = 30.65;
    let mut lon = 104.0;
    let segs: Vec<RoadSegment> = (0..n)
        .map(|_| {
            lon += rng.gen_range(0.0002..0.0009); // 20–90 m gaps
            seg_at(lat, lon, std::f64::consts::FRAC_PI_2) // all eastbound
        })
        .collect();
    RoadNetwork::new(segs, &[])
}

/// The whole network inside a ~60 m disc — far smaller than the ~200 m
/// join cell, so the grid is a single cell and the join must degrade to
/// the all-pairs scan exactly.
fn single_cell_net(seed: u64, n: usize) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let segs: Vec<RoadSegment> = (0..n)
        .map(|_| {
            seg_at(
                30.65 + rng.gen_range(-0.00025..0.00025),
                104.05 + rng.gen_range(-0.00025..0.00025),
                rng.gen_range(0.0..std::f64::consts::TAU),
            )
        })
        .collect();
    RoadNetwork::new(segs, &[])
}

/// Midpoints jittered ±`jitter_m` around a lattice whose spacing equals
/// the δ_ds threshold — the worst case for cell-boundary bookkeeping:
/// nearly every qualifying pair lives in *adjacent* cells, and pair
/// distances hover right at the 200 m accept/reject edge.
fn boundary_net(seed: u64, jitter_m: f64) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let spacing_deg = 200.0 / M_PER_DEG_LAT;
    let jitter_deg = jitter_m / M_PER_DEG_LAT;
    let mut segs = Vec::new();
    for row in 0..8 {
        for col in 0..8 {
            segs.push(seg_at(
                30.63 + row as f64 * spacing_deg + rng.gen_range(-jitter_deg..jitter_deg),
                104.03 + col as f64 * spacing_deg + rng.gen_range(-jitter_deg..jitter_deg),
                rng.gen_range(0.0..std::f64::consts::TAU),
            ));
        }
    }
    RoadNetwork::new(segs, &[])
}

proptest! {
    // City-scale builds per case: a handful of cases exercises every
    // geometry class without dominating the suite's runtime.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn clustered_networks_agree(seed in 0u64..1_000_000, clusters in 2usize..6) {
        assert_joins_agree(&clustered_net(seed, clusters))?;
    }

    #[test]
    fn collinear_networks_agree(seed in 0u64..1_000_000, n in 520usize..600) {
        assert_joins_agree(&collinear_net(seed, n))?;
    }

    #[test]
    fn single_cell_networks_agree(seed in 0u64..1_000_000, n in 16usize..80) {
        assert_joins_agree(&single_cell_net(seed, n))?;
    }

    #[test]
    fn boundary_straddling_networks_agree(seed in 0u64..1_000_000, jitter_m in 0.5f64..8.0) {
        assert_joins_agree(&boundary_net(seed, jitter_m))?;
    }
}

#[test]
fn one_segment_network_has_no_edges_under_either_join() {
    let net = RoadNetwork::new(vec![seg_at(30.65, 104.05, 0.3)], &[]);
    for join in [SpatialJoin::Reference, SpatialJoin::Grid] {
        let sim = SpatialSimilarity::build(&net, &cfg(join));
        assert_eq!(sim.num_edges(), 0, "{} join", join.label());
    }
}
