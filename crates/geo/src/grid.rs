//! Uniform grid partitioning of a geographic region.
//!
//! SARN partitions the road-network space with a grid of side length `clen`;
//! each cell maintains a queue of recently produced embeddings used as local
//! and global negative samples (paper §4.4, Fig. 3).

use std::fmt;

use crate::point::{BoundingBox, LocalProjection, Point};

/// Index of a grid cell, in row-major order (`row * nx + col`).
pub type CellId = usize;

/// Cap on the total cell count a grid will allocate state for. A corrupt
/// bounding box (or a microscopic `clen_m`) must fail typed instead of
/// requesting terabytes of per-cell queues downstream.
pub const MAX_CELLS: usize = 1 << 26;

/// Why [`Grid::try_new`] or [`Grid::try_cell_of`] rejected its input.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GridError {
    /// The cell side length is NaN, infinite, zero, or negative — every
    /// point→cell division would be meaningless.
    BadCellSide(f64),
    /// A bounding-box corner is non-finite, or the box is inverted
    /// (`max < min` on either axis).
    BadBoundingBox(BoundingBox),
    /// The box/side combination implies more than [`MAX_CELLS`] cells.
    TooManyCells {
        /// Implied column count.
        nx: usize,
        /// Implied row count.
        ny: usize,
    },
    /// A point with a NaN or infinite coordinate cannot be mapped to a
    /// cell (finite out-of-box points clamp; non-finite ones have no
    /// nearest boundary cell).
    NonFinitePoint {
        /// The offending latitude.
        lat: f64,
        /// The offending longitude.
        lon: f64,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::BadCellSide(clen) => {
                write!(f, "grid cell side {clen} m is not positive and finite")
            }
            GridError::BadBoundingBox(bb) => write!(
                f,
                "bounding box ({}, {}) - ({}, {}) is non-finite or inverted",
                bb.min_lat, bb.min_lon, bb.max_lat, bb.max_lon
            ),
            GridError::TooManyCells { nx, ny } => {
                write!(
                    f,
                    "grid of {nx}x{ny} cells exceeds the {MAX_CELLS}-cell cap"
                )
            }
            GridError::NonFinitePoint { lat, lon } => {
                write!(f, "cannot map non-finite point ({lat}, {lon}) to a cell")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// A uniform grid over a bounding box with square cells of a given side
/// length in meters.
#[derive(Clone, Debug)]
pub struct Grid {
    bbox: BoundingBox,
    proj: LocalProjection,
    clen_m: f64,
    nx: usize,
    ny: usize,
}

impl Grid {
    /// Builds a grid covering `bbox` with cells of side `clen_m` meters.
    ///
    /// # Panics
    /// Panics when [`Grid::try_new`] would reject the input — use that for
    /// externally sourced boxes and side lengths.
    pub fn new(bbox: BoundingBox, clen_m: f64) -> Self {
        Grid::try_new(bbox, clen_m).unwrap_or_else(|e| panic!("invalid grid: {e}"))
    }

    /// Builds a grid covering `bbox` with cells of side `clen_m` meters,
    /// rejecting non-positive/non-finite side lengths, non-finite or
    /// inverted boxes, and box/side combinations implying more than
    /// [`MAX_CELLS`] cells with a typed [`GridError`].
    pub fn try_new(bbox: BoundingBox, clen_m: f64) -> Result<Self, GridError> {
        if !clen_m.is_finite() || clen_m <= 0.0 {
            return Err(GridError::BadCellSide(clen_m));
        }
        let corners_finite = [bbox.min_lat, bbox.min_lon, bbox.max_lat, bbox.max_lon]
            .iter()
            .all(|v| v.is_finite());
        if !corners_finite || bbox.max_lat < bbox.min_lat || bbox.max_lon < bbox.min_lon {
            return Err(GridError::BadBoundingBox(bbox));
        }
        let origin = Point::new(bbox.min_lat, bbox.min_lon);
        let proj = LocalProjection::new(origin);
        let nx = (bbox.width_m() / clen_m).ceil().max(1.0) as usize;
        let ny = (bbox.height_m() / clen_m).ceil().max(1.0) as usize;
        if nx.checked_mul(ny).is_none_or(|cells| cells > MAX_CELLS) {
            return Err(GridError::TooManyCells { nx, ny });
        }
        Ok(Self {
            bbox,
            proj,
            clen_m,
            nx,
            ny,
        })
    }

    /// Cell side length in meters.
    pub fn clen_m(&self) -> f64 {
        self.clen_m
    }

    /// Number of columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// The bounding box this grid covers.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Whether a point lies inside the grid's bounding box — i.e. whether
    /// [`Grid::cell_of`] maps it without clamping. Incremental consumers
    /// (the `A^s` repair index, online bucket maintenance) use this to
    /// decide between a bucket-local insert and a grid rebuild over the
    /// grown box: a clamped out-of-box point would land in a boundary
    /// cell whose Chebyshev-1 neighborhood no longer provably covers its
    /// true `δ_ds` ring.
    pub fn contains(&self, p: &Point) -> bool {
        self.bbox.contains(p)
    }

    /// Cell containing a point. Finite points outside the box are clamped
    /// to the nearest boundary cell, so every finite point maps to a valid
    /// cell; a non-finite coordinate clamps to that axis's first cell
    /// (`NaN as isize` saturates to 0), documented here so the fallback is
    /// a contract rather than an accident. Use [`Grid::try_cell_of`] to
    /// reject non-finite points instead of accepting the fallback.
    pub fn cell_of(&self, p: &Point) -> CellId {
        let (x, y) = self.proj.project(p);
        let col = ((x / self.clen_m).floor() as isize).clamp(0, self.nx as isize - 1) as usize;
        let row = ((y / self.clen_m).floor() as isize).clamp(0, self.ny as isize - 1) as usize;
        row * self.nx + col
    }

    /// [`Grid::cell_of`] for externally sourced points: finite out-of-box
    /// points still clamp to the nearest boundary cell (explicitly — the
    /// caller asked for a cell, and the nearest one is well defined), but
    /// a NaN or infinite coordinate is a typed [`GridError::NonFinitePoint`]
    /// instead of silently landing in cell 0.
    pub fn try_cell_of(&self, p: &Point) -> Result<CellId, GridError> {
        if !p.lat.is_finite() || !p.lon.is_finite() {
            return Err(GridError::NonFinitePoint {
                lat: p.lat,
                lon: p.lon,
            });
        }
        Ok(self.cell_of(p))
    }

    /// `(row, col)` coordinates of a cell id.
    pub fn cell_coords(&self, id: CellId) -> (usize, usize) {
        (id / self.nx, id % self.nx)
    }

    /// Center point of a cell.
    pub fn cell_center(&self, id: CellId) -> Point {
        let (row, col) = self.cell_coords(id);
        self.proj.unproject(
            (col as f64 + 0.5) * self.clen_m,
            (row as f64 + 0.5) * self.clen_m,
        )
    }

    /// Ids of cells within `radius` cells of `id` (Chebyshev ring), including
    /// `id` itself. Rows and columns outside the grid are clamped away, so a
    /// corner cell's radius-1 neighborhood has 4 cells, an edge cell's 6, an
    /// interior cell's 9 (`crates/geo/tests/neighborhood_golden.rs` pins the
    /// exact ids). Allocates a fresh `Vec` per call — hot loops should hold a
    /// buffer and call [`Grid::neighborhood_into`] instead.
    pub fn neighborhood(&self, id: CellId, radius: usize) -> Vec<CellId> {
        let mut out = Vec::new();
        self.neighborhood_into(id, radius, &mut out);
        out
    }

    /// Maps a cell to one of `num_shards` geographic partitions: the
    /// row-major cell range is cut into `num_shards` contiguous bands of
    /// near-equal cell count, so each shard is a horizontal slab of the
    /// bounding box (plus at most one partial row at each end) — the
    /// spatial-locality prior that makes a shard a useful failure domain:
    /// losing one shard degrades coverage in one region, not everywhere.
    ///
    /// The mapping is monotone in `id` (band boundaries never interleave)
    /// and every shard index below `min(num_shards, num_cells)` is hit by
    /// at least one cell. `num_shards == 0` is treated as 1.
    pub fn shard_of(&self, id: CellId, num_shards: usize) -> usize {
        let shards = num_shards.max(1);
        let cells = self.num_cells();
        // `id * shards / cells` in u128: MAX_CELLS * usize-sized shard
        // counts cannot overflow there, and the result is < shards for
        // every id < cells (integer floor of a value < shards).
        let id = id.min(cells - 1);
        ((id as u128 * shards as u128) / cells as u128) as usize
    }

    /// [`Grid::neighborhood`] writing into a caller-provided buffer: `out`
    /// is cleared and then filled with the ring's cell ids in the same
    /// row-major order. Lets per-query loops (the `A^s` grid join, serve's
    /// approximate k-NN) reuse one allocation across queries.
    pub fn neighborhood_into(&self, id: CellId, radius: usize, out: &mut Vec<CellId>) {
        out.clear();
        let (row, col) = self.cell_coords(id);
        let r = radius as isize;
        for dr in -r..=r {
            for dc in -r..=r {
                let nr = row as isize + dr;
                let nc = col as isize + dc;
                if nr >= 0 && nr < self.ny as isize && nc >= 0 && nc < self.nx as isize {
                    out.push(nr as usize * self.nx + nc as usize);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_bbox() -> BoundingBox {
        // Roughly 5.5 km x 5.5 km around Chengdu.
        BoundingBox {
            min_lat: 30.63,
            min_lon: 104.03,
            max_lat: 30.68,
            max_lon: 104.088,
        }
    }

    #[test]
    fn contains_tracks_the_bounding_box() {
        let g = Grid::new(test_bbox(), 600.0);
        assert!(g.contains(&Point::new(30.65, 104.05)));
        assert!(!g.contains(&Point::new(30.7, 104.05)));
        assert!(!g.contains(&Point::new(30.65, 104.1)));
        // Out-of-box points still clamp to a valid cell (the documented
        // fallback); `contains` is how callers tell the two regimes apart.
        let c = g.cell_of(&Point::new(30.7, 104.1));
        assert!(c < g.num_cells());
    }

    #[test]
    fn grid_dimensions_cover_the_box() {
        let g = Grid::new(test_bbox(), 600.0);
        assert!(g.nx() >= 9 && g.nx() <= 11, "nx {}", g.nx());
        assert!(g.ny() >= 9 && g.ny() <= 11, "ny {}", g.ny());
        assert_eq!(g.num_cells(), g.nx() * g.ny());
    }

    #[test]
    fn corners_map_to_corner_cells() {
        let bb = test_bbox();
        let g = Grid::new(bb, 600.0);
        assert_eq!(g.cell_of(&Point::new(bb.min_lat, bb.min_lon)), 0);
        let last = g.cell_of(&Point::new(bb.max_lat, bb.max_lon));
        assert_eq!(last, g.num_cells() - 1);
    }

    #[test]
    fn outside_points_clamp_to_boundary() {
        let bb = test_bbox();
        let g = Grid::new(bb, 600.0);
        let far = Point::new(bb.min_lat - 1.0, bb.min_lon - 1.0);
        assert_eq!(g.cell_of(&far), 0);
        // Clamping is per-axis: far north-west lands in the top-left cell.
        let nw = Point::new(bb.max_lat + 1.0, bb.min_lon - 1.0);
        assert_eq!(g.cell_of(&nw), (g.ny() - 1) * g.nx());
        // try_cell_of applies the same explicit clamp for finite points.
        assert_eq!(g.try_cell_of(&far), Ok(0));
    }

    #[test]
    fn try_new_rejects_bad_cell_sides() {
        for clen in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            match Grid::try_new(test_bbox(), clen) {
                Err(GridError::BadCellSide(c)) => {
                    assert!(c == clen || (c.is_nan() && clen.is_nan()))
                }
                other => panic!("clen {clen}: expected BadCellSide, got {other:?}"),
            }
        }
        assert!(Grid::try_new(test_bbox(), 600.0).is_ok());
    }

    #[test]
    fn try_new_rejects_non_finite_and_inverted_boxes() {
        let mut bb = test_bbox();
        bb.max_lat = f64::NAN;
        assert!(matches!(
            Grid::try_new(bb, 600.0),
            Err(GridError::BadBoundingBox(_))
        ));
        let mut inverted = test_bbox();
        std::mem::swap(&mut inverted.min_lat, &mut inverted.max_lat);
        assert!(matches!(
            Grid::try_new(inverted, 600.0),
            Err(GridError::BadBoundingBox(_))
        ));
    }

    #[test]
    fn try_new_caps_the_cell_count() {
        // A planet-sized box with centimeter cells would be ~10^18 cells.
        let planet = BoundingBox {
            min_lat: -89.0,
            min_lon: -179.0,
            max_lat: 89.0,
            max_lon: 179.0,
        };
        match Grid::try_new(planet, 0.01) {
            Err(GridError::TooManyCells { nx, ny }) => assert!(nx > 0 && ny > 0),
            other => panic!("expected TooManyCells, got {other:?}"),
        }
        // The same box is fine with cells coarse enough to fit the cap.
        assert!(Grid::try_new(planet, 10_000.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid grid")]
    fn new_still_panics_on_bad_input() {
        Grid::new(test_bbox(), -1.0);
    }

    #[test]
    fn try_cell_of_rejects_non_finite_points() {
        let g = Grid::new(test_bbox(), 600.0);
        for (lat, lon) in [(f64::NAN, 104.05), (30.65, f64::INFINITY)] {
            match g.try_cell_of(&Point { lat, lon }) {
                Err(GridError::NonFinitePoint { .. }) => {}
                other => panic!("({lat}, {lon}): expected NonFinitePoint, got {other:?}"),
            }
        }
        // The permissive path's documented fallback: NaN saturates to the
        // first cell on its axis.
        assert_eq!(
            g.cell_of(&Point {
                lat: f64::NAN,
                lon: f64::NAN
            }),
            0
        );
    }

    #[test]
    fn cell_center_round_trips_to_same_cell() {
        let g = Grid::new(test_bbox(), 600.0);
        for id in 0..g.num_cells() {
            assert_eq!(g.cell_of(&g.cell_center(id)), id, "cell {id}");
        }
    }

    #[test]
    fn shard_of_is_monotone_contiguous_and_covers_every_shard() {
        let g = Grid::new(test_bbox(), 600.0);
        for shards in [1usize, 2, 3, 4, 7, g.num_cells()] {
            let mut seen = vec![false; shards];
            let mut prev = 0usize;
            for cell in 0..g.num_cells() {
                let s = g.shard_of(cell, shards);
                assert!(s < shards, "cell {cell}: shard {s} out of range");
                assert!(s >= prev, "shard mapping not monotone at cell {cell}");
                prev = s;
                seen[s] = true;
            }
            let expected_hit = shards.min(g.num_cells());
            assert_eq!(
                seen.iter().filter(|&&h| h).count(),
                expected_hit,
                "{shards} shards: every shard below min(shards, cells) is non-empty"
            );
        }
        // Degenerate shard counts collapse to a single shard.
        assert_eq!(g.shard_of(0, 0), 0);
        assert_eq!(g.shard_of(g.num_cells() - 1, 0), 0);
        // Out-of-range cells clamp instead of indexing past the grid.
        assert_eq!(g.shard_of(g.num_cells() + 100, 4), 3);
    }

    #[test]
    fn shard_bands_are_balanced_within_one_cell_row() {
        let g = Grid::new(test_bbox(), 600.0);
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for cell in 0..g.num_cells() {
            counts[g.shard_of(cell, shards)] += 1;
        }
        let (min, max) = (
            *counts.iter().min().expect("non-empty"),
            *counts.iter().max().expect("non-empty"),
        );
        assert!(
            max - min <= 1,
            "contiguous split must balance cell counts to within 1: {counts:?}"
        );
    }

    #[test]
    fn neighborhood_counts() {
        let g = Grid::new(test_bbox(), 600.0);
        // interior cell
        let mid = g.cell_of(&g.cell_center(g.num_cells() / 2 + g.nx() / 2));
        let nb = g.neighborhood(mid, 1);
        assert_eq!(nb.len(), 9);
        // corner cell
        assert_eq!(g.neighborhood(0, 1).len(), 4);
    }
}
