//! Uniform grid partitioning of a geographic region.
//!
//! SARN partitions the road-network space with a grid of side length `clen`;
//! each cell maintains a queue of recently produced embeddings used as local
//! and global negative samples (paper §4.4, Fig. 3).

use crate::point::{BoundingBox, LocalProjection, Point};

/// Index of a grid cell, in row-major order (`row * nx + col`).
pub type CellId = usize;

/// A uniform grid over a bounding box with square cells of a given side
/// length in meters.
#[derive(Clone, Debug)]
pub struct Grid {
    bbox: BoundingBox,
    proj: LocalProjection,
    clen_m: f64,
    nx: usize,
    ny: usize,
}

impl Grid {
    /// Builds a grid covering `bbox` with cells of side `clen_m` meters.
    ///
    /// # Panics
    /// Panics if `clen_m` is not positive.
    pub fn new(bbox: BoundingBox, clen_m: f64) -> Self {
        assert!(clen_m > 0.0, "cell side must be positive");
        let origin = Point::new(bbox.min_lat, bbox.min_lon);
        let proj = LocalProjection::new(origin);
        let nx = (bbox.width_m() / clen_m).ceil().max(1.0) as usize;
        let ny = (bbox.height_m() / clen_m).ceil().max(1.0) as usize;
        Self {
            bbox,
            proj,
            clen_m,
            nx,
            ny,
        }
    }

    /// Cell side length in meters.
    pub fn clen_m(&self) -> f64 {
        self.clen_m
    }

    /// Number of columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.nx * self.ny
    }

    /// The bounding box this grid covers.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Cell containing a point. Points outside the box are clamped to the
    /// nearest boundary cell, so every point maps to a valid cell.
    pub fn cell_of(&self, p: &Point) -> CellId {
        let (x, y) = self.proj.project(p);
        let col = ((x / self.clen_m).floor() as isize).clamp(0, self.nx as isize - 1) as usize;
        let row = ((y / self.clen_m).floor() as isize).clamp(0, self.ny as isize - 1) as usize;
        row * self.nx + col
    }

    /// `(row, col)` coordinates of a cell id.
    pub fn cell_coords(&self, id: CellId) -> (usize, usize) {
        (id / self.nx, id % self.nx)
    }

    /// Center point of a cell.
    pub fn cell_center(&self, id: CellId) -> Point {
        let (row, col) = self.cell_coords(id);
        self.proj.unproject(
            (col as f64 + 0.5) * self.clen_m,
            (row as f64 + 0.5) * self.clen_m,
        )
    }

    /// Ids of cells within `radius` cells of `id` (Chebyshev ring), including
    /// `id` itself.
    pub fn neighborhood(&self, id: CellId, radius: usize) -> Vec<CellId> {
        let (row, col) = self.cell_coords(id);
        let r = radius as isize;
        let mut out = Vec::new();
        for dr in -r..=r {
            for dc in -r..=r {
                let nr = row as isize + dr;
                let nc = col as isize + dc;
                if nr >= 0 && nr < self.ny as isize && nc >= 0 && nc < self.nx as isize {
                    out.push(nr as usize * self.nx + nc as usize);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_bbox() -> BoundingBox {
        // Roughly 5.5 km x 5.5 km around Chengdu.
        BoundingBox {
            min_lat: 30.63,
            min_lon: 104.03,
            max_lat: 30.68,
            max_lon: 104.088,
        }
    }

    #[test]
    fn grid_dimensions_cover_the_box() {
        let g = Grid::new(test_bbox(), 600.0);
        assert!(g.nx() >= 9 && g.nx() <= 11, "nx {}", g.nx());
        assert!(g.ny() >= 9 && g.ny() <= 11, "ny {}", g.ny());
        assert_eq!(g.num_cells(), g.nx() * g.ny());
    }

    #[test]
    fn corners_map_to_corner_cells() {
        let bb = test_bbox();
        let g = Grid::new(bb, 600.0);
        assert_eq!(g.cell_of(&Point::new(bb.min_lat, bb.min_lon)), 0);
        let last = g.cell_of(&Point::new(bb.max_lat, bb.max_lon));
        assert_eq!(last, g.num_cells() - 1);
    }

    #[test]
    fn outside_points_clamp_to_boundary() {
        let bb = test_bbox();
        let g = Grid::new(bb, 600.0);
        let far = Point::new(bb.min_lat - 1.0, bb.min_lon - 1.0);
        assert_eq!(g.cell_of(&far), 0);
    }

    #[test]
    fn cell_center_round_trips_to_same_cell() {
        let g = Grid::new(test_bbox(), 600.0);
        for id in 0..g.num_cells() {
            assert_eq!(g.cell_of(&g.cell_center(id)), id, "cell {id}");
        }
    }

    #[test]
    fn neighborhood_counts() {
        let g = Grid::new(test_bbox(), 600.0);
        // interior cell
        let mid = g.cell_of(&g.cell_center(g.num_cells() / 2 + g.nx() / 2));
        let nb = g.neighborhood(mid, 1);
        assert_eq!(nb.len(), 9);
        // corner cell
        assert_eq!(g.neighborhood(0, 1).len(), 4);
    }
}
