//! # sarn-geo
//!
//! Geospatial primitives for the SARN reproduction: WGS-84 points, haversine
//! distances, bearings and angular distances, bounding boxes, a local
//! equirectangular projection, and the uniform [`Grid`] partitioning used by
//! SARN's spatial distance-based negative sampling (paper §4.4).

#![warn(missing_docs)]

mod grid;
mod point;

pub use grid::{CellId, Grid, GridError, MAX_CELLS};
pub use point::{
    angular_distance, haversine_m, normalize_radian, BoundingBox, LocalProjection, Point,
    PointError, EARTH_RADIUS_M,
};
