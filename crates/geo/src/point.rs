//! Points, distances, and angles on the sphere.

use std::f64::consts::PI;
use std::fmt;

/// Mean Earth radius in meters (as used by the haversine formula).
pub const EARTH_RADIUS_M: f64 = 6_371_000.0;

/// Why a coordinate pair was rejected by [`Point::try_new`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PointError {
    /// Latitude or longitude is NaN or infinite — downstream haversine
    /// distances and bearings would silently turn NaN.
    NonFinite {
        /// The offending latitude.
        lat: f64,
        /// The offending longitude.
        lon: f64,
    },
    /// Latitude outside `[-90, 90]` degrees.
    LatitudeOutOfRange(f64),
    /// Longitude outside `[-180, 180]` degrees.
    LongitudeOutOfRange(f64),
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::NonFinite { lat, lon } => {
                write!(f, "non-finite coordinate ({lat}, {lon})")
            }
            PointError::LatitudeOutOfRange(lat) => {
                write!(f, "latitude {lat} outside [-90, 90] degrees")
            }
            PointError::LongitudeOutOfRange(lon) => {
                write!(f, "longitude {lon} outside [-180, 180] degrees")
            }
        }
    }
}

impl std::error::Error for PointError {}

/// A WGS-84 coordinate in degrees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Point {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
}

impl Point {
    /// Creates a point from latitude/longitude degrees, without range
    /// validation.
    ///
    /// Internal geometry (e.g. [`LocalProjection::unproject`]) may
    /// legitimately produce coordinates slightly outside the WGS-84 box,
    /// so this stays permissive in release builds; ingesting *external*
    /// data should go through [`Point::try_new`]. Debug builds assert
    /// finiteness — a NaN coordinate is never meaningful.
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!(
            lat.is_finite() && lon.is_finite(),
            "non-finite coordinate ({lat}, {lon})"
        );
        Self { lat, lon }
    }

    /// Creates a point from latitude/longitude degrees, rejecting
    /// non-finite values and coordinates outside the WGS-84 ranges with a
    /// typed [`PointError`] — the boundary check for externally sourced
    /// data, so a bad record surfaces at parse time instead of as a NaN
    /// haversine distance deep in grid construction.
    pub fn try_new(lat: f64, lon: f64) -> Result<Self, PointError> {
        if !lat.is_finite() || !lon.is_finite() {
            return Err(PointError::NonFinite { lat, lon });
        }
        if !(-90.0..=90.0).contains(&lat) {
            return Err(PointError::LatitudeOutOfRange(lat));
        }
        if !(-180.0..=180.0).contains(&lon) {
            return Err(PointError::LongitudeOutOfRange(lon));
        }
        Ok(Self { lat, lon })
    }

    /// True when both coordinates are finite and inside the WGS-84 ranges
    /// (the invariant [`Point::try_new`] enforces).
    pub fn is_valid(&self) -> bool {
        Point::try_new(self.lat, self.lon).is_ok()
    }

    /// Midpoint with another point (adequate at city scale).
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.lat + other.lat) / 2.0, (self.lon + other.lon) / 2.0)
    }

    /// Initial bearing from this point to `other`, in radians within
    /// `[0, 2π)`, measured clockwise from north.
    pub fn bearing_to(&self, other: &Point) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        let b = y.atan2(x);
        (b + 2.0 * PI) % (2.0 * PI)
    }
}

/// Haversine great-circle distance between two points, in meters.
pub fn haversine_m(a: &Point, b: &Point) -> f64 {
    let (lat1, lat2) = (a.lat.to_radians(), b.lat.to_radians());
    let dlat = lat2 - lat1;
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_M * h.sqrt().asin()
}

/// Normalizes a radian value into `[0, 2π)`.
pub fn normalize_radian(r: f64) -> f64 {
    let mut r = r % (2.0 * PI);
    if r < 0.0 {
        r += 2.0 * PI;
    }
    r
}

/// Absolute angular distance between two directions in radians, folded into
/// `[0, π]` (the paper's `ag_dist`, Eq. 5).
pub fn angular_distance(r1: f64, r2: f64) -> f64 {
    let d = (normalize_radian(r1) - normalize_radian(r2)).abs();
    if d > PI {
        2.0 * PI - d
    } else {
        d
    }
}

/// Axis-aligned bounding box in degrees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundingBox {
    /// Minimum latitude.
    pub min_lat: f64,
    /// Minimum longitude.
    pub min_lon: f64,
    /// Maximum latitude.
    pub max_lat: f64,
    /// Maximum longitude.
    pub max_lon: f64,
}

impl BoundingBox {
    /// Smallest box containing all `points`.
    ///
    /// # Panics
    /// Panics on an empty iterator.
    pub fn of(points: impl IntoIterator<Item = Point>) -> Self {
        let mut it = points.into_iter();
        let first = it.next().expect("bounding box of zero points");
        let mut bb = BoundingBox {
            min_lat: first.lat,
            min_lon: first.lon,
            max_lat: first.lat,
            max_lon: first.lon,
        };
        for p in it {
            bb.min_lat = bb.min_lat.min(p.lat);
            bb.min_lon = bb.min_lon.min(p.lon);
            bb.max_lat = bb.max_lat.max(p.lat);
            bb.max_lon = bb.max_lon.max(p.lon);
        }
        bb
    }

    /// True when the point lies inside (inclusive).
    pub fn contains(&self, p: &Point) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Width (east-west extent) in meters, measured at the center latitude.
    pub fn width_m(&self) -> f64 {
        let mid = (self.min_lat + self.max_lat) / 2.0;
        haversine_m(
            &Point::new(mid, self.min_lon),
            &Point::new(mid, self.max_lon),
        )
    }

    /// Height (north-south extent) in meters.
    pub fn height_m(&self) -> f64 {
        haversine_m(
            &Point::new(self.min_lat, self.min_lon),
            &Point::new(self.max_lat, self.min_lon),
        )
    }
}

/// Equirectangular projection anchored at a reference point, mapping degrees
/// to local meters. Accurate to well under 0.1% at city scale, and much
/// faster than repeated haversine evaluations.
#[derive(Clone, Copy, Debug)]
pub struct LocalProjection {
    ref_lat: f64,
    ref_lon: f64,
    m_per_deg_lat: f64,
    m_per_deg_lon: f64,
}

impl LocalProjection {
    /// Creates a projection centered at `origin`.
    pub fn new(origin: Point) -> Self {
        let m_per_deg_lat = 2.0 * PI * EARTH_RADIUS_M / 360.0;
        Self {
            ref_lat: origin.lat,
            ref_lon: origin.lon,
            m_per_deg_lat,
            m_per_deg_lon: m_per_deg_lat * origin.lat.to_radians().cos(),
        }
    }

    /// Projects a point to `(x_east_m, y_north_m)` relative to the origin.
    pub fn project(&self, p: &Point) -> (f64, f64) {
        (
            (p.lon - self.ref_lon) * self.m_per_deg_lon,
            (p.lat - self.ref_lat) * self.m_per_deg_lat,
        )
    }

    /// Inverse of [`LocalProjection::project`].
    pub fn unproject(&self, x_m: f64, y_m: f64) -> Point {
        Point::new(
            self.ref_lat + y_m / self.m_per_deg_lat,
            self.ref_lon + x_m / self.m_per_deg_lon,
        )
    }

    /// Fast planar distance in meters between two points.
    pub fn distance_m(&self, a: &Point, b: &Point) -> f64 {
        let (ax, ay) = self.project(a);
        let (bx, by) = self.project(b);
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distance() {
        // Paris to London is roughly 343-344 km.
        let paris = Point::new(48.8566, 2.3522);
        let london = Point::new(51.5074, -0.1278);
        let d = haversine_m(&paris, &london);
        assert!((d - 343_500.0).abs() < 2_000.0, "got {d}");
    }

    #[test]
    fn haversine_is_symmetric_and_zero_on_self() {
        let a = Point::new(30.66, 104.06);
        let b = Point::new(30.70, 104.10);
        assert!((haversine_m(&a, &b) - haversine_m(&b, &a)).abs() < 1e-9);
        assert_eq!(haversine_m(&a, &a), 0.0);
    }

    #[test]
    fn bearing_cardinal_directions() {
        let o = Point::new(0.0, 0.0);
        assert!((o.bearing_to(&Point::new(1.0, 0.0)) - 0.0).abs() < 1e-6); // north
        assert!((o.bearing_to(&Point::new(0.0, 1.0)) - PI / 2.0).abs() < 1e-6); // east
        assert!((o.bearing_to(&Point::new(-1.0, 0.0)) - PI).abs() < 1e-6); // south
        assert!((o.bearing_to(&Point::new(0.0, -1.0)) - 3.0 * PI / 2.0).abs() < 1e-6);
        // west
    }

    #[test]
    fn angular_distance_folds_to_half_circle() {
        assert!((angular_distance(0.1, 2.0 * PI - 0.1) - 0.2).abs() < 1e-9);
        assert!((angular_distance(0.0, PI) - PI).abs() < 1e-9);
        assert!(angular_distance(1.0, 1.0) < 1e-12);
    }

    #[test]
    fn normalize_radian_wraps_negatives() {
        assert!((normalize_radian(-PI / 2.0) - 1.5 * PI).abs() < 1e-9);
        assert!((normalize_radian(5.0 * PI) - PI).abs() < 1e-9);
    }

    #[test]
    fn bounding_box_contains_and_extents() {
        let bb = BoundingBox::of(vec![
            Point::new(30.0, 104.0),
            Point::new(30.1, 104.1),
            Point::new(30.05, 103.95),
        ]);
        assert!(bb.contains(&Point::new(30.05, 104.05)));
        assert!(!bb.contains(&Point::new(30.2, 104.05)));
        assert!(bb.height_m() > 10_000.0 && bb.height_m() < 12_000.0);
        assert!(bb.width_m() > 13_000.0 && bb.width_m() < 15_000.0);
    }

    #[test]
    fn projection_roundtrip_and_distance_close_to_haversine() {
        let origin = Point::new(30.66, 104.06);
        let proj = LocalProjection::new(origin);
        let p = Point::new(30.7, 104.1);
        let back = proj.unproject(proj.project(&p).0, proj.project(&p).1);
        assert!((back.lat - p.lat).abs() < 1e-9);
        assert!((back.lon - p.lon).abs() < 1e-9);
        let hd = haversine_m(&origin, &p);
        let pd = proj.distance_m(&origin, &p);
        assert!((hd - pd).abs() / hd < 1e-3, "hav {hd}, proj {pd}");
    }

    #[test]
    fn try_new_accepts_valid_and_boundary_coordinates() {
        assert!(Point::try_new(48.8566, 2.3522).is_ok());
        assert!(Point::try_new(90.0, 180.0).is_ok());
        assert!(Point::try_new(-90.0, -180.0).is_ok());
        assert!(Point::try_new(0.0, 0.0).unwrap().is_valid());
    }

    #[test]
    fn try_new_rejects_non_finite_coordinates() {
        for (lat, lon) in [
            (f64::NAN, 0.0),
            (0.0, f64::NAN),
            (f64::INFINITY, 0.0),
            (0.0, f64::NEG_INFINITY),
        ] {
            match Point::try_new(lat, lon) {
                Err(PointError::NonFinite { .. }) => {}
                other => panic!("({lat}, {lon}): expected NonFinite, got {other:?}"),
            }
        }
    }

    #[test]
    fn try_new_rejects_out_of_range_with_the_offending_value() {
        assert_eq!(
            Point::try_new(90.5, 0.0),
            Err(PointError::LatitudeOutOfRange(90.5))
        );
        assert_eq!(
            Point::try_new(0.0, -180.5),
            Err(PointError::LongitudeOutOfRange(-180.5))
        );
        let msg = PointError::LatitudeOutOfRange(91.0).to_string();
        assert!(msg.contains("91"), "{msg}");
    }

    #[test]
    fn is_valid_flags_out_of_range_points_built_permissively() {
        // `new` stays permissive (projection math can step outside the
        // box); `is_valid` reports the violation.
        let p = Point::new(95.0, 0.0);
        assert!(!p.is_valid());
        assert!(Point::new(30.66, 104.06).is_valid());
    }

    #[test]
    fn midpoint_is_halfway_at_city_scale() {
        let a = Point::new(30.0, 104.0);
        let b = Point::new(30.02, 104.02);
        let m = a.midpoint(&b);
        assert!((haversine_m(&a, &m) - haversine_m(&m, &b)).abs() < 5.0);
    }
}
