//! Golden ring geometry for [`Grid::neighborhood`].
//!
//! The `A^s` grid join and serve's approximate k-NN both assume the
//! Chebyshev ring is clamped at the map border — a corner cell sees 4
//! cells at radius 1, an edge cell 6, an interior cell 9 — and that ids
//! come back in row-major order. These tests pin the *exact* id lists on
//! a 10×10 grid so any future change to clamping, ordering, or the
//! row-major id scheme fails loudly instead of silently dropping join
//! candidates at the boundary.

use sarn_geo::{BoundingBox, CellId, Grid};

/// ~5.5 km × 5.5 km around Chengdu — exactly 10×10 cells at 600 m.
fn ten_by_ten() -> Grid {
    let g = Grid::new(
        BoundingBox {
            min_lat: 30.63,
            min_lon: 104.03,
            max_lat: 30.68,
            max_lon: 104.088,
        },
        600.0,
    );
    // The goldens below hard-code row-major ids on this layout.
    assert_eq!((g.nx(), g.ny()), (10, 10), "fixture grid changed shape");
    g
}

#[test]
fn radius_one_rings_at_the_four_corners() {
    let g = ten_by_ten();
    // Bottom-left, bottom-right, top-left, top-right: 4 cells each,
    // row-major, ring clamped at both borders.
    assert_eq!(g.neighborhood(0, 1), vec![0, 1, 10, 11]);
    assert_eq!(g.neighborhood(9, 1), vec![8, 9, 18, 19]);
    assert_eq!(g.neighborhood(90, 1), vec![80, 81, 90, 91]);
    assert_eq!(g.neighborhood(99, 1), vec![88, 89, 98, 99]);
}

#[test]
fn radius_one_rings_on_the_four_edges() {
    let g = ten_by_ten();
    // One cell from each border (bottom, top, left, right): 6 cells,
    // clamped on exactly one axis.
    assert_eq!(g.neighborhood(5, 1), vec![4, 5, 6, 14, 15, 16]);
    assert_eq!(g.neighborhood(95, 1), vec![84, 85, 86, 94, 95, 96]);
    assert_eq!(g.neighborhood(40, 1), vec![30, 31, 40, 41, 50, 51]);
    assert_eq!(g.neighborhood(49, 1), vec![38, 39, 48, 49, 58, 59]);
}

#[test]
fn radius_one_ring_in_the_interior_is_the_full_nine() {
    let g = ten_by_ten();
    assert_eq!(
        g.neighborhood(55, 1),
        vec![44, 45, 46, 54, 55, 56, 64, 65, 66]
    );
}

#[test]
fn radius_zero_is_the_cell_itself() {
    let g = ten_by_ten();
    for id in [0, 9, 55, 99] {
        assert_eq!(g.neighborhood(id, 0), vec![id]);
    }
}

#[test]
fn radius_two_corner_ring_clamps_to_a_three_by_three_block() {
    let g = ten_by_ten();
    assert_eq!(g.neighborhood(0, 2), vec![0, 1, 2, 10, 11, 12, 20, 21, 22]);
}

#[test]
fn oversized_radius_returns_every_cell_in_row_major_order() {
    let g = ten_by_ten();
    let all: Vec<CellId> = (0..g.num_cells()).collect();
    assert_eq!(g.neighborhood(55, 10), all);
    assert_eq!(g.neighborhood(0, 1_000), all);
}

#[test]
fn neighborhood_into_clears_the_buffer_and_matches_the_allocating_path() {
    let g = ten_by_ten();
    let mut buf: Vec<CellId> = vec![usize::MAX; 64]; // stale garbage
    for (id, radius) in [(0, 1), (55, 1), (95, 2), (99, 0)] {
        g.neighborhood_into(id, radius, &mut buf);
        assert_eq!(buf, g.neighborhood(id, radius), "cell {id} radius {radius}");
    }
}
