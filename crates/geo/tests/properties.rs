//! Property-based tests on the geospatial primitives.

use proptest::prelude::*;
use sarn_geo::{angular_distance, haversine_m, BoundingBox, Grid, LocalProjection, Point};

fn city_point() -> impl Strategy<Value = Point> {
    (30.0f64..31.0, 104.0f64..105.0).prop_map(|(lat, lon)| Point::new(lat, lon))
}

proptest! {
    #[test]
    fn haversine_is_a_metric_like_distance(a in city_point(), b in city_point(), c in city_point()) {
        let dab = haversine_m(&a, &b);
        let dba = haversine_m(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-6); // symmetry
        prop_assert!(dab >= 0.0);
        // triangle inequality (with fp slack)
        let dac = haversine_m(&a, &c);
        let dcb = haversine_m(&c, &b);
        prop_assert!(dab <= dac + dcb + 1e-6);
    }

    #[test]
    fn angular_distance_bounded_and_symmetric(r1 in -10.0f64..10.0, r2 in -10.0f64..10.0) {
        let d = angular_distance(r1, r2);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-9).contains(&d));
        prop_assert!((d - angular_distance(r2, r1)).abs() < 1e-9);
        prop_assert!(angular_distance(r1, r1) < 1e-9);
    }

    #[test]
    fn angular_distance_invariant_to_full_turns(r1 in -3.0f64..3.0, r2 in -3.0f64..3.0, k in -3i32..3) {
        let shifted = r1 + k as f64 * 2.0 * std::f64::consts::PI;
        prop_assert!((angular_distance(r1, r2) - angular_distance(shifted, r2)).abs() < 1e-6);
    }

    #[test]
    fn projection_roundtrips(p in city_point()) {
        let proj = LocalProjection::new(Point::new(30.5, 104.5));
        let (x, y) = proj.project(&p);
        let back = proj.unproject(x, y);
        prop_assert!((back.lat - p.lat).abs() < 1e-9);
        prop_assert!((back.lon - p.lon).abs() < 1e-9);
    }

    #[test]
    fn grid_assigns_every_point_to_a_valid_cell(pts in proptest::collection::vec(city_point(), 2..30), clen in 100.0f64..2000.0) {
        let bbox = BoundingBox::of(pts.clone());
        let grid = Grid::new(bbox, clen);
        for p in &pts {
            let c = grid.cell_of(p);
            prop_assert!(c < grid.num_cells());
        }
    }

    #[test]
    fn grid_neighborhood_always_contains_self(pts in proptest::collection::vec(city_point(), 2..10)) {
        let bbox = BoundingBox::of(pts.clone());
        let grid = Grid::new(bbox, 500.0);
        for p in &pts {
            let c = grid.cell_of(p);
            prop_assert!(grid.neighborhood(c, 1).contains(&c));
        }
    }

    #[test]
    fn bounding_box_contains_its_generators(pts in proptest::collection::vec(city_point(), 1..30)) {
        let bbox = BoundingBox::of(pts.clone());
        for p in &pts {
            prop_assert!(bbox.contains(p));
        }
    }
}
