//! Compressed-sparse-row directed graph.

/// A directed graph with `f64` edge weights stored in CSR form, plus a
/// reverse index for in-neighbor queries.
#[derive(Clone, Debug)]
pub struct DiGraph {
    n: usize,
    // forward CSR
    offsets: Vec<usize>,
    targets: Vec<usize>,
    weights: Vec<f64>,
    // reverse CSR
    rev_offsets: Vec<usize>,
    rev_sources: Vec<usize>,
    rev_weights: Vec<f64>,
}

impl DiGraph {
    /// Builds a graph with `n` vertices from `(src, dst, weight)` triples.
    ///
    /// # Panics
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut deg = vec![0usize; n];
        let mut rdeg = vec![0usize; n];
        for &(s, d, _) in edges {
            assert!(s < n && d < n, "edge ({s}, {d}) out of range for n = {n}");
            deg[s] += 1;
            rdeg[d] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        let mut rev_offsets = vec![0usize; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + deg[i];
            rev_offsets[i + 1] = rev_offsets[i] + rdeg[i];
        }
        let m = edges.len();
        let mut targets = vec![0usize; m];
        let mut weights = vec![0.0f64; m];
        let mut rev_sources = vec![0usize; m];
        let mut rev_weights = vec![0.0f64; m];
        let mut cursor = offsets.clone();
        let mut rcursor = rev_offsets.clone();
        for &(s, d, w) in edges {
            targets[cursor[s]] = d;
            weights[cursor[s]] = w;
            cursor[s] += 1;
            rev_sources[rcursor[d]] = s;
            rev_weights[rcursor[d]] = w;
            rcursor[d] += 1;
        }
        Self {
            n,
            offsets,
            targets,
            weights,
            rev_offsets,
            rev_sources,
            rev_weights,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of `v` with weights.
    pub fn out_neighbors(&self, v: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.offsets[v]..self.offsets[v + 1];
        self.targets[range.clone()]
            .iter()
            .copied()
            .zip(self.weights[range].iter().copied())
    }

    /// In-neighbors of `v` with weights.
    pub fn in_neighbors(&self, v: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.rev_offsets[v]..self.rev_offsets[v + 1];
        self.rev_sources[range.clone()]
            .iter()
            .copied()
            .zip(self.rev_weights[range].iter().copied())
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// In-degree of `v`.
    pub fn in_degree(&self, v: usize) -> usize {
        self.rev_offsets[v + 1] - self.rev_offsets[v]
    }

    /// All edges as `(src, dst, weight)` triples, grouped by source.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.n).flat_map(move |s| self.out_neighbors(s).map(move |(d, w)| (s, d, w)))
    }

    /// True when a directed edge `u -> v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.out_neighbors(u).any(|(d, _)| d == v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        DiGraph::from_edges(4, &[(0, 1, 1.0), (0, 2, 2.0), (1, 3, 3.0), (2, 3, 1.0)])
    }

    #[test]
    fn degrees_and_counts() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.out_degree(3), 0);
    }

    #[test]
    fn neighbors_carry_weights() {
        let g = diamond();
        let out: Vec<_> = g.out_neighbors(0).collect();
        assert!(out.contains(&(1, 1.0)));
        assert!(out.contains(&(2, 2.0)));
        let inn: Vec<_> = g.in_neighbors(3).collect();
        assert!(inn.contains(&(1, 3.0)));
        assert!(inn.contains(&(2, 1.0)));
    }

    #[test]
    fn edges_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = DiGraph::from_edges(2, &[(0, 5, 1.0)]);
    }
}
