//! # sarn-graph
//!
//! Directed-graph algorithms for the SARN reproduction: a CSR adjacency
//! structure, Dijkstra shortest paths, BFS, weakly-connected components, and
//! the biased second-order random walks used by node2vec.

#![warn(missing_docs)]

mod csr;
mod search;
mod walks;

pub use csr::DiGraph;
pub use search::{bfs_hops, dijkstra, dijkstra_path, weakly_connected_components};
pub use walks::{BiasedWalker, WalkConfig};
