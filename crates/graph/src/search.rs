//! Shortest paths, BFS, and connectivity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::csr::DiGraph;

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    v: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap on dist
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.v.cmp(&self.v))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source Dijkstra. Returns per-vertex distances
/// (`f64::INFINITY` when unreachable). Edge weights must be non-negative.
pub fn dijkstra(g: &DiGraph, source: usize) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; g.num_vertices()];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        dist: 0.0,
        v: source,
    });
    while let Some(HeapItem { dist: d, v }) = heap.pop() {
        if d > dist[v] {
            continue;
        }
        for (u, w) in g.out_neighbors(v) {
            debug_assert!(w >= 0.0, "negative edge weight");
            let nd = d + w;
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(HeapItem { dist: nd, v: u });
            }
        }
    }
    dist
}

/// Dijkstra with early exit and path reconstruction. Returns
/// `(distance, path)` from `source` to `target`, or `None` when unreachable.
pub fn dijkstra_path(g: &DiGraph, source: usize, target: usize) -> Option<(f64, Vec<usize>)> {
    let n = g.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev = vec![usize::MAX; n];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(HeapItem {
        dist: 0.0,
        v: source,
    });
    while let Some(HeapItem { dist: d, v }) = heap.pop() {
        if v == target {
            break;
        }
        if d > dist[v] {
            continue;
        }
        for (u, w) in g.out_neighbors(v) {
            let nd = d + w;
            if nd < dist[u] {
                dist[u] = nd;
                prev[u] = v;
                heap.push(HeapItem { dist: nd, v: u });
            }
        }
    }
    if dist[target].is_infinite() {
        return None;
    }
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        cur = prev[cur];
        path.push(cur);
    }
    path.reverse();
    Some((dist[target], path))
}

/// Breadth-first hop counts from `source` (`usize::MAX` when unreachable).
pub fn bfs_hops(g: &DiGraph, source: usize) -> Vec<usize> {
    let mut hops = vec![usize::MAX; g.num_vertices()];
    hops[source] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        for (u, _) in g.out_neighbors(v) {
            if hops[u] == usize::MAX {
                hops[u] = hops[v] + 1;
                queue.push_back(u);
            }
        }
    }
    hops
}

/// Weakly-connected component id per vertex (edges treated as undirected).
pub fn weakly_connected_components(g: &DiGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        let mut stack = vec![start];
        while let Some(v) = stack.pop() {
            for (u, _) in g.out_neighbors(v).chain(g.in_neighbors(v)) {
                if comp[u] == usize::MAX {
                    comp[u] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid3() -> DiGraph {
        // 3x3 grid, bidirectional unit edges
        let mut edges = Vec::new();
        let id = |r: usize, c: usize| r * 3 + c;
        for r in 0..3 {
            for c in 0..3 {
                if c + 1 < 3 {
                    edges.push((id(r, c), id(r, c + 1), 1.0));
                    edges.push((id(r, c + 1), id(r, c), 1.0));
                }
                if r + 1 < 3 {
                    edges.push((id(r, c), id(r + 1, c), 1.0));
                    edges.push((id(r + 1, c), id(r, c), 1.0));
                }
            }
        }
        DiGraph::from_edges(9, &edges)
    }

    #[test]
    fn dijkstra_on_grid_is_manhattan() {
        let g = grid3();
        let d = dijkstra(&g, 0);
        assert_eq!(d[8], 4.0);
        assert_eq!(d[4], 2.0);
        assert_eq!(d[0], 0.0);
    }

    #[test]
    fn dijkstra_respects_weights() {
        let g = DiGraph::from_edges(3, &[(0, 1, 10.0), (0, 2, 1.0), (2, 1, 2.0)]);
        let d = dijkstra(&g, 0);
        assert_eq!(d[1], 3.0);
    }

    #[test]
    fn dijkstra_path_reconstructs_route() {
        let g = grid3();
        let (d, path) = dijkstra_path(&g, 0, 8).unwrap();
        assert_eq!(d, 4.0);
        assert_eq!(path.len(), 5);
        assert_eq!(path[0], 0);
        assert_eq!(*path.last().unwrap(), 8);
        // consecutive vertices must be adjacent
        for w in path.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
    }

    #[test]
    fn unreachable_targets_return_none_or_infinity() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1.0)]);
        assert!(dijkstra_path(&g, 1, 0).is_none());
        assert!(dijkstra(&g, 2)[0].is_infinite());
    }

    #[test]
    fn bfs_counts_hops() {
        let g = grid3();
        let h = bfs_hops(&g, 4);
        assert_eq!(h[4], 0);
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 1);
    }

    #[test]
    fn components_split_disconnected_graph() {
        let g = DiGraph::from_edges(5, &[(0, 1, 1.0), (3, 4, 1.0)]);
        let c = weakly_connected_components(&g);
        assert_eq!(c[0], c[1]);
        assert_eq!(c[3], c[4]);
        assert_ne!(c[0], c[3]);
        assert_ne!(c[0], c[2]);
    }
}
