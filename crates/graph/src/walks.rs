//! Biased second-order random walks (node2vec, Grover & Leskovec 2016).

use rand::Rng;

use crate::csr::DiGraph;

/// Parameters of a node2vec walk.
#[derive(Clone, Copy, Debug)]
pub struct WalkConfig {
    /// Walk length (number of vertices per walk).
    pub walk_length: usize,
    /// Walks started from every vertex.
    pub walks_per_vertex: usize,
    /// Return parameter `p`: higher values discourage immediate backtracking.
    pub p: f64,
    /// In-out parameter `q`: `q > 1` biases toward BFS-like exploration,
    /// `q < 1` toward DFS-like exploration.
    pub q: f64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        Self {
            walk_length: 40,
            walks_per_vertex: 10,
            p: 1.0,
            q: 1.0,
        }
    }
}

/// Generator of biased random walks over a directed graph.
pub struct BiasedWalker<'g> {
    graph: &'g DiGraph,
    config: WalkConfig,
}

impl<'g> BiasedWalker<'g> {
    /// Creates a walker over `graph`.
    pub fn new(graph: &'g DiGraph, config: WalkConfig) -> Self {
        Self { graph, config }
    }

    /// One walk starting at `start`. The walk ends early at sinks.
    pub fn walk(&self, rng: &mut impl Rng, start: usize) -> Vec<usize> {
        let mut walk = Vec::with_capacity(self.config.walk_length);
        walk.push(start);
        while walk.len() < self.config.walk_length {
            let cur = *walk.last().expect("walk always holds its start vertex");
            let prev = if walk.len() >= 2 {
                Some(walk[walk.len() - 2])
            } else {
                None
            };
            match self.sample_next(rng, cur, prev) {
                Some(next) => walk.push(next),
                None => break,
            }
        }
        walk
    }

    /// All walks (`walks_per_vertex` from each vertex), suitable as skip-gram
    /// "sentences".
    pub fn generate_all(&self, rng: &mut impl Rng) -> Vec<Vec<usize>> {
        let n = self.graph.num_vertices();
        let mut walks = Vec::with_capacity(n * self.config.walks_per_vertex);
        for _ in 0..self.config.walks_per_vertex {
            for v in 0..n {
                walks.push(self.walk(rng, v));
            }
        }
        walks
    }

    fn sample_next(&self, rng: &mut impl Rng, cur: usize, prev: Option<usize>) -> Option<usize> {
        let neighbors: Vec<(usize, f64)> = self.graph.out_neighbors(cur).collect();
        if neighbors.is_empty() {
            return None;
        }
        let mut weights = Vec::with_capacity(neighbors.len());
        let mut total = 0.0;
        for &(x, w) in &neighbors {
            let bias = match prev {
                None => 1.0,
                Some(t) if x == t => 1.0 / self.config.p,
                Some(t) if self.graph.has_edge(t, x) || self.graph.has_edge(x, t) => 1.0,
                Some(_) => 1.0 / self.config.q,
            };
            let bw = w.max(0.0) * bias;
            weights.push(bw);
            total += bw;
        }
        if total <= 0.0 {
            return None;
        }
        let mut r = rng.gen_range(0.0..total);
        for (i, &w) in weights.iter().enumerate() {
            if r < w {
                return Some(neighbors[i].0);
            }
            r -= w;
        }
        // Rounding can push `r` past every weight; fall back to the last
        // neighbor (non-empty, checked above).
        Some(neighbors.last()?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cycle(n: usize) -> DiGraph {
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        DiGraph::from_edges(n, &edges)
    }

    #[test]
    fn walks_follow_edges() {
        let g = cycle(5);
        let walker = BiasedWalker::new(&g, WalkConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let w = walker.walk(&mut rng, 0);
        assert_eq!(w.len(), 40);
        for pair in w.windows(2) {
            assert_eq!(pair[1], (pair[0] + 1) % 5);
        }
    }

    #[test]
    fn walks_stop_at_sinks() {
        let g = DiGraph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let walker = BiasedWalker::new(&g, WalkConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let w = walker.walk(&mut rng, 0);
        assert_eq!(w, vec![0, 1, 2]);
    }

    #[test]
    fn generate_all_produces_expected_count() {
        let g = cycle(4);
        let cfg = WalkConfig {
            walk_length: 5,
            walks_per_vertex: 3,
            p: 1.0,
            q: 1.0,
        };
        let walker = BiasedWalker::new(&g, cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let walks = walker.generate_all(&mut rng);
        assert_eq!(walks.len(), 12);
        assert!(walks.iter().all(|w| w.len() == 5));
    }

    #[test]
    fn high_p_discourages_backtracking() {
        // Star-with-spokes: from center, with very high p a walk should
        // rarely return to the vertex it just came from.
        let g = DiGraph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (0, 2, 1.0),
                (2, 0, 1.0),
                (0, 3, 1.0),
                (3, 0, 1.0),
            ],
        );
        let mut rng = StdRng::seed_from_u64(9);
        let low_p = BiasedWalker::new(
            &g,
            WalkConfig {
                walk_length: 3,
                walks_per_vertex: 1,
                p: 0.01,
                q: 1.0,
            },
        );
        let high_p = BiasedWalker::new(
            &g,
            WalkConfig {
                walk_length: 3,
                walks_per_vertex: 1,
                p: 100.0,
                q: 1.0,
            },
        );
        let trials = 300;
        let count_backtracks = |walker: &BiasedWalker, rng: &mut StdRng| {
            (0..trials)
                .filter(|_| {
                    let w = walker.walk(rng, 1); // 1 -> 0 -> ?
                    w.len() == 3 && w[2] == 1
                })
                .count()
        };
        let low = count_backtracks(&low_p, &mut rng);
        let high = count_backtracks(&high_p, &mut rng);
        assert!(low > high, "low-p backtracks {low} vs high-p {high}");
    }
}
