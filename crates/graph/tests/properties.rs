//! Property-based tests on graph algorithms.

use proptest::prelude::*;
use sarn_graph::{bfs_hops, dijkstra, dijkstra_path, weakly_connected_components, DiGraph};

fn random_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (3usize..15).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n, 1.0f64..100.0), 0..(n * 3));
        edges.prop_map(move |e| (n, e))
    })
}

proptest! {
    #[test]
    fn dijkstra_distances_satisfy_triangle_relaxation((n, edges) in random_graph()) {
        let g = DiGraph::from_edges(n, &edges);
        let dist = dijkstra(&g, 0);
        prop_assert_eq!(dist[0], 0.0);
        // No edge can improve a settled distance.
        for (u, v, w) in g.edges() {
            if dist[u].is_finite() {
                prop_assert!(dist[v] <= dist[u] + w + 1e-9, "edge ({u},{v}) relaxable");
            }
        }
    }

    #[test]
    fn dijkstra_path_distance_matches_tree((n, edges) in random_graph()) {
        let g = DiGraph::from_edges(n, &edges);
        let dist = dijkstra(&g, 0);
        for (target, &tree_dist) in dist.iter().enumerate().skip(1) {
            match dijkstra_path(&g, 0, target) {
                Some((d, path)) => {
                    prop_assert!((d - tree_dist).abs() < 1e-9);
                    prop_assert_eq!(path[0], 0);
                    prop_assert_eq!(*path.last().unwrap(), target);
                    // Path edge weights must sum to the distance.
                    let mut sum = 0.0;
                    for w in path.windows(2) {
                        let weight = g
                            .out_neighbors(w[0])
                            .filter(|&(v, _)| v == w[1])
                            .map(|(_, x)| x)
                            .fold(f64::INFINITY, f64::min);
                        sum += weight;
                    }
                    prop_assert!((sum - d).abs() < 1e-6);
                }
                None => prop_assert!(tree_dist.is_infinite()),
            }
        }
    }

    #[test]
    fn bfs_reaches_exactly_the_dijkstra_reachable_set((n, edges) in random_graph()) {
        let g = DiGraph::from_edges(n, &edges);
        let hops = bfs_hops(&g, 0);
        let dist = dijkstra(&g, 0);
        for v in 0..n {
            prop_assert_eq!(hops[v] == usize::MAX, dist[v].is_infinite(), "vertex {}", v);
        }
    }

    #[test]
    fn components_are_consistent_with_edges((n, edges) in random_graph()) {
        let g = DiGraph::from_edges(n, &edges);
        let comp = weakly_connected_components(&g);
        for (u, v, _) in g.edges() {
            prop_assert_eq!(comp[u], comp[v]);
        }
    }

    #[test]
    fn degree_sums_match_edge_count((n, edges) in random_graph()) {
        let g = DiGraph::from_edges(n, &edges);
        let out: usize = (0..n).map(|v| g.out_degree(v)).sum();
        let inn: usize = (0..n).map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out, g.num_edges());
        prop_assert_eq!(inn, g.num_edges());
    }
}
