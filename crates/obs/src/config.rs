//! Telemetry knobs (`SARN_OBS_*` environment variables for the bench
//! binaries; library callers set fields directly, typically via
//! `SarnConfig::obs`).

use std::path::PathBuf;

use crate::journal::{EventJournal, DEFAULT_JOURNAL_CAPACITY};

/// Telemetry configuration.
///
/// Enabling is **sticky** per process: [`ObsConfig::apply`] turns the
/// global recorder on when `enabled` is set but never turns it off (so
/// a disabled-by-default training run started concurrently cannot yank
/// telemetry out from under an instrumented one). Explicit control is
/// available via [`crate::set_enabled`].
#[derive(Clone, Debug, PartialEq)]
pub struct ObsConfig {
    /// Master switch. Off by default: every recording call is a relaxed
    /// flag load and an early return, and training output is bitwise
    /// identical either way (recording only ever *reads* training
    /// state).
    pub enabled: bool,
    /// Directory receiving `metrics.prom` / `metrics.json` /
    /// `events.jsonl` exports (created on first export). `None` = no
    /// file exports; the in-process registry still records.
    pub export_dir: Option<PathBuf>,
    /// Export every this many epochs during training (`0` = only at the
    /// end of the run; ignored without `export_dir`).
    pub export_every: usize,
    /// Event-journal ring capacity (oldest events are dropped beyond
    /// this, with a drop counter).
    pub journal_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            export_dir: None,
            export_every: 0,
            journal_capacity: DEFAULT_JOURNAL_CAPACITY,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl ObsConfig {
    /// Reads the `SARN_OBS_*` environment knobs: `SARN_OBS=1` enables
    /// recording, `SARN_OBS_DIR` sets the export directory (and implies
    /// enabling), `SARN_OBS_EVERY` the epoch export period (default 1
    /// when a directory is set), `SARN_OBS_JOURNAL_CAP` the ring size.
    pub fn from_env() -> Self {
        let d = ObsConfig::default();
        let export_dir = std::env::var("SARN_OBS_DIR")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let enabled = env_parse("SARN_OBS", 0u8) != 0 || export_dir.is_some();
        let export_every = env_parse("SARN_OBS_EVERY", u64::from(export_dir.is_some())) as usize;
        Self {
            enabled,
            export_dir,
            export_every,
            journal_capacity: env_parse("SARN_OBS_JOURNAL_CAP", d.journal_capacity as u64) as usize,
        }
    }

    /// Applies the config to the process-wide recorder: sizes the
    /// journal ring and (sticky) enables recording when `enabled`.
    pub fn apply(&self) {
        if self.enabled {
            EventJournal::global().set_capacity(self.journal_capacity);
            crate::set_enabled(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_off() {
        let c = ObsConfig::default();
        assert!(!c.enabled);
        assert!(c.export_dir.is_none());
        assert_eq!(c.export_every, 0);
        assert_eq!(c.journal_capacity, DEFAULT_JOURNAL_CAPACITY);
    }

    #[test]
    fn apply_is_sticky_enable_only() {
        let _guard = crate::test_flag_lock();
        // A disabled config must never flip the global recorder off.
        crate::set_enabled(true);
        ObsConfig::default().apply();
        assert!(crate::enabled());
        crate::set_enabled(false);
        // And an enabled one turns it on.
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
        .apply();
        assert!(crate::enabled());
        crate::set_enabled(false);
    }
}
