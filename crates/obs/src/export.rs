//! Exporters: Prometheus text exposition and a JSON snapshot, plus the
//! JSONL event journal, all written via atomic tmp-sibling + rename (the
//! same crash-safety discipline as the checkpoint subsystem) so a
//! concurrent scraper never reads a torn file.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use crate::journal::{json_f64, json_string, EventJournal};
use crate::registry::{Registry, Snapshot};

/// File name of the Prometheus exposition export inside an export dir.
pub const PROMETHEUS_FILE: &str = "metrics.prom";
/// File name of the JSON snapshot export inside an export dir.
pub const JSON_FILE: &str = "metrics.json";
/// File name of the event-journal JSONL export inside an export dir.
pub const EVENTS_FILE: &str = "events.jsonl";

/// Formats an `f64` for Prometheus exposition (`+Inf`/`-Inf`/`NaN`
/// spellings per the text format).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

/// Renders a snapshot in the Prometheus text exposition format:
/// counters and gauges as single samples, histograms as cumulative
/// `_bucket{le=...}` series plus `_sum` and `_count`.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", prom_f64(*v)));
    }
    for h in &snap.histograms {
        let name = &h.name;
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, c) in h.counts.iter().enumerate() {
            cumulative += c;
            let le = h
                .boundaries
                .get(i)
                .map_or_else(|| "+Inf".to_string(), |b| prom_f64(*b));
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_sum {}\n", prom_f64(h.sum)));
        out.push_str(&format!("{name}_count {}\n", h.count));
    }
    out
}

/// Renders a snapshot as one JSON object:
/// `{"counters":{...},"gauges":{...},"histograms":{name:{...}}}`.
pub fn json_text(snap: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{v}", json_string(name)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{}", json_string(name), json_f64(*v)));
    }
    out.push_str("},\"histograms\":{");
    for (i, h) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{}:{{\"boundaries\":[", json_string(&h.name)));
        for (j, b) in h.boundaries.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_f64(*b));
        }
        out.push_str("],\"counts\":[");
        for (j, c) in h.counts.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&c.to_string());
        }
        out.push_str(&format!(
            "],\"sum\":{},\"count\":{}}}",
            json_f64(h.sum),
            h.count
        ));
    }
    out.push_str("}}");
    out
}

/// Writes `contents` to `path` atomically: bytes go to a `.tmp` sibling
/// in the same directory, are fsynced, and renamed over `path` — a
/// reader never observes a partial file, a crash leaves either the old
/// file or the new one.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        fs::remove_file(&tmp).ok();
        return Err(e);
    }
    Ok(())
}

/// Exports the global registry and journal into `dir` (created if
/// missing): `metrics.prom`, `metrics.json`, and `events.jsonl`, each
/// written atomically. Returns the three paths.
pub fn export_all(dir: &Path) -> io::Result<[PathBuf; 3]> {
    fs::create_dir_all(dir)?;
    let snap = Registry::global().snapshot();
    let prom = dir.join(PROMETHEUS_FILE);
    let json = dir.join(JSON_FILE);
    let events = dir.join(EVENTS_FILE);
    write_atomic(&prom, &prometheus_text(&snap))?;
    write_atomic(&json, &json_text(&snap))?;
    write_atomic(&events, &EventJournal::global().to_jsonl())?;
    Ok([prom, json, events])
}

/// Validates that `s` is one complete JSON value (minimal recursive-
/// descent syntax check; no DOM is built). Used by the torn-export tests
/// and the `obs_smoke` CI gate — the exporters must only ever produce
/// parseable files.
pub fn validate_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => expect_word(b, pos, "true"),
        Some(b'f') => expect_word(b, pos, "false"),
        Some(b'n') => expect_word(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at offset {pos}")),
    }
}

fn expect(b: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", want as char))
    }
}

fn expect_word(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("expected `{word}` at offset {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'u') => {
                        if b.len() < *pos + 5
                            || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at offset {pos}"));
                        }
                        *pos += 5;
                    }
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at offset {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(format!("number without digits at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_from = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_from {
            return Err(format!("fraction without digits at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_from = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_from {
            return Err(format!("exponent without digits at offset {start}"));
        }
    }
    Ok(())
}

/// One sample parsed from a Prometheus exposition file.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric name including any `_bucket`/`_sum`/`_count` suffix.
    pub name: String,
    /// Raw label block (without braces), empty when unlabelled.
    pub labels: String,
    /// The sample value.
    pub value: f64,
}

/// Parses Prometheus text exposition into samples, validating the line
/// grammar (comments pass through, every sample line must be
/// `name[{labels}] value`). The `obs_smoke` gate drives this over the
/// real export to prove a scraper could.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value separator", lineno + 1))?;
        let value = match value {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v
                .parse()
                .map_err(|e| format!("line {}: bad value `{v}`: {e}", lineno + 1))?,
        };
        let (name, labels) = match series.split_once('{') {
            Some((name, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated label block", lineno + 1))?;
                (name, labels)
            }
            None => (series, ""),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name `{name}`", lineno + 1));
        }
        samples.push(PromSample {
            name: name.to_string(),
            labels: labels.to_string(),
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::HistogramSnapshot;

    fn demo_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![("demo_total".into(), 3)],
            gauges: vec![("demo_gauge".into(), 1.5)],
            histograms: vec![HistogramSnapshot {
                name: "demo_seconds".into(),
                boundaries: vec![0.1, 1.0],
                counts: vec![2, 1, 1],
                sum: 3.25,
                count: 4,
            }],
        }
    }

    #[test]
    fn prometheus_text_is_parseable_and_cumulative() {
        let text = prometheus_text(&demo_snapshot());
        let samples = parse_prometheus(&text).expect("export must parse");
        let get = |name: &str, labels: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.labels == labels)
                .map(|s| s.value)
        };
        assert_eq!(get("demo_total", ""), Some(3.0));
        assert_eq!(get("demo_gauge", ""), Some(1.5));
        // Buckets are cumulative and end at +Inf == _count.
        assert_eq!(get("demo_seconds_bucket", "le=\"0.1\""), Some(2.0));
        assert_eq!(get("demo_seconds_bucket", "le=\"1.0\""), Some(3.0));
        assert_eq!(get("demo_seconds_bucket", "le=\"+Inf\""), Some(4.0));
        assert_eq!(get("demo_seconds_count", ""), Some(4.0));
        assert_eq!(get("demo_seconds_sum", ""), Some(3.25));
    }

    #[test]
    fn json_text_is_valid_json() {
        let text = json_text(&demo_snapshot());
        validate_json(&text).expect("snapshot JSON must parse");
        assert!(text.contains("\"demo_total\":3"));
        assert!(text.contains("\"sum\":3.25"));
        // Empty snapshot is still valid.
        validate_json(&json_text(&Snapshot::default())).expect("empty snapshot");
    }

    #[test]
    fn validate_json_rejects_torn_prefixes() {
        let full = json_text(&demo_snapshot());
        for cut in [1, full.len() / 3, full.len() / 2, full.len() - 1] {
            assert!(
                validate_json(&full[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
        assert!(validate_json("{\"a\":1} trailing").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2,]").is_err());
        validate_json(" {\"a\": [1, -2.5e3, true, null, \"x\\n\"]} ").expect("valid doc");
    }

    #[test]
    fn write_atomic_leaves_no_tmp_sibling() {
        let dir = std::env::temp_dir().join(format!("sarn_obs_wa_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("out.json");
        write_atomic(&path, "{\"ok\":true}").expect("write");
        assert_eq!(
            std::fs::read_to_string(&path).expect("read"),
            "{\"ok\":true}"
        );
        assert!(!dir.join("out.json.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
