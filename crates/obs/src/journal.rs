//! The bounded ring-buffer journal of typed structured events.
//!
//! Every subsystem pushes its landmark moments here — epoch summaries,
//! watchdog violations and rollbacks, checkpoint writes, serve reload
//! outcomes, shed/degrade transitions, bench table rows — and the whole
//! ring drains to JSONL (one event object per line) for machine-readable
//! run artifacts. The ring is bounded: when full, the oldest event is
//! dropped and a drop counter keeps the loss visible.

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::enabled;

/// Default ring capacity (see `SARN_OBS_JOURNAL_CAP`).
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// One structured telemetry event.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// One completed (healthy) training epoch.
    EpochSummary {
        /// Epoch index.
        epoch: usize,
        /// Mean batch loss of the epoch.
        loss: f64,
        /// Learning rate the epoch ran at (after schedule and backoff).
        lr: f64,
        /// Global gradient norm of the epoch's last batch.
        grad_norm: f64,
        /// Wall-clock seconds the epoch took.
        seconds: f64,
        /// Negative-queue entries resident after the epoch.
        queue_entries: usize,
        /// Edges removed by the epoch's two-view augmentation.
        edges_removed: usize,
    },
    /// A watchdog probe fired.
    WatchdogViolation {
        /// Epoch of the violation.
        epoch: usize,
        /// Batch within the epoch (`None` for epoch-boundary scans).
        batch: Option<usize>,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The watchdog rolled training back to its anchor.
    WatchdogRecovery {
        /// Epoch training resumed from.
        rolled_back_to_epoch: usize,
        /// Compounded learning-rate scale after this backoff.
        lr_scale: f64,
        /// Recovery ordinal (1 = first rollback).
        retry: usize,
    },
    /// The watchdog exhausted its retry budget and the run gave up.
    WatchdogDivergence {
        /// Recoveries attempted before giving up.
        recoveries: usize,
        /// The final violation.
        detail: String,
    },
    /// A training checkpoint was written.
    CheckpointWrite {
        /// Epoch the checkpoint resumes at.
        epoch: usize,
        /// Serialized size in bytes.
        bytes: usize,
        /// Wall-clock seconds of the (atomic) write.
        seconds: f64,
    },
    /// A training checkpoint was loaded (resume or rollback validation).
    CheckpointLoad {
        /// Epoch the checkpoint resumes at.
        epoch: usize,
        /// Serialized size in bytes.
        bytes: usize,
        /// Wall-clock seconds of the read + validation.
        seconds: f64,
    },
    /// A serve reload succeeded and published a new generation.
    ReloadOk {
        /// The published generation number.
        generation: u64,
        /// Wall-clock seconds including retries.
        seconds: f64,
    },
    /// A serve reload failed after exhausting its retries.
    ReloadFailed {
        /// Attempts made (initial + retries).
        attempts: usize,
        /// The final attempt's error.
        error: String,
    },
    /// A request was shed at the in-flight ceiling.
    Shed {
        /// In-flight count observed at the shed.
        inflight: usize,
    },
    /// An exact k-NN request degraded to the approximate path.
    Degrade {
        /// In-flight count observed at the degrade.
        inflight: usize,
    },
    /// One row of a bench table (the machine-readable artifact behind
    /// `table*` / `fig*` binaries).
    BenchRow {
        /// Table title.
        table: String,
        /// `(column, value)` pairs, in column order.
        cells: Vec<(String, String)>,
    },
    /// One pipeline stage attempt finished (success or typed failure).
    PipelineStage {
        /// Edit batch ordinal the pipeline was processing.
        batch: u64,
        /// Stage name (`applying` / `repairing` / `retraining` /
        /// `exporting` / `reloading`).
        stage: String,
        /// Attempt ordinal within the stage (1 = first try).
        attempt: usize,
        /// Whether the attempt succeeded.
        ok: bool,
        /// Wall-clock seconds of the attempt.
        seconds: f64,
        /// The attempt's error, if it failed.
        error: Option<String>,
    },
    /// The serving store crossed its staleness SLO: the live generation's
    /// age exceeded the configured maximum.
    ServeStale {
        /// The stale generation's number.
        generation: u64,
        /// Its age in seconds when the breach was observed.
        age_seconds: f64,
    },
    /// A shard's circuit breaker changed state
    /// (`closed`/`open`/`half-open`).
    BreakerTransition {
        /// Shard the breaker guards.
        shard: usize,
        /// State before the transition.
        from: String,
        /// State after the transition.
        to: String,
        /// Consecutive typed failures observed at the transition.
        consecutive_failures: u32,
    },
    /// The router fired a hedged duplicate request against a shard whose
    /// primary attempt outlived its latency estimate.
    HedgeFired {
        /// The slow shard.
        shard: usize,
        /// The latency estimate (milliseconds) the primary exceeded.
        after_ms: f64,
    },
    /// A shard entered quarantine: its breaker opened and the router now
    /// routes around it.
    QuarantineEnter {
        /// The quarantined shard.
        shard: usize,
        /// Consecutive typed failures that exhausted the threshold.
        consecutive_failures: u32,
    },
    /// A shard left quarantine: a half-open probe succeeded and the
    /// breaker re-closed.
    QuarantineExit {
        /// The recovered shard.
        shard: usize,
    },
    /// The router answered with partial coverage: some shards were
    /// skipped or failed and the response says so instead of erroring.
    PartialCoverage {
        /// Shards that contributed results.
        answered: usize,
        /// Shards the query consulted.
        total: usize,
    },
    /// A serving generation finished building its ANN index and k-NN
    /// switched from linear scan to the HNSW graph.
    IndexBuilt {
        /// Generation the index serves.
        generation: u64,
        /// Rows indexed.
        rows: u64,
        /// Wall-clock milliseconds of the build.
        build_ms: f64,
    },
    /// An ANN-backed query or index adoption fell back to the exact
    /// scan (index absent, still building, corrupt sidecar, or
    /// deadline expired mid-walk).
    AnnFallback {
        /// Generation serving at the fallback.
        generation: u64,
        /// Why the ANN path was not taken.
        reason: String,
    },
}

impl Event {
    /// The event's `type` tag in the JSONL encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::EpochSummary { .. } => "epoch_summary",
            Event::WatchdogViolation { .. } => "watchdog_violation",
            Event::WatchdogRecovery { .. } => "watchdog_recovery",
            Event::WatchdogDivergence { .. } => "watchdog_divergence",
            Event::CheckpointWrite { .. } => "checkpoint_write",
            Event::CheckpointLoad { .. } => "checkpoint_load",
            Event::ReloadOk { .. } => "reload_ok",
            Event::ReloadFailed { .. } => "reload_failed",
            Event::Shed { .. } => "shed",
            Event::Degrade { .. } => "degrade",
            Event::BenchRow { .. } => "bench_row",
            Event::PipelineStage { .. } => "pipeline_stage",
            Event::ServeStale { .. } => "serve_stale",
            Event::BreakerTransition { .. } => "breaker_transition",
            Event::HedgeFired { .. } => "hedge_fired",
            Event::QuarantineEnter { .. } => "quarantine_enter",
            Event::QuarantineExit { .. } => "quarantine_exit",
            Event::PartialCoverage { .. } => "partial_coverage",
            Event::IndexBuilt { .. } => "index_built",
            Event::AnnFallback { .. } => "ann_fallback",
        }
    }
}

/// An [`Event`] stamped with the wall-clock time it was recorded.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedEvent {
    /// Milliseconds since the Unix epoch at recording time.
    pub t_unix_ms: u64,
    /// The event.
    pub event: Event,
}

impl TimedEvent {
    /// Stamps `event` with the current wall-clock time.
    pub fn now(event: Event) -> Self {
        let t_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        Self { t_unix_ms, event }
    }

    /// Encodes the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut w = JsonObject::new();
        w.field_u64("t_ms", self.t_unix_ms);
        w.field_str("type", self.event.kind());
        match &self.event {
            Event::EpochSummary {
                epoch,
                loss,
                lr,
                grad_norm,
                seconds,
                queue_entries,
                edges_removed,
            } => {
                w.field_u64("epoch", *epoch as u64);
                w.field_f64("loss", *loss);
                w.field_f64("lr", *lr);
                w.field_f64("grad_norm", *grad_norm);
                w.field_f64("seconds", *seconds);
                w.field_u64("queue_entries", *queue_entries as u64);
                w.field_u64("edges_removed", *edges_removed as u64);
            }
            Event::WatchdogViolation {
                epoch,
                batch,
                detail,
            } => {
                w.field_u64("epoch", *epoch as u64);
                match batch {
                    Some(b) => w.field_u64("batch", *b as u64),
                    None => w.field_null("batch"),
                }
                w.field_str("detail", detail);
            }
            Event::WatchdogRecovery {
                rolled_back_to_epoch,
                lr_scale,
                retry,
            } => {
                w.field_u64("rolled_back_to_epoch", *rolled_back_to_epoch as u64);
                w.field_f64("lr_scale", *lr_scale);
                w.field_u64("retry", *retry as u64);
            }
            Event::WatchdogDivergence { recoveries, detail } => {
                w.field_u64("recoveries", *recoveries as u64);
                w.field_str("detail", detail);
            }
            Event::CheckpointWrite {
                epoch,
                bytes,
                seconds,
            }
            | Event::CheckpointLoad {
                epoch,
                bytes,
                seconds,
            } => {
                w.field_u64("epoch", *epoch as u64);
                w.field_u64("bytes", *bytes as u64);
                w.field_f64("seconds", *seconds);
            }
            Event::ReloadOk {
                generation,
                seconds,
            } => {
                w.field_u64("generation", *generation);
                w.field_f64("seconds", *seconds);
            }
            Event::ReloadFailed { attempts, error } => {
                w.field_u64("attempts", *attempts as u64);
                w.field_str("error", error);
            }
            Event::Shed { inflight } | Event::Degrade { inflight } => {
                w.field_u64("inflight", *inflight as u64);
            }
            Event::BenchRow { table, cells } => {
                w.field_str("table", table);
                let mut cells_obj = JsonObject::new();
                for (k, v) in cells {
                    cells_obj.field_str(k, v);
                }
                w.field_raw("cells", &cells_obj.finish());
            }
            Event::PipelineStage {
                batch,
                stage,
                attempt,
                ok,
                seconds,
                error,
            } => {
                w.field_u64("batch", *batch);
                w.field_str("stage", stage);
                w.field_u64("attempt", *attempt as u64);
                w.field_raw("ok", if *ok { "true" } else { "false" });
                w.field_f64("seconds", *seconds);
                match error {
                    Some(e) => w.field_str("error", e),
                    None => w.field_null("error"),
                }
            }
            Event::ServeStale {
                generation,
                age_seconds,
            } => {
                w.field_u64("generation", *generation);
                w.field_f64("age_seconds", *age_seconds);
            }
            Event::BreakerTransition {
                shard,
                from,
                to,
                consecutive_failures,
            } => {
                w.field_u64("shard", *shard as u64);
                w.field_str("from", from);
                w.field_str("to", to);
                w.field_u64("consecutive_failures", *consecutive_failures as u64);
            }
            Event::HedgeFired { shard, after_ms } => {
                w.field_u64("shard", *shard as u64);
                w.field_f64("after_ms", *after_ms);
            }
            Event::QuarantineEnter {
                shard,
                consecutive_failures,
            } => {
                w.field_u64("shard", *shard as u64);
                w.field_u64("consecutive_failures", *consecutive_failures as u64);
            }
            Event::QuarantineExit { shard } => {
                w.field_u64("shard", *shard as u64);
            }
            Event::PartialCoverage { answered, total } => {
                w.field_u64("answered", *answered as u64);
                w.field_u64("total", *total as u64);
            }
            Event::IndexBuilt {
                generation,
                rows,
                build_ms,
            } => {
                w.field_u64("generation", *generation);
                w.field_u64("rows", *rows);
                w.field_f64("build_ms", *build_ms);
            }
            Event::AnnFallback { generation, reason } => {
                w.field_u64("generation", *generation);
                w.field_str("reason", reason);
            }
        }
        w.finish()
    }
}

/// Minimal JSON object writer (the workspace is offline; no serde).
pub(crate) struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    pub(crate) fn new() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(&json_string(k));
        self.buf.push(':');
    }

    pub(crate) fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.buf.push_str(&json_string(v));
    }

    pub(crate) fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.buf.push_str(&v.to_string());
    }

    pub(crate) fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.buf.push_str(&json_f64(v));
    }

    pub(crate) fn field_null(&mut self, k: &str) {
        self.key(k);
        self.buf.push_str("null");
    }

    pub(crate) fn field_raw(&mut self, k: &str, raw: &str) {
        self.key(k);
        self.buf.push_str(raw);
    }

    pub(crate) fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Encodes `v` as a JSON value (non-finite floats become `null`: JSON
/// has no NaN/Inf literal).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` always includes enough digits to round-trip and always
        // produces a valid JSON number for finite values.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Encodes `s` as a JSON string literal with full escaping.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct JournalCore {
    events: VecDeque<TimedEvent>,
    capacity: usize,
    dropped: u64,
}

/// The bounded ring buffer of [`TimedEvent`]s.
pub struct EventJournal {
    inner: Mutex<JournalCore>,
}

impl EventJournal {
    fn new() -> Self {
        Self {
            inner: Mutex::new(JournalCore {
                events: VecDeque::new(),
                capacity: DEFAULT_JOURNAL_CAPACITY,
                dropped: 0,
            }),
        }
    }

    /// The process-wide journal.
    pub fn global() -> &'static EventJournal {
        static JOURNAL: OnceLock<EventJournal> = OnceLock::new();
        JOURNAL.get_or_init(EventJournal::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalCore> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Resizes the ring (evicting oldest events if shrinking).
    pub fn set_capacity(&self, capacity: usize) {
        let mut core = self.lock();
        core.capacity = capacity.max(1);
        while core.events.len() > core.capacity {
            core.events.pop_front();
            core.dropped += 1;
        }
    }

    /// Records `event`, stamped now. No-op while telemetry is disabled.
    pub fn record(&self, event: Event) {
        if !enabled() {
            return;
        }
        self.record_forced(event);
    }

    /// Records `event` regardless of the enabled flag (used by the bench
    /// artifact emitter, which must work even in un-instrumented runs).
    pub fn record_forced(&self, event: Event) {
        let timed = TimedEvent::now(event);
        let mut core = self.lock();
        if core.events.len() >= core.capacity {
            core.events.pop_front();
            core.dropped += 1;
        }
        core.events.push_back(timed);
    }

    /// Number of events currently resident.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Copies the resident events, oldest first (non-draining).
    pub fn snapshot_events(&self) -> Vec<TimedEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Removes and returns the resident events, oldest first.
    pub fn drain(&self) -> Vec<TimedEvent> {
        self.lock().events.drain(..).collect()
    }

    /// Encodes the resident events as JSONL (one object per line,
    /// trailing newline; empty string when no events), non-draining.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.snapshot_events() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let j = EventJournal::new();
        j.set_capacity(3);
        for i in 0..5 {
            j.record_forced(Event::Shed { inflight: i });
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        let drained = j.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].event, Event::Shed { inflight: 2 });
        assert!(j.is_empty());
    }

    #[test]
    fn jsonl_encodes_every_event_kind() {
        let j = EventJournal::new();
        let events = [
            Event::EpochSummary {
                epoch: 1,
                loss: 2.5,
                lr: 0.005,
                grad_norm: 1.25,
                seconds: 0.75,
                queue_entries: 100,
                edges_removed: 42,
            },
            Event::WatchdogViolation {
                epoch: 2,
                batch: None,
                detail: "non-finite \"loss\"\nline2".into(),
            },
            Event::WatchdogRecovery {
                rolled_back_to_epoch: 1,
                lr_scale: 0.5,
                retry: 1,
            },
            Event::WatchdogDivergence {
                recoveries: 3,
                detail: "gave up".into(),
            },
            Event::CheckpointWrite {
                epoch: 4,
                bytes: 1024,
                seconds: 0.01,
            },
            Event::CheckpointLoad {
                epoch: 4,
                bytes: 1024,
                seconds: 0.02,
            },
            Event::ReloadOk {
                generation: 7,
                seconds: 0.1,
            },
            Event::ReloadFailed {
                attempts: 4,
                error: "bad magic".into(),
            },
            Event::Shed { inflight: 64 },
            Event::Degrade { inflight: 50 },
            Event::BenchRow {
                table: "Table 4".into(),
                cells: vec![
                    ("Method".into(), "SARN".into()),
                    ("F1".into(), "98.7".into()),
                ],
            },
            Event::PipelineStage {
                batch: 3,
                stage: "retraining".into(),
                attempt: 2,
                ok: false,
                seconds: 0.4,
                error: Some("injected divergence".into()),
            },
            Event::PipelineStage {
                batch: 3,
                stage: "reloading".into(),
                attempt: 1,
                ok: true,
                seconds: 0.05,
                error: None,
            },
            Event::ServeStale {
                generation: 9,
                age_seconds: 12.5,
            },
            Event::BreakerTransition {
                shard: 2,
                from: "closed".into(),
                to: "open".into(),
                consecutive_failures: 3,
            },
            Event::HedgeFired {
                shard: 1,
                after_ms: 4.25,
            },
            Event::QuarantineEnter {
                shard: 2,
                consecutive_failures: 3,
            },
            Event::QuarantineExit { shard: 2 },
            Event::PartialCoverage {
                answered: 3,
                total: 4,
            },
            Event::IndexBuilt {
                generation: 11,
                rows: 8192,
                build_ms: 73.5,
            },
            Event::AnnFallback {
                generation: 11,
                reason: "index building".into(),
            },
        ];
        for e in events.iter().cloned() {
            j.record_forced(e);
        }
        let jsonl = j.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, event) in lines.iter().zip(&events) {
            crate::export::validate_json(line).expect("event line must be valid JSON");
            assert!(line.contains(&format!("\"type\":\"{}\"", event.kind())));
        }
        // Escaping really happened.
        assert!(jsonl.contains("non-finite \\\"loss\\\"\\nline2"));
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
