//! # sarn-obs
//!
//! Zero-dependency telemetry for the SARN workspace: the observability
//! substrate behind training, the watchdog, checkpoints, and serving
//! (DESIGN.md §11).
//!
//! - **Metrics.** A process-wide [`Registry`] interning lock-free
//!   [`Counter`]s and [`Gauge`]s (one `AtomicU64` each) and
//!   fixed-boundary [`Histogram`]s (log-spaced latency buckets, atomic
//!   bucket counts, sum + count for means). Handles are resolved once at
//!   construction — hot-path recording is a relaxed flag load plus
//!   relaxed atomic ops, no locks.
//! - **Spans.** RAII [`Span`] timers ([`span!`]) feeding histograms,
//!   cheap enough for per-batch use.
//! - **Events.** A bounded ring-buffer [`EventJournal`] of typed
//!   structured [`Event`]s (epoch summaries, watchdog rollbacks,
//!   checkpoint writes, reload outcomes, shed/degrade, bench rows),
//!   drainable to JSONL.
//! - **Exporters.** Prometheus text exposition and a JSON snapshot,
//!   written atomically (tmp sibling + rename — never a torn file), on
//!   demand or every N epochs via `SarnConfig::obs` / the `SARN_OBS_*`
//!   knobs ([`ObsConfig`]).
//!
//! ## The overhead contract
//!
//! Telemetry is **off by default**. Disabled, every recording call is a
//! single relaxed flag load and an early return, and a [`Span`] takes no
//! timestamp. Enabled, recording only ever *reads* training state —
//! never the RNG, never a parameter — so training output is bitwise
//! identical with telemetry on or off (pinned by the `obs_equivalence`
//! sys test, in the tradition of `parallel_equivalence`), and the
//! measured per-epoch overhead stays under 2% (EXPERIMENTS.md).
//!
//! Enabling is sticky per process (see [`ObsConfig::apply`]).

#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

mod config;
pub mod export;
mod journal;
mod metrics;
mod proc;
mod quantile;
mod registry;
mod span;

pub use config::ObsConfig;
pub use export::{
    export_all, json_text, parse_prometheus, prometheus_text, validate_json, write_atomic,
    PromSample, EVENTS_FILE, JSON_FILE, PROMETHEUS_FILE,
};
pub use journal::{Event, EventJournal, TimedEvent, DEFAULT_JOURNAL_CAPACITY};
pub use metrics::{latency_boundaries, magnitude_boundaries, Counter, Gauge, Histogram};
pub use proc::peak_rss_bytes;
pub use quantile::{bucket_index, quantile_from_buckets};
pub use registry::{HistogramSnapshot, Registry, Snapshot};
pub use span::Span;

/// The process-wide recording switch. Off by default.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether recording is enabled (a relaxed load — this is the whole
/// cost of a disabled recording call).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. Prefer
/// [`ObsConfig::apply`] (sticky enable) in library flows; this direct
/// switch exists for tests and tools that own the whole process.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Records `event` into the global journal (no-op while disabled).
pub fn record(event: Event) {
    EventJournal::global().record(event);
}

/// Convenience: the global registry's counter `name`.
pub fn counter(name: &str) -> Counter {
    Registry::global().counter(name)
}

/// Convenience: the global registry's gauge `name`.
pub fn gauge(name: &str) -> Gauge {
    Registry::global().gauge(name)
}

/// Convenience: the global registry's histogram `name` (default
/// latency buckets).
pub fn histogram(name: &str) -> Histogram {
    Registry::global().histogram(name)
}

/// Serializes unit tests that depend on the process-wide flag (tests
/// run concurrently within one process; an unguarded `set_enabled`
/// would yank recording out from under a sibling test).
#[cfg(test)]
pub(crate) fn test_flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn disabled_is_the_default_and_toggles() {
        let _guard = super::test_flag_lock();
        super::set_enabled(false);
        assert!(!super::enabled());
        super::set_enabled(true);
        assert!(super::enabled());
        super::set_enabled(false);
    }
}
