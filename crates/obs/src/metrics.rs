//! Lock-free metric primitives: monotonic counters, f64 gauges, and
//! fixed-boundary histograms, all on `AtomicU64`.
//!
//! Handles are cheap clones of an `Arc` around the atomic cells; the
//! [`crate::Registry`] interns them by name once at construction, so a
//! hot-path recording is a relaxed flag load plus one (counters/gauges)
//! or a few (histograms) relaxed atomic operations — no locks anywhere.
//!
//! Every recording call is gated on [`crate::enabled`]: with telemetry
//! disabled (the default) a call is a single relaxed load and an early
//! return, cheap enough for per-batch use inside the training loop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::enabled;

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    pub(crate) fn new() -> Self {
        Self {
            inner: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Adds one. No-op while telemetry is disabled.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. No-op while telemetry is disabled.
    pub fn add(&self, n: u64) {
        if enabled() {
            self.inner.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }
}

/// A gauge holding one `f64` (stored as its bit pattern).
#[derive(Clone, Debug)]
pub struct Gauge {
    inner: Arc<AtomicU64>,
}

impl Gauge {
    pub(crate) fn new() -> Self {
        Self {
            inner: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }

    /// Sets the gauge. No-op while telemetry is disabled.
    pub fn set(&self, v: f64) {
        if enabled() {
            self.inner.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.inner.load(Ordering::Relaxed))
    }
}

/// Log-spaced latency bucket upper bounds in seconds: 1–2.5–5 per decade
/// from 1 µs to 100 s (every duration a training epoch, a checkpoint
/// write, or a serve query can plausibly take lands in an informative
/// bucket; everything slower goes to the implicit `+Inf` bucket).
pub fn latency_boundaries() -> Vec<f64> {
    let mut b = Vec::with_capacity(25);
    for exp in -6..2 {
        let decade = 10f64.powi(exp);
        b.extend([decade, 2.5 * decade, 5.0 * decade]);
    }
    b.push(100.0);
    b
}

/// Decade bucket upper bounds for generic magnitudes (gradient norms,
/// byte sizes): powers of ten from 1e-9 to 1e9.
pub fn magnitude_boundaries() -> Vec<f64> {
    (-9..=9).map(|e| 10f64.powi(e)).collect()
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Strictly increasing bucket upper bounds. Bucket `i` covers
    /// `(boundaries[i-1], boundaries[i]]` (bucket 0 is `(-inf, b0]`);
    /// one extra implicit bucket covers `(b_last, +inf)` — so every
    /// finite value lands in exactly one of `boundaries.len() + 1`
    /// buckets. NaN is counted in the overflow bucket.
    boundaries: Vec<f64>,
    /// One count per bucket, plus the overflow bucket at the end.
    counts: Vec<AtomicU64>,
    /// Sum of recorded values, as f64 bits, updated by CAS.
    sum_bits: AtomicU64,
    /// Number of recorded values.
    count: AtomicU64,
}

/// A fixed-boundary histogram with atomic bucket counts plus a running
/// sum and count (for means), in the Prometheus cumulative-bucket model.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramCore>,
}

impl Histogram {
    pub(crate) fn new(boundaries: Vec<f64>) -> Self {
        debug_assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing"
        );
        let counts = (0..=boundaries.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramCore {
                boundaries,
                counts,
                sum_bits: AtomicU64::new(0f64.to_bits()),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Index of the bucket `v` falls in: the first boundary `>= v`, or
    /// the overflow bucket (`boundaries.len()`) when none is (this is
    /// also where NaN goes).
    pub fn bucket_index(&self, v: f64) -> usize {
        crate::quantile::bucket_index(&self.inner.boundaries, v)
    }

    /// Records one observation. No-op while telemetry is disabled.
    pub fn observe(&self, v: f64) {
        if !enabled() {
            return;
        }
        let idx = self.bucket_index(v);
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The configured bucket upper bounds (excluding the implicit
    /// `+Inf` overflow bucket).
    pub fn boundaries(&self) -> &[f64] {
        &self.inner.boundaries
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_record_only_when_enabled() {
        let _guard = crate::test_flag_lock();
        let c = Counter::new();
        let g = Gauge::new();
        crate::set_enabled(false);
        c.inc();
        g.set(3.5);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        crate::set_enabled(true);
        c.inc();
        c.add(4);
        g.set(3.5);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 3.5);
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_buckets_cover_the_line() {
        let _guard = crate::test_flag_lock();
        crate::set_enabled(true);
        let h = Histogram::new(vec![1.0, 10.0, 100.0]);
        // (-inf, 1], (1, 10], (10, 100], (100, inf)
        assert_eq!(h.bucket_index(-5.0), 0);
        assert_eq!(h.bucket_index(1.0), 0);
        assert_eq!(h.bucket_index(1.0000001), 1);
        assert_eq!(h.bucket_index(10.0), 1);
        assert_eq!(h.bucket_index(55.0), 2);
        assert_eq!(h.bucket_index(100.0), 2);
        assert_eq!(h.bucket_index(1e9), 3);
        assert_eq!(h.bucket_index(f64::NAN), 3);
        for v in [0.5, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), vec![1, 1, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 555.5).abs() < 1e-9);
        crate::set_enabled(false);
    }

    #[test]
    fn latency_boundaries_are_strictly_increasing() {
        let b = latency_boundaries();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b.first().copied(), Some(1e-6));
        assert_eq!(b.last().copied(), Some(100.0));
        let m = magnitude_boundaries();
        assert!(m.windows(2).all(|w| w[0] < w[1]));
    }
}
