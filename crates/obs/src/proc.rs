//! Process-level resource probes.
//!
//! Peak resident set size is the honest memory number for a build or
//! training run: it is monotone over the process lifetime, so reading it
//! after a phase bounds every transient allocation inside that phase —
//! exactly what the scaling benches and the `scale_smoke` sys test need
//! to show the grid join never materializes an all-pairs intermediate.

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable (non-Linux
/// hosts) or unparseable. The value is a high-water mark — deltas between
/// two reads bound the *growth* a phase caused, not its absolute
/// footprint — but consecutive reads may jitter by a few pages in either
/// direction: the kernel folds per-thread RSS counters into the mark
/// lazily, so treat differences below ~1 MiB as noise.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm_bytes(&status)
}

/// Parses the `VmHWM:` line of a `/proc/<pid>/status` document. Split out
/// from the probe so the format handling is testable off-procfs.
fn parse_vm_hwm_bytes(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:    123456 kB`.
    let kb: u64 = line
        .strip_prefix("VmHWM:")?
        .trim()
        .strip_suffix("kB")
        .map(str::trim)?
        .parse()
        .ok()?;
    kb.checked_mul(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_canonical_status_document() {
        let status = "Name:\tsarn\nVmPeak:\t  999999 kB\nVmHWM:\t  123456 kB\nVmRSS:\t  100 kB\n";
        assert_eq!(parse_vm_hwm_bytes(status), Some(123_456 * 1024));
    }

    #[test]
    fn rejects_missing_or_malformed_lines() {
        assert_eq!(parse_vm_hwm_bytes(""), None);
        assert_eq!(parse_vm_hwm_bytes("VmRSS:\t 100 kB\n"), None);
        assert_eq!(parse_vm_hwm_bytes("VmHWM:\t not-a-number kB\n"), None);
        assert_eq!(parse_vm_hwm_bytes("VmHWM:\t 100 MB\n"), None);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn live_probe_reports_a_plausible_peak() {
        let peak = peak_rss_bytes().expect("procfs should exist on Linux");
        // A running test binary holds at least 1 MiB and (sanity bound)
        // under 1 TiB.
        assert!(peak > 1 << 20, "peak {peak} implausibly small");
        assert!(peak < 1 << 40, "peak {peak} implausibly large");
    }

    #[test]
    fn consecutive_reads_agree_within_accounting_slack() {
        let (Some(a), Some(b)) = (peak_rss_bytes(), peak_rss_bytes()) else {
            return; // non-Linux: nothing to check
        };
        // The mark is monotone up to the kernel's lazy per-thread RSS
        // folding; back-to-back reads must agree within that slack.
        assert!(a.abs_diff(b) < 1 << 20, "reads {a} and {b} diverged");
    }
}
