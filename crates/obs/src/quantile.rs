//! Quantile estimation over fixed-boundary histogram buckets.
//!
//! One shared implementation of the Prometheus-style cumulative-bucket
//! walk with linear interpolation, used by the serving router's hedge
//! trigger (p99 of shard latency) and by the load generator's reported
//! p50/p99 — so the number an operator reads off a benchmark table is
//! computed by exactly the code that decides when to hedge.
//!
//! These are free functions over plain slices (not [`crate::Histogram`]
//! methods) on purpose: the router must estimate quantiles even while
//! telemetry is disabled, and [`crate::Histogram`] recording is gated
//! on [`crate::enabled`].

/// Index of the bucket `v` falls in for strictly increasing upper
/// `boundaries`: the first boundary `>= v`, or the overflow bucket
/// (`boundaries.len()`) when every boundary is below `v` — which is
/// also where NaN goes. Bucket `i` covers `(boundaries[i-1],
/// boundaries[i]]`, bucket 0 covers `(-inf, boundaries[0]]`.
pub fn bucket_index(boundaries: &[f64], v: f64) -> usize {
    if v.is_nan() {
        return boundaries.len();
    }
    boundaries.partition_point(|&b| b < v)
}

/// Estimates the `q`-quantile (`0.0..=1.0`) of the distribution held in
/// histogram buckets: `counts` has one entry per boundary plus the
/// trailing overflow bucket (`counts.len() == boundaries.len() + 1`).
///
/// The estimate walks the cumulative counts to the bucket containing
/// the quantile rank and interpolates linearly inside it (bucket 0
/// interpolates from 0.0; the overflow bucket clamps to the last
/// boundary, as Prometheus' `histogram_quantile` does). Returns `None`
/// when the histogram is empty or the shapes disagree.
pub fn quantile_from_buckets(boundaries: &[f64], counts: &[u64], q: f64) -> Option<f64> {
    if counts.len() != boundaries.len() + 1 || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return None;
    }
    // 1-based rank of the quantile observation, clamped into [1, total].
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let next = seen + c;
        if rank <= next {
            if i == boundaries.len() {
                // Overflow bucket: no upper bound to interpolate toward.
                return boundaries.last().copied();
            }
            let lower = if i == 0 { 0.0 } else { boundaries[i - 1] };
            let upper = boundaries[i];
            let into = (rank - seen) as f64 / c as f64;
            return Some(lower + (upper - lower) * into);
        }
        seen = next;
    }
    boundaries.last().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_the_histogram_convention() {
        let b = [1.0, 10.0, 100.0];
        assert_eq!(bucket_index(&b, -5.0), 0);
        assert_eq!(bucket_index(&b, 1.0), 0);
        assert_eq!(bucket_index(&b, 1.0001), 1);
        assert_eq!(bucket_index(&b, 100.0), 2);
        assert_eq!(bucket_index(&b, 1e9), 3);
        assert_eq!(bucket_index(&b, f64::NAN), 3);
    }

    #[test]
    fn empty_and_misshapen_inputs_yield_none() {
        let b = [1.0, 2.0];
        assert_eq!(quantile_from_buckets(&b, &[0, 0, 0], 0.5), None);
        assert_eq!(quantile_from_buckets(&b, &[1, 1], 0.5), None); // wrong shape
        assert_eq!(quantile_from_buckets(&b, &[1, 1, 1], 1.5), None); // bad q
    }

    #[test]
    fn point_mass_lands_in_its_bucket() {
        // All mass in (1, 2]: every quantile interpolates inside it.
        let b = [1.0, 2.0, 3.0];
        let counts = [0, 10, 0, 0];
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = quantile_from_buckets(&b, &counts, q).expect("non-empty");
            assert!((1.0..=2.0).contains(&v), "q={q} -> {v}");
        }
        assert_eq!(quantile_from_buckets(&b, &counts, 1.0), Some(2.0));
    }

    #[test]
    fn uniform_mass_interpolates_linearly() {
        // 100 observations spread evenly over (0, 1]: p50 = 0.5, p99 = 0.99.
        let b = [1.0];
        let counts = [100, 0];
        let p50 = quantile_from_buckets(&b, &counts, 0.5).expect("p50");
        let p99 = quantile_from_buckets(&b, &counts, 0.99).expect("p99");
        assert!((p50 - 0.5).abs() < 1e-9, "p50 = {p50}");
        assert!((p99 - 0.99).abs() < 1e-9, "p99 = {p99}");
    }

    #[test]
    fn two_bucket_median_sits_at_the_shared_boundary() {
        // Half the mass in (0,1], half in (1,2]: the median is the
        // boundary between them.
        let b = [1.0, 2.0];
        let counts = [50, 50, 0];
        let p50 = quantile_from_buckets(&b, &counts, 0.5).expect("p50");
        assert!((p50 - 1.0).abs() < 1e-9, "p50 = {p50}");
        let p75 = quantile_from_buckets(&b, &counts, 0.75).expect("p75");
        assert!((p75 - 1.5).abs() < 1e-9, "p75 = {p75}");
    }

    #[test]
    fn overflow_mass_clamps_to_the_last_boundary() {
        let b = [1.0, 2.0];
        let counts = [10, 0, 90];
        assert_eq!(quantile_from_buckets(&b, &counts, 0.99), Some(2.0));
        // But quantiles inside the finite range still interpolate.
        let p05 = quantile_from_buckets(&b, &counts, 0.05).expect("p05");
        assert!((0.0..=1.0).contains(&p05));
    }

    #[test]
    fn skewed_distribution_matches_hand_computed_p99() {
        // 990 fast (0..=1ms], 10 slow in (10ms, 25ms]: rank 990 of 1000
        // is the last fast observation -> exactly the 1ms boundary.
        let b = [0.001, 0.01, 0.025];
        let counts = [990, 0, 10, 0];
        let p99 = quantile_from_buckets(&b, &counts, 0.99).expect("p99");
        assert!((p99 - 0.001).abs() < 1e-12, "p99 = {p99}");
        // One more rank into the tail bucket interpolates into it.
        let p995 = quantile_from_buckets(&b, &counts, 0.995).expect("p995");
        assert!((0.01..=0.025).contains(&p995), "p995 = {p995}");
    }
}
