//! The process-wide metric registry.
//!
//! Names are interned once: the first `counter("x")` call creates the
//! metric, every later call returns a clone of the same handle. Callers
//! cache the handle in a `static OnceLock` (the [`crate::span!`] macro
//! does this for you), so the registry's mutex is touched only during
//! setup — never on the recording hot path.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::metrics::{latency_boundaries, Counter, Gauge, Histogram};

#[derive(Clone, Debug)]
enum MetricEntry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl MetricEntry {
    fn kind(&self) -> &'static str {
        match self {
            MetricEntry::Counter(_) => "counter",
            MetricEntry::Gauge(_) => "gauge",
            MetricEntry::Histogram(_) => "histogram",
        }
    }
}

/// A point-in-time copy of one histogram's state.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds (the overflow bucket is implicit).
    pub boundaries: Vec<f64>,
    /// Per-bucket counts; one longer than `boundaries` (overflow last).
    pub counts: Vec<u64>,
    /// Sum of recorded values.
    pub sum: f64,
    /// Number of recorded values.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (`0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimated `q`-quantile of the recorded values (`None` when
    /// empty) — the shared cumulative-bucket walk of
    /// [`crate::quantile_from_buckets`].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        crate::quantile_from_buckets(&self.boundaries, &self.counts, q)
    }
}

/// A point-in-time copy of every registered metric, sorted by name —
/// the input to both exporters and the `metrics` field of the serving
/// health report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram's state.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Value of a counter, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of a gauge, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// State of a histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// The process-wide registry of named metrics.
pub struct Registry {
    metrics: Mutex<BTreeMap<String, MetricEntry>>,
}

impl Registry {
    fn new() -> Self {
        Self {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(Registry::new)
    }

    fn resolve(
        &self,
        name: &str,
        make: impl FnOnce() -> MetricEntry,
        pick: impl FnOnce(&MetricEntry) -> Option<MetricEntry>,
    ) -> MetricEntry {
        let mut map = self
            .metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let entry = map.entry(name.to_string()).or_insert_with(make);
        match pick(entry) {
            Some(handle) => handle,
            // A name registered under two kinds is a programming error
            // that would corrupt the export; fail loudly at setup time
            // (never on the hot path — handles are resolved once).
            None => panic!(
                "metric `{name}` already registered as a {}, requested as a different kind",
                entry.kind()
            ),
        }
    }

    /// The counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let entry = self.resolve(
            name,
            || MetricEntry::Counter(Counter::new()),
            |e| match e {
                MetricEntry::Counter(c) => Some(MetricEntry::Counter(c.clone())),
                _ => None,
            },
        );
        match entry {
            MetricEntry::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let entry = self.resolve(
            name,
            || MetricEntry::Gauge(Gauge::new()),
            |e| match e {
                MetricEntry::Gauge(g) => Some(MetricEntry::Gauge(g.clone())),
                _ => None,
            },
        );
        match entry {
            MetricEntry::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// The histogram named `name` with the default log-spaced latency
    /// buckets (see [`latency_boundaries`]), creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, latency_boundaries())
    }

    /// The histogram named `name` with explicit bucket upper bounds
    /// (used on first creation; later calls return the existing
    /// histogram regardless of `boundaries`).
    pub fn histogram_with(&self, name: &str, boundaries: Vec<f64>) -> Histogram {
        let entry = self.resolve(
            name,
            || MetricEntry::Histogram(Histogram::new(boundaries)),
            |e| match e {
                MetricEntry::Histogram(h) => Some(MetricEntry::Histogram(h.clone())),
                _ => None,
            },
        );
        match entry {
            MetricEntry::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Copies every metric's current value. Bucket counts and the
    /// histogram totals are read without a global pause, so a snapshot
    /// taken during concurrent recording can be mid-observation by one
    /// count — each individual value is still coherent.
    pub fn snapshot(&self) -> Snapshot {
        let map = self
            .metrics
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let mut snap = Snapshot::default();
        for (name, entry) in map.iter() {
            match entry {
                MetricEntry::Counter(c) => snap.counters.push((name.clone(), c.get())),
                MetricEntry::Gauge(g) => snap.gauges.push((name.clone(), g.get())),
                MetricEntry::Histogram(h) => snap.histograms.push(HistogramSnapshot {
                    name: name.clone(),
                    boundaries: h.boundaries().to_vec(),
                    counts: h.bucket_counts(),
                    sum: h.sum(),
                    count: h.count(),
                }),
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_returns_the_same_metric() {
        let _guard = crate::test_flag_lock();
        crate::set_enabled(true);
        let r = Registry::global();
        let a = r.counter("obs_test_interned_total");
        let b = r.counter("obs_test_interned_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), b.get());
        assert!(a.get() >= 2);
        crate::set_enabled(false);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics_at_setup() {
        let r = Registry::global();
        let _ = r.counter("obs_test_kind_clash");
        let _ = r.gauge("obs_test_kind_clash");
    }

    #[test]
    fn snapshot_sees_registered_metrics() {
        let _guard = crate::test_flag_lock();
        crate::set_enabled(true);
        let r = Registry::global();
        r.counter("obs_test_snap_total").add(7);
        r.gauge("obs_test_snap_gauge").set(2.5);
        r.histogram("obs_test_snap_seconds").observe(0.25);
        let s = r.snapshot();
        assert!(s.counter("obs_test_snap_total").is_some_and(|v| v >= 7));
        assert_eq!(s.gauge("obs_test_snap_gauge"), Some(2.5));
        let h = s.histogram("obs_test_snap_seconds").expect("histogram");
        assert!(h.count >= 1);
        assert_eq!(h.counts.len(), h.boundaries.len() + 1);
        assert!(h.mean() > 0.0);
        crate::set_enabled(false);
    }
}
