//! RAII span timers feeding histograms.

use std::time::Instant;

use crate::metrics::Histogram;

/// An RAII timer: created against a histogram, records the elapsed
/// seconds into it on drop. With telemetry disabled, construction takes
/// no timestamp and drop records nothing — cheap enough for per-batch
/// use in the training loop.
///
/// Usually created via the [`crate::span!`] macro, which also interns
/// the histogram once:
///
/// ```
/// let _epoch = sarn_obs::span!("demo_epoch_seconds");
/// // ... timed work ...
/// ```
#[must_use = "a span records on drop; binding it to `_name` keeps it alive for the timed scope"]
pub struct Span {
    timed: Option<(Histogram, Instant)>,
}

impl Span {
    /// Starts a span against `hist` (no-op when telemetry is disabled).
    pub fn enter(hist: &Histogram) -> Span {
        Span {
            timed: crate::enabled().then(|| (hist.clone(), Instant::now())),
        }
    }

    /// A span that records nothing (for conditionally timed paths).
    pub fn noop() -> Span {
        Span { timed: None }
    }

    /// Elapsed seconds so far (`None` for a no-op span).
    pub fn elapsed_seconds(&self) -> Option<f64> {
        self.timed
            .as_ref()
            .map(|(_, t0)| t0.elapsed().as_secs_f64())
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, t0)) = self.timed.take() {
            hist.observe(t0.elapsed().as_secs_f64());
        }
    }
}

/// Starts an RAII [`Span`] against the named histogram (default latency
/// buckets), interning the handle once per call site.
#[macro_export]
macro_rules! span {
    ($name:expr) => {{
        static __SARN_OBS_HIST: ::std::sync::OnceLock<$crate::Histogram> =
            ::std::sync::OnceLock::new();
        $crate::Span::enter(
            __SARN_OBS_HIST.get_or_init(|| $crate::Registry::global().histogram($name)),
        )
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_elapsed_time_into_the_histogram() {
        let _guard = crate::test_flag_lock();
        crate::set_enabled(true);
        let h = crate::Registry::global().histogram("obs_test_span_seconds");
        let before = h.count();
        {
            let s = Span::enter(&h);
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(s.elapsed_seconds().is_some_and(|t| t >= 0.002));
        }
        assert_eq!(h.count(), before + 1);
        assert!(h.sum() >= 0.002);
        crate::set_enabled(false);
    }

    #[test]
    fn span_macro_interns_and_noop_records_nothing() {
        let _guard = crate::test_flag_lock();
        crate::set_enabled(true);
        {
            let _s = crate::span!("obs_test_span_macro_seconds");
        }
        let h = crate::Registry::global().histogram("obs_test_span_macro_seconds");
        assert!(h.count() >= 1);
        let before = h.count();
        {
            let s = Span::noop();
            assert!(s.elapsed_seconds().is_none());
        }
        assert_eq!(h.count(), before);
        crate::set_enabled(false);
    }
}
