//! Exports must be atomic: a reader polling the export directory while
//! a writer re-exports in a loop must never observe a partial file —
//! every read either finds no file yet or a complete, parseable one.

use std::sync::atomic::{AtomicBool, Ordering};

use sarn_obs::{export_all, parse_prometheus, validate_json, Registry, JSON_FILE, PROMETHEUS_FILE};

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sarn_obs_torn_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_reads_never_see_a_torn_export() {
    sarn_obs::set_enabled(true);
    let c = Registry::global().counter("obs_torn_writes_total");
    let h = Registry::global().histogram("obs_torn_seconds");
    let dir = scratch_dir("rw");
    let stop = &AtomicBool::new(false);

    std::thread::scope(|s| {
        let reader_dir = dir.clone();
        let reader = s.spawn(move || {
            let mut json_reads = 0u32;
            let mut prom_reads = 0u32;
            while !stop.load(Ordering::Relaxed) {
                if let Ok(text) = std::fs::read_to_string(reader_dir.join(JSON_FILE)) {
                    validate_json(&text).expect("JSON export read mid-rewrite must be complete");
                    json_reads += 1;
                }
                if let Ok(text) = std::fs::read_to_string(reader_dir.join(PROMETHEUS_FILE)) {
                    parse_prometheus(&text)
                        .expect("Prometheus export read mid-rewrite must be complete");
                    prom_reads += 1;
                }
            }
            (json_reads, prom_reads)
        });

        for i in 0..200 {
            c.inc();
            h.observe(i as f64 * 1e-4);
            export_all(&dir).expect("export");
        }
        stop.store(true, Ordering::Relaxed);
        let (json_reads, prom_reads) = reader.join().expect("reader thread");
        // The loop is long enough that the reader overlaps many rewrites.
        assert!(json_reads > 0, "reader never observed the JSON export");
        assert!(
            prom_reads > 0,
            "reader never observed the Prometheus export"
        );
    });

    // No temporary sibling files left behind.
    for entry in std::fs::read_dir(&dir).expect("export dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(!name.contains(".tmp"), "leftover temp file: {name}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exports_parse_and_roundtrip_key_series() {
    sarn_obs::set_enabled(true);
    Registry::global()
        .counter("obs_torn_roundtrip_total")
        .add(3);
    let dir = scratch_dir("roundtrip");
    export_all(&dir).expect("export");
    let prom = std::fs::read_to_string(dir.join(PROMETHEUS_FILE)).expect("prom file");
    let samples = parse_prometheus(&prom).expect("parse prom");
    assert!(samples
        .iter()
        .any(|s| s.name == "obs_torn_roundtrip_total" && s.value >= 3.0));
    let json = std::fs::read_to_string(dir.join(JSON_FILE)).expect("json file");
    validate_json(&json).expect("valid json");
    assert!(json.contains("obs_torn_roundtrip_total"));
    let _ = std::fs::remove_dir_all(&dir);
}
