//! Property-based tests on the histogram bucket model and concurrent
//! recording guarantees.

use proptest::prelude::*;
use sarn_obs::{latency_boundaries, magnitude_boundaries, Registry};

/// A value strategy spanning many decades on both sides of zero, plus
/// exact boundary values (the edge case the bucket model must get
/// right: upper bounds are inclusive).
fn wide_value() -> impl Strategy<Value = f64> {
    (-320i32..320, -1000i64..1000).prop_map(|(exp, mant)| {
        let m = mant as f64 / 1000.0;
        m * 10f64.powi(exp / 10)
    })
}

proptest! {
    #[test]
    fn every_finite_value_lands_in_exactly_one_bucket(v in wide_value()) {
        for boundaries in [latency_boundaries(), magnitude_boundaries()] {
            let n = boundaries.len();
            let h = Registry::global().histogram_with(
                // A throwaway name per boundary set; interning returns the
                // same histogram each proptest case, which is fine — we
                // only use `bucket_index` here.
                if n == latency_boundaries().len() { "obs_prop_latency" } else { "obs_prop_magnitude" },
                boundaries.clone(),
            );
            let idx = h.bucket_index(v);
            prop_assert!(idx <= n, "index {idx} out of range for {n} boundaries");
            // The chosen bucket really covers `v`: above the previous
            // boundary (if any), at or below its own (unless overflow).
            if idx > 0 {
                prop_assert!(v > boundaries[idx - 1], "{v} <= lower bound {}", boundaries[idx - 1]);
            }
            if idx < n {
                prop_assert!(v <= boundaries[idx], "{v} > upper bound {}", boundaries[idx]);
            } else {
                prop_assert!(n == 0 || v > boundaries[n - 1]);
            }
            // And no other bucket claims it: the cover conditions above
            // pin `idx` uniquely because boundaries are strictly
            // increasing.
        }
    }

    #[test]
    fn boundary_values_are_inclusive_upper_bounds(i in 0usize..24) {
        let boundaries = latency_boundaries();
        let h = Registry::global().histogram_with("obs_prop_latency", boundaries.clone());
        let b = boundaries[i];
        prop_assert_eq!(h.bucket_index(b), i);
        prop_assert_eq!(h.bucket_index(b * (1.0 + 1e-12)), i + 1);
    }
}

#[test]
fn nan_goes_to_the_overflow_bucket() {
    let boundaries = latency_boundaries();
    let h = Registry::global().histogram_with("obs_prop_latency", boundaries.clone());
    assert_eq!(h.bucket_index(f64::NAN), boundaries.len());
    assert_eq!(h.bucket_index(f64::INFINITY), boundaries.len());
    assert_eq!(h.bucket_index(f64::NEG_INFINITY), 0);
}

/// Four threads hammer one histogram; afterwards the bucket counts must
/// sum to the total count and the sum must equal the exact expected
/// total (every recorded value is an integer, so f64 addition is exact
/// regardless of interleaving).
#[test]
fn concurrent_recording_keeps_sum_and_count_consistent() {
    sarn_obs::set_enabled(true);
    let h = Registry::global()
        .histogram_with("obs_prop_concurrent", vec![4.0, 16.0, 64.0, 256.0, 1024.0]);
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 5_000;
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = h.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Deterministic spread across buckets.
                    h.observe(((t * PER_THREAD + i) % 1500) as f64);
                }
            });
        }
    });
    sarn_obs::set_enabled(false);
    let total = THREADS * PER_THREAD;
    assert_eq!(h.count(), total);
    assert_eq!(h.bucket_counts().iter().sum::<u64>(), total);
    let expected: f64 = (0..total).map(|i| (i % 1500) as f64).sum();
    assert_eq!(h.sum(), expected, "f64 integer additions commute exactly");
}
