//! Deterministic fork-join runtime for the SARN hot path.
//!
//! The registry mirror is unreachable in this build environment, so rayon
//! cannot be pulled in; this crate provides the fork-join subset SARN needs
//! on top of [`std::thread::scope`]. Worker threads are spawned per call
//! rather than pooled — for the millisecond-scale kernels in the training
//! loop the spawn cost is noise, and scoped threads keep every primitive
//! safe (no `unsafe`, no lifetime laundering).
//!
//! Every primitive is **deterministic by construction**: work is split into
//! contiguous blocks, each output element is written by exactly one thread,
//! and within a block the iteration order is identical to the serial loop.
//! Results therefore match the serial path bit-for-bit at any thread count.
//!
//! The thread count is a process-wide knob ([`set_num_threads`]) because it
//! has to reach deep into `sarn-tensor` ops that have no config parameter.
//! `0` defers to `RAYON_NUM_THREADS` (kept for familiarity) and then to the
//! machine; `1` — the default — is the serial path.
//!
//! A second process-wide knob, [`set_reduction_order`], selects between the
//! bit-exact scalar kernels ([`ReductionOrder::Reference`], the default) and
//! the SIMD-friendly blocked kernels ([`ReductionOrder::Fast`]) in
//! `sarn-tensor`. It lives here so the blocking dispatch composes with the
//! deterministic row partitioning above: both modes split work into the same
//! contiguous chunks; only the in-chunk association differs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Requested thread count; `0` means "resolve automatically".
static REQUESTED: AtomicUsize = AtomicUsize::new(1);

/// Current [`ReductionOrder`] as its `as usize` discriminant.
static REDUCTION: AtomicUsize = AtomicUsize::new(ReductionOrder::Reference as usize);

/// How the compute kernels may associate floating-point reductions.
///
/// The thread backend never reorders accumulation — parallel runs are
/// bit-identical to serial ones in *both* modes. What `Fast` relaxes is the
/// *serial* association: a kernel may split a sum across SIMD-lane
/// accumulators or cache blocks and combine the partials in a fixed but
/// different order. `Fast` results are therefore deterministic (same input
/// and thread count ⇒ same bits, and thread count still does not matter)
/// but not bitwise comparable to `Reference` — only numerically close.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReductionOrder {
    /// Scalar left-to-right accumulation: bit-identical to the original
    /// scalar kernels at every thread count. The bitwise-determinism
    /// suites (resume, parallel equivalence, obs invisibility) run here.
    #[default]
    Reference,
    /// Blocked/multi-accumulator kernels that the compiler can
    /// autovectorize. Re-associates sums, so it trades cross-mode bitwise
    /// identity for speed while staying self-deterministic.
    Fast,
}

impl ReductionOrder {
    /// Parses the conventional knob spelling (case-insensitive
    /// `"reference"`/`"fast"`); anything else is `None`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "reference" | "ref" => Some(Self::Reference),
            "fast" => Some(Self::Fast),
            _ => None,
        }
    }

    /// Reads `SARN_REDUCTION_ORDER` from the environment, defaulting to
    /// `Reference` when unset or unparseable.
    pub fn from_env() -> Self {
        std::env::var("SARN_REDUCTION_ORDER")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Stable lowercase label (`"reference"` / `"fast"`), the inverse of
    /// [`ReductionOrder::parse`].
    pub fn label(self) -> &'static str {
        match self {
            Self::Reference => "reference",
            Self::Fast => "fast",
        }
    }
}

/// Sets the process-wide reduction order. Like [`set_num_threads`] this is
/// a global knob because it has to reach tensor kernels that take no config
/// parameter; training sets it from `SarnConfig` at run start.
pub fn set_reduction_order(order: ReductionOrder) {
    REDUCTION.store(order as usize, Ordering::SeqCst);
}

/// The reduction order kernels should currently use.
pub fn reduction_order() -> ReductionOrder {
    if REDUCTION.load(Ordering::SeqCst) == ReductionOrder::Fast as usize {
        ReductionOrder::Fast
    } else {
        ReductionOrder::Reference
    }
}

/// Sets the process-wide thread count: `0` = automatic (the
/// `RAYON_NUM_THREADS` environment variable, then the machine's available
/// parallelism), `1` = serial, `n` = exactly `n` workers.
pub fn set_num_threads(n: usize) {
    REQUESTED.store(n, Ordering::SeqCst);
}

/// The resolved thread count the primitives will use (always ≥ 1).
pub fn num_threads() -> usize {
    match REQUESTED.load(Ordering::SeqCst) {
        0 => auto_threads(),
        n => n,
    }
}

fn auto_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Runs both closures, concurrently when more than one thread is configured,
/// and returns both results. `a` runs on the calling thread.
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    if num_threads() <= 1 {
        let ra = a();
        let rb = b();
        (ra, rb)
    } else {
        std::thread::scope(|s| {
            let hb = s.spawn(b);
            let ra = a();
            (ra, hb.join().expect("sarn-par: joined task panicked"))
        })
    }
}

/// Splits `data` into at most [`num_threads`] contiguous chunks — each a
/// multiple of `align` elements long — and calls `f(offset, chunk)` on every
/// chunk, concurrently. Falls back to one serial `f(0, data)` call when only
/// one thread is configured or `data` is shorter than `min_len`.
///
/// `align` keeps logical rows intact: pass the row width to guarantee no
/// row straddles a chunk boundary. `data.len()` must be a multiple of
/// `align`. Each element is written by exactly one thread, so the result is
/// identical to the serial call for any thread count.
pub fn par_chunks_mut<T, F>(data: &mut [T], align: usize, min_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(align > 0, "sarn-par: align must be positive");
    assert_eq!(
        data.len() % align,
        0,
        "sarn-par: data length {} is not a multiple of align {align}",
        data.len()
    );
    let threads = num_threads();
    if threads <= 1 || data.len() <= min_len.max(align) {
        f(0, data);
        return;
    }
    let groups = data.len() / align;
    let per = groups.div_ceil(threads) * align;
    std::thread::scope(|s| {
        let f = &f;
        let mut offset = 0;
        for chunk in data.chunks_mut(per) {
            let start = offset;
            offset += chunk.len();
            s.spawn(move || f(start, chunk));
        }
    });
}

/// Splits `0..n` into at most [`num_threads`] contiguous ranges and maps
/// each through `f`, returning the per-range results **in range order** so
/// that concatenating them reproduces the serial left-to-right result.
/// Falls back to a single `f(0..n)` call when one thread is configured or
/// `n <= min_per_call`.
pub fn par_ranges<R, F>(n: usize, min_per_call: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let threads = num_threads();
    if threads <= 1 || n <= min_per_call {
        return vec![f(0..n)];
    }
    let per = n.div_ceil(threads).max(1);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..n)
            .step_by(per)
            .map(|start| {
                let end = (start + per).min(n);
                s.spawn(move || f(start..end))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sarn-par: ranged task panicked"))
            .collect()
    })
}

/// [`par_ranges`] for map-producing callers: splits `0..n` into contiguous
/// ranges, maps each through `f` (which returns a `Vec` of items), and
/// concatenates the per-range vectors **in range order** — so the result is
/// element-for-element identical to the serial `f(0..n)` call at any thread
/// count. This is the shape of every deterministic emit-style scan in the
/// workspace (the `A^s` spatial joins emit edges this way).
pub fn par_flat_ranges<T, F>(n: usize, min_per_call: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let mut parts = par_ranges(n, min_per_call, f);
    if parts.len() == 1 {
        return parts.pop().unwrap_or_default();
    }
    let total = parts.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for part in parts {
        out.extend(part);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The thread-count knob is process-global; tests that touch it must
    /// not interleave.
    static KNOB: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = KNOB.lock().unwrap();
        set_num_threads(n);
        let r = f();
        set_num_threads(1);
        r
    }

    #[test]
    fn resolved_count_is_positive() {
        with_threads(0, || assert!(num_threads() >= 1));
        with_threads(3, || assert_eq!(num_threads(), 3));
    }

    #[test]
    fn join_returns_both_results_at_any_count() {
        for n in [1, 4] {
            let (a, b) = with_threads(n, || join(|| 2 + 2, || "ok"));
            assert_eq!((a, b), (4, "ok"));
        }
    }

    #[test]
    fn par_chunks_mut_covers_every_element_once() {
        for threads in [1, 2, 4, 7] {
            let mut data = vec![0u32; 103 * 3];
            with_threads(threads, || {
                par_chunks_mut(&mut data, 3, 0, |offset, chunk| {
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x += (offset + i) as u32;
                    }
                });
            });
            let expect: Vec<u32> = (0..103 * 3).collect();
            assert_eq!(data, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_chunks_mut_respects_alignment() {
        let cols = 5;
        for threads in [2, 4] {
            let mut data = vec![0usize; 17 * cols];
            with_threads(threads, || {
                par_chunks_mut(&mut data, cols, 0, |offset, chunk| {
                    assert_eq!(offset % cols, 0);
                    assert_eq!(chunk.len() % cols, 0);
                    chunk.fill(1);
                });
            });
            assert!(data.iter().all(|&x| x == 1));
        }
    }

    #[test]
    fn par_ranges_concatenates_in_serial_order() {
        for threads in [1, 2, 4, 9] {
            let parts = with_threads(threads, || {
                par_ranges(100, 0, |r| r.collect::<Vec<usize>>())
            });
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..100).collect::<Vec<_>>(), "threads = {threads}");
        }
    }

    #[test]
    fn reduction_order_round_trips_through_the_knob() {
        let _guard = KNOB.lock().unwrap();
        assert_eq!(reduction_order(), ReductionOrder::Reference);
        set_reduction_order(ReductionOrder::Fast);
        assert_eq!(reduction_order(), ReductionOrder::Fast);
        set_reduction_order(ReductionOrder::Reference);
        assert_eq!(reduction_order(), ReductionOrder::Reference);
    }

    #[test]
    fn reduction_order_parsing_and_labels() {
        assert_eq!(
            ReductionOrder::parse("reference"),
            Some(ReductionOrder::Reference)
        );
        assert_eq!(
            ReductionOrder::parse("REF"),
            Some(ReductionOrder::Reference)
        );
        assert_eq!(ReductionOrder::parse("Fast"), Some(ReductionOrder::Fast));
        assert_eq!(ReductionOrder::parse("simd"), None);
        for o in [ReductionOrder::Reference, ReductionOrder::Fast] {
            assert_eq!(ReductionOrder::parse(o.label()), Some(o));
        }
    }

    #[test]
    fn par_flat_ranges_matches_serial_concatenation() {
        for threads in [1, 2, 4, 9] {
            let flat = with_threads(threads, || {
                par_flat_ranges(100, 0, |r| r.map(|i| i * 3).collect::<Vec<usize>>())
            });
            let expect: Vec<usize> = (0..100).map(|i| i * 3).collect();
            assert_eq!(flat, expect, "threads = {threads}");
        }
        // Empty domain yields an empty vector, not a panic.
        assert_eq!(
            par_flat_ranges(0, 0, |r| r.collect::<Vec<usize>>()),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn small_inputs_stay_serial() {
        with_threads(4, || {
            let parts = par_ranges(10, 100, |r| r.len());
            assert_eq!(parts, vec![10], "expected a single serial call");
        });
    }
}
