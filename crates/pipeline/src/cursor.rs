//! The crash-resumable stage cursor.
//!
//! One tiny CRC-framed file (`pipeline.cursor`, magic `SARNCRSR`)
//! records how far the pipeline has durably progressed: how many batches
//! completed end-to-end, which stage the in-flight batch last finished,
//! and the last generation the serve store admitted. It is rewritten
//! atomically (tmp + rename, the checkpoint discipline) after **every**
//! stage transition, so a killed pipeline resumes exactly where durable
//! state allows:
//!
//! - completed batches are replayed deterministically (apply + repair
//!   only — their retrain artifacts are already on disk);
//! - an in-flight batch that reached [`Stage::Exported`] skips retraining
//!   and reloads its already-exported artifact;
//! - an in-flight batch that died earlier is redone from the start —
//!   nothing it did was durable, so nothing is double-applied.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use sarn_core::checkpoint::crc32;

const MAGIC: &[u8; 8] = b"SARNCRSR";
const FORMAT_VERSION: u32 = 1;
/// magic + version + completed + stage + generation + crc.
const FILE_LEN: usize = 8 + 4 + 4 + 1 + 8 + 4;

/// How far the in-flight batch got (only stages with durable side effects
/// matter for resume; `Retrained` is recorded for telemetry but resumes
/// like `Repaired` because a trained model in memory dies with the
/// process).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Batch decoded + validated + applied to the in-memory network.
    Applied = 1,
    /// Incremental `A^t`/`A^s` repair verified.
    Repaired = 2,
    /// Warm-start retrain produced embeddings (in memory only).
    Retrained = 3,
    /// Embeddings atomically exported to `gen-<g>.emb` — durable.
    Exported = 4,
}

impl Stage {
    fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(Stage::Applied),
            2 => Some(Stage::Repaired),
            3 => Some(Stage::Retrained),
            4 => Some(Stage::Exported),
            _ => None,
        }
    }

    /// Stable lowercase label for journal events.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Applied => "applying",
            Stage::Repaired => "repairing",
            Stage::Retrained => "retraining",
            Stage::Exported => "exporting",
        }
    }
}

/// Why a cursor failed to load.
#[derive(Debug)]
pub enum CursorError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a cursor file.
    BadMagic,
    /// File shorter than the fixed frame.
    Truncated,
    /// Unknown format version.
    UnsupportedVersion(u32),
    /// CRC mismatch or an invalid stage byte.
    Corrupt(String),
}

impl std::fmt::Display for CursorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CursorError::Io(e) => write!(f, "cursor i/o: {e}"),
            CursorError::BadMagic => write!(f, "not a pipeline cursor (bad magic)"),
            CursorError::Truncated => write!(f, "cursor file truncated"),
            CursorError::UnsupportedVersion(v) => {
                write!(f, "unsupported cursor version {v}")
            }
            CursorError::Corrupt(why) => write!(f, "cursor corrupt: {why}"),
        }
    }
}

impl std::error::Error for CursorError {}

impl From<io::Error> for CursorError {
    fn from(e: io::Error) -> Self {
        CursorError::Io(e)
    }
}

/// Durable pipeline progress.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cursor {
    /// Batches fully processed (applied, retrained, exported, reloaded).
    pub completed: u32,
    /// Last durably *recorded* stage of batch `completed`, `None` when no
    /// batch is in flight.
    pub inflight: Option<Stage>,
    /// Last generation admitted by the serve store (0 = none yet).
    pub generation: u64,
}

impl Cursor {
    /// Serializes to the fixed-size frame.
    fn encode(&self) -> [u8; FILE_LEN] {
        let mut out = [0u8; FILE_LEN];
        out[..8].copy_from_slice(MAGIC);
        out[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.completed.to_le_bytes());
        out[16] = self.inflight.map_or(0, |s| s as u8);
        out[17..25].copy_from_slice(&self.generation.to_le_bytes());
        let crc = crc32(&out[8..25]);
        out[25..29].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Atomically persists the cursor: write a tmp sibling, fsync, rename.
    /// A crash at any point leaves either the old cursor or the new one —
    /// never a torn frame (and a torn tmp is caught by the CRC anyway).
    pub fn save(&self, path: &Path) -> Result<(), CursorError> {
        let tmp = sarn_core::checkpoint::tmp_sibling(path);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and verifies a cursor file.
    pub fn load(path: &Path) -> Result<Self, CursorError> {
        let bytes = fs::read(path)?;
        if bytes.len() < 8 {
            return Err(CursorError::Truncated);
        }
        if &bytes[..8] != MAGIC {
            return Err(CursorError::BadMagic);
        }
        if bytes.len() != FILE_LEN {
            return Err(CursorError::Truncated);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
        if version != FORMAT_VERSION {
            return Err(CursorError::UnsupportedVersion(version));
        }
        let stored = u32::from_le_bytes(bytes[25..29].try_into().expect("4-byte slice"));
        let computed = crc32(&bytes[8..25]);
        if stored != computed {
            return Err(CursorError::Corrupt(format!(
                "checksum mismatch (computed {computed:#010x}, stored {stored:#010x})"
            )));
        }
        let completed = u32::from_le_bytes(bytes[12..16].try_into().expect("4-byte slice"));
        let inflight = match bytes[16] {
            0 => None,
            b => Some(
                Stage::from_u8(b)
                    .ok_or_else(|| CursorError::Corrupt(format!("invalid stage byte {b}")))?,
            ),
        };
        let generation = u64::from_le_bytes(bytes[17..25].try_into().expect("8-byte slice"));
        Ok(Self {
            completed,
            inflight,
            generation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sarn-cursor-{name}-{}", std::process::id()));
        fs::create_dir_all(&dir).expect("tmp dir");
        dir.join("pipeline.cursor")
    }

    #[test]
    fn round_trips_every_stage() {
        let path = tmp("roundtrip");
        for inflight in [
            None,
            Some(Stage::Applied),
            Some(Stage::Repaired),
            Some(Stage::Retrained),
            Some(Stage::Exported),
        ] {
            let c = Cursor {
                completed: 7,
                inflight,
                generation: 42,
            };
            c.save(&path).expect("save");
            assert_eq!(Cursor::load(&path).expect("load"), c);
        }
    }

    #[test]
    fn damage_is_typed() {
        let path = tmp("damage");
        let c = Cursor {
            completed: 3,
            inflight: Some(Stage::Exported),
            generation: 9,
        };
        c.save(&path).expect("save");
        let clean = fs::read(&path).expect("read");

        fs::write(&path, b"garbage, at full frame length").expect("write");
        assert!(matches!(Cursor::load(&path), Err(CursorError::BadMagic)));

        fs::write(&path, &clean[..10]).expect("write");
        assert!(matches!(Cursor::load(&path), Err(CursorError::Truncated)));

        let mut flipped = clean.clone();
        flipped[13] ^= 0xFF;
        fs::write(&path, &flipped).expect("write");
        assert!(matches!(Cursor::load(&path), Err(CursorError::Corrupt(_))));

        assert!(matches!(
            Cursor::load(&path.with_extension("missing")),
            Err(CursorError::Io(_))
        ));
    }
}
