//! Typed network edits and their binary wire format.
//!
//! An [`EditBatch`] is the unit the pipeline applies atomically: either
//! every record in a batch decodes, validates, and applies, or none of
//! them touch the live network. The encoding is deliberately in the
//! checkpoint file's mold — magic, version, length-prefixed records, and
//! a CRC32 trailer (shared [`sarn_core::checkpoint::crc32`]) — so a
//! truncated or bit-flipped batch fails with a typed [`EditError`]
//! *before* any state changes.
//!
//! Wire layout (all integers little-endian):
//!
//! ```text
//! magic "SARNEDIT" (8B)  version u32  count u32
//!   record*count:
//!     tag u8 = 1 (SegmentAdd):    key u64, class u8,
//!                                 start.lat f64, start.lon f64,
//!                                 end.lat f64, end.lon f64,
//!                                 n_in u32, in_key u64 * n_in,
//!                                 n_out u32, out_key u64 * n_out
//!     tag u8 = 2 (SegmentRemove): key u64
//!     tag u8 = 3 (Reclass):       key u64, class u8
//! crc32 u32 over everything after the magic
//! ```
//!
//! Segments are addressed by **stable `u64` keys**, never by dense index:
//! a removal renumbers every later index, so indices in a multi-record
//! batch would be ambiguous. [`crate::LiveNetwork`] owns the key ↔ index
//! maps.

use sarn_geo::Point;
use sarn_roadnet::HighwayClass;

/// Cap on records per batch; a count above this is treated as corruption
/// rather than an allocation request.
const MAX_RECORDS: u32 = 1 << 20;
/// Cap on neighbor-list length per add record, same rationale.
const MAX_NEIGHBORS: u32 = 1 << 16;

const MAGIC: &[u8; 8] = b"SARNEDIT";
const FORMAT_VERSION: u32 = 1;

/// One typed edit to the road network.
#[derive(Clone, Debug, PartialEq)]
pub enum NetworkEdit {
    /// Append a new segment under a caller-chosen fresh key, wiring
    /// Eq. 1 topological edges to the named neighbor keys.
    SegmentAdd {
        /// Stable key of the new segment; must not collide with a live key.
        key: u64,
        /// Road class of the new segment.
        class: HighwayClass,
        /// Start point.
        start: Point,
        /// End point.
        end: Point,
        /// Keys of segments gaining an edge *into* the new segment.
        in_neighbors: Vec<u64>,
        /// Keys of segments gaining an edge *from* the new segment.
        out_neighbors: Vec<u64>,
    },
    /// Remove a live segment (and its incident `A^t`/`A^s` edges).
    SegmentRemove {
        /// Key of the segment to remove.
        key: u64,
    },
    /// Change a live segment's road class, recomputing incident Eq. 1
    /// weights. `A^s` is untouched: spatial similarity depends only on
    /// geometry.
    ReclassSegment {
        /// Key of the segment to reclassify.
        key: u64,
        /// Its new class.
        class: HighwayClass,
    },
}

impl NetworkEdit {
    /// The stable key this edit targets (the new key for an add).
    pub fn key(&self) -> u64 {
        match self {
            NetworkEdit::SegmentAdd { key, .. }
            | NetworkEdit::SegmentRemove { key }
            | NetworkEdit::ReclassSegment { key, .. } => *key,
        }
    }
}

/// Why an edit batch was rejected — decode-time damage and apply-time
/// semantic violations share one taxonomy so callers match on a single
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// The byte stream ended inside the named structure.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The stream does not start with `SARNEDIT`.
    BadMagic,
    /// The stream's format version is not supported.
    UnsupportedVersion(u32),
    /// A record's tag byte is not a known edit kind.
    UnknownTag {
        /// Zero-based record ordinal.
        record: usize,
        /// The offending tag byte.
        tag: u8,
    },
    /// A record's class byte does not name a [`HighwayClass`].
    BadClass {
        /// Zero-based record ordinal.
        record: usize,
        /// The offending class byte.
        class: u8,
    },
    /// A coordinate in an add record is NaN or infinite.
    NonFinite {
        /// Zero-based record ordinal.
        record: usize,
    },
    /// The CRC32 trailer does not match the decoded bytes.
    Corrupt {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC stored in the trailer.
        stored: u32,
    },
    /// An implausible length field (record count or neighbor count).
    ImplausibleLength {
        /// What was being sized.
        context: &'static str,
        /// The offending length.
        len: u64,
    },
    /// An add targets a key that is already live (or duplicated within
    /// the batch).
    DuplicateSegment {
        /// The colliding key.
        key: u64,
    },
    /// A remove/reclass/neighbor reference targets a key that is not live
    /// at that point of the batch.
    UnknownSegment {
        /// The missing key.
        key: u64,
    },
    /// The batch would remove the last remaining segment.
    EmptyNetwork,
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::Truncated { context } => {
                write!(f, "edit stream truncated while reading {context}")
            }
            EditError::BadMagic => write!(f, "not an edit stream (bad magic)"),
            EditError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported edit stream version {v} (expected {FORMAT_VERSION})"
                )
            }
            EditError::UnknownTag { record, tag } => {
                write!(f, "record {record}: unknown edit tag {tag}")
            }
            EditError::BadClass { record, class } => {
                write!(f, "record {record}: unknown highway class {class}")
            }
            EditError::NonFinite { record } => {
                write!(f, "record {record}: non-finite coordinate")
            }
            EditError::Corrupt { computed, stored } => write!(
                f,
                "edit stream checksum mismatch (computed {computed:#010x}, stored {stored:#010x})"
            ),
            EditError::ImplausibleLength { context, len } => {
                write!(f, "implausible {context} length {len}")
            }
            EditError::DuplicateSegment { key } => {
                write!(f, "segment key {key} is already live")
            }
            EditError::UnknownSegment { key } => {
                write!(f, "segment key {key} is not live")
            }
            EditError::EmptyNetwork => {
                write!(f, "batch would remove the last remaining segment")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// An ordered list of [`NetworkEdit`]s applied as one atomic unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EditBatch {
    /// The edits, applied in order.
    pub edits: Vec<NetworkEdit>,
}

fn class_to_u8(c: HighwayClass) -> u8 {
    c.index() as u8
}

fn class_from_u8(b: u8, record: usize) -> Result<HighwayClass, EditError> {
    HighwayClass::ALL
        .get(b as usize)
        .copied()
        .ok_or(EditError::BadClass { record, class: b })
}

/// Byte-stream reader with typed truncation errors.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], EditError> {
        if self.pos + n > self.bytes.len() {
            return Err(EditError::Truncated { context });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, EditError> {
        Ok(self.take(1, context)?[0])
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, EditError> {
        Ok(u32::from_le_bytes(
            self.take(4, context)?.try_into().expect("4-byte slice"),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, EditError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8-byte slice"),
        ))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, EditError> {
        Ok(f64::from_le_bytes(
            self.take(8, context)?.try_into().expect("8-byte slice"),
        ))
    }
}

impl EditBatch {
    /// Wraps edits into a batch.
    pub fn new(edits: Vec<NetworkEdit>) -> Self {
        Self { edits }
    }

    /// Serializes the batch to the wire format described in the module
    /// docs.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.edits.len() * 24);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.edits.len() as u32).to_le_bytes());
        for e in &self.edits {
            match e {
                NetworkEdit::SegmentAdd {
                    key,
                    class,
                    start,
                    end,
                    in_neighbors,
                    out_neighbors,
                } => {
                    out.push(1);
                    out.extend_from_slice(&key.to_le_bytes());
                    out.push(class_to_u8(*class));
                    for v in [start.lat, start.lon, end.lat, end.lon] {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    out.extend_from_slice(&(in_neighbors.len() as u32).to_le_bytes());
                    for k in in_neighbors {
                        out.extend_from_slice(&k.to_le_bytes());
                    }
                    out.extend_from_slice(&(out_neighbors.len() as u32).to_le_bytes());
                    for k in out_neighbors {
                        out.extend_from_slice(&k.to_le_bytes());
                    }
                }
                NetworkEdit::SegmentRemove { key } => {
                    out.push(2);
                    out.extend_from_slice(&key.to_le_bytes());
                }
                NetworkEdit::ReclassSegment { key, class } => {
                    out.push(3);
                    out.extend_from_slice(&key.to_le_bytes());
                    out.push(class_to_u8(*class));
                }
            }
        }
        let crc = sarn_core::checkpoint::crc32(&out[MAGIC.len()..]);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes a batch, rejecting truncation, bad magic, unsupported
    /// versions, unknown tags/classes, non-finite coordinates, and CRC
    /// mismatches with the corresponding typed [`EditError`]. Decoding
    /// never allocates more than the stream's own length justifies.
    pub fn decode(bytes: &[u8]) -> Result<Self, EditError> {
        if bytes.len() < MAGIC.len() {
            return Err(EditError::Truncated { context: "magic" });
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(EditError::BadMagic);
        }
        // The CRC trailer covers everything between magic and trailer; it
        // is verified FIRST so a bit flip inside a record surfaces as
        // Corrupt, not as a misleading structural error.
        if bytes.len() < MAGIC.len() + 4 {
            return Err(EditError::Truncated {
                context: "crc trailer",
            });
        }
        let body = &bytes[MAGIC.len()..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4-byte slice"));
        let computed = sarn_core::checkpoint::crc32(body);
        if computed != stored {
            return Err(EditError::Corrupt { computed, stored });
        }
        let mut r = Reader {
            bytes: body,
            pos: 0,
        };
        let version = r.u32("version")?;
        if version != FORMAT_VERSION {
            return Err(EditError::UnsupportedVersion(version));
        }
        let count = r.u32("record count")?;
        if count > MAX_RECORDS {
            return Err(EditError::ImplausibleLength {
                context: "record count",
                len: count as u64,
            });
        }
        let mut edits = Vec::with_capacity(count as usize);
        for record in 0..count as usize {
            let tag = r.u8("record tag")?;
            let edit = match tag {
                1 => {
                    let key = r.u64("add key")?;
                    let class = class_from_u8(r.u8("add class")?, record)?;
                    let coords = [
                        r.f64("start.lat")?,
                        r.f64("start.lon")?,
                        r.f64("end.lat")?,
                        r.f64("end.lon")?,
                    ];
                    if coords.iter().any(|v| !v.is_finite()) {
                        return Err(EditError::NonFinite { record });
                    }
                    let read_keys =
                        |r: &mut Reader<'_>, what: &'static str| -> Result<Vec<u64>, EditError> {
                            let n = r.u32(what)?;
                            if n > MAX_NEIGHBORS {
                                return Err(EditError::ImplausibleLength {
                                    context: what,
                                    len: n as u64,
                                });
                            }
                            (0..n).map(|_| r.u64(what)).collect()
                        };
                    let in_neighbors = read_keys(&mut r, "in-neighbors")?;
                    let out_neighbors = read_keys(&mut r, "out-neighbors")?;
                    NetworkEdit::SegmentAdd {
                        key,
                        class,
                        start: Point {
                            lat: coords[0],
                            lon: coords[1],
                        },
                        end: Point {
                            lat: coords[2],
                            lon: coords[3],
                        },
                        in_neighbors,
                        out_neighbors,
                    }
                }
                2 => NetworkEdit::SegmentRemove {
                    key: r.u64("remove key")?,
                },
                3 => {
                    let key = r.u64("reclass key")?;
                    let class = class_from_u8(r.u8("reclass class")?, record)?;
                    NetworkEdit::ReclassSegment { key, class }
                }
                tag => return Err(EditError::UnknownTag { record, tag }),
            };
            edits.push(edit);
        }
        if r.pos != r.bytes.len() {
            // Trailing garbage inside a CRC-valid stream cannot happen by
            // accident; treat it as an implausible encoding.
            return Err(EditError::ImplausibleLength {
                context: "trailing bytes",
                len: (r.bytes.len() - r.pos) as u64,
            });
        }
        Ok(Self { edits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> Point {
        Point { lat, lon }
    }

    fn sample_batch() -> EditBatch {
        EditBatch::new(vec![
            NetworkEdit::SegmentAdd {
                key: 100,
                class: HighwayClass::Primary,
                start: p(30.65, 104.06),
                end: p(30.652, 104.061),
                in_neighbors: vec![3, 7],
                out_neighbors: vec![5],
            },
            NetworkEdit::SegmentRemove { key: 7 },
            NetworkEdit::ReclassSegment {
                key: 5,
                class: HighwayClass::Service,
            },
        ])
    }

    #[test]
    fn round_trips_every_edit_kind() {
        let batch = sample_batch();
        let decoded = EditBatch::decode(&batch.encode()).expect("decode");
        assert_eq!(decoded, batch);
    }

    #[test]
    fn truncation_anywhere_is_typed_not_a_panic() {
        let bytes = sample_batch().encode();
        for cut in 0..bytes.len() {
            let err = EditBatch::decode(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    EditError::Truncated { .. } | EditError::Corrupt { .. } | EditError::BadMagic
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn garbage_and_version_skew_are_rejected() {
        assert_eq!(
            EditBatch::decode(b"not an edit stream at all"),
            Err(EditError::BadMagic)
        );
        // A version bump re-CRCs cleanly but is refused as unsupported.
        let mut bytes = sample_batch().encode();
        bytes[8] = 9;
        let body_end = bytes.len() - 4;
        let crc = sarn_core::checkpoint::crc32(&bytes[8..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            EditBatch::decode(&bytes),
            Err(EditError::UnsupportedVersion(9))
        );
    }

    #[test]
    fn any_single_bit_flip_in_the_body_is_caught_by_the_crc() {
        let clean = sample_batch().encode();
        for byte in 8..clean.len() - 4 {
            let mut bytes = clean.clone();
            bytes[byte] ^= 0x40;
            let err = EditBatch::decode(&bytes).expect_err("flip must fail");
            assert!(
                matches!(err, EditError::Corrupt { .. }),
                "flip at {byte}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn unknown_tag_and_bad_class_are_typed_once_past_the_crc() {
        // Re-sign the stream after damaging it so the structural checks
        // (not the CRC) are what fire.
        let resign = |mut bytes: Vec<u8>| -> Vec<u8> {
            let body_end = bytes.len() - 4;
            let crc = sarn_core::checkpoint::crc32(&bytes[8..body_end]);
            bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
            bytes
        };
        let clean = sample_batch().encode();
        // First record tag byte sits right after magic+version+count.
        let mut bad_tag = clean.clone();
        bad_tag[16] = 77;
        assert_eq!(
            EditBatch::decode(&resign(bad_tag)),
            Err(EditError::UnknownTag { record: 0, tag: 77 })
        );
        // Class byte of the first (add) record: tag(1) + key(8) after 16.
        let mut bad_class = clean.clone();
        bad_class[16 + 1 + 8] = 200;
        assert_eq!(
            EditBatch::decode(&resign(bad_class)),
            Err(EditError::BadClass {
                record: 0,
                class: 200
            })
        );
        // NaN latitude in the first add record.
        let mut nan_lat = clean;
        let at = 16 + 1 + 8 + 1;
        nan_lat[at..at + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(
            EditBatch::decode(&resign(nan_lat)),
            Err(EditError::NonFinite { record: 0 })
        );
    }

    #[test]
    fn implausible_counts_do_not_allocate() {
        // count = u32::MAX with an otherwise-valid header.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SARNEDIT");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let crc = sarn_core::checkpoint::crc32(&bytes[8..]);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            EditBatch::decode(&bytes),
            Err(EditError::ImplausibleLength {
                context: "record count",
                len: u32::MAX as u64,
            })
        );
    }

    /// One arbitrary well-formed edit, derived from four integer draws.
    fn arbitrary_edit() -> impl proptest::Strategy<Value = NetworkEdit> {
        use proptest::Strategy as _;
        let class = |b: u64| HighwayClass::ALL[b as usize % HighwayClass::ALL.len()];
        (0u64..u64::MAX, 0u64..256, 0u64..256, 0u64..3).prop_map(move |(key, cb, nb, kind)| {
            match kind {
                0 => NetworkEdit::SegmentAdd {
                    key,
                    class: class(cb),
                    start: Point {
                        lat: 30.0 + (key % 997) as f64 * 1e-4,
                        lon: 104.0 + (key % 991) as f64 * 1e-4,
                    },
                    end: Point {
                        lat: 30.0 + (key % 983) as f64 * 1e-4,
                        lon: 104.0 + (key % 977) as f64 * 1e-4,
                    },
                    in_neighbors: (0..nb % 5).map(|i| key ^ i).collect(),
                    out_neighbors: (0..nb % 3).map(|i| !key ^ i).collect(),
                },
                1 => NetworkEdit::SegmentRemove { key },
                _ => NetworkEdit::ReclassSegment {
                    key,
                    class: class(cb),
                },
            }
        })
    }

    proptest::proptest! {
        #[test]
        fn proptest_round_trip_of_well_formed_streams(
            edits in proptest::collection::vec(arbitrary_edit(), 0..12)
        ) {
            let batch = EditBatch::new(edits);
            let decoded = EditBatch::decode(&batch.encode()).expect("round trip");
            proptest::prop_assert_eq!(decoded, batch);
        }
    }
}
