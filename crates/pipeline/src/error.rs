//! The pipeline's error taxonomy and injectable faults.

use std::io;

use sarn_core::watchdog::TrainError;
use sarn_serve::ServeError;

use crate::cursor::CursorError;
use crate::edit::EditError;

/// Anything the online pipeline can fail with, per stage. Every variant
/// is typed — the pipeline never panics on bad input, bad disk bytes, or
/// injected faults.
#[derive(Debug)]
pub enum PipelineError {
    /// An edit batch failed to decode, validate, or apply.
    Edit(EditError),
    /// The stage cursor failed to load or persist.
    Cursor(CursorError),
    /// Retraining failed in a way neither retry nor the last-known-good
    /// fallback could absorb.
    Train(TrainError),
    /// The serve store rejected an admission or exhausted reload retries.
    Serve(ServeError),
    /// An exported artifact failed its read-back validation (torn write,
    /// shape mismatch, non-finite values).
    Artifact(sarn_tensor::IoError),
    /// Filesystem plumbing (state dir, tmp rename) failed.
    Io {
        /// What was being done.
        context: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// A [`PipelineFault`] detonated a simulated process crash.
    InjectedCrash {
        /// Stage the crash was injected into.
        stage: &'static str,
    },
    /// On resume, replaying the durable edit log diverged from the cursor
    /// (e.g. a batch that previously applied no longer validates).
    ReplayMismatch(String),
    /// Retraining needed the last-known-good fallback but none exists yet
    /// (no healthy retrain has completed and no compatible checkpoint is
    /// on disk).
    NoFallback {
        /// The retrain failure that triggered the fallback attempt.
        cause: String,
    },
    /// The checkpoint directory was probed for a warm-start source and
    /// the probe itself failed unrecoverably.
    Checkpoint(sarn_core::CheckpointError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Edit(e) => write!(f, "edit batch rejected: {e}"),
            PipelineError::Cursor(e) => write!(f, "stage cursor: {e}"),
            PipelineError::Train(e) => write!(f, "retrain failed: {e}"),
            PipelineError::Serve(e) => write!(f, "serve: {e}"),
            PipelineError::Artifact(e) => write!(f, "artifact validation: {e}"),
            PipelineError::Io { context, source } => write!(f, "{context}: {source}"),
            PipelineError::InjectedCrash { stage } => {
                write!(f, "injected crash in stage {stage}")
            }
            PipelineError::ReplayMismatch(why) => {
                write!(f, "edit-log replay diverged from cursor: {why}")
            }
            PipelineError::NoFallback { cause } => write!(
                f,
                "retrain failed ({cause}) and no last-known-good embeddings exist"
            ),
            PipelineError::Checkpoint(e) => write!(f, "checkpoint probe: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<EditError> for PipelineError {
    fn from(e: EditError) -> Self {
        PipelineError::Edit(e)
    }
}

impl From<CursorError> for PipelineError {
    fn from(e: CursorError) -> Self {
        PipelineError::Cursor(e)
    }
}

impl From<TrainError> for PipelineError {
    fn from(e: TrainError) -> Self {
        PipelineError::Train(e)
    }
}

impl From<ServeError> for PipelineError {
    fn from(e: ServeError) -> Self {
        PipelineError::Serve(e)
    }
}

impl From<sarn_tensor::IoError> for PipelineError {
    fn from(e: sarn_tensor::IoError) -> Self {
        PipelineError::Artifact(e)
    }
}

impl From<sarn_core::CheckpointError> for PipelineError {
    fn from(e: sarn_core::CheckpointError) -> Self {
        PipelineError::Checkpoint(e)
    }
}

/// Which stage a [`PipelineFault`] sabotages, and how. One fault fires on
/// the **first attempt** of its stage for its batch, then the stage's
/// bounded retry (or the fallback path) must absorb it — the `FaultSpec`
/// discipline of the training watchdog, extended to the whole loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineFaultKind {
    /// Flip one byte of the batch's wire bytes before decoding (the
    /// pristine bytes are used on retry, as a re-read from a durable log
    /// would).
    CorruptEditRecord,
    /// Simulated process death at the start of the repair stage, before
    /// any state is mutated.
    MidRepairCrash,
    /// Retraining detonates a sticky NaN-gradient fault with a tiny
    /// recovery budget, forcing [`TrainError::Diverged`] and exercising
    /// the last-known-good fallback.
    DivergingRetrain,
    /// The artifact's temp file is truncated after writing, so the
    /// read-back validation must catch the tear before the rename.
    TornExport,
    /// The serve store gets a transient injected load fault that its own
    /// bounded reload retries must outlast.
    ReloadIoFault,
}

impl PipelineFaultKind {
    /// Stable lowercase label for journal events and smoke-test output.
    pub fn label(self) -> &'static str {
        match self {
            PipelineFaultKind::CorruptEditRecord => "corrupt_edit_record",
            PipelineFaultKind::MidRepairCrash => "mid_repair_crash",
            PipelineFaultKind::DivergingRetrain => "diverging_retrain",
            PipelineFaultKind::TornExport => "torn_export",
            PipelineFaultKind::ReloadIoFault => "reload_io_fault",
        }
    }
}

/// One scheduled sabotage: `kind` fires while the pipeline processes
/// `batch` (1-based batch ordinal; `0` targets the bootstrap
/// train/export/reload pass).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PipelineFault {
    /// 1-based ordinal of the target batch (0 = bootstrap).
    pub batch: u64,
    /// What to sabotage.
    pub kind: PipelineFaultKind,
}
