//! # sarn-pipeline
//!
//! Fault-tolerant **online** loop for SARN embeddings: the road network
//! keeps changing underneath a serving system, and this crate turns a
//! typed stream of network edits into fresh embeddings without ever
//! letting a query observe a torn or silently stale generation.
//!
//! One batch flows through five supervised stages (DESIGN.md §14):
//!
//! ```text
//!        +-> applying --> repairing --> retraining --> exporting --> reloading -+
//! idle --+     |              |             |              |             |      +--> idle
//!              v              v             v              v             v
//!          typed EditError  crash-safe   diverged ->    torn write    transient I/O
//!          (batch atomic:   (nothing     last-known-    caught by     outlasted by
//!          retry re-reads   durable      good fallback  read-back     the store's
//!          the log)         until done)  (no gradient   before the    bounded
//!                                        steps)         rename       retries
//! ```
//!
//! - **[`EditBatch`]** ([`edit`]): `SegmentAdd` / `SegmentRemove` /
//!   `ReclassSegment` records addressing segments by stable `u64` keys,
//!   in a CRC-framed wire format whose every failure mode is a typed
//!   [`EditError`].
//! - **[`LiveNetwork`]** ([`live`]): two-phase validate-then-apply keeps
//!   batches atomic; `A^t` is repaired inside the `RoadNetwork` mutators
//!   and `A^s` by [`sarn_core::SpatialIndex`]'s localized grid re-joins —
//!   bitwise identical to a full rebuild, at a fraction of the cost.
//! - **Retraining** warm-starts from the newest compatible checkpoint
//!   (gated by the cheap [`sarn_core::Checkpoint::probe_header`]); a
//!   diverging or deadline-blown retrain falls back to last-known-good
//!   parameters applied to a fresh model — stale-but-sane embeddings
//!   beat no embeddings.
//! - **Export** writes `gen-<n>.emb` via tmp + read-back validation +
//!   atomic rename; **reload** hot-swaps the [`ServeFront`]'s
//!   [`sarn_serve::EmbeddingStore`] behind an `Arc` swap, with the
//!   staleness SLO ([`sarn_serve::ServeConfig::max_staleness`]) watching
//!   generation age.
//! - **[`Cursor`]** ([`cursor`]): every stage transition is persisted
//!   atomically, so a killed pipeline [`Pipeline::resume`]s without
//!   re-applying edits or re-training batches whose artifacts already
//!   made it to disk.
//! - **[`PipelineFault`]** ([`error`]): deterministic per-stage sabotage
//!   (corrupt record, mid-repair crash, diverging retrain, torn export,
//!   reload I/O fault) in the training watchdog's `FaultSpec` mold, so
//!   every recovery path has a test that actually exercises it.

#![warn(missing_docs)]

pub mod cursor;
pub mod edit;
pub mod error;
pub mod live;
mod pipeline;

pub use cursor::{Cursor, CursorError, Stage};
pub use edit::{EditBatch, EditError, NetworkEdit};
pub use error::{PipelineError, PipelineFault, PipelineFaultKind};
pub use live::{AppliedStats, LiveNetwork};
pub use pipeline::{BatchReport, Pipeline, PipelineConfig, ServeFront};
