//! The live, editable network: `RoadNetwork` + incremental `A^s` index +
//! stable-key addressing, mutated only through validated edit batches.

use std::collections::HashMap;

use sarn_core::{SpatialIndex, SpatialSimilarityConfig};
use sarn_roadnet::{RoadNetwork, RoadSegment};

use crate::edit::{EditBatch, EditError, NetworkEdit};

/// What one applied batch did, for telemetry and bench tables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppliedStats {
    /// Segments appended.
    pub added: usize,
    /// Segments removed.
    pub removed: usize,
    /// Segments reclassified.
    pub reclassed: usize,
    /// `A^s` edges gained by the incremental re-joins (adds only; removals
    /// drop edges without rescoring).
    pub spatial_edges_gained: usize,
}

/// A road network plus the state the online pipeline must keep in sync
/// with it:
///
/// - the incremental [`SpatialIndex`] whose edge list stays **bitwise
///   identical** to a from-scratch [`sarn_core::SpatialSimilarity`] build
///   after every edit (`A^t` is repaired inside the `RoadNetwork`
///   mutators themselves);
/// - a stable `u64` key per segment, because dense indices shift on every
///   removal. Initial segments get keys `0..n`; adds carry caller-chosen
///   fresh keys.
///
/// Batches go through **two-phase apply**: [`LiveNetwork::validate`]
/// simulates the whole batch against the live key set without touching
/// anything, then [`LiveNetwork::apply`] mutates. A batch that fails
/// validation therefore leaves the network byte-for-byte untouched —
/// the pipeline's "applying" stage is atomic per batch.
#[derive(Clone, Debug)]
pub struct LiveNetwork {
    net: RoadNetwork,
    index: SpatialIndex,
    /// Dense index -> stable key.
    key_of: Vec<u64>,
    /// Stable key -> dense index.
    index_of: HashMap<u64, usize>,
}

impl LiveNetwork {
    /// Wraps a network, assigning keys `0..n` to its segments and building
    /// the spatial index from scratch (the one full join the pipeline ever
    /// pays; every edit after this is a localized repair).
    pub fn new(net: RoadNetwork, sim: &SpatialSimilarityConfig) -> Self {
        let index = SpatialIndex::build(&net, sim);
        let n = net.num_segments();
        let key_of: Vec<u64> = (0..n as u64).collect();
        let index_of = key_of.iter().map(|&k| (k, k as usize)).collect();
        Self {
            net,
            index,
            key_of,
            index_of,
        }
    }

    /// The current network.
    pub fn network(&self) -> &RoadNetwork {
        &self.net
    }

    /// The incrementally maintained `A^s` edge list (`(i, j, w)` with
    /// `i < j`, ascending).
    pub fn spatial_edges(&self) -> &[(usize, usize, f64)] {
        self.index.edges()
    }

    /// Stable key of a dense segment index.
    pub fn key_of(&self, index: usize) -> u64 {
        self.key_of[index]
    }

    /// Dense index of a stable key, if live.
    pub fn index_of(&self, key: u64) -> Option<usize> {
        self.index_of.get(&key).copied()
    }

    /// Checks a batch against the live key set without mutating anything.
    /// Simulates the batch in order, so a record may legally reference a
    /// key added (or re-use one removed) earlier in the same batch.
    pub fn validate(&self, batch: &EditBatch) -> Result<(), EditError> {
        let mut live: std::collections::HashSet<u64> = self.key_of.iter().copied().collect();
        let mut count = self.key_of.len();
        for e in &batch.edits {
            match e {
                NetworkEdit::SegmentAdd {
                    key,
                    in_neighbors,
                    out_neighbors,
                    ..
                } => {
                    if live.contains(key) {
                        return Err(EditError::DuplicateSegment { key: *key });
                    }
                    for nb in in_neighbors.iter().chain(out_neighbors) {
                        if !live.contains(nb) {
                            return Err(EditError::UnknownSegment { key: *nb });
                        }
                    }
                    live.insert(*key);
                    count += 1;
                }
                NetworkEdit::SegmentRemove { key } => {
                    if !live.remove(key) {
                        return Err(EditError::UnknownSegment { key: *key });
                    }
                    count -= 1;
                    if count == 0 {
                        return Err(EditError::EmptyNetwork);
                    }
                }
                NetworkEdit::ReclassSegment { key, .. } => {
                    if !live.contains(key) {
                        return Err(EditError::UnknownSegment { key: *key });
                    }
                }
            }
        }
        Ok(())
    }

    /// Validates, then applies a batch: network mutation (which repairs
    /// `A^t` in place) interleaved with the localized `A^s` repairs, and
    /// the key maps kept in lockstep. Returns per-batch stats.
    pub fn apply(&mut self, batch: &EditBatch) -> Result<AppliedStats, EditError> {
        self.validate(batch)?;
        let mut stats = AppliedStats::default();
        for e in &batch.edits {
            match e {
                NetworkEdit::SegmentAdd {
                    key,
                    class,
                    start,
                    end,
                    in_neighbors,
                    out_neighbors,
                } => {
                    let to_idx = |keys: &[u64], map: &HashMap<u64, usize>| -> Vec<usize> {
                        keys.iter().map(|k| map[k]).collect()
                    };
                    let ins = to_idx(in_neighbors, &self.index_of);
                    let outs = to_idx(out_neighbors, &self.index_of);
                    let seg = RoadSegment::between(*class, *start, *end);
                    let new = self.net.add_segment(seg, &ins, &outs);
                    stats.spatial_edges_gained += self.index.insert(&self.net);
                    self.key_of.push(*key);
                    self.index_of.insert(*key, new);
                    stats.added += 1;
                }
                NetworkEdit::SegmentRemove { key } => {
                    let r = self.index_of[key];
                    self.net.remove_segment(r);
                    self.index.remove(r);
                    self.key_of.remove(r);
                    self.index_of.remove(key);
                    // Every segment past `r` slid down one slot.
                    for (i, k) in self.key_of.iter().enumerate().skip(r) {
                        self.index_of.insert(*k, i);
                    }
                    stats.removed += 1;
                }
                NetworkEdit::ReclassSegment { key, class } => {
                    // A^t weights are repaired inside the mutator; A^s is
                    // untouched because spatial similarity depends only on
                    // geometry.
                    self.net.reclass_segment(self.index_of[key], *class);
                    stats.reclassed += 1;
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sarn_core::{SpatialJoin, SpatialSimilarity};
    use sarn_geo::Point;
    use sarn_roadnet::{City, HighwayClass, SynthConfig};

    fn small_net() -> RoadNetwork {
        SynthConfig::city(City::Chengdu).scaled(0.15).generate()
    }

    fn cfg() -> SpatialSimilarityConfig {
        SpatialSimilarityConfig::default()
    }

    fn add_near(live: &LiveNetwork, key: u64, nb: usize) -> NetworkEdit {
        let s = live.network().segment(nb);
        let start = s.end;
        let end = Point {
            lat: start.lat + 4e-4,
            lon: start.lon + 2e-4,
        };
        NetworkEdit::SegmentAdd {
            key,
            class: HighwayClass::Secondary,
            start,
            end,
            in_neighbors: vec![live.key_of(nb)],
            out_neighbors: vec![],
        }
    }

    #[test]
    fn applies_a_mixed_batch_and_stays_bitwise_consistent() {
        let mut live = LiveNetwork::new(small_net(), &cfg());
        let n0 = live.network().num_segments();
        let batch = EditBatch::new(vec![
            add_near(&live, 1_000, 3),
            NetworkEdit::SegmentRemove {
                key: live.key_of(7),
            },
            NetworkEdit::ReclassSegment {
                key: live.key_of(5),
                class: HighwayClass::Service,
            },
            add_near(&live, 1_001, 12),
        ]);
        let stats = live.apply(&batch).expect("apply");
        assert_eq!(
            stats,
            AppliedStats {
                added: 2,
                removed: 1,
                reclassed: 1,
                spatial_edges_gained: stats.spatial_edges_gained,
            }
        );
        assert_eq!(live.network().num_segments(), n0 + 1);
        // Keys survive renumbering: key 1_000 still resolves to the
        // segment added first, wherever it now sits.
        let idx = live.index_of(1_000).expect("key 1000 live");
        assert_eq!(live.key_of(idx), 1_000);
        assert!(live.index_of(7).is_none(), "removed key still resolves");
        // The incremental index matches a from-scratch grid join bitwise.
        let grid_cfg = SpatialSimilarityConfig {
            join: SpatialJoin::Grid,
            ..cfg()
        };
        let rebuilt = SpatialSimilarity::build(live.network(), &grid_cfg);
        assert_eq!(live.spatial_edges(), rebuilt.edges());
    }

    #[test]
    fn rejected_batches_leave_the_network_untouched() {
        let mut live = LiveNetwork::new(small_net(), &cfg());
        let before_edges = live.spatial_edges().to_vec();
        let before_n = live.network().num_segments();
        // A batch whose LAST record is bad: the earlier good records must
        // not partially apply.
        let batch = EditBatch::new(vec![
            add_near(&live, 2_000, 4),
            NetworkEdit::SegmentRemove { key: 999_999 },
        ]);
        assert_eq!(
            live.apply(&batch),
            Err(EditError::UnknownSegment { key: 999_999 })
        );
        assert_eq!(live.network().num_segments(), before_n);
        assert_eq!(live.spatial_edges(), &before_edges[..]);
        assert!(live.index_of(2_000).is_none());

        // Duplicate key within one batch.
        let dup = EditBatch::new(vec![add_near(&live, 5, 0)]);
        assert_eq!(
            live.apply(&dup),
            Err(EditError::DuplicateSegment { key: 5 })
        );

        // Draining the network below one segment.
        let drain = EditBatch::new(
            (0..before_n)
                .map(|i| NetworkEdit::SegmentRemove {
                    key: live.key_of(i),
                })
                .collect(),
        );
        assert_eq!(live.apply(&drain), Err(EditError::EmptyNetwork));
        assert_eq!(live.network().num_segments(), before_n);
    }

    #[test]
    fn batch_records_may_reference_earlier_records_in_the_same_batch() {
        let mut live = LiveNetwork::new(small_net(), &cfg());
        // Add a segment, then immediately reclass it and hang another off
        // it — both references resolve because validation simulates in
        // order.
        let first = add_near(&live, 3_000, 2);
        let batch = EditBatch::new(vec![
            first,
            NetworkEdit::ReclassSegment {
                key: 3_000,
                class: HighwayClass::Motorway,
            },
            NetworkEdit::SegmentAdd {
                key: 3_001,
                class: HighwayClass::Residential,
                start: Point {
                    lat: 30.66,
                    lon: 104.07,
                },
                end: Point {
                    lat: 30.6605,
                    lon: 104.0705,
                },
                in_neighbors: vec![3_000],
                out_neighbors: vec![],
            },
        ]);
        live.apply(&batch).expect("intra-batch references apply");
        let i = live.index_of(3_000).expect("live");
        assert_eq!(live.network().segment(i).class, HighwayClass::Motorway);
        assert!(live.index_of(3_001).is_some());
    }
}
