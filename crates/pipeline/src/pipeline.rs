//! The supervised online loop: edits → repair → warm-start retrain →
//! atomic export → hot-swap reload, every stage under bounded retry and
//! a durable cursor.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use sarn_core::checkpoint::{latest_checkpoint, tmp_sibling, ParamStoreSnapshot};
use sarn_core::watchdog::{FaultKind, FaultSpec, TrainError};
use sarn_core::{try_train, warm_start_apply, Augmenter, Checkpoint, SarnConfig, SarnModel};
use sarn_roadnet::RoadNetwork;
use sarn_serve::{
    EmbeddingStore, HealthReport, LoadFault, Router, RouterConfig, ServeConfig, ShardedStore,
};
use sarn_tensor::{Tensor, TensorExpectation};

use crate::cursor::{Cursor, CursorError, Stage};
use crate::edit::EditBatch;
use crate::error::{PipelineError, PipelineFault, PipelineFaultKind};
use crate::live::{AppliedStats, LiveNetwork};

/// Knobs of the online pipeline.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Training configuration for the bootstrap run and every retrain.
    /// `checkpoint_dir` + `checkpoint_every` should be set: checkpoints
    /// are both the warm-start source and the disk-backed tier of the
    /// last-known-good fallback. `resume_*`/`warm_start_from` are managed
    /// by the pipeline and overwritten per retrain.
    pub train: SarnConfig,
    /// Serve-store knobs (staleness SLO, reload retries, ...).
    pub serve: ServeConfig,
    /// Number of geo-partitioned serve shards. `0` or `1` keeps the
    /// classic single [`EmbeddingStore`] front; `>= 2` fronts queries
    /// with a [`Router`] over a [`ShardedStore`], and each batch
    /// hot-swaps only the shards whose row blocks actually changed
    /// ([`ShardedStore::admit_changed`]).
    pub serve_shards: usize,
    /// Where the cursor and exported `gen-*.emb` artifacts live.
    pub state_dir: PathBuf,
    /// Stage retries after the first attempt (total attempts = this + 1).
    pub max_stage_retries: usize,
    /// Sleep before a stage's first retry; doubles per subsequent retry.
    pub stage_backoff: Duration,
    /// Scheduled sabotage, in the training watchdog's `FaultSpec` mold.
    pub faults: Vec<PipelineFault>,
}

impl PipelineConfig {
    /// A pipeline with no faults and test-friendly retry pacing.
    pub fn new(train: SarnConfig, serve: ServeConfig, state_dir: impl Into<PathBuf>) -> Self {
        Self {
            train,
            serve,
            state_dir: state_dir.into(),
            serve_shards: 0,
            max_stage_retries: 2,
            stage_backoff: Duration::from_millis(5),
            faults: Vec::new(),
        }
    }
}

/// What one processed batch did.
#[derive(Clone, Copy, Debug)]
pub struct BatchReport {
    /// 1-based ordinal of the batch.
    pub ordinal: u64,
    /// Pipeline generation its embeddings serve as.
    pub generation: u64,
    /// Edit counts and incremental-repair stats.
    pub stats: AppliedStats,
    /// `true` when retraining fell back to last-known-good parameters.
    pub used_fallback: bool,
}

/// The query-facing handle: an `Arc`-swapped [`EmbeddingStore`].
///
/// The store's geometry (segment count) is fixed at construction, so a
/// batch that changes the network's size installs a **new** store; a
/// same-size batch hot-reloads in place. Either way the flip is one
/// atomic pointer swap performed only *after* the new artifact loaded and
/// validated — a reader always sees a complete, self-consistent
/// generation, never a torn one. Store-local generation numbers restart
/// at 1 when the store is rebuilt; the durable pipeline generation lives
/// in the cursor.
pub struct ServeFront {
    cfg: ServeConfig,
    /// `>= 2` serves through the sharded router instead of one store.
    shards: usize,
    store: RwLock<Option<Arc<EmbeddingStore>>>,
    router: RwLock<Option<Arc<Router>>>,
}

impl ServeFront {
    fn new(cfg: ServeConfig, shards: usize) -> Self {
        Self {
            cfg,
            shards,
            store: RwLock::new(None),
            router: RwLock::new(None),
        }
    }

    /// The currently serving store, if any generation has been admitted.
    /// [`None`] in sharded mode — queries go through [`ServeFront::router`].
    pub fn store(&self) -> Option<Arc<EmbeddingStore>> {
        self.store
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// The fault-isolating shard router, when `serve_shards >= 2` and a
    /// generation has been admitted.
    pub fn router(&self) -> Option<Arc<Router>> {
        self.router
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Health of the current front ([`None`] before the bootstrap
    /// generation is admitted). Sharded fronts report the per-shard-aware
    /// aggregate (worst shard wins).
    pub fn health(&self) -> Option<HealthReport> {
        if let Some(r) = self.router() {
            return Some(r.health());
        }
        self.store().map(|s| s.health())
    }

    /// Loads `path` into the serving position: in-place hot reload when
    /// the geometry still matches, otherwise a load into a fresh store
    /// that is swapped in only on success.
    fn reload_artifact(
        &self,
        net: &RoadNetwork,
        dim: usize,
        path: &Path,
        inject: bool,
    ) -> Result<(), PipelineError> {
        if self.shards >= 2 {
            return self.admit_sharded(net, dim, path, inject);
        }
        let fault = inject.then_some(LoadFault {
            fail_loads: 1,
            delay_ms: 0,
        });
        let current = self.store();
        match current {
            Some(s) if s.num_segments() == net.num_segments() && s.dim() == dim => {
                s.inject_fault(fault);
                s.reload(path)?;
            }
            _ => {
                let fresh = EmbeddingStore::for_network(net, dim, self.cfg)?;
                fresh.inject_fault(fault);
                fresh.reload(path)?;
                *self
                    .store
                    .write()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(Arc::new(fresh));
            }
        }
        Ok(())
    }

    /// Sharded-mode stage 5: load + validate the artifact, then admit it
    /// through the router's [`ShardedStore`]. When the geometry still
    /// matches, [`ShardedStore::admit_changed`] swaps only the shards
    /// whose row blocks differ bitwise — siblings keep their generation
    /// and readers mid-query on them are untouched. A size change builds
    /// a fresh sharded store + router that is swapped in only after the
    /// full artifact admitted.
    fn admit_sharded(
        &self,
        net: &RoadNetwork,
        dim: usize,
        path: &Path,
        inject: bool,
    ) -> Result<(), PipelineError> {
        if inject {
            // The sharded path reads the artifact here at the front, so
            // the reload I/O fault is injected here too: one failed load,
            // absorbed by the stage's bounded retry.
            return Err(PipelineError::Io {
                context: "loading artifact for sharded admit",
                source: std::io::Error::other("injected reload fault"),
            });
        }
        let embeddings = Tensor::load_validated(
            path,
            &TensorExpectation {
                rows: Some(net.num_segments()),
                cols: Some(dim),
                finite: true,
            },
        )?;
        match self.router() {
            Some(r)
                if r.sharded().num_segments() == net.num_segments() && r.sharded().dim() == dim =>
            {
                r.sharded().admit_changed(&embeddings)?;
            }
            _ => {
                let sharded = ShardedStore::for_network(net, dim, self.cfg, self.shards)?;
                sharded.admit(&embeddings)?;
                let rcfg = RouterConfig {
                    num_shards: self.shards,
                    ..RouterConfig::default()
                };
                *self
                    .router
                    .write()
                    .unwrap_or_else(|poisoned| poisoned.into_inner()) =
                    Some(Arc::new(Router::new(sharded, rcfg)));
            }
        }
        Ok(())
    }
}

/// Runs stage attempts under bounded retry with exponential backoff,
/// journaling every attempt as a `pipeline_stage` event.
fn run_stage<T>(
    batch: u64,
    stage: &'static str,
    retries: usize,
    mut backoff: Duration,
    mut attempt_fn: impl FnMut(usize) -> Result<T, PipelineError>,
) -> Result<T, PipelineError> {
    for attempt in 1usize.. {
        let t0 = Instant::now();
        let outcome = attempt_fn(attempt);
        if sarn_obs::enabled() {
            sarn_obs::counter("sarn_pipeline_stage_attempts_total").inc();
            sarn_obs::record(sarn_obs::Event::PipelineStage {
                batch,
                stage: stage.to_string(),
                attempt,
                ok: outcome.is_ok(),
                seconds: t0.elapsed().as_secs_f64(),
                error: outcome.as_ref().err().map(|e| e.to_string()),
            });
        }
        match outcome {
            Ok(v) => return Ok(v),
            Err(e) => {
                sarn_obs::counter("sarn_pipeline_stage_failures_total").inc();
                if attempt > retries {
                    return Err(e);
                }
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }
    }
    unreachable!("retry loop returns")
}

/// The fault-tolerant online pipeline (DESIGN.md §14).
///
/// Owns the [`LiveNetwork`], the durable [`Cursor`], and the
/// [`ServeFront`]; [`Pipeline::process_batch`] drives one batch through
/// applying → repairing → retraining → exporting → reloading. Construct
/// with [`Pipeline::new`] (bootstraps generation 1 from the initial
/// network) or [`Pipeline::resume`] (rebuilds state from the cursor and
/// the durable edit log after a crash).
pub struct Pipeline {
    cfg: PipelineConfig,
    live: LiveNetwork,
    front: Arc<ServeFront>,
    cursor: Cursor,
    /// Embedding width, learned from the first trained artifact.
    dim: usize,
    /// In-memory tier of the last-known-good fallback: query-branch
    /// parameters of the most recent *healthy* retrain. The disk tier is
    /// the newest compatible checkpoint.
    last_good: Option<ParamStoreSnapshot>,
}

impl Pipeline {
    /// Builds the pipeline and bootstraps generation 1: train on the
    /// initial network (warm-started if a compatible checkpoint already
    /// exists), export, and load into the serve front — all under the
    /// same stage runner and fault hooks as regular batches (fault
    /// `batch` ordinal 0).
    pub fn new(cfg: PipelineConfig, net: RoadNetwork) -> Result<Self, PipelineError> {
        fs::create_dir_all(&cfg.state_dir).map_err(|source| PipelineError::Io {
            context: "creating pipeline state dir",
            source,
        })?;
        let live = LiveNetwork::new(net, &cfg.train.similarity);
        let front = Arc::new(ServeFront::new(cfg.serve, cfg.serve_shards));
        let mut p = Self {
            cfg,
            live,
            front,
            cursor: Cursor::default(),
            dim: 0,
            last_good: None,
        };
        p.train_export_reload(0)?;
        p.cursor = Cursor {
            completed: 0,
            inflight: None,
            generation: 1,
        };
        p.save_cursor()?;
        Ok(p)
    }

    /// Rebuilds a killed pipeline from its durable state: the cursor, the
    /// exported artifacts, and the caller-kept edit log (`batches[k]` =
    /// wire bytes of the k-th batch ever submitted, 0-based).
    ///
    /// Completed batches are re-applied deterministically (repair only —
    /// no retraining). An in-flight batch that had durably reached
    /// [`Stage::Exported`] is finished by reloading its artifact; one
    /// that died earlier is forgotten and must be resubmitted via
    /// [`Pipeline::process_batch`]. With no cursor on disk this is
    /// exactly [`Pipeline::new`].
    pub fn resume(
        cfg: PipelineConfig,
        net: RoadNetwork,
        batches: &[Vec<u8>],
    ) -> Result<Self, PipelineError> {
        let cursor_path = cfg.state_dir.join("pipeline.cursor");
        let cursor = match Cursor::load(&cursor_path) {
            Ok(c) => c,
            Err(CursorError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Self::new(cfg, net);
            }
            Err(e) => return Err(e.into()),
        };
        let mut live = LiveNetwork::new(net, &cfg.train.similarity);
        if (cursor.completed as usize) > batches.len() {
            return Err(PipelineError::ReplayMismatch(format!(
                "cursor says {} batches completed but the edit log holds only {}",
                cursor.completed,
                batches.len()
            )));
        }
        for (k, bytes) in batches[..cursor.completed as usize].iter().enumerate() {
            let batch = EditBatch::decode(bytes)?;
            live.apply(&batch).map_err(|e| {
                PipelineError::ReplayMismatch(format!("batch {} no longer applies: {e}", k + 1))
            })?;
        }
        let front = Arc::new(ServeFront::new(cfg.serve, cfg.serve_shards));
        let mut p = Self {
            cfg,
            live,
            front,
            cursor,
            dim: 0,
            last_good: None,
        };
        // Finish an in-flight batch whose artifact already made it to
        // disk: apply its edits, reload the artifact, no retraining.
        if p.cursor.inflight == Some(Stage::Exported) {
            let ord = p.cursor.completed as usize;
            let bytes = batches.get(ord).ok_or_else(|| {
                PipelineError::ReplayMismatch(format!(
                    "cursor has batch {} in flight but the edit log holds only {}",
                    ord + 1,
                    batches.len()
                ))
            })?;
            let batch = EditBatch::decode(bytes)?;
            p.live.apply(&batch)?;
            let gen = p.cursor.generation + 1;
            p.reload_stage(ord as u64 + 1, gen, false)?;
            p.cursor = Cursor {
                completed: p.cursor.completed + 1,
                inflight: None,
                generation: gen,
            };
            p.save_cursor()?;
        } else {
            // Anything short of Exported left nothing durable; the batch
            // will be redone from scratch when resubmitted.
            if p.cursor.inflight.is_some() {
                p.cursor.inflight = None;
                p.save_cursor()?;
            }
            if p.cursor.generation > 0 {
                let gen = p.cursor.generation;
                p.reload_stage(p.cursor.completed as u64, gen, false)?;
            }
        }
        Ok(p)
    }

    /// Number of batches fully processed.
    pub fn completed(&self) -> usize {
        self.cursor.completed as usize
    }

    /// Current pipeline generation (1 = bootstrap).
    pub fn generation(&self) -> u64 {
        self.cursor.generation
    }

    /// The query-facing serve handle, shareable across threads.
    pub fn front(&self) -> Arc<ServeFront> {
        Arc::clone(&self.front)
    }

    /// The live network and its incrementally repaired matrices.
    pub fn live(&self) -> &LiveNetwork {
        &self.live
    }

    fn cursor_path(&self) -> PathBuf {
        self.cfg.state_dir.join("pipeline.cursor")
    }

    fn save_cursor(&self) -> Result<(), PipelineError> {
        self.cursor.save(&self.cursor_path())?;
        Ok(())
    }

    fn artifact_path(&self, generation: u64) -> PathBuf {
        self.cfg.state_dir.join(format!("gen-{generation:06}.emb"))
    }

    fn fault_scheduled(&self, ordinal: u64, kind: PipelineFaultKind) -> bool {
        self.cfg
            .faults
            .iter()
            .any(|f| f.batch == ordinal && f.kind == kind)
    }

    /// Newest on-disk checkpoint whose probed header matches the training
    /// fingerprint (the [`Checkpoint::probe_header`] gate: a few hundred
    /// bytes read, no tensor sections).
    fn compatible_checkpoint(&self) -> Option<PathBuf> {
        let dir = self.cfg.train.checkpoint_dir.as_deref()?;
        let fp = self.cfg.train.fingerprint();
        let path = latest_checkpoint(dir, Some(fp))?;
        match Checkpoint::probe_header(&path) {
            Ok(meta) if meta.fingerprint == fp => Some(path),
            _ => None,
        }
    }

    /// Drives one batch end to end. On success the batch is durable: its
    /// artifact is on disk, the cursor advanced, and queries see the new
    /// generation. On error, nothing durable changed beyond the recorded
    /// stage — [`Pipeline::resume`] picks up from there.
    pub fn process_batch(&mut self, bytes: &[u8]) -> Result<BatchReport, PipelineError> {
        let _batch_span = sarn_obs::span!("sarn_pipeline_batch_seconds");
        let ordinal = self.cursor.completed as u64 + 1;
        let retries = self.cfg.max_stage_retries;
        let backoff = self.cfg.stage_backoff;

        // Stage 1 — applying: decode + validate, no mutation. A corrupt
        // record fails typed; retry re-reads the pristine bytes (as a
        // re-read from a durable log would).
        let corrupt = self.fault_scheduled(ordinal, PipelineFaultKind::CorruptEditRecord);
        let live_ref = &self.live;
        let batch = run_stage(ordinal, "applying", retries, backoff, |attempt| {
            let flipped;
            let data: &[u8] = if corrupt && attempt == 1 && !bytes.is_empty() {
                flipped = {
                    let mut b = bytes.to_vec();
                    let mid = b.len() / 2;
                    b[mid] ^= 0x20;
                    b
                };
                &flipped
            } else {
                bytes
            };
            let b = EditBatch::decode(data)?;
            live_ref.validate(&b)?;
            Ok(b)
        })?;
        self.cursor.inflight = Some(Stage::Applied);
        self.save_cursor()?;

        // Stage 2 — repairing: apply the edits, which interleaves the
        // A^t repairs (inside the RoadNetwork mutators) with the
        // localized A^s re-joins (SpatialIndex). The injected crash fires
        // *before* any mutation, so a retry starts from clean state —
        // matching a real kill, where the in-memory network dies with the
        // process and resume replays from the durable log.
        let crash = self.fault_scheduled(ordinal, PipelineFaultKind::MidRepairCrash);
        let live_mut = &mut self.live;
        let stats = run_stage(ordinal, "repairing", retries, backoff, |attempt| {
            if crash && attempt == 1 {
                return Err(PipelineError::InjectedCrash { stage: "repairing" });
            }
            Ok(live_mut.apply(&batch)?)
        })?;
        self.cursor.inflight = Some(Stage::Repaired);
        self.save_cursor()?;

        // Stages 3-5 — retrain, export, reload; shared with bootstrap.
        let used_fallback = self.train_export_reload(ordinal)?;
        let generation = self.cursor.generation + 1;
        self.cursor = Cursor {
            completed: self.cursor.completed + 1,
            inflight: None,
            generation,
        };
        self.save_cursor()?;
        sarn_obs::gauge("sarn_pipeline_generation").set(generation as f64);
        Ok(BatchReport {
            ordinal,
            generation,
            stats,
            used_fallback,
        })
    }

    /// Stages 3–5 for the current network state, producing pipeline
    /// generation `cursor.generation + 1`. Returns whether retraining
    /// fell back to last-known-good parameters.
    fn train_export_reload(&mut self, ordinal: u64) -> Result<bool, PipelineError> {
        let retries = self.cfg.max_stage_retries;
        let backoff = self.cfg.stage_backoff;
        let generation = self.cursor.generation + 1;

        // Stage 3 — retraining. Divergence and deadline overruns are NOT
        // retried (a deterministic retrain would fail identically);
        // they trigger the last-known-good fallback instead.
        let (embeddings, used_fallback) =
            run_stage(ordinal, "retraining", retries, backoff, |_attempt| {
                self.retrain(ordinal)
            })?;
        self.dim = embeddings.cols();
        if ordinal > 0 {
            self.cursor.inflight = Some(Stage::Retrained);
            self.save_cursor()?;
        }

        // Stage 4 — exporting: tmp + read-back validation + atomic
        // rename. A torn write is caught before the rename, so the final
        // path only ever holds complete, validated bytes.
        let torn = self.fault_scheduled(ordinal, PipelineFaultKind::TornExport);
        let path = self.artifact_path(generation);
        let emb_ref = &embeddings;
        run_stage(ordinal, "exporting", retries, backoff, |attempt| {
            export_artifact(&path, emb_ref, torn && attempt == 1)
        })?;
        if ordinal > 0 {
            self.cursor.inflight = Some(Stage::Exported);
            self.save_cursor()?;
        }

        // Stage 5 — reloading: hot-swap into the serve front.
        let inject = self.fault_scheduled(ordinal, PipelineFaultKind::ReloadIoFault);
        self.reload_stage(ordinal, generation, inject)?;
        Ok(used_fallback)
    }

    fn reload_stage(
        &mut self,
        ordinal: u64,
        generation: u64,
        inject: bool,
    ) -> Result<(), PipelineError> {
        let path = self.artifact_path(generation);
        if self.dim == 0 {
            // Resuming: learn the width from the artifact itself.
            self.dim = Tensor::load(&path)?.cols();
        }
        let front = &self.front;
        let net = self.live.network();
        let dim = self.dim;
        run_stage(
            ordinal,
            "reloading",
            self.cfg.max_stage_retries,
            self.cfg.stage_backoff,
            |attempt| front.reload_artifact(net, dim, &path, inject && attempt == 1),
        )
    }

    /// One retrain: warm-started from the newest compatible checkpoint,
    /// falling back to last-known-good parameters (in-memory snapshot,
    /// else newest compatible checkpoint) when training diverges or blows
    /// its deadline. Returns `(embeddings, used_fallback)`.
    fn retrain(&mut self, ordinal: u64) -> Result<(Tensor, bool), PipelineError> {
        let mut tcfg = self.cfg.train.clone();
        tcfg.resume_from = None;
        tcfg.resume_auto = false;
        tcfg.warm_start_from = self.compatible_checkpoint();
        if self.fault_scheduled(ordinal, PipelineFaultKind::DivergingRetrain) {
            // Sticky NaN gradient from the first batch on: the watchdog
            // rolls back, the fault re-fires, the tiny budget exhausts —
            // a deterministic TrainError::Diverged.
            tcfg.fault = Some(FaultSpec {
                epoch: 0,
                batch: 0,
                kind: FaultKind::NanGrad,
                sticky: true,
            });
            tcfg.watchdog.enabled = true;
            tcfg.watchdog.max_recoveries = 1;
        }
        match try_train(self.live.network(), &tcfg) {
            Ok(trained) => {
                self.last_good = Some(ParamStoreSnapshot::of(&trained.model.store));
                Ok((trained.embeddings, false))
            }
            Err(e @ (TrainError::Diverged(_) | TrainError::DeadlineExceeded { .. })) => {
                sarn_obs::counter("sarn_pipeline_fallbacks_total").inc();
                let emb = self.fallback_embeddings(e.to_string())?;
                Ok((emb, true))
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Last-known-good embeddings for the *current* network: seed a fresh
    /// model from the newest healthy parameters (prefix-copying vocab
    /// tables whose row counts moved with the network) and embed without
    /// taking a single gradient step.
    fn fallback_embeddings(&self, cause: String) -> Result<Tensor, PipelineError> {
        let snapshot = match &self.last_good {
            Some(s) => s.clone(),
            None => match self.compatible_checkpoint() {
                Some(path) => Checkpoint::load(&path)?.query,
                None => return Err(PipelineError::NoFallback { cause }),
            },
        };
        let net = self.live.network();
        let mut model = SarnModel::new(net, &self.cfg.train);
        warm_start_apply(&snapshot, &mut model.store)?;
        let augmenter = Augmenter::new(
            net.num_segments(),
            net.topo_edges().to_vec(),
            self.live.spatial_edges().to_vec(),
            self.cfg.train.augment,
        );
        let edges = augmenter.full_view().edge_index();
        Ok(model.embed_detached(&model.store, &edges))
    }
}

/// Writes `embeddings` to `path` atomically: tmp sibling, optional
/// injected tear, read-back validation pinning shape and finiteness,
/// fsync-backed rename. The tear is injected between write and
/// validation, so the validator — not luck — is what keeps torn bytes
/// from reaching the final path.
fn export_artifact(path: &Path, embeddings: &Tensor, tear: bool) -> Result<(), PipelineError> {
    let tmp = tmp_sibling(path);
    embeddings.save(&tmp)?;
    if tear {
        let len = fs::metadata(&tmp)
            .map_err(|source| PipelineError::Io {
                context: "statting artifact tmp",
                source,
            })?
            .len();
        let f = fs::OpenOptions::new()
            .write(true)
            .open(&tmp)
            .map_err(|source| PipelineError::Io {
                context: "opening artifact tmp for tear",
                source,
            })?;
        f.set_len(len / 2).map_err(|source| PipelineError::Io {
            context: "tearing artifact tmp",
            source,
        })?;
    }
    Tensor::load_validated(
        &tmp,
        &TensorExpectation {
            rows: Some(embeddings.rows()),
            cols: Some(embeddings.cols()),
            finite: true,
        },
    )?;
    fs::rename(&tmp, path).map_err(|source| PipelineError::Io {
        context: "publishing artifact",
        source,
    })?;
    Ok(())
}
