//! Integration tests of the online pipeline's happy path, fault
//! recovery, and crash-resume contract.

use std::time::Duration;

use sarn_core::{SarnConfig, SpatialJoin, SpatialSimilarity, SpatialSimilarityConfig};
use sarn_geo::Point;
use sarn_pipeline::{
    Cursor, EditBatch, NetworkEdit, Pipeline, PipelineConfig, PipelineFault, PipelineFaultKind,
    Stage,
};
use sarn_roadnet::{City, HighwayClass, RoadNetwork, SynthConfig};
use sarn_serve::ServeConfig;

fn net() -> RoadNetwork {
    SynthConfig::city(City::Chengdu).scaled(0.12).generate()
}

fn train_cfg(state_dir: &std::path::Path) -> SarnConfig {
    let mut cfg = SarnConfig::tiny();
    cfg.max_epochs = 2;
    cfg.checkpoint_every = 1;
    cfg.checkpoint_dir = Some(state_dir.join("ckpt"));
    cfg
}

fn state_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sarn-pipeline-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("state dir");
    dir
}

fn pipeline_cfg(name: &str) -> PipelineConfig {
    let dir = state_dir(name);
    let mut cfg = PipelineConfig::new(train_cfg(&dir), ServeConfig::default(), dir);
    cfg.stage_backoff = Duration::from_millis(1);
    cfg
}

/// A batch adding one segment hanging off segment index `nb`, removing
/// one, and reclassifying one — every edit kind in play.
fn mixed_batch(p: &Pipeline, fresh_key: u64) -> Vec<u8> {
    let live = p.live();
    let s = live.network().segment(3);
    EditBatch::new(vec![
        NetworkEdit::SegmentAdd {
            key: fresh_key,
            class: HighwayClass::Secondary,
            start: s.end,
            end: Point {
                lat: s.end.lat + 5e-4,
                lon: s.end.lon + 2e-4,
            },
            in_neighbors: vec![live.key_of(3)],
            out_neighbors: vec![],
        },
        NetworkEdit::SegmentRemove {
            key: live.key_of(10),
        },
        NetworkEdit::ReclassSegment {
            key: live.key_of(5),
            class: HighwayClass::Motorway,
        },
    ])
    .encode()
}

fn assert_index_matches_rebuild(p: &Pipeline) {
    let cfg = SpatialSimilarityConfig {
        join: SpatialJoin::Grid,
        ..SpatialSimilarityConfig::default()
    };
    let rebuilt = SpatialSimilarity::build(p.live().network(), &cfg);
    assert_eq!(p.live().spatial_edges(), rebuilt.edges());
}

#[test]
fn processes_batches_and_serves_monotone_generations() {
    let mut p = Pipeline::new(pipeline_cfg("happy"), net()).expect("bootstrap");
    assert_eq!(p.generation(), 1);
    let store = p.front().store().expect("bootstrap store");
    assert_eq!(store.num_segments(), p.live().network().num_segments());

    let r1 = p.process_batch(&mixed_batch(&p, 900)).expect("batch 1");
    assert_eq!((r1.ordinal, r1.generation), (1, 2));
    assert!(!r1.used_fallback);
    assert_eq!(r1.stats.added, 1);
    assert_eq!(r1.stats.removed, 1);
    assert_eq!(r1.stats.reclassed, 1);

    let r2 = p.process_batch(&mixed_batch(&p, 901)).expect("batch 2");
    assert_eq!((r2.ordinal, r2.generation), (2, 3));
    assert_index_matches_rebuild(&p);

    // The serve front tracks the edited network's size, and queries work.
    let store = p.front().store().expect("serving");
    assert_eq!(store.num_segments(), p.live().network().num_segments());
    let emb = store
        .embedding(0, store.deadline())
        .expect("query after swaps");
    assert_eq!(emb.len(), store.dim());
}

#[test]
fn every_fault_kind_is_absorbed_without_losing_a_generation() {
    let mut cfg = pipeline_cfg("faults");
    cfg.faults = vec![
        PipelineFault {
            batch: 1,
            kind: PipelineFaultKind::CorruptEditRecord,
        },
        PipelineFault {
            batch: 1,
            kind: PipelineFaultKind::TornExport,
        },
        PipelineFault {
            batch: 2,
            kind: PipelineFaultKind::ReloadIoFault,
        },
        PipelineFault {
            batch: 3,
            kind: PipelineFaultKind::DivergingRetrain,
        },
    ];
    let mut p = Pipeline::new(cfg, net()).expect("bootstrap");
    let r1 = p
        .process_batch(&mixed_batch(&p, 910))
        .expect("corrupt+torn absorbed");
    assert!(!r1.used_fallback);
    let r2 = p
        .process_batch(&mixed_batch(&p, 911))
        .expect("reload fault absorbed");
    assert_eq!(r2.generation, 3);
    // The diverging retrain falls back to last-known-good parameters
    // instead of failing the batch.
    let r3 = p
        .process_batch(&mixed_batch(&p, 912))
        .expect("divergence absorbed");
    assert!(r3.used_fallback, "diverging retrain must use the fallback");
    assert_eq!(p.generation(), 4);
    assert_index_matches_rebuild(&p);
    let store = p.front().store().expect("still serving");
    store
        .embedding(1, store.deadline())
        .expect("fallback embeddings serve");
}

#[test]
fn mid_repair_crash_then_resume_reaches_the_same_state() {
    let mut cfg = pipeline_cfg("crash");
    cfg.faults = vec![PipelineFault {
        batch: 2,
        kind: PipelineFaultKind::MidRepairCrash,
    }];
    // Max retries 0: the injected crash is fatal, like a real kill.
    cfg.max_stage_retries = 0;
    let resume_cfg = {
        let mut c = cfg.clone();
        c.faults.clear();
        c.max_stage_retries = 2;
        c
    };
    let mut p = Pipeline::new(cfg, net()).expect("bootstrap");
    let b1 = mixed_batch(&p, 920);
    p.process_batch(&b1).expect("batch 1");
    let b2 = mixed_batch(&p, 921);
    let err = p.process_batch(&b2).expect_err("injected crash");
    assert!(
        err.to_string().contains("injected crash"),
        "unexpected error: {err}"
    );
    drop(p);

    // Resume from durable state: batch 1 replays (no retrain), batch 2
    // is redone in full.
    let batches = vec![b1, b2.clone()];
    let mut p = Pipeline::resume(resume_cfg, net(), &batches).expect("resume");
    assert_eq!(p.completed(), 1, "batch 1 survived the crash");
    assert_eq!(p.generation(), 2);
    let r2 = p.process_batch(&b2).expect("batch 2 after resume");
    assert_eq!(r2.generation, 3);
    assert_index_matches_rebuild(&p);
}

#[test]
fn sharded_front_serves_routed_queries_and_swaps_shards_in_place() {
    let mut cfg = pipeline_cfg("sharded");
    cfg.serve_shards = 4;
    cfg.faults = vec![PipelineFault {
        batch: 1,
        kind: PipelineFaultKind::ReloadIoFault,
    }];
    let mut p = Pipeline::new(cfg, net()).expect("bootstrap");
    assert!(
        p.front().store().is_none(),
        "sharded mode must not expose a single-store front"
    );
    let router = p.front().router().expect("bootstrap router");
    assert!(router.sharded().num_shards() > 1, "partition collapsed");
    let knn = router.knn(0, 5, router.deadline()).expect("routed query");
    assert!(knn.coverage.complete(), "healthy fan-out must be complete");
    assert_eq!(knn.neighbors.len(), 5);

    // The mixed batch keeps the segment count (one add, one remove), so
    // the reload stage must swap shards in place on the SAME router —
    // absorbing the injected reload fault on its first attempt — instead
    // of rebuilding the front.
    let r1 = p.process_batch(&mixed_batch(&p, 940)).expect("batch 1");
    assert_eq!(r1.generation, 2);
    let after = p.front().router().expect("still routing");
    assert!(
        std::sync::Arc::ptr_eq(&router, &after),
        "same-geometry batch must hot-swap shards, not rebuild the router"
    );
    let knn = after.knn(1, 3, after.deadline()).expect("query after swap");
    assert!(knn.coverage.complete());
    let health = p.front().health().expect("sharded health");
    assert_eq!(
        health.shards.len(),
        after.sharded().num_shards(),
        "health must carry one row per shard"
    );
}

#[test]
fn resume_after_export_skips_retraining_and_just_reloads() {
    let cfg = pipeline_cfg("exported");
    let state_dir = cfg.state_dir.clone();
    let mut p = Pipeline::new(cfg.clone(), net()).expect("bootstrap");
    let b1 = mixed_batch(&p, 930);
    p.process_batch(&b1).expect("batch 1");
    drop(p);

    // Simulate a crash between export and reload of batch 1: the gen-2
    // artifact is on disk, but the cursor claims the batch never finished.
    Cursor {
        completed: 0,
        inflight: Some(Stage::Exported),
        generation: 1,
    }
    .save(&state_dir.join("pipeline.cursor"))
    .expect("rewind cursor");
    let ckpt_dir = state_dir.join("ckpt");
    let mut checkpoints_before: Vec<_> = std::fs::read_dir(&ckpt_dir)
        .expect("ckpt dir")
        .map(|e| e.expect("entry").path())
        .collect();
    checkpoints_before.sort();

    let p = Pipeline::resume(cfg, net(), &[b1]).expect("resume");
    assert_eq!(p.completed(), 1, "exported batch completed on resume");
    assert_eq!(p.generation(), 2);
    let store = p.front().store().expect("serving after resume");
    assert_eq!(store.num_segments(), p.live().network().num_segments());
    // No retraining happened: the checkpoint directory is untouched.
    let mut checkpoints_after: Vec<_> = std::fs::read_dir(&ckpt_dir)
        .expect("ckpt dir")
        .map(|e| e.expect("entry").path())
        .collect();
    checkpoints_after.sort();
    assert_eq!(checkpoints_after, checkpoints_before);
    assert_index_matches_rebuild(&p);
}
