//! # sarn-roadnet
//!
//! Road-network substrate for the SARN reproduction: OSM-like road segments
//! ([`RoadSegment`], [`HighwayClass`]), the directed segment graph with
//! Eq. 1 topological weights ([`RoadNetwork`]), and a procedural generator
//! ([`SynthConfig`]) that synthesizes city networks with the structural
//! properties of the paper's Chengdu/Beijing/San Francisco datasets
//! (see DESIGN.md for the substitution rationale).

#![warn(missing_docs)]

mod network;
mod synth;
mod types;

pub use network::{NetworkStats, RoadNetwork};
pub use synth::{City, SynthConfig};
pub use types::{HighwayClass, RoadSegment};
