//! The road-network graph `G = ⟨S, A^t⟩`.
//!
//! Segments are vertices; a directed topological edge `s_i -> s_j` exists
//! when `s_j` departs from the intersection `s_i` arrives at. Edge weights
//! follow Eq. 1: `A^t_{i,j} = (weight(s_i) + weight(s_j)) / 2`.

use sarn_geo::BoundingBox;
use sarn_graph::DiGraph;

use crate::types::RoadSegment;

/// A directed road network: segments plus the weighted topological adjacency.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    segments: Vec<RoadSegment>,
    /// `(i, j, A^t_{i,j})` triples, one per directed topological edge.
    topo_edges: Vec<(usize, usize, f64)>,
    bbox: BoundingBox,
}

/// Summary statistics in the shape of the paper's Table 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkStats {
    /// Number of road segments (graph vertices).
    pub num_segments: usize,
    /// Number of directed edges in `A^t`.
    pub num_topo_edges: usize,
    /// East-west extent in km.
    pub width_km: f64,
    /// North-south extent in km.
    pub height_km: f64,
    /// Mean segment length in meters.
    pub mean_segment_len_m: f64,
}

impl RoadNetwork {
    /// Builds a network from segments and directed connectivity pairs,
    /// computing Eq. 1 edge weights.
    ///
    /// # Panics
    /// Panics if a connectivity pair references a missing segment or if
    /// `segments` is empty.
    pub fn new(segments: Vec<RoadSegment>, connectivity: &[(usize, usize)]) -> Self {
        assert!(!segments.is_empty(), "a road network needs segments");
        let n = segments.len();
        let topo_edges = connectivity
            .iter()
            .map(|&(i, j)| {
                assert!(i < n && j < n, "connectivity ({i}, {j}) out of range");
                let w = (segments[i].class.weight() + segments[j].class.weight()) / 2.0;
                (i, j, w)
            })
            .collect();
        let bbox = BoundingBox::of(segments.iter().flat_map(|s| [s.start, s.end]));
        Self {
            segments,
            topo_edges,
            bbox,
        }
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The segments, indexed by vertex id.
    pub fn segments(&self) -> &[RoadSegment] {
        &self.segments
    }

    /// One segment.
    pub fn segment(&self, i: usize) -> &RoadSegment {
        &self.segments[i]
    }

    /// Mutable access to segments (used when assigning labels).
    pub fn segments_mut(&mut self) -> &mut [RoadSegment] {
        &mut self.segments
    }

    /// Directed topological edges with Eq. 1 weights.
    pub fn topo_edges(&self) -> &[(usize, usize, f64)] {
        &self.topo_edges
    }

    /// Bounding box of all segment endpoints.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Topology as a [`DiGraph`] with Eq. 1 weights (for walks and GCL
    /// baselines).
    pub fn topo_digraph(&self) -> DiGraph {
        DiGraph::from_edges(self.num_segments(), &self.topo_edges)
    }

    /// Topology as a [`DiGraph`] weighted for routing: traversing edge
    /// `s_i -> s_j` costs `(len_i + len_j) / 2`, so a shortest path between
    /// two segment midpoints equals the summed cost along the way.
    pub fn routing_digraph(&self) -> DiGraph {
        let edges: Vec<(usize, usize, f64)> = self
            .topo_edges
            .iter()
            .map(|&(i, j, _)| {
                (
                    i,
                    j,
                    (self.segments[i].length_m + self.segments[j].length_m) / 2.0,
                )
            })
            .collect();
        DiGraph::from_edges(self.num_segments(), &edges)
    }

    /// Table 3-style statistics.
    pub fn stats(&self) -> NetworkStats {
        let mean_len =
            self.segments.iter().map(|s| s.length_m).sum::<f64>() / self.num_segments() as f64;
        NetworkStats {
            num_segments: self.num_segments(),
            num_topo_edges: self.topo_edges.len(),
            width_km: self.bbox.width_m() / 1000.0,
            height_km: self.bbox.height_m() / 1000.0,
            mean_segment_len_m: mean_len,
        }
    }

    /// Indices of segments carrying a speed-limit label.
    pub fn labeled_segments(&self) -> Vec<usize> {
        (0..self.num_segments())
            .filter(|&i| self.segments[i].speed_limit_kmh.is_some())
            .collect()
    }

    // ---- online mutation (the incremental-update pipeline's write path) --

    /// Appends a segment, wiring it into `A^t`: a directed edge arrives
    /// from every listed in-neighbor and departs to every listed
    /// out-neighbor, each weighted per Eq. 1. Returns the new segment's
    /// index (always `num_segments() - 1`, so existing indices are stable).
    ///
    /// # Panics
    /// Panics if a neighbor index is out of range.
    pub fn add_segment(
        &mut self,
        segment: RoadSegment,
        in_neighbors: &[usize],
        out_neighbors: &[usize],
    ) -> usize {
        let new = self.segments.len();
        for &nb in in_neighbors.iter().chain(out_neighbors) {
            assert!(nb < new, "neighbor {nb} out of range for {new} segments");
        }
        let w_new = segment.class.weight();
        for &i in in_neighbors {
            let w = (self.segments[i].class.weight() + w_new) / 2.0;
            self.topo_edges.push((i, new, w));
        }
        for &j in out_neighbors {
            let w = (w_new + self.segments[j].class.weight()) / 2.0;
            self.topo_edges.push((new, j, w));
        }
        self.segments.push(segment);
        self.bbox = BoundingBox::of(self.segments.iter().flat_map(|s| [s.start, s.end]));
        new
    }

    /// Removes segment `r`: its topological edges are dropped and every
    /// surviving index above `r` shifts down by one (a monotone renumber,
    /// so relative segment order — and hence any index-sorted edge list —
    /// is preserved). Returns the removed segment.
    ///
    /// # Panics
    /// Panics if `r` is out of range or if it would empty the network (an
    /// empty network has no bounding box).
    pub fn remove_segment(&mut self, r: usize) -> RoadSegment {
        assert!(r < self.segments.len(), "segment {r} out of range");
        assert!(
            self.segments.len() > 1,
            "removing the last segment would empty the network"
        );
        let seg = self.segments.remove(r);
        self.topo_edges.retain(|&(i, j, _)| i != r && j != r);
        for (i, j, _) in &mut self.topo_edges {
            if *i > r {
                *i -= 1;
            }
            if *j > r {
                *j -= 1;
            }
        }
        self.bbox = BoundingBox::of(self.segments.iter().flat_map(|s| [s.start, s.end]));
        seg
    }

    /// Changes segment `i`'s highway class, recomputing the Eq. 1 weight
    /// of every topological edge incident to it (geometry is untouched, so
    /// `A^s` — whose weights depend only on geometry — is unaffected).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn reclass_segment(&mut self, i: usize, class: crate::types::HighwayClass) {
        assert!(i < self.segments.len(), "segment {i} out of range");
        self.segments[i].class = class;
        for &mut (a, b, ref mut w) in &mut self.topo_edges {
            if a == i || b == i {
                *w = (self.segments[a].class.weight() + self.segments[b].class.weight()) / 2.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HighwayClass;
    use sarn_geo::Point;

    fn two_segment_net() -> RoadNetwork {
        let a = RoadSegment::between(
            HighwayClass::Motorway,
            Point::new(30.0, 104.0),
            Point::new(30.001, 104.0),
        );
        let b = RoadSegment::between(
            HighwayClass::Residential,
            Point::new(30.001, 104.0),
            Point::new(30.002, 104.0),
        );
        RoadNetwork::new(vec![a, b], &[(0, 1)])
    }

    #[test]
    fn eq1_weights_average_segment_weights() {
        let net = two_segment_net();
        assert_eq!(net.topo_edges().len(), 1);
        let (_, _, w) = net.topo_edges()[0];
        assert_eq!(w, (6.0 + 2.0) / 2.0);
    }

    #[test]
    fn routing_weights_average_lengths() {
        let net = two_segment_net();
        let g = net.routing_digraph();
        let (_, w) = g.out_neighbors(0).next().unwrap();
        let expect = (net.segment(0).length_m + net.segment(1).length_m) / 2.0;
        assert!((w - expect).abs() < 1e-9);
    }

    #[test]
    fn stats_report_counts_and_extent() {
        let net = two_segment_net();
        let s = net.stats();
        assert_eq!(s.num_segments, 2);
        assert_eq!(s.num_topo_edges, 1);
        assert!(s.mean_segment_len_m > 100.0 && s.mean_segment_len_m < 120.0);
        assert!(s.height_km > 0.2 && s.height_km < 0.23);
    }

    #[test]
    fn labeled_segments_filters_by_label() {
        let mut net = two_segment_net();
        assert!(net.labeled_segments().is_empty());
        net.segments_mut()[1].speed_limit_kmh = Some(30);
        assert_eq!(net.labeled_segments(), vec![1]);
    }

    #[test]
    fn add_segment_wires_eq1_edges_and_grows_bbox() {
        let mut net = two_segment_net();
        let c = RoadSegment::between(
            HighwayClass::Primary,
            Point::new(30.002, 104.0),
            Point::new(30.003, 104.001),
        );
        let id = net.add_segment(c.clone(), &[1], &[0]);
        assert_eq!(id, 2);
        assert_eq!(net.num_segments(), 3);
        // New edges: 1 -> 2 (Residential+Primary)/2 and 2 -> 0 (Primary+Motorway)/2.
        assert!(net.topo_edges().contains(&(1, 2, (2.0 + 4.5) / 2.0)));
        assert!(net.topo_edges().contains(&(2, 0, (4.5 + 6.0) / 2.0)));
        assert!(net.bbox().contains(&Point::new(30.003, 104.001)));
    }

    #[test]
    fn remove_segment_renumbers_monotonically() {
        let mut net = two_segment_net();
        let c = RoadSegment::between(
            HighwayClass::Primary,
            Point::new(30.002, 104.0),
            Point::new(30.003, 104.0),
        );
        net.add_segment(c, &[1], &[]);
        let removed = net.remove_segment(0);
        assert_eq!(removed.class, HighwayClass::Motorway);
        assert_eq!(net.num_segments(), 2);
        // Old edge (0,1) died with segment 0; old (1,2) renumbered to (0,1).
        assert_eq!(net.topo_edges(), &[(0, 1, (2.0 + 4.5) / 2.0)]);
        // The bbox shrank back to the remaining extent.
        assert!((net.bbox().min_lat - 30.001).abs() < 1e-9);
    }

    #[test]
    fn reclass_recomputes_incident_weights_only() {
        let mut net = two_segment_net();
        net.reclass_segment(1, HighwayClass::Motorway);
        assert_eq!(net.segment(1).class, HighwayClass::Motorway);
        assert_eq!(net.topo_edges()[0], (0, 1, 6.0));
    }

    #[test]
    fn mutations_match_a_from_scratch_build() {
        // Applying the same final state through `new` must agree on
        // weights and bbox with the mutation path.
        let mut net = two_segment_net();
        let c = RoadSegment::between(
            HighwayClass::Primary,
            Point::new(30.002, 104.0),
            Point::new(30.003, 104.0),
        );
        net.add_segment(c.clone(), &[1], &[]);
        net.reclass_segment(0, HighwayClass::Trunk);
        let rebuilt = RoadNetwork::new(
            vec![net.segment(0).clone(), net.segment(1).clone(), c],
            &[(0, 1), (1, 2)],
        );
        assert_eq!(net.topo_edges(), rebuilt.topo_edges());
        assert_eq!(net.bbox(), rebuilt.bbox());
    }

    #[test]
    #[should_panic(expected = "last segment")]
    fn remove_refuses_to_empty_the_network() {
        let a = RoadSegment::between(
            HighwayClass::Primary,
            Point::new(30.0, 104.0),
            Point::new(30.001, 104.0),
        );
        let mut net = RoadNetwork::new(vec![a], &[]);
        net.remove_segment(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_connectivity() {
        let a = RoadSegment::between(
            HighwayClass::Primary,
            Point::new(30.0, 104.0),
            Point::new(30.001, 104.0),
        );
        let _ = RoadNetwork::new(vec![a], &[(0, 3)]);
    }
}
