//! The road-network graph `G = ⟨S, A^t⟩`.
//!
//! Segments are vertices; a directed topological edge `s_i -> s_j` exists
//! when `s_j` departs from the intersection `s_i` arrives at. Edge weights
//! follow Eq. 1: `A^t_{i,j} = (weight(s_i) + weight(s_j)) / 2`.

use sarn_geo::BoundingBox;
use sarn_graph::DiGraph;

use crate::types::RoadSegment;

/// A directed road network: segments plus the weighted topological adjacency.
#[derive(Clone, Debug)]
pub struct RoadNetwork {
    segments: Vec<RoadSegment>,
    /// `(i, j, A^t_{i,j})` triples, one per directed topological edge.
    topo_edges: Vec<(usize, usize, f64)>,
    bbox: BoundingBox,
}

/// Summary statistics in the shape of the paper's Table 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkStats {
    /// Number of road segments (graph vertices).
    pub num_segments: usize,
    /// Number of directed edges in `A^t`.
    pub num_topo_edges: usize,
    /// East-west extent in km.
    pub width_km: f64,
    /// North-south extent in km.
    pub height_km: f64,
    /// Mean segment length in meters.
    pub mean_segment_len_m: f64,
}

impl RoadNetwork {
    /// Builds a network from segments and directed connectivity pairs,
    /// computing Eq. 1 edge weights.
    ///
    /// # Panics
    /// Panics if a connectivity pair references a missing segment or if
    /// `segments` is empty.
    pub fn new(segments: Vec<RoadSegment>, connectivity: &[(usize, usize)]) -> Self {
        assert!(!segments.is_empty(), "a road network needs segments");
        let n = segments.len();
        let topo_edges = connectivity
            .iter()
            .map(|&(i, j)| {
                assert!(i < n && j < n, "connectivity ({i}, {j}) out of range");
                let w = (segments[i].class.weight() + segments[j].class.weight()) / 2.0;
                (i, j, w)
            })
            .collect();
        let bbox = BoundingBox::of(segments.iter().flat_map(|s| [s.start, s.end]));
        Self {
            segments,
            topo_edges,
            bbox,
        }
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The segments, indexed by vertex id.
    pub fn segments(&self) -> &[RoadSegment] {
        &self.segments
    }

    /// One segment.
    pub fn segment(&self, i: usize) -> &RoadSegment {
        &self.segments[i]
    }

    /// Mutable access to segments (used when assigning labels).
    pub fn segments_mut(&mut self) -> &mut [RoadSegment] {
        &mut self.segments
    }

    /// Directed topological edges with Eq. 1 weights.
    pub fn topo_edges(&self) -> &[(usize, usize, f64)] {
        &self.topo_edges
    }

    /// Bounding box of all segment endpoints.
    pub fn bbox(&self) -> &BoundingBox {
        &self.bbox
    }

    /// Topology as a [`DiGraph`] with Eq. 1 weights (for walks and GCL
    /// baselines).
    pub fn topo_digraph(&self) -> DiGraph {
        DiGraph::from_edges(self.num_segments(), &self.topo_edges)
    }

    /// Topology as a [`DiGraph`] weighted for routing: traversing edge
    /// `s_i -> s_j` costs `(len_i + len_j) / 2`, so a shortest path between
    /// two segment midpoints equals the summed cost along the way.
    pub fn routing_digraph(&self) -> DiGraph {
        let edges: Vec<(usize, usize, f64)> = self
            .topo_edges
            .iter()
            .map(|&(i, j, _)| {
                (
                    i,
                    j,
                    (self.segments[i].length_m + self.segments[j].length_m) / 2.0,
                )
            })
            .collect();
        DiGraph::from_edges(self.num_segments(), &edges)
    }

    /// Table 3-style statistics.
    pub fn stats(&self) -> NetworkStats {
        let mean_len =
            self.segments.iter().map(|s| s.length_m).sum::<f64>() / self.num_segments() as f64;
        NetworkStats {
            num_segments: self.num_segments(),
            num_topo_edges: self.topo_edges.len(),
            width_km: self.bbox.width_m() / 1000.0,
            height_km: self.bbox.height_m() / 1000.0,
            mean_segment_len_m: mean_len,
        }
    }

    /// Indices of segments carrying a speed-limit label.
    pub fn labeled_segments(&self) -> Vec<usize> {
        (0..self.num_segments())
            .filter(|&i| self.segments[i].speed_limit_kmh.is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HighwayClass;
    use sarn_geo::Point;

    fn two_segment_net() -> RoadNetwork {
        let a = RoadSegment::between(
            HighwayClass::Motorway,
            Point::new(30.0, 104.0),
            Point::new(30.001, 104.0),
        );
        let b = RoadSegment::between(
            HighwayClass::Residential,
            Point::new(30.001, 104.0),
            Point::new(30.002, 104.0),
        );
        RoadNetwork::new(vec![a, b], &[(0, 1)])
    }

    #[test]
    fn eq1_weights_average_segment_weights() {
        let net = two_segment_net();
        assert_eq!(net.topo_edges().len(), 1);
        let (_, _, w) = net.topo_edges()[0];
        assert_eq!(w, (6.0 + 2.0) / 2.0);
    }

    #[test]
    fn routing_weights_average_lengths() {
        let net = two_segment_net();
        let g = net.routing_digraph();
        let (_, w) = g.out_neighbors(0).next().unwrap();
        let expect = (net.segment(0).length_m + net.segment(1).length_m) / 2.0;
        assert!((w - expect).abs() < 1e-9);
    }

    #[test]
    fn stats_report_counts_and_extent() {
        let net = two_segment_net();
        let s = net.stats();
        assert_eq!(s.num_segments, 2);
        assert_eq!(s.num_topo_edges, 1);
        assert!(s.mean_segment_len_m > 100.0 && s.mean_segment_len_m < 120.0);
        assert!(s.height_km > 0.2 && s.height_km < 0.23);
    }

    #[test]
    fn labeled_segments_filters_by_label() {
        let mut net = two_segment_net();
        assert!(net.labeled_segments().is_empty());
        net.segments_mut()[1].speed_limit_kmh = Some(30);
        assert_eq!(net.labeled_segments(), vec![1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_connectivity() {
        let a = RoadSegment::between(
            HighwayClass::Primary,
            Point::new(30.0, 104.0),
            Point::new(30.001, 104.0),
        );
        let _ = RoadNetwork::new(vec![a], &[(0, 3)]);
    }
}
