//! Procedural road-network generation.
//!
//! The paper evaluates on OSM extracts of Chengdu, Beijing, and San
//! Francisco, which are not redistributable here. This module synthesizes
//! city road networks with the same structural ingredients — a jittered
//! street lattice with arterial avenues, ring roads, a motorway perimeter,
//! one-way minor streets, segments of ~70 m mean length, and speed-limit
//! labels correlated (but not perfectly) with road type — so every SARN
//! component consumes the same kinds of signal it would on the real data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sarn_geo::{LocalProjection, Point};
use sarn_graph::{weakly_connected_components, DiGraph};

use crate::network::RoadNetwork;
use crate::types::{HighwayClass, RoadSegment};

/// The road networks used by the paper's evaluation (Table 3 / Table 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum City {
    /// Chengdu, within the Second Ring Road ("CD").
    Chengdu,
    /// Beijing, within the Second Ring Road ("BJ").
    Beijing,
    /// Northeastern San Francisco ("SF").
    SanFrancisco,
    /// Smaller San Francisco region ("SF-S", Table 8).
    SanFranciscoSmall,
    /// Larger San Francisco region ("SF-L", Table 8).
    SanFranciscoLarge,
}

impl City {
    /// Short dataset name used in the paper's tables.
    pub fn short_name(self) -> &'static str {
        match self {
            City::Chengdu => "CD",
            City::Beijing => "BJ",
            City::SanFrancisco => "SF",
            City::SanFranciscoSmall => "SF-S",
            City::SanFranciscoLarge => "SF-L",
        }
    }
}

/// Configuration of the synthetic generator.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Dataset name.
    pub name: String,
    /// Southwest anchor of the region.
    pub origin: Point,
    /// Intersection lattice columns.
    pub cols: usize,
    /// Intersection lattice rows.
    pub rows: usize,
    /// Lattice spacing in meters.
    pub spacing_m: f64,
    /// Per-intersection position jitter in meters.
    pub jitter_m: f64,
    /// Every `k`-th row/column is an arterial (Primary) avenue.
    pub arterial_every: usize,
    /// Number of interior ring roads (Trunk class).
    pub ring_count: usize,
    /// Whether the perimeter is a motorway ring.
    pub motorway_ring: bool,
    /// Fraction of minor streets randomly removed.
    pub street_removal: f64,
    /// Fraction of minor streets made one-way.
    pub oneway_frac: f64,
    /// Target sub-segment length in meters (paper: ~70 m mean).
    pub chunk_len_m: f64,
    /// Fraction of segments given a speed-limit label.
    pub label_frac: f64,
    /// Number of circular speed zones perturbing limits away from the
    /// road-type default (drives the NMI between type and limit down).
    pub speed_zone_count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// Preset emulating one of the paper's datasets, scaled down to run on a
    /// CPU. Pass the result through [`SynthConfig::scaled`] to grow it.
    pub fn city(city: City) -> Self {
        match city {
            City::Chengdu => Self {
                name: "CD".into(),
                origin: Point::new(30.635, 104.035),
                cols: 16,
                rows: 18,
                spacing_m: 165.0,
                jitter_m: 18.0,
                arterial_every: 4,
                ring_count: 1,
                motorway_ring: true,
                street_removal: 0.10,
                oneway_frac: 0.15,
                chunk_len_m: 72.0,
                label_frac: 0.05,
                speed_zone_count: 2,
                seed: 0xCD,
            },
            City::Beijing => Self {
                name: "BJ".into(),
                origin: Point::new(39.875, 116.36),
                cols: 18,
                rows: 20,
                spacing_m: 150.0,
                jitter_m: 10.0,
                arterial_every: 5,
                ring_count: 2,
                motorway_ring: true,
                street_removal: 0.08,
                oneway_frac: 0.20,
                chunk_len_m: 70.0,
                label_frac: 0.03,
                speed_zone_count: 1,
                seed: 0xB1,
            },
            City::SanFrancisco => Self {
                name: "SF".into(),
                origin: Point::new(37.77, -122.435),
                cols: 19,
                rows: 20,
                spacing_m: 115.0,
                jitter_m: 6.0,
                arterial_every: 6,
                ring_count: 0,
                motorway_ring: true,
                street_removal: 0.06,
                oneway_frac: 0.30,
                chunk_len_m: 65.0,
                label_frac: 0.20,
                speed_zone_count: 5,
                seed: 0x5F,
            },
            City::SanFranciscoSmall => {
                let mut c = Self::city(City::SanFrancisco);
                c.name = "SF-S".into();
                c.cols = 14;
                c.rows = 14;
                c.seed = 0x5F5;
                c
            }
            City::SanFranciscoLarge => {
                let mut c = Self::city(City::SanFrancisco);
                c.name = "SF-L".into();
                c.cols = 27;
                c.rows = 28;
                c.seed = 0x5F1;
                c
            }
        }
    }

    /// Scales the lattice by `f` in each dimension (segment count grows
    /// roughly with `f^2`).
    pub fn scaled(mut self, f: f64) -> Self {
        self.cols = ((self.cols as f64 * f).round() as usize).max(4);
        self.rows = ((self.rows as f64 * f).round() as usize).max(4);
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the road network.
    pub fn generate(&self) -> RoadNetwork {
        Generator::new(self).run()
    }
}

#[derive(Clone, Copy)]
struct Street {
    a: usize,
    b: usize,
    class: HighwayClass,
    oneway: bool,
}

struct Generator<'c> {
    cfg: &'c SynthConfig,
    rng: StdRng,
    proj: LocalProjection,
}

impl<'c> Generator<'c> {
    fn new(cfg: &'c SynthConfig) -> Self {
        Self {
            cfg,
            rng: StdRng::seed_from_u64(cfg.seed),
            proj: LocalProjection::new(cfg.origin),
        }
    }

    fn run(mut self) -> RoadNetwork {
        let intersections = self.place_intersections();
        let streets = self.lay_streets();
        let (segments, connectivity) = self.build_segments(&intersections, &streets);
        let (segments, connectivity) = largest_component(segments, connectivity);
        let mut net = RoadNetwork::new(segments, &connectivity);
        self.assign_speed_limits(&mut net);
        net
    }

    fn node_id(&self, r: usize, c: usize) -> usize {
        r * self.cfg.cols + c
    }

    fn place_intersections(&mut self) -> Vec<Point> {
        let mut pts = Vec::with_capacity(self.cfg.rows * self.cfg.cols);
        for r in 0..self.cfg.rows {
            for c in 0..self.cfg.cols {
                let jx = self.rng.gen_range(-self.cfg.jitter_m..=self.cfg.jitter_m);
                let jy = self.rng.gen_range(-self.cfg.jitter_m..=self.cfg.jitter_m);
                pts.push(self.proj.unproject(
                    c as f64 * self.cfg.spacing_m + jx,
                    r as f64 * self.cfg.spacing_m + jy,
                ));
            }
        }
        pts
    }

    /// Road class of the street between two adjacent lattice nodes.
    fn street_class(&self, r: usize, c: usize, horizontal: bool) -> HighwayClass {
        let (rows, cols) = (self.cfg.rows, self.cfg.cols);
        // Perimeter: motorway ring.
        let on_perimeter = if horizontal {
            r == 0 || r == rows - 1
        } else {
            c == 0 || c == cols - 1
        };
        if on_perimeter && self.cfg.motorway_ring {
            return HighwayClass::Motorway;
        }
        // Interior ring roads at fixed insets.
        for ring in 1..=self.cfg.ring_count {
            let inset = ring * (rows.min(cols) / (2 * (self.cfg.ring_count + 1)));
            let on_ring = if horizontal {
                (r == inset || r == rows - 1 - inset) && c >= inset && c < cols - inset
            } else {
                (c == inset || c == cols - 1 - inset) && r >= inset && r < rows - inset
            };
            if on_ring {
                return HighwayClass::Trunk;
            }
        }
        // Arterial avenues.
        let arterial = if horizontal {
            r.is_multiple_of(self.cfg.arterial_every)
        } else {
            c.is_multiple_of(self.cfg.arterial_every)
        };
        if arterial {
            return HighwayClass::Primary;
        }
        // Secondary connectors between arterials, everything else local.
        let semi = if horizontal {
            r % self.cfg.arterial_every == self.cfg.arterial_every / 2
        } else {
            c % self.cfg.arterial_every == self.cfg.arterial_every / 2
        };
        if semi {
            HighwayClass::Secondary
        } else if (r + c).is_multiple_of(3) {
            HighwayClass::Tertiary
        } else {
            HighwayClass::Residential
        }
    }

    fn lay_streets(&mut self) -> Vec<Street> {
        let mut streets = Vec::new();
        for r in 0..self.cfg.rows {
            for c in 0..self.cfg.cols {
                // horizontal street (c, c+1)
                if c + 1 < self.cfg.cols {
                    let class = self.street_class(r, c, true);
                    if self.keep_street(class) {
                        streets.push(Street {
                            a: self.node_id(r, c),
                            b: self.node_id(r, c + 1),
                            class,
                            oneway: self.oneway(class),
                        });
                    }
                }
                // vertical street (r, r+1)
                if r + 1 < self.cfg.rows {
                    let class = self.street_class(r, c, false);
                    if self.keep_street(class) {
                        streets.push(Street {
                            a: self.node_id(r, c),
                            b: self.node_id(r + 1, c),
                            class,
                            oneway: self.oneway(class),
                        });
                    }
                }
            }
        }
        streets
    }

    fn keep_street(&mut self, class: HighwayClass) -> bool {
        if class >= HighwayClass::Tertiary {
            self.rng.gen_bool(1.0 - self.cfg.street_removal)
        } else {
            true
        }
    }

    fn oneway(&mut self, class: HighwayClass) -> bool {
        class >= HighwayClass::Secondary && self.rng.gen_bool(self.cfg.oneway_frac)
    }

    /// Splits streets into directed sub-segment chains and wires up
    /// intersection connectivity (no U-turns onto the reverse twin).
    fn build_segments(
        &mut self,
        intersections: &[Point],
        streets: &[Street],
    ) -> (Vec<RoadSegment>, Vec<(usize, usize)>) {
        let mut segments: Vec<RoadSegment> = Vec::new();
        let mut twin: Vec<Option<usize>> = Vec::new();
        let mut connectivity: Vec<(usize, usize)> = Vec::new();
        // Per intersection: segments departing / arriving.
        let mut departing: Vec<Vec<usize>> = vec![Vec::new(); intersections.len()];
        let mut arriving: Vec<Vec<usize>> = vec![Vec::new(); intersections.len()];

        for street in streets {
            let pa = intersections[street.a];
            let pb = intersections[street.b];
            let len = sarn_geo::haversine_m(&pa, &pb);
            let chunks = ((len / self.cfg.chunk_len_m).round() as usize).max(1);
            let fwd = self.make_chain(street, pa, pb, chunks, &mut segments);
            wire_chain(
                &fwd,
                street.a,
                street.b,
                &mut connectivity,
                &mut departing,
                &mut arriving,
            );
            twin.resize(segments.len(), None);
            if !street.oneway {
                let bwd = self.make_chain(street, pb, pa, chunks, &mut segments);
                wire_chain(
                    &bwd,
                    street.b,
                    street.a,
                    &mut connectivity,
                    &mut departing,
                    &mut arriving,
                );
                twin.resize(segments.len(), None);
                for k in 0..chunks {
                    twin[fwd[k]] = Some(bwd[chunks - 1 - k]);
                    twin[bwd[chunks - 1 - k]] = Some(fwd[k]);
                }
            }
        }

        // Intersection connectivity: every arriving segment continues onto
        // every departing segment except its own reverse twin.
        for node in 0..intersections.len() {
            for &ain in &arriving[node] {
                for &dout in &departing[node] {
                    if twin[ain] == Some(dout) {
                        continue;
                    }
                    connectivity.push((ain, dout));
                }
            }
        }
        (segments, connectivity)
    }

    /// Creates the chain of sub-segments for one direction of a street.
    fn make_chain(
        &mut self,
        street: &Street,
        from: Point,
        to: Point,
        chunks: usize,
        segments: &mut Vec<RoadSegment>,
    ) -> Vec<usize> {
        let (fx, fy) = self.proj.project(&from);
        let (tx, ty) = self.proj.project(&to);
        let mut ids = Vec::with_capacity(chunks);
        let mut prev = from;
        for k in 1..=chunks {
            let t = k as f64 / chunks as f64;
            // Slight lateral wobble on interior cut points keeps radians from
            // being perfectly collinear along a street.
            let wobble = if k < chunks {
                self.rng.gen_range(-3.0..=3.0)
            } else {
                0.0
            };
            let x = fx + (tx - fx) * t + wobble;
            let y = fy + (ty - fy) * t + wobble;
            let next = if k == chunks {
                to
            } else {
                self.proj.unproject(x, y)
            };
            segments.push(RoadSegment::between(street.class, prev, next));
            ids.push(segments.len() - 1);
            prev = next;
        }
        ids
    }

    /// Assigns speed-limit labels: road-type base speed shifted by circular
    /// zones, snapped to 10 km/h steps, surveyed on `label_frac` of segments.
    fn assign_speed_limits(&mut self, net: &mut RoadNetwork) {
        let bbox = *net.bbox();
        // Zone radii scale with the map so the type/limit correlation (the
        // paper's NMI caveat) does not collapse on reduced-scale networks:
        // each zone covers roughly 10-30% of the map's extent.
        let extent = bbox.width_m().max(bbox.height_m());
        let zones: Vec<(Point, f64, i32)> = (0..self.cfg.speed_zone_count)
            .map(|_| {
                let lat = self.rng.gen_range(bbox.min_lat..=bbox.max_lat);
                let lon = self.rng.gen_range(bbox.min_lon..=bbox.max_lon);
                let radius = self.rng.gen_range(0.1..0.3) * extent;
                let shift = [-20, -10, 10][self.rng.gen_range(0..3usize)];
                (Point::new(lat, lon), radius, shift)
            })
            .collect();
        let n = net.num_segments();
        for i in 0..n {
            if !self.rng.gen_bool(self.cfg.label_frac) {
                continue;
            }
            let seg = net.segment(i);
            let mid = seg.midpoint();
            let mut speed = seg.class.base_speed_kmh() as i32;
            for (center, radius, shift) in &zones {
                if sarn_geo::haversine_m(&mid, center) < *radius {
                    speed += shift;
                }
            }
            let speed = ((speed.max(20) + 5) / 10 * 10) as u32;
            net.segments_mut()[i].speed_limit_kmh = Some(speed);
        }
    }
}

fn wire_chain(
    chain: &[usize],
    from_node: usize,
    to_node: usize,
    connectivity: &mut Vec<(usize, usize)>,
    departing: &mut [Vec<usize>],
    arriving: &mut [Vec<usize>],
) {
    for pair in chain.windows(2) {
        connectivity.push((pair[0], pair[1]));
    }
    departing[from_node].push(chain[0]);
    arriving[to_node].push(*chain.last().expect("chains are non-empty"));
}

/// Keeps only the largest weakly-connected component, remapping indices.
fn largest_component(
    segments: Vec<RoadSegment>,
    connectivity: Vec<(usize, usize)>,
) -> (Vec<RoadSegment>, Vec<(usize, usize)>) {
    let n = segments.len();
    let edges: Vec<(usize, usize, f64)> = connectivity.iter().map(|&(a, b)| (a, b, 1.0)).collect();
    let g = DiGraph::from_edges(n, &edges);
    let comp = weakly_connected_components(&g);
    let num_comps = comp.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; num_comps];
    for &c in &comp {
        sizes[c] += 1;
    }
    let keep = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut remap = vec![usize::MAX; n];
    let mut kept_segments = Vec::new();
    for (i, seg) in segments.into_iter().enumerate() {
        if comp[i] == keep {
            remap[i] = kept_segments.len();
            kept_segments.push(seg);
        }
    }
    let kept_conn = connectivity
        .into_iter()
        .filter(|&(a, b)| remap[a] != usize::MAX && remap[b] != usize::MAX)
        .map(|(a, b)| (remap[a], remap[b]))
        .collect();
    (kept_segments, kept_conn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cd_preset_has_table3_like_shape() {
        let net = SynthConfig::city(City::Chengdu).generate();
        let s = net.stats();
        assert!(s.num_segments > 1200, "{} segments", s.num_segments);
        assert!(s.num_segments < 4000, "{} segments", s.num_segments);
        // The paper's edge/segment ratio is ~1.7 (50,325 / 29,593).
        let ratio = s.num_topo_edges as f64 / s.num_segments as f64;
        assert!((1.1..2.8).contains(&ratio), "A^t ratio {ratio}");
        assert!(
            (40.0..110.0).contains(&s.mean_segment_len_m),
            "mean len {}",
            s.mean_segment_len_m
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SynthConfig::city(City::Chengdu).generate();
        let b = SynthConfig::city(City::Chengdu).generate();
        assert_eq!(a.num_segments(), b.num_segments());
        assert_eq!(a.topo_edges().len(), b.topo_edges().len());
        let c = SynthConfig::city(City::Chengdu).with_seed(123).generate();
        assert_ne!(a.num_segments(), 0);
        // Different seed almost surely changes the removal pattern.
        assert!(
            a.num_segments() != c.num_segments() || a.topo_edges().len() != c.topo_edges().len()
        );
    }

    #[test]
    fn network_is_weakly_connected() {
        let net = SynthConfig::city(City::SanFrancisco).generate();
        let comp = weakly_connected_components(&net.topo_digraph());
        assert!(comp.iter().all(|&c| c == comp[0]));
    }

    #[test]
    fn size_presets_scale_two_fold() {
        let s = SynthConfig::city(City::SanFranciscoSmall)
            .generate()
            .num_segments();
        let m = SynthConfig::city(City::SanFrancisco)
            .generate()
            .num_segments();
        let l = SynthConfig::city(City::SanFranciscoLarge)
            .generate()
            .num_segments();
        assert!(
            m as f64 / s as f64 > 1.5,
            "SF/SF-S = {}",
            m as f64 / s as f64
        );
        assert!(
            l as f64 / m as f64 > 1.5,
            "SF-L/SF = {}",
            l as f64 / m as f64
        );
    }

    #[test]
    fn labels_exist_and_take_several_values() {
        let net = SynthConfig::city(City::SanFrancisco).generate();
        let labeled = net.labeled_segments();
        assert!(labeled.len() > 100, "{} labels", labeled.len());
        let mut values: Vec<u32> = labeled
            .iter()
            .map(|&i| net.segment(i).speed_limit_kmh.unwrap())
            .collect();
        values.sort_unstable();
        values.dedup();
        assert!(values.len() >= 4, "{} distinct limits", values.len());
    }

    #[test]
    fn motorway_ring_exists_on_perimeter() {
        let net = SynthConfig::city(City::Chengdu).generate();
        let motorways = net
            .segments()
            .iter()
            .filter(|s| s.class == HighwayClass::Motorway)
            .count();
        assert!(motorways > 50, "{motorways} motorway segments");
    }

    #[test]
    fn no_u_turn_connectivity() {
        // No topological edge may connect a segment to its exact reverse.
        let net = SynthConfig::city(City::Chengdu).generate();
        for &(i, j, _) in net.topo_edges() {
            let (a, b) = (net.segment(i), net.segment(j));
            let reversed = sarn_geo::haversine_m(&a.start, &b.end) < 1.0
                && sarn_geo::haversine_m(&a.end, &b.start) < 1.0;
            assert!(!reversed, "U-turn edge {i} -> {j}");
        }
    }

    #[test]
    fn scaled_config_grows_lattice() {
        let base = SynthConfig::city(City::Chengdu);
        let grown = base.clone().scaled(1.5);
        assert_eq!(grown.cols, 24);
        assert_eq!(grown.rows, 27);
    }
}
