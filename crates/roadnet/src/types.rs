//! Road segments and OSM-like highway classes.

use sarn_geo::{normalize_radian, Point};

/// OSM-like road type ("highway" tag), ordered from most to least important.
///
/// The SARN paper derives segment weights from these types, "e.g., 6.0 for
/// motorways and 2.0 for residential roads" (Eq. 1 discussion); the weights
/// here interpolate that scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HighwayClass {
    /// Restricted-access major divided highway.
    Motorway,
    /// Important national road that is not a motorway.
    Trunk,
    /// Major arterial road.
    Primary,
    /// Secondary arterial.
    Secondary,
    /// Local connector.
    Tertiary,
    /// Local access street.
    Residential,
    /// Parking aisles, alleys, and other minor ways.
    Service,
}

impl HighwayClass {
    /// All classes in importance order.
    pub const ALL: [HighwayClass; 7] = [
        HighwayClass::Motorway,
        HighwayClass::Trunk,
        HighwayClass::Primary,
        HighwayClass::Secondary,
        HighwayClass::Tertiary,
        HighwayClass::Residential,
        HighwayClass::Service,
    ];

    /// Importance weight used for `A^t` (Eq. 1) and augmentation (Eq. 6).
    pub fn weight(self) -> f64 {
        match self {
            HighwayClass::Motorway => 6.0,
            HighwayClass::Trunk => 5.0,
            HighwayClass::Primary => 4.5,
            HighwayClass::Secondary => 4.0,
            HighwayClass::Tertiary => 3.0,
            HighwayClass::Residential => 2.0,
            HighwayClass::Service => 1.5,
        }
    }

    /// Dense integer id (used as the type-feature vocabulary index).
    pub fn index(self) -> usize {
        match self {
            HighwayClass::Motorway => 0,
            HighwayClass::Trunk => 1,
            HighwayClass::Primary => 2,
            HighwayClass::Secondary => 3,
            HighwayClass::Tertiary => 4,
            HighwayClass::Residential => 5,
            HighwayClass::Service => 6,
        }
    }

    /// Typical legal speed in km/h before zone modifiers.
    pub fn base_speed_kmh(self) -> u32 {
        match self {
            HighwayClass::Motorway => 100,
            HighwayClass::Trunk => 80,
            HighwayClass::Primary => 60,
            HighwayClass::Secondary => 50,
            HighwayClass::Tertiary => 40,
            HighwayClass::Residential => 30,
            HighwayClass::Service => 20,
        }
    }
}

/// One directed road segment — a vertex of the road-network graph.
///
/// Matches the paper's 5-tuple
/// `⟨type, length, radian, start, end⟩` (§3); `speed_limit_kmh` is a
/// downstream-task label and is **not** part of the model input features.
#[derive(Clone, Debug)]
pub struct RoadSegment {
    /// Road type.
    pub class: HighwayClass,
    /// Length in meters.
    pub length_m: f64,
    /// Travel direction in radians, clockwise from north, in `[0, 2π)`.
    pub radian: f64,
    /// Start point.
    pub start: Point,
    /// End point.
    pub end: Point,
    /// Posted speed limit, if surveyed (downstream label only).
    pub speed_limit_kmh: Option<u32>,
}

impl RoadSegment {
    /// Builds a segment between two points, deriving length and radian.
    pub fn between(class: HighwayClass, start: Point, end: Point) -> Self {
        Self {
            class,
            length_m: sarn_geo::haversine_m(&start, &end),
            radian: normalize_radian(start.bearing_to(&end)),
            start,
            end,
            speed_limit_kmh: None,
        }
    }

    /// Midpoint of the segment (used by `A^s` and the sampling grid).
    pub fn midpoint(&self) -> Point {
        self.start.midpoint(&self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_decrease_with_importance() {
        let mut prev = f64::INFINITY;
        for c in HighwayClass::ALL {
            assert!(c.weight() < prev, "{c:?} weight not decreasing");
            prev = c.weight();
        }
        assert_eq!(HighwayClass::Motorway.weight(), 6.0);
        assert_eq!(HighwayClass::Residential.weight(), 2.0);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = vec![false; HighwayClass::ALL.len()];
        for c in HighwayClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn between_derives_geometry() {
        let s = RoadSegment::between(
            HighwayClass::Primary,
            Point::new(30.0, 104.0),
            Point::new(30.001, 104.0),
        );
        assert!((s.length_m - 111.2).abs() < 1.0, "len {}", s.length_m);
        assert!(s.radian.abs() < 1e-6, "northbound radian {}", s.radian);
        let m = s.midpoint();
        assert!((m.lat - 30.0005).abs() < 1e-9);
    }
}
