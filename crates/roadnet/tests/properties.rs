//! Property-based tests on the synthetic road-network generator.

use proptest::prelude::*;
use sarn_graph::weakly_connected_components;
use sarn_roadnet::{City, SynthConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn generated_networks_are_structurally_sound(
        seed in 0u64..1000,
        scale in 0.25f64..0.5,
    ) {
        let net = SynthConfig::city(City::Chengdu)
            .scaled(scale)
            .with_seed(seed)
            .generate();
        let n = net.num_segments();
        prop_assert!(n > 20, "degenerate network: {n} segments");

        // Connectivity endpoints are valid and weights follow Eq. 1.
        for &(i, j, w) in net.topo_edges() {
            prop_assert!(i < n && j < n);
            let expect = (net.segment(i).class.weight() + net.segment(j).class.weight()) / 2.0;
            prop_assert!((w - expect).abs() < 1e-12);
        }

        // Weak connectivity (the generator keeps the largest component).
        let comp = weakly_connected_components(&net.topo_digraph());
        prop_assert!(comp.iter().all(|&c| c == comp[0]));

        // Geometry sanity: every segment has positive length, a normalized
        // radian, and its endpoints inside the bounding box.
        for seg in net.segments() {
            prop_assert!(seg.length_m > 0.0);
            prop_assert!((0.0..2.0 * std::f64::consts::PI).contains(&seg.radian));
            prop_assert!(net.bbox().contains(&seg.start));
            prop_assert!(net.bbox().contains(&seg.end));
        }
    }

    #[test]
    fn connected_segments_share_an_endpoint(seed in 0u64..100) {
        let net = SynthConfig::city(City::SanFrancisco)
            .scaled(0.3)
            .with_seed(seed)
            .generate();
        for &(i, j, _) in net.topo_edges().iter().take(500) {
            // s_j departs where s_i arrives (within lattice jitter).
            let gap = sarn_geo::haversine_m(&net.segment(i).end, &net.segment(j).start);
            prop_assert!(gap < 1.0, "edge ({i},{j}) gap {gap} m");
        }
    }

    #[test]
    fn speed_limits_are_plausible(seed in 0u64..100) {
        let mut cfg = SynthConfig::city(City::SanFrancisco).scaled(0.3).with_seed(seed);
        cfg.label_frac = 0.3;
        let net = cfg.generate();
        let labeled = net.labeled_segments();
        prop_assert!(!labeled.is_empty());
        for &i in &labeled {
            let s = net.segment(i).speed_limit_kmh.unwrap();
            prop_assert!((20..=120).contains(&s), "speed {s}");
            prop_assert_eq!(s % 10, 0, "speed {} not a multiple of 10", s);
        }
    }
}
