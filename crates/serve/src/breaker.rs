//! Per-shard circuit breakers: closed → open → half-open with a single
//! probed recovery slot.
//!
//! The breaker is the router's memory of a shard's recent behavior. While
//! **closed**, requests flow and consecutive typed failures are counted;
//! at [`BreakerConfig::failure_threshold`] the breaker **opens** and the
//! router routes around the shard (quarantine). After
//! [`BreakerConfig::open_cooldown`] the next admission attempt converts
//! the breaker to **half-open** and becomes the *probe*: exactly one
//! request is allowed through to test the shard. A successful probe
//! re-closes the breaker (quarantine exit); a failed probe re-opens it
//! with a fresh cooldown.
//!
//! ## Concurrency (loom-free reasoning)
//!
//! The state lives in one `AtomicU8` and every transition is a single
//! compare-exchange on it, so each state change has exactly one winner:
//!
//! - **Open → half-open** happens only inside [`CircuitBreaker::try_admit`]
//!   via CAS. Two racing admitters both observing an elapsed cooldown
//!   race the CAS; the winner becomes the probe (`Admission::Probe`), the
//!   loser observes the failed CAS and is rejected. There is never more
//!   than one in-flight probe, so concurrent probes cannot double-close.
//! - **Half-open → closed / open** happens only in
//!   [`CircuitBreaker::record_probe`], which only the unique probe owner
//!   calls — single-threaded by construction, and still guarded by CAS
//!   against programming errors (a stale caller finds the state moved and
//!   reports no transition).
//! - **Closed → open** happens in [`CircuitBreaker::record_failure`]: the
//!   failure counter is a `fetch_add`, and only the thread whose
//!   increment *reaches* the threshold attempts the CAS. Two threads
//!   cannot both reach it (fetch_add returns distinct values), and a
//!   thread racing a concurrent `record_success` reset simply loses the
//!   CAS. Every transition function returns the `(from, to)` edge to the
//!   caller exactly once — the CAS winner — so the router journals
//!   exactly one event per state change.
//!
//! Orderings are `AcqRel`/`Acquire` on the state so a thread that
//! observes `Open` also observes the `opened_at` instant written before
//! the transition (released by the same CAS); the counters are relaxed —
//! they are monotonic telemetry, not synchronization.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Knobs of a per-shard [`CircuitBreaker`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive typed failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before allowing one half-open
    /// probe.
    pub open_cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(100),
        }
    }
}

/// Where a breaker is in its closed → open → half-open cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are counted.
    Closed,
    /// The shard is quarantined; requests are rejected until the cooldown
    /// elapses.
    Open,
    /// One probe is in flight; everything else is rejected until it
    /// reports.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (journal/event encoding).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => BreakerState::Closed,
            1 => BreakerState::Open,
            _ => BreakerState::HalfOpen,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// What [`CircuitBreaker::try_admit`] decided for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Closed breaker: proceed normally.
    Allow,
    /// This request is the half-open probe: proceed, and report the
    /// outcome through [`CircuitBreaker::record_probe`].
    Probe,
    /// Open breaker (or a probe already in flight): route around.
    Reject,
}

/// A state transition the caller should journal: `(from, to)`.
pub type Transition = (BreakerState, BreakerState);

/// One shard's circuit breaker. All state is atomics plus a mutex-held
/// `Instant` (the open timestamp); see the module docs for the
/// transition-uniqueness argument.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: AtomicU8,
    consecutive_failures: AtomicU32,
    /// When the breaker last opened. Behind a mutex because `Instant` has
    /// no atomic representation; written before the CAS that publishes
    /// `Open`, read only after observing `Open` (Acquire), so readers see
    /// the matching timestamp.
    opened_at: Mutex<Option<Instant>>,
    /// Lifetime transition count (telemetry).
    transitions: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: AtomicU8::new(BreakerState::Closed.as_u8()),
            consecutive_failures: AtomicU32::new(0),
            opened_at: Mutex::new(None),
            transitions: AtomicU64::new(0),
        }
    }

    /// The thresholds this breaker runs with.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// Current state (racy by nature; exact at the instant of the load).
    pub fn state(&self) -> BreakerState {
        BreakerState::from_u8(self.state.load(Ordering::Acquire))
    }

    /// Consecutive typed failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::Relaxed)
    }

    /// Lifetime state transitions.
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    fn lock_opened_at(&self) -> std::sync::MutexGuard<'_, Option<Instant>> {
        self.opened_at
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn cas(&self, from: BreakerState, to: BreakerState) -> bool {
        let won = self
            .state
            .compare_exchange(
                from.as_u8(),
                to.as_u8(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok();
        if won {
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
        won
    }

    /// Gate one request. Returns the winner-unique [`Admission::Probe`]
    /// when an elapsed cooldown converts this breaker to half-open (see
    /// module docs), plus the transition to journal, if any.
    pub fn try_admit(&self) -> (Admission, Option<Transition>) {
        match self.state() {
            BreakerState::Closed => (Admission::Allow, None),
            BreakerState::HalfOpen => (Admission::Reject, None),
            BreakerState::Open => {
                let elapsed = self
                    .lock_opened_at()
                    .map(|t| t.elapsed() >= self.cfg.open_cooldown)
                    .unwrap_or(true);
                if !elapsed {
                    return (Admission::Reject, None);
                }
                if self.cas(BreakerState::Open, BreakerState::HalfOpen) {
                    (
                        Admission::Probe,
                        Some((BreakerState::Open, BreakerState::HalfOpen)),
                    )
                } else {
                    // Another admitter won the probe slot (or the probe
                    // already resolved the state) — route around.
                    (Admission::Reject, None)
                }
            }
        }
    }

    /// Report a non-probe success: resets the consecutive-failure streak.
    pub fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
    }

    /// Report a non-probe typed failure. Opens the breaker when the
    /// streak reaches the threshold; the unique thread whose increment
    /// hits it gets the transition to journal.
    pub fn record_failure(&self) -> Option<Transition> {
        let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if streak < self.cfg.failure_threshold {
            return None;
        }
        // Only the increment that *reaches* the threshold tries to open;
        // later failures (streak > threshold) find the breaker already
        // open and their CAS loses — one journal entry per opening.
        if self.cas(BreakerState::Closed, BreakerState::Open) {
            *self.lock_opened_at() = Some(Instant::now());
            Some((BreakerState::Closed, BreakerState::Open))
        } else {
            None
        }
    }

    /// Report the half-open probe's outcome. Success re-closes the
    /// breaker (quarantine exit); failure re-opens it with a fresh
    /// cooldown. Only the probe owner calls this, so the transition is
    /// single-threaded; the CAS still guards against misuse.
    pub fn record_probe(&self, ok: bool) -> Option<Transition> {
        if ok {
            if self.cas(BreakerState::HalfOpen, BreakerState::Closed) {
                self.consecutive_failures.store(0, Ordering::Relaxed);
                return Some((BreakerState::HalfOpen, BreakerState::Closed));
            }
        } else {
            // Refresh the cooldown *before* publishing Open so a racing
            // try_admit that observes Open (Acquire) sees the new stamp.
            *self.lock_opened_at() = Some(Instant::now());
            if self.cas(BreakerState::HalfOpen, BreakerState::Open) {
                return Some((BreakerState::HalfOpen, BreakerState::Open));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(5),
        }
    }

    #[test]
    fn closed_allows_and_successes_reset_the_streak() {
        let b = CircuitBreaker::new(fast());
        assert_eq!(b.try_admit().0, Admission::Allow);
        assert!(b.record_failure().is_none());
        assert!(b.record_failure().is_none());
        b.record_success();
        assert_eq!(b.consecutive_failures(), 0);
        // The reset streak means two more failures still do not open it.
        assert!(b.record_failure().is_none());
        assert!(b.record_failure().is_none());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn threshold_opens_exactly_once_and_cooldown_gates_the_probe() {
        let b = CircuitBreaker::new(fast());
        assert!(b.record_failure().is_none());
        assert!(b.record_failure().is_none());
        assert_eq!(
            b.record_failure(),
            Some((BreakerState::Closed, BreakerState::Open))
        );
        // Further failures on the open breaker journal nothing new.
        assert!(b.record_failure().is_none());
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.try_admit().0, Admission::Reject);
        std::thread::sleep(Duration::from_millis(7));
        let (adm, tr) = b.try_admit();
        assert_eq!(adm, Admission::Probe);
        assert_eq!(tr, Some((BreakerState::Open, BreakerState::HalfOpen)));
        // While the probe is out, everyone else is rejected.
        assert_eq!(b.try_admit().0, Admission::Reject);
        assert_eq!(
            b.record_probe(true),
            Some((BreakerState::HalfOpen, BreakerState::Closed))
        );
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn failed_probe_reopens_with_a_fresh_cooldown() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(7));
        assert_eq!(b.try_admit().0, Admission::Probe);
        assert_eq!(
            b.record_probe(false),
            Some((BreakerState::HalfOpen, BreakerState::Open))
        );
        // Cooldown restarted: an immediate retry is rejected again.
        assert_eq!(b.try_admit().0, Admission::Reject);
        std::thread::sleep(Duration::from_millis(7));
        assert_eq!(b.try_admit().0, Admission::Probe);
    }

    #[test]
    fn concurrent_admits_grant_exactly_one_probe() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_cooldown: Duration::ZERO,
        });
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        let probes = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    if b.try_admit().0 == Admission::Probe {
                        probes.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(probes.load(Ordering::Relaxed), 1, "one probe slot only");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn concurrent_failures_journal_exactly_one_opening() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 4,
            open_cooldown: Duration::from_secs(60),
        });
        let openings = std::sync::atomic::AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..16 {
                s.spawn(|| {
                    if b.record_failure().is_some() {
                        openings.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(openings.load(Ordering::Relaxed), 1);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions(), 1);
    }
}
