//! Serving knobs and the injectable load fault.

use std::time::Duration;

/// Knobs of an [`crate::EmbeddingStore`].
///
/// The bench binaries read these from `SARN_SERVE_*` environment
/// variables via [`ServeConfig::from_env`]; library callers set fields
/// directly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Hard in-flight request ceiling: admission beyond this sheds the
    /// request with [`crate::ServeError::Overloaded`].
    pub max_inflight: usize,
    /// Soft pressure threshold: while more than this many requests are in
    /// flight, exact k-NN degrades to the grid-approximate path (`0`
    /// disables degradation).
    pub degrade_inflight: usize,
    /// Default per-request time budget (`None` = unbounded); individual
    /// requests may override it with their own [`crate::Deadline`].
    pub default_deadline: Option<Duration>,
    /// Reload retries after the first failed attempt (total attempts are
    /// `reload_retries + 1`).
    pub reload_retries: usize,
    /// Sleep before the first reload retry; doubles per subsequent retry.
    pub reload_backoff: Duration,
    /// Rows scanned between deadline probes inside k-NN loops.
    pub deadline_check_every: usize,
    /// Cell side in meters of the spatial grid backing approximate k-NN.
    pub grid_clen_m: f64,
    /// Starting Chebyshev cell radius of the approximate candidate search
    /// (grows until enough candidates are found).
    pub approx_radius: usize,
    /// Staleness SLO: when the live generation's age exceeds this, the
    /// store's health degrades to [`crate::ServeState::Stale`] (queries
    /// keep being served — stale answers beat no answers — but the breach
    /// is journaled and counted so an operator, or the online pipeline,
    /// reacts). `None` disables the check.
    pub max_staleness: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            degrade_inflight: 48,
            default_deadline: None,
            reload_retries: 3,
            reload_backoff: Duration::from_millis(10),
            deadline_check_every: 256,
            grid_clen_m: 500.0,
            approx_radius: 1,
            max_staleness: None,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl ServeConfig {
    /// Reads the `SARN_SERVE_*` environment knobs, falling back to the
    /// defaults: `SARN_SERVE_MAX_INFLIGHT`, `SARN_SERVE_DEGRADE_INFLIGHT`,
    /// `SARN_SERVE_DEADLINE_MS` (`0` = unbounded),
    /// `SARN_SERVE_RELOAD_RETRIES`, `SARN_SERVE_RELOAD_BACKOFF_MS`,
    /// `SARN_SERVE_CLEN_M`, `SARN_SERVE_APPROX_RADIUS`, and
    /// `SARN_SERVE_MAX_STALENESS_S` (`0` = no staleness SLO; fractional
    /// seconds accepted).
    pub fn from_env() -> Self {
        let d = ServeConfig::default();
        let deadline_ms: u64 = env_parse("SARN_SERVE_DEADLINE_MS", 0);
        let max_staleness_s: f64 = env_parse("SARN_SERVE_MAX_STALENESS_S", 0.0);
        Self {
            max_inflight: env_parse("SARN_SERVE_MAX_INFLIGHT", d.max_inflight),
            degrade_inflight: env_parse("SARN_SERVE_DEGRADE_INFLIGHT", d.degrade_inflight),
            default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
            reload_retries: env_parse("SARN_SERVE_RELOAD_RETRIES", d.reload_retries),
            reload_backoff: Duration::from_millis(env_parse(
                "SARN_SERVE_RELOAD_BACKOFF_MS",
                d.reload_backoff.as_millis() as u64,
            )),
            deadline_check_every: d.deadline_check_every,
            grid_clen_m: env_parse("SARN_SERVE_CLEN_M", d.grid_clen_m),
            approx_radius: env_parse("SARN_SERVE_APPROX_RADIUS", d.approx_radius),
            max_staleness: (max_staleness_s > 0.0 && max_staleness_s.is_finite())
                .then(|| Duration::from_secs_f64(max_staleness_s)),
        }
    }
}

/// Injected reload damage, in the mold of the training watchdog's
/// `FaultSpec`: deterministic, test-only sabotage of the load path so the
/// stale-fallback contract can be exercised without relying on real disk
/// failures. Set on a store with [`crate::EmbeddingStore::inject_fault`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadFault {
    /// The next this many load attempts fail with an injected I/O error
    /// (each attempt decrements the counter, so bounded retry eventually
    /// outlasts a transient fault).
    pub fail_loads: u32,
    /// Sleep applied to every load attempt while the fault is installed —
    /// simulated slow I/O for deadline and churn tests.
    pub delay_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_coherent() {
        let d = ServeConfig::default();
        assert!(d.degrade_inflight < d.max_inflight);
        assert!(d.default_deadline.is_none());
        assert!(d.reload_backoff > Duration::ZERO);
        assert!(d.deadline_check_every > 0);
    }
}
