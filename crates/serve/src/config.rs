//! Serving knobs, their validated environment parsing, and the
//! injectable load fault.

use std::time::Duration;

use crate::breaker::BreakerConfig;

/// A malformed `SARN_SERVE_*` environment knob, named. Unset or empty
/// variables fall back to defaults; a *present but invalid* value
/// (non-numeric, zero where zero is incoherent, negative, non-finite) is
/// a hard error — a typo in an operator's deployment must not silently
/// become the default ceiling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The environment variable that held the bad value.
    pub var: &'static str,
    /// The offending value, verbatim.
    pub value: String,
    /// What the knob requires, human-readable.
    pub requirement: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}={:?} rejected: {}",
            self.var, self.value, self.requirement
        )
    }
}

impl std::error::Error for ConfigError {}

/// Reads a trimmed environment value; unset or empty means "use the
/// default".
fn env_raw(var: &'static str) -> Option<String> {
    std::env::var(var)
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
}

/// Parses `var` with `parse`, which returns `None` for any value that is
/// malformed *or* out of range — both become the same typed error naming
/// the variable.
fn env_knob<T>(
    var: &'static str,
    default: T,
    requirement: &'static str,
    parse: impl Fn(&str) -> Option<T>,
) -> Result<T, ConfigError> {
    match env_raw(var) {
        None => Ok(default),
        Some(raw) => parse(&raw).ok_or(ConfigError {
            var,
            value: raw,
            requirement,
        }),
    }
}

fn env_usize_min(var: &'static str, default: usize, min: usize) -> Result<usize, ConfigError> {
    let requirement = if min == 0 {
        "must be a non-negative integer"
    } else {
        "must be a positive integer"
    };
    env_knob(var, default, requirement, |raw| {
        raw.parse::<usize>().ok().filter(|&v| v >= min)
    })
}

fn env_u64_min(var: &'static str, default: u64, min: u64) -> Result<u64, ConfigError> {
    let requirement = if min == 0 {
        "must be a non-negative integer of milliseconds"
    } else {
        "must be a positive integer of milliseconds"
    };
    env_knob(var, default, requirement, |raw| {
        raw.parse::<u64>().ok().filter(|&v| v >= min)
    })
}

fn env_u32_min(var: &'static str, default: u32, min: u32) -> Result<u32, ConfigError> {
    env_knob(var, default, "must be a positive integer", |raw| {
        raw.parse::<u32>().ok().filter(|&v| v >= min)
    })
}

fn env_f64_pos(var: &'static str, default: f64) -> Result<f64, ConfigError> {
    env_knob(var, default, "must be a finite number > 0", |raw| {
        raw.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v > 0.0)
    })
}

fn env_f64_nonneg(var: &'static str, default: f64) -> Result<f64, ConfigError> {
    env_knob(var, default, "must be a finite number >= 0", |raw| {
        raw.parse::<f64>()
            .ok()
            .filter(|v| v.is_finite() && *v >= 0.0)
    })
}

/// `SARN_ANN_THRESHOLD` is either a positive row count or one of the
/// "disabled" spellings (`inf`/`∞`/`off`/`none`, case-insensitive) that
/// map to `usize::MAX` — a threshold no real generation reaches.
fn env_ann_threshold(var: &'static str, default: usize) -> Result<usize, ConfigError> {
    env_knob(
        var,
        default,
        "must be a positive integer or inf/off/none",
        |raw| match raw.to_ascii_lowercase().as_str() {
            "inf" | "∞" | "off" | "none" => Some(usize::MAX),
            other => other.parse::<usize>().ok().filter(|&v| v >= 1),
        },
    )
}

fn env_bool(var: &'static str, default: bool) -> Result<bool, ConfigError> {
    env_knob(
        var,
        default,
        "must be one of 0/1/false/true",
        |raw| match raw.to_ascii_lowercase().as_str() {
            "0" | "false" => Some(false),
            "1" | "true" => Some(true),
            _ => None,
        },
    )
}

/// Knobs of an [`crate::EmbeddingStore`].
///
/// The bench binaries read these from `SARN_SERVE_*` environment
/// variables via [`ServeConfig::from_env`]; library callers set fields
/// directly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeConfig {
    /// Hard in-flight request ceiling: admission beyond this sheds the
    /// request with [`crate::ServeError::Overloaded`].
    pub max_inflight: usize,
    /// Soft pressure threshold: while more than this many requests are in
    /// flight, exact k-NN degrades to the grid-approximate path (`0`
    /// disables degradation).
    pub degrade_inflight: usize,
    /// Default per-request time budget (`None` = unbounded); individual
    /// requests may override it with their own [`crate::Deadline`].
    pub default_deadline: Option<Duration>,
    /// Reload retries after the first failed attempt (total attempts are
    /// `reload_retries + 1`).
    pub reload_retries: usize,
    /// Sleep before the first reload retry; doubles per subsequent retry.
    pub reload_backoff: Duration,
    /// Rows scanned between deadline probes inside k-NN loops.
    pub deadline_check_every: usize,
    /// Cell side in meters of the spatial grid backing approximate k-NN.
    pub grid_clen_m: f64,
    /// Starting Chebyshev cell radius of the approximate candidate search
    /// (grows until enough candidates are found).
    pub approx_radius: usize,
    /// Staleness SLO: when the live generation's age exceeds this, the
    /// store's health degrades to [`crate::ServeState::Stale`] (queries
    /// keep being served — stale answers beat no answers — but the breach
    /// is journaled and counted so an operator, or the online pipeline,
    /// reacts). `None` disables the check.
    pub max_staleness: Option<Duration>,
    /// Row count at or above which an admitted generation gets an HNSW
    /// index built in the background (`usize::MAX` disables ANN entirely
    /// — serving is then bitwise-identical to a store without the
    /// subsystem).
    pub ann_threshold: usize,
    /// HNSW `M`: neighbors kept per node per layer (>= 2).
    pub ann_m: usize,
    /// HNSW `ef_construction`: beam width while building the index.
    pub ann_ef_construction: usize,
    /// HNSW `ef_search`: beam width while querying (floored at `k + 1`
    /// per query, so small values stay safe).
    pub ann_ef_search: usize,
    /// Seed of the deterministic level assignment — same seed and rows
    /// produce a bitwise-identical index.
    pub ann_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_inflight: 64,
            degrade_inflight: 48,
            default_deadline: None,
            reload_retries: 3,
            reload_backoff: Duration::from_millis(10),
            deadline_check_every: 256,
            grid_clen_m: 500.0,
            approx_radius: 1,
            max_staleness: None,
            ann_threshold: 4096,
            ann_m: 16,
            ann_ef_construction: 100,
            ann_ef_search: 64,
            ann_seed: 42,
        }
    }
}

impl ServeConfig {
    /// Reads the `SARN_SERVE_*` environment knobs, falling back to the
    /// defaults: `SARN_SERVE_MAX_INFLIGHT` (>= 1),
    /// `SARN_SERVE_DEGRADE_INFLIGHT` (`0` disables degradation),
    /// `SARN_SERVE_DEADLINE_MS` (`0` = unbounded),
    /// `SARN_SERVE_RELOAD_RETRIES` (`0` = no retries),
    /// `SARN_SERVE_RELOAD_BACKOFF_MS` (>= 1), `SARN_SERVE_CLEN_M`
    /// (finite, > 0), `SARN_SERVE_APPROX_RADIUS` (>= 1),
    /// `SARN_SERVE_MAX_STALENESS_S` (`0` = no staleness SLO; fractional
    /// seconds accepted), plus the ANN knobs: `SARN_ANN_THRESHOLD`
    /// (positive row count, or `inf`/`off`/`none` to disable ANN),
    /// `SARN_ANN_M` (>= 2), `SARN_ANN_EF_CONSTRUCTION` (>= 1),
    /// `SARN_ANN_EF_SEARCH` (>= 1), and `SARN_ANN_SEED` (any u64).
    ///
    /// A present-but-malformed value returns a [`ConfigError`] naming the
    /// variable; only unset/empty variables default.
    pub fn from_env() -> Result<Self, ConfigError> {
        let d = ServeConfig::default();
        let deadline_ms = env_u64_min("SARN_SERVE_DEADLINE_MS", 0, 0)?;
        let max_staleness_s = env_f64_nonneg("SARN_SERVE_MAX_STALENESS_S", 0.0)?;
        Ok(Self {
            max_inflight: env_usize_min("SARN_SERVE_MAX_INFLIGHT", d.max_inflight, 1)?,
            degrade_inflight: env_usize_min("SARN_SERVE_DEGRADE_INFLIGHT", d.degrade_inflight, 0)?,
            default_deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
            reload_retries: env_usize_min("SARN_SERVE_RELOAD_RETRIES", d.reload_retries, 0)?,
            reload_backoff: Duration::from_millis(env_u64_min(
                "SARN_SERVE_RELOAD_BACKOFF_MS",
                d.reload_backoff.as_millis() as u64,
                1,
            )?),
            deadline_check_every: d.deadline_check_every,
            grid_clen_m: env_f64_pos("SARN_SERVE_CLEN_M", d.grid_clen_m)?,
            approx_radius: env_usize_min("SARN_SERVE_APPROX_RADIUS", d.approx_radius, 1)?,
            max_staleness: (max_staleness_s > 0.0)
                .then(|| Duration::from_secs_f64(max_staleness_s)),
            ann_threshold: env_ann_threshold("SARN_ANN_THRESHOLD", d.ann_threshold)?,
            ann_m: env_usize_min("SARN_ANN_M", d.ann_m, 2)?,
            ann_ef_construction: env_usize_min(
                "SARN_ANN_EF_CONSTRUCTION",
                d.ann_ef_construction,
                1,
            )?,
            ann_ef_search: env_usize_min("SARN_ANN_EF_SEARCH", d.ann_ef_search, 1)?,
            ann_seed: env_knob(
                "SARN_ANN_SEED",
                d.ann_seed,
                "must be an unsigned integer",
                |raw| raw.parse::<u64>().ok(),
            )?,
        })
    }
}

/// Knobs of the shard [`crate::Router`] fronting a
/// [`crate::ShardedStore`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouterConfig {
    /// Shards requested of the geo-partitioner. The actual shard count
    /// may be lower (empty cell bands are compacted away).
    pub num_shards: usize,
    /// Minimum shards that must contribute to a fan-out answer; fewer
    /// fails the request with [`crate::ServeError::PartialCoverage`].
    pub min_shards: usize,
    /// Per-shard circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Retries per shard after the first failed attempt (deadline and
    /// shed failures are not retried — the budget is already gone).
    pub shard_retries: usize,
    /// Sleep before the first per-shard retry; doubles per retry.
    pub shard_backoff: Duration,
    /// Fire a hedged duplicate request when a shard runs past
    /// `hedge_factor` times its tracked p99 latency.
    pub hedge: bool,
    /// Multiple of the p99 latency estimate after which a hedge fires.
    pub hedge_factor: f64,
    /// In-flight ceiling across the whole router (checked once per
    /// fan-out, on top of the per-shard store ceilings).
    pub router_max_inflight: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            min_shards: 1,
            breaker: BreakerConfig::default(),
            shard_retries: 1,
            shard_backoff: Duration::from_millis(2),
            hedge: true,
            hedge_factor: 4.0,
            router_max_inflight: 256,
        }
    }
}

impl RouterConfig {
    /// Reads the router's `SARN_SERVE_*` environment knobs, falling back
    /// to the defaults: `SARN_SERVE_SHARDS` (>= 1),
    /// `SARN_SERVE_MIN_SHARDS` (>= 1),
    /// `SARN_SERVE_BREAKER_THRESHOLD` (>= 1),
    /// `SARN_SERVE_BREAKER_COOLDOWN_MS` (>= 1),
    /// `SARN_SERVE_SHARD_RETRIES` (`0` = no retries),
    /// `SARN_SERVE_SHARD_BACKOFF_MS` (>= 1), `SARN_SERVE_HEDGE`
    /// (`0/1/false/true`), `SARN_SERVE_HEDGE_FACTOR` (finite, > 0), and
    /// `SARN_SERVE_ROUTER_MAX_INFLIGHT` (>= 1). Same contract as
    /// [`ServeConfig::from_env`]: malformed values are typed errors
    /// naming the variable, never silent defaults.
    pub fn from_env() -> Result<Self, ConfigError> {
        let d = RouterConfig::default();
        Ok(Self {
            num_shards: env_usize_min("SARN_SERVE_SHARDS", d.num_shards, 1)?,
            min_shards: env_usize_min("SARN_SERVE_MIN_SHARDS", d.min_shards, 1)?,
            breaker: BreakerConfig {
                failure_threshold: env_u32_min(
                    "SARN_SERVE_BREAKER_THRESHOLD",
                    d.breaker.failure_threshold,
                    1,
                )?,
                open_cooldown: Duration::from_millis(env_u64_min(
                    "SARN_SERVE_BREAKER_COOLDOWN_MS",
                    d.breaker.open_cooldown.as_millis() as u64,
                    1,
                )?),
            },
            shard_retries: env_usize_min("SARN_SERVE_SHARD_RETRIES", d.shard_retries, 0)?,
            shard_backoff: Duration::from_millis(env_u64_min(
                "SARN_SERVE_SHARD_BACKOFF_MS",
                d.shard_backoff.as_millis() as u64,
                1,
            )?),
            hedge: env_bool("SARN_SERVE_HEDGE", d.hedge)?,
            hedge_factor: env_f64_pos("SARN_SERVE_HEDGE_FACTOR", d.hedge_factor)?,
            router_max_inflight: env_usize_min(
                "SARN_SERVE_ROUTER_MAX_INFLIGHT",
                d.router_max_inflight,
                1,
            )?,
        })
    }
}

/// Injected reload damage, in the mold of the training watchdog's
/// `FaultSpec`: deterministic, test-only sabotage of the load path so the
/// stale-fallback contract can be exercised without relying on real disk
/// failures. Set on a store with [`crate::EmbeddingStore::inject_fault`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LoadFault {
    /// The next this many load attempts fail with an injected I/O error
    /// (each attempt decrements the counter, so bounded retry eventually
    /// outlasts a transient fault).
    pub fail_loads: u32,
    /// Sleep applied to every load attempt while the fault is installed —
    /// simulated slow I/O for deadline and churn tests.
    pub delay_ms: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Env-mutating tests in this module serialize on this lock (threads
    /// within one test binary share the process environment).
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    fn with_env<R>(pairs: &[(&'static str, &str)], f: impl FnOnce() -> R) -> R {
        let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        for (k, v) in pairs {
            std::env::set_var(k, v);
        }
        let out = f();
        for (k, _) in pairs {
            std::env::remove_var(k);
        }
        out
    }

    #[test]
    fn defaults_are_coherent() {
        let d = ServeConfig::default();
        assert!(d.degrade_inflight < d.max_inflight);
        assert!(d.default_deadline.is_none());
        assert!(d.reload_backoff > Duration::ZERO);
        assert!(d.deadline_check_every > 0);
        assert!(d.ann_m >= 2);
        assert!(d.ann_ef_construction >= d.ann_m);
        assert!(d.ann_ef_search >= 1);
        assert!(d.ann_threshold >= 1);
        let r = RouterConfig::default();
        assert!(r.min_shards <= r.num_shards);
        assert!(r.hedge_factor > 1.0);
        assert!(r.breaker.failure_threshold >= 1);
    }

    #[test]
    fn unset_and_empty_fall_back_to_defaults() {
        let cfg = with_env(&[("SARN_SERVE_MAX_INFLIGHT", "  ")], || {
            ServeConfig::from_env().expect("empty value defaults")
        });
        assert_eq!(cfg, ServeConfig::default());
        let rcfg = with_env(&[], || RouterConfig::from_env().expect("all unset"));
        assert_eq!(rcfg, RouterConfig::default());
    }

    #[test]
    fn valid_overrides_parse() {
        let cfg = with_env(
            &[
                ("SARN_SERVE_MAX_INFLIGHT", "8"),
                ("SARN_SERVE_DEGRADE_INFLIGHT", "0"),
                ("SARN_SERVE_DEADLINE_MS", "0"),
                ("SARN_SERVE_RELOAD_RETRIES", "0"),
                ("SARN_SERVE_RELOAD_BACKOFF_MS", "5"),
                ("SARN_SERVE_CLEN_M", "250.5"),
                ("SARN_SERVE_APPROX_RADIUS", "2"),
                ("SARN_SERVE_MAX_STALENESS_S", "1.5"),
                ("SARN_ANN_THRESHOLD", "512"),
                ("SARN_ANN_M", "8"),
                ("SARN_ANN_EF_CONSTRUCTION", "64"),
                ("SARN_ANN_EF_SEARCH", "48"),
                ("SARN_ANN_SEED", "7"),
            ],
            || ServeConfig::from_env().expect("valid overrides"),
        );
        assert_eq!(cfg.max_inflight, 8);
        assert_eq!(cfg.degrade_inflight, 0, "zero disables degradation");
        assert!(cfg.default_deadline.is_none(), "zero means unbounded");
        assert_eq!(cfg.reload_retries, 0);
        assert_eq!(cfg.reload_backoff, Duration::from_millis(5));
        assert_eq!(cfg.grid_clen_m, 250.5);
        assert_eq!(cfg.approx_radius, 2);
        assert_eq!(cfg.max_staleness, Some(Duration::from_secs_f64(1.5)));
        assert_eq!(cfg.ann_threshold, 512);
        assert_eq!(cfg.ann_m, 8);
        assert_eq!(cfg.ann_ef_construction, 64);
        assert_eq!(cfg.ann_ef_search, 48);
        assert_eq!(cfg.ann_seed, 7);
    }

    /// Every "disabled" spelling of the threshold maps to `usize::MAX`,
    /// case-insensitively.
    #[test]
    fn ann_threshold_disabled_spellings_map_to_max() {
        for spelling in ["inf", "INF", "∞", "off", "Off", "none", "NONE"] {
            let cfg = with_env(&[("SARN_ANN_THRESHOLD", spelling)], || {
                ServeConfig::from_env().expect("disabled spelling")
            });
            assert_eq!(cfg.ann_threshold, usize::MAX, "spelling {spelling:?}");
        }
    }

    /// Every knob, one by one: a malformed value is a typed error that
    /// names the variable (satellite contract — no silent fallback).
    #[test]
    fn each_serve_knob_rejects_malformed_values_by_name() {
        let cases: &[(&'static str, &str)] = &[
            ("SARN_SERVE_MAX_INFLIGHT", "zero"),
            ("SARN_SERVE_MAX_INFLIGHT", "0"),
            ("SARN_SERVE_MAX_INFLIGHT", "-3"),
            ("SARN_SERVE_DEGRADE_INFLIGHT", "many"),
            ("SARN_SERVE_DEGRADE_INFLIGHT", "-1"),
            ("SARN_SERVE_DEADLINE_MS", "fast"),
            ("SARN_SERVE_DEADLINE_MS", "-5"),
            ("SARN_SERVE_RELOAD_RETRIES", "3.5"),
            ("SARN_SERVE_RELOAD_BACKOFF_MS", "0"),
            ("SARN_SERVE_RELOAD_BACKOFF_MS", "soon"),
            ("SARN_SERVE_CLEN_M", "0"),
            ("SARN_SERVE_CLEN_M", "-100"),
            ("SARN_SERVE_CLEN_M", "NaN"),
            ("SARN_SERVE_CLEN_M", "wide"),
            ("SARN_SERVE_APPROX_RADIUS", "0"),
            ("SARN_SERVE_APPROX_RADIUS", "near"),
            ("SARN_SERVE_MAX_STALENESS_S", "-1"),
            ("SARN_SERVE_MAX_STALENESS_S", "inf"),
            ("SARN_SERVE_MAX_STALENESS_S", "fresh"),
            ("SARN_ANN_THRESHOLD", "0"),
            ("SARN_ANN_THRESHOLD", "-1"),
            ("SARN_ANN_THRESHOLD", "never"),
            ("SARN_ANN_M", "1"),
            ("SARN_ANN_M", "sixteen"),
            ("SARN_ANN_EF_CONSTRUCTION", "0"),
            ("SARN_ANN_EF_SEARCH", "0"),
            ("SARN_ANN_EF_SEARCH", "-8"),
            ("SARN_ANN_SEED", "-1"),
            ("SARN_ANN_SEED", "random"),
        ];
        for (var, bad) in cases {
            let err = with_env(&[(var, bad)], || {
                ServeConfig::from_env().expect_err("malformed value must not default")
            });
            assert_eq!(err.var, *var, "wrong variable named for {var}={bad}");
            assert_eq!(err.value, *bad);
            let msg = err.to_string();
            assert!(
                msg.contains(var) && msg.contains(bad),
                "display must name variable and value: {msg}"
            );
        }
    }

    #[test]
    fn each_router_knob_rejects_malformed_values_by_name() {
        let cases: &[(&'static str, &str)] = &[
            ("SARN_SERVE_SHARDS", "0"),
            ("SARN_SERVE_SHARDS", "-2"),
            ("SARN_SERVE_SHARDS", "four"),
            ("SARN_SERVE_MIN_SHARDS", "0"),
            ("SARN_SERVE_BREAKER_THRESHOLD", "0"),
            ("SARN_SERVE_BREAKER_THRESHOLD", "often"),
            ("SARN_SERVE_BREAKER_COOLDOWN_MS", "0"),
            ("SARN_SERVE_BREAKER_COOLDOWN_MS", "-10"),
            ("SARN_SERVE_SHARD_RETRIES", "-1"),
            ("SARN_SERVE_SHARD_BACKOFF_MS", "0"),
            ("SARN_SERVE_HEDGE", "maybe"),
            ("SARN_SERVE_HEDGE_FACTOR", "0"),
            ("SARN_SERVE_HEDGE_FACTOR", "inf"),
            ("SARN_SERVE_ROUTER_MAX_INFLIGHT", "0"),
        ];
        for (var, bad) in cases {
            let err = with_env(&[(var, bad)], || {
                RouterConfig::from_env().expect_err("malformed value must not default")
            });
            assert_eq!(err.var, *var, "wrong variable named for {var}={bad}");
        }
    }

    #[test]
    fn router_overrides_parse_and_bools_accept_both_spellings() {
        let cfg = with_env(
            &[
                ("SARN_SERVE_SHARDS", "8"),
                ("SARN_SERVE_MIN_SHARDS", "6"),
                ("SARN_SERVE_BREAKER_THRESHOLD", "2"),
                ("SARN_SERVE_BREAKER_COOLDOWN_MS", "50"),
                ("SARN_SERVE_SHARD_RETRIES", "0"),
                ("SARN_SERVE_SHARD_BACKOFF_MS", "1"),
                ("SARN_SERVE_HEDGE", "false"),
                ("SARN_SERVE_HEDGE_FACTOR", "2.5"),
                ("SARN_SERVE_ROUTER_MAX_INFLIGHT", "32"),
            ],
            || RouterConfig::from_env().expect("valid overrides"),
        );
        assert_eq!(cfg.num_shards, 8);
        assert_eq!(cfg.min_shards, 6);
        assert_eq!(cfg.breaker.failure_threshold, 2);
        assert_eq!(cfg.breaker.open_cooldown, Duration::from_millis(50));
        assert_eq!(cfg.shard_retries, 0);
        assert!(!cfg.hedge);
        assert_eq!(cfg.hedge_factor, 2.5);
        assert_eq!(cfg.router_max_inflight, 32);
        let on = with_env(&[("SARN_SERVE_HEDGE", "1")], || {
            RouterConfig::from_env().expect("numeric bool")
        });
        assert!(on.hedge);
    }

    #[test]
    fn config_error_converts_into_serve_error() {
        let err = ConfigError {
            var: "SARN_SERVE_MAX_INFLIGHT",
            value: "lots".into(),
            requirement: "must be a positive integer",
        };
        let serve: crate::ServeError = err.clone().into();
        assert!(matches!(serve, crate::ServeError::Config(_)));
        assert!(serve.to_string().contains("SARN_SERVE_MAX_INFLIGHT"));
        assert!(std::error::Error::source(&serve).is_some());
    }
}
