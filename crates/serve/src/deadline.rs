//! Per-request time budgets.

use std::time::{Duration, Instant};

use crate::error::ServeError;

/// A per-request deadline: a start instant plus an optional budget.
///
/// Query paths call [`Deadline::check`] at bounded intervals (every
/// [`crate::ServeConfig::deadline_check_every`] rows inside k-NN scans),
/// so a request against a huge generation returns a typed
/// [`ServeError::DeadlineExceeded`] within one probe interval of its
/// budget instead of holding its admission slot indefinitely.
///
/// Hot scan loops hoist [`Deadline::expires_at`] once and probe with
/// [`Deadline::check_against`], so each probe is a single clock read and
/// a comparison instead of re-deriving the expiry every
/// `deadline_check_every` rows. Fan-out paths (the shard router) carve
/// the *remaining* budget into per-shard slices with [`Deadline::split`].
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    start: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn unbounded() -> Self {
        Self {
            start: Instant::now(),
            budget: None,
        }
    }

    /// A deadline expiring `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Self {
            start: Instant::now(),
            budget: Some(budget),
        }
    }

    /// A deadline with an optional budget (`None` = unbounded) — the shape
    /// of [`crate::ServeConfig::default_deadline`].
    pub fn from_budget(budget: Option<Duration>) -> Self {
        Self {
            start: Instant::now(),
            budget,
        }
    }

    /// Elapsed time since the request started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The budget this deadline was created with (`None` = unbounded).
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// Budget still unspent (`None` = unbounded, zero once expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.budget.map(|b| b.saturating_sub(self.start.elapsed()))
    }

    /// Splits the *remaining* budget into `n` equal slices and returns a
    /// fresh deadline carrying one of them. The router hands each shard
    /// of a fan-out `deadline.split(live_shards)` so one slow shard can
    /// exhaust only its slice of the request budget, never the whole
    /// request; batched queries hand request `i` of `m` remaining a
    /// `split(m)` so early finishers donate leftover budget to later
    /// requests. Unbounded stays unbounded; `n == 0` is treated as 1.
    pub fn split(&self, n: usize) -> Deadline {
        let n = n.max(1) as u32;
        Deadline {
            start: Instant::now(),
            budget: self.remaining().map(|r| r / n),
        }
    }

    /// The instant this deadline expires, precomputed so scan loops can
    /// probe with one clock read per check ([`Deadline::check_against`]).
    /// `None` means no expiry: either unbounded, or a budget so large the
    /// instant is unrepresentable (practically the same thing).
    pub fn expires_at(&self) -> Option<Instant> {
        self.budget.and_then(|b| self.start.checked_add(b))
    }

    /// `Ok` while inside the budget, typed [`ServeError::DeadlineExceeded`]
    /// once past it.
    pub fn check(&self) -> Result<(), ServeError> {
        self.check_against(self.expires_at())
    }

    /// [`Deadline::check`] against a hoisted [`Deadline::expires_at`]
    /// value: the per-probe cost is one `Instant::now()` and a compare
    /// (nothing at all when unbounded), instead of re-adding the budget to
    /// the start instant on every probe inside a per-row loop.
    pub fn check_against(&self, expires_at: Option<Instant>) -> Result<(), ServeError> {
        match expires_at {
            Some(expiry) if Instant::now() >= expiry => Err(ServeError::DeadlineExceeded {
                elapsed: self.start.elapsed(),
                budget: self.budget.unwrap_or_default(),
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        Deadline::unbounded().check().expect("unbounded deadline");
        Deadline::from_budget(None).check().expect("no budget");
        assert!(Deadline::unbounded().remaining().is_none());
        assert!(Deadline::unbounded().expires_at().is_none());
    }

    #[test]
    fn zero_budget_expires_immediately_and_is_typed() {
        let d = Deadline::within(Duration::ZERO);
        match d.check() {
            Err(ServeError::DeadlineExceeded { budget, .. }) => {
                assert_eq!(budget, Duration::ZERO)
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_passes() {
        Deadline::within(Duration::from_secs(3600))
            .check()
            .expect("hour-long budget");
    }

    #[test]
    fn check_against_matches_check() {
        let d = Deadline::within(Duration::from_secs(3600));
        let expiry = d.expires_at();
        assert!(expiry.is_some());
        d.check_against(expiry).expect("inside the budget");
        let expired = Deadline::within(Duration::ZERO);
        assert!(expired.check_against(expired.expires_at()).is_err());
    }

    #[test]
    fn split_divides_the_remaining_budget() {
        let d = Deadline::within(Duration::from_secs(4));
        let slice = d.split(4);
        let got = slice.budget().expect("bounded slice");
        // Remaining was at most 4 s when split; each of 4 slices gets at
        // most 1 s (and nearly exactly that — the test runs in microseconds).
        assert!(got <= Duration::from_secs(1));
        assert!(got > Duration::from_millis(900), "slice {got:?}");
        // Unbounded splits stay unbounded; n == 0 collapses to 1 slice.
        assert!(Deadline::unbounded().split(8).budget().is_none());
        let whole = d.split(0).budget().expect("one slice");
        assert!(whole > Duration::from_secs(3));
    }

    #[test]
    fn expired_deadline_splits_to_zero_not_panic() {
        let d = Deadline::within(Duration::ZERO);
        let slice = d.split(3);
        assert_eq!(slice.budget(), Some(Duration::ZERO));
        assert!(slice.check().is_err());
    }

    #[test]
    fn huge_budgets_saturate_to_no_expiry_instead_of_overflowing() {
        let d = Deadline::within(Duration::MAX);
        // `start + MAX` is unrepresentable: treated as never-expiring.
        assert!(d.expires_at().is_none());
        d.check().expect("saturated budget never expires");
    }
}
