//! Per-request time budgets.

use std::time::{Duration, Instant};

use crate::error::ServeError;

/// A per-request deadline: a start instant plus an optional budget.
///
/// Query paths call [`Deadline::check`] at bounded intervals (every
/// [`crate::ServeConfig::deadline_check_every`] rows inside k-NN scans),
/// so a request against a huge generation returns a typed
/// [`ServeError::DeadlineExceeded`] within one probe interval of its
/// budget instead of holding its admission slot indefinitely.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    start: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    /// A deadline that never expires.
    pub fn unbounded() -> Self {
        Self {
            start: Instant::now(),
            budget: None,
        }
    }

    /// A deadline expiring `budget` from now.
    pub fn within(budget: Duration) -> Self {
        Self {
            start: Instant::now(),
            budget: Some(budget),
        }
    }

    /// A deadline with an optional budget (`None` = unbounded) — the shape
    /// of [`crate::ServeConfig::default_deadline`].
    pub fn from_budget(budget: Option<Duration>) -> Self {
        Self {
            start: Instant::now(),
            budget,
        }
    }

    /// Elapsed time since the request started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// `Ok` while inside the budget, typed [`ServeError::DeadlineExceeded`]
    /// once past it.
    pub fn check(&self) -> Result<(), ServeError> {
        match self.budget {
            Some(budget) if self.start.elapsed() >= budget => Err(ServeError::DeadlineExceeded {
                elapsed: self.start.elapsed(),
                budget,
            }),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_expires() {
        Deadline::unbounded().check().expect("unbounded deadline");
        Deadline::from_budget(None).check().expect("no budget");
    }

    #[test]
    fn zero_budget_expires_immediately_and_is_typed() {
        let d = Deadline::within(Duration::ZERO);
        match d.check() {
            Err(ServeError::DeadlineExceeded { budget, .. }) => {
                assert_eq!(budget, Duration::ZERO)
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn generous_budget_passes() {
        Deadline::within(Duration::from_secs(3600))
            .check()
            .expect("hour-long budget");
    }
}
