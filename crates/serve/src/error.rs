//! The typed failure taxonomy of the serving path.

use std::fmt;
use std::time::Duration;

use sarn_core::EmbeddingDefect;
use sarn_geo::GridError;
use sarn_tensor::IoError;

/// Everything a serving call can fail with. The read path never panics:
/// each failure mode has a variant a caller (or health endpoint) can
/// route on, mirroring how the training watchdog's `TrainError` taxonomy
/// keeps the write path typed.
#[derive(Debug)]
pub enum ServeError {
    /// No generation has been admitted yet — the store is still loading.
    NotReady,
    /// The queried segment id is outside the served network.
    UnknownSegment {
        /// The requested segment id.
        segment: usize,
        /// Number of segments the store serves.
        num_segments: usize,
    },
    /// Admission was refused because the in-flight ceiling is reached —
    /// the request was shed, not queued.
    Overloaded {
        /// In-flight requests observed at admission.
        inflight: usize,
        /// The configured ceiling.
        max_inflight: usize,
    },
    /// The request ran past its time budget.
    DeadlineExceeded {
        /// Time spent before the expiry was noticed.
        elapsed: Duration,
        /// The budget that was exceeded.
        budget: Duration,
    },
    /// Reading or validating an artifact failed (truncation, garbage,
    /// shape mismatch, injected I/O fault) — the previous generation is
    /// still serving.
    Load(IoError),
    /// An embedding row failed the shared admission screen
    /// ([`sarn_core::embedding_defect`], the same gate the training
    /// watchdog runs on queue entries) — the artifact was rejected whole.
    CorruptRow {
        /// Row (segment id) of the first defective embedding.
        row: usize,
        /// What was wrong with it.
        defect: EmbeddingDefect,
    },
    /// The spatial grid backing approximate k-NN could not be built from
    /// the network's bounding box and the configured cell side.
    Grid(GridError),
    /// A `SARN_SERVE_*` environment knob held a malformed value — named,
    /// not silently defaulted (see [`crate::ConfigError`]).
    Config(crate::ConfigError),
    /// Too few shards answered a fan-out query: fewer than the router's
    /// configured minimum contributed results, so even a degraded partial
    /// answer is not available. Responses *above* the minimum succeed and
    /// carry the shortfall in their typed `Coverage` report instead.
    PartialCoverage {
        /// Shards that contributed results.
        answered: usize,
        /// Shards the query consulted.
        total: usize,
        /// The configured minimum for an answer.
        min_shards: usize,
    },
    /// The ANN index itself failed (corrupt sidecar bytes, I/O) — the
    /// exact scan is still available; callers that see this chose the
    /// ANN-only path explicitly.
    Index(sarn_ann::AnnError),
    /// An ANN-only call found no ready index: it is absent, still
    /// building, or the generation fell back to exact scan.
    IndexUnavailable {
        /// The index lifecycle state that blocked the call.
        state: crate::IndexState,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::NotReady => write!(f, "no embedding generation admitted yet"),
            ServeError::UnknownSegment {
                segment,
                num_segments,
            } => write!(
                f,
                "segment {segment} outside the served network of {num_segments} segments"
            ),
            ServeError::Overloaded {
                inflight,
                max_inflight,
            } => write!(
                f,
                "shed: {inflight} requests in flight at the {max_inflight}-request ceiling"
            ),
            ServeError::DeadlineExceeded { elapsed, budget } => write!(
                f,
                "deadline exceeded: {:.1}ms elapsed of a {:.1}ms budget",
                elapsed.as_secs_f64() * 1e3,
                budget.as_secs_f64() * 1e3
            ),
            ServeError::Load(e) => write!(f, "artifact load failed: {e}"),
            ServeError::CorruptRow { row, defect } => {
                write!(f, "embedding row {row} rejected: {defect}")
            }
            ServeError::Grid(e) => write!(f, "serving grid rejected: {e}"),
            ServeError::Config(e) => write!(f, "serving config rejected: {e}"),
            ServeError::PartialCoverage {
                answered,
                total,
                min_shards,
            } => write!(
                f,
                "partial coverage: only {answered} of {total} shards answered \
                 (minimum {min_shards})"
            ),
            ServeError::Index(e) => write!(f, "ann index failed: {e}"),
            ServeError::IndexUnavailable { state } => {
                write!(f, "ann index unavailable (state {state:?})")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Load(e) => Some(e),
            ServeError::Grid(e) => Some(e),
            ServeError::Config(e) => Some(e),
            ServeError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::ConfigError> for ServeError {
    fn from(e: crate::ConfigError) -> Self {
        ServeError::Config(e)
    }
}

impl From<IoError> for ServeError {
    fn from(e: IoError) -> Self {
        ServeError::Load(e)
    }
}

impl From<GridError> for ServeError {
    fn from(e: GridError) -> Self {
        ServeError::Grid(e)
    }
}

impl From<sarn_ann::AnnError> for ServeError {
    fn from(e: sarn_ann::AnnError) -> Self {
        ServeError::Index(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure_site() {
        let msg = ServeError::UnknownSegment {
            segment: 99,
            num_segments: 10,
        }
        .to_string();
        assert!(msg.contains("99") && msg.contains("10"), "{msg}");

        let msg = ServeError::Overloaded {
            inflight: 64,
            max_inflight: 64,
        }
        .to_string();
        assert!(msg.contains("shed") && msg.contains("64"), "{msg}");

        let msg = ServeError::CorruptRow {
            row: 7,
            defect: EmbeddingDefect::NonFinite {
                component: 3,
                value: f32::NAN,
            },
        }
        .to_string();
        assert!(
            msg.contains("row 7") && msg.contains("component 3"),
            "{msg}"
        );
    }

    #[test]
    fn io_and_grid_errors_convert_with_source_chains() {
        let e: ServeError = IoError::BadMagic { expected: "SRT1" }.into();
        assert!(matches!(e, ServeError::Load(_)));
        assert!(std::error::Error::source(&e).is_some());

        let e: ServeError = GridError::BadCellSide(-1.0).into();
        assert!(matches!(e, ServeError::Grid(_)));
        assert!(e.to_string().contains("-1"), "{e}");
    }
}
