//! # sarn-serve
//!
//! Fault-tolerant, concurrency-safe serving of SARN road-segment
//! embeddings. Training (with its watchdog and crash-safe checkpoints)
//! produces `SarnTrained` artifacts; this crate is the read path that
//! keeps answering queries while those artifacts are retrained, rewritten,
//! and occasionally corrupted underneath it.
//!
//! The core is the [`EmbeddingStore`]:
//!
//! - **Generations behind an atomic swap.** Each admitted embedding matrix
//!   becomes an immutable [`Generation`] published behind an `Arc` swap.
//!   Readers clone the `Arc` and compute against an immutable snapshot;
//!   the write lock is held only for the pointer assignment — never for
//!   I/O or validation — so a reload can neither block nor tear a query.
//! - **Hot reload with last-known-good fallback.** [`EmbeddingStore::reload`]
//!   re-reads an artifact through `sarn_tensor::io`'s validated entry
//!   point with bounded retry and exponential backoff. *Any* failure —
//!   truncated file, garbage, shape mismatch, non-finite rows, injected
//!   slow/failing I/O via [`LoadFault`] — leaves the previous generation
//!   serving and surfaces as a typed [`ServeError`] plus a degraded
//!   [`HealthReport`], never a panic.
//! - **Deadline-guarded queries.** Embedding lookup, exact k-NN, and
//!   grid-bucketed approximate k-NN (reusing [`sarn_geo::Grid`]) each
//!   honor a per-request [`Deadline`], checked at bounded intervals inside
//!   the scans.
//! - **Bounded admission and load shedding.** A fixed in-flight budget
//!   sheds excess requests with [`ServeError::Overloaded`]; between the
//!   degrade threshold and the shed ceiling, exact k-NN transparently
//!   downgrades to the grid-approximate path and says so in the response.
//! - **Staleness SLO.** With [`ServeConfig::max_staleness`] set (env:
//!   `SARN_SERVE_MAX_STALENESS_S`), a generation that outlives its budget
//!   turns the health report [`ServeState::Stale`] — queries keep being
//!   served, but the breach is journaled and counted
//!   (`sarn_serve_stale_total`) once per generation so the online pipeline
//!   (or an operator) reacts. A fresh admission clears the state.
//!
//! On top of the single store sits **fault-isolated sharded serving**
//! (DESIGN.md §15): a [`ShardedStore`] geo-partitions the network's
//! segments into contiguous grid-cell bands, each band a full
//! [`EmbeddingStore`] with its own generation swap — one shard can
//! hot-swap or fail without touching its siblings — and a [`Router`]
//! fronts the fan-out with per-shard [`CircuitBreaker`]s
//! (closed → open → half-open with a single probed recovery slot),
//! [`Deadline::split`] budget slices, bounded doubling-backoff retries
//! plus one hedged duplicate against p99-slow shards, and typed
//! [`Coverage`] reports: failed shards degrade the answer
//! (answered / degraded-to-approx / quarantined / failed per shard)
//! instead of failing it, until fewer than `min_shards` contribute
//! ([`ServeError::PartialCoverage`]). With every shard healthy the merged
//! answer is bitwise identical to the single combined store's.
//!
//! The serving state machine (DESIGN.md §10):
//!
//! ```text
//! loading --first good admit--> serving(gen N)
//! serving --reload failure----> degraded(gen N)   [stale answers continue]
//! serving --age > staleness---> stale(gen N)      [stale answers continue]
//! stale   --good admit--------> serving(gen N+1)  [atomic flip]
//! degraded --good reload------> serving(gen N+1)  [atomic flip]
//! any state --inflight >= max-> shedding          [typed Overloaded]
//! ```

#![warn(missing_docs)]

mod breaker;
mod config;
mod deadline;
mod error;
mod router;
mod shard;
mod store;

pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker, Transition};
pub use config::{ConfigError, LoadFault, RouterConfig, ServeConfig};
pub use deadline::Deadline;
pub use error::ServeError;
pub use router::{Coverage, RoutedKnn, Router, ShardCoverage, ShardFault, ShardOutcome};
pub use shard::{Shard, ShardedStore};
pub use store::{
    EmbeddingStore, Generation, HealthReport, IndexState, Knn, ServeState, ShardHealth, Ticket,
};
