//! The fault-isolating shard router: breakers, budgets, hedges, and
//! typed partial-coverage answers over a [`ShardedStore`].
//!
//! Every fan-out query runs the same per-shard pipeline:
//!
//! 1. **Breaker gate** — the shard's [`CircuitBreaker`] admits, rejects
//!    (quarantine: the router routes around the shard and says so in the
//!    [`Coverage`] report), or grants the half-open probe slot.
//! 2. **Budgeted attempt** — the request [`Deadline`] is carved with
//!    [`Deadline::split`] so one slow shard can burn only its slice of
//!    the budget, with bounded doubling-backoff retries on typed
//!    failures.
//! 3. **Hedge** — when hedging is on and the shard's tracked p99 is
//!    warm, an attempt that outlives `p99 × hedge_factor` gets a
//!    duplicate fired against the same shard; first answer wins, the
//!    straggler is abandoned (its send fails harmlessly).
//! 4. **Degrade** — a shard whose exact leg exhausts retries walks the
//!    degrade ladder: first the *ANN* leg (the shard's HNSW index, when
//!    one is ready — approximate neighbors at full candidate coverage),
//!    then the *grid-approximate* leg (grid candidates only, a few rows
//!    instead of a scan), each reported as degraded coverage.
//!
//! Shards that still fail are dropped from the answer rather than
//! failing it: the response carries a typed [`Coverage`] report
//! (answered / degraded / quarantined / failed per shard) and only falls
//! to a typed [`ServeError::PartialCoverage`] when fewer than
//! `min_shards` contributed. Every breaker transition, hedge, quarantine
//! boundary, and partial answer is journaled and counted through
//! `sarn-obs`.
//!
//! With all shards healthy the merged answer is **bitwise identical** to
//! a single combined [`crate::EmbeddingStore`]: shard rows hold the same
//! bytes, scoring runs the same kernel in the same operand order, and
//! the shared `top_k` comparator is a strict total order over unique
//! ids, so per-shard top-k union merges to exactly the single-store
//! neighbor list (see `tests/sys/tests/router_sharded.rs`).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::breaker::{Admission, BreakerState, CircuitBreaker, Transition};
use crate::config::{LoadFault, RouterConfig};
use crate::deadline::Deadline;
use crate::error::ServeError;
use crate::shard::ShardedStore;
use crate::store::{top_k, EmbeddingStore, HealthReport, IndexState, ServeState, ShardHealth};

/// Recovers a poisoned mutex (same contract as the store's: everything
/// behind these locks is coherent under replacement).
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One fan-out leg: the shard runtime plus, on the approximate path,
/// the local rows it scores (`None` = full scan).
type Leg = (Arc<ShardRuntime>, Option<Arc<Vec<usize>>>);

/// Deterministic, test-only sabotage of one shard's *query* path — the
/// serving analogue of [`LoadFault`], driving the chaos tests: latency
/// inflation, transient or sticky typed errors, forced staleness.
/// Installed with [`Router::inject_shard_fault`]; reload corruption is
/// injected separately through the shard store's own [`LoadFault`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardFault {
    /// The next this many query attempts fail with an injected typed
    /// error (each attempt decrements, so retry/hedge duplicates consume
    /// the fault and can land on a healthy slot).
    pub fail_queries: u32,
    /// When set, `fail_queries` never decrements: the shard fails every
    /// attempt until the fault is cleared — the breaker-exhaustion case.
    pub sticky: bool,
    /// Sleep injected into the next `delay_queries` attempts.
    pub delay_ms: u64,
    /// How many attempts `delay_ms` applies to (`u32::MAX` ≈ all).
    pub delay_queries: u32,
    /// Health reports this shard as [`ServeState::Stale`] regardless of
    /// its generation's real age.
    pub force_stale: bool,
}

/// How one shard contributed to a fan-out answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardOutcome {
    /// Contributed its exact leg.
    Answered,
    /// Its exact leg failed; contributed its ready HNSW index's
    /// approximate neighbors instead (first rung of the degrade ladder).
    DegradedAnn,
    /// Its exact leg failed; contributed grid-approximate scores instead.
    DegradedApprox,
    /// Breaker open: routed around, not consulted.
    Quarantined,
    /// Consulted but every attempt failed; its rows are missing.
    Failed,
}

/// One shard's line in a [`Coverage`] report.
#[derive(Clone, Debug)]
pub struct ShardCoverage {
    /// The shard.
    pub shard: usize,
    /// What it contributed.
    pub outcome: ShardOutcome,
    /// Generation it answered with (its last known one when skipped).
    pub generation: Option<u64>,
    /// The typed error that cost this shard its exact leg, rendered
    /// (`None` unless the outcome is degraded or failed).
    pub error: Option<String>,
}

/// The typed partial-result report carried by every routed answer
/// instead of an error: which shards answered, which degraded to the
/// approximate leg, which were quarantined or failed outright.
#[derive(Clone, Debug)]
pub struct Coverage {
    /// Shards in the fan-out (full coverage = this many answered).
    pub total: usize,
    /// Shards that contributed rows (exact or degraded).
    pub answered: usize,
    /// Of the answered, how many degraded to the approximate leg.
    pub degraded: usize,
    /// Per-shard outcomes, shard-id ascending.
    pub shards: Vec<ShardCoverage>,
}

impl Coverage {
    /// `true` when every shard answered its exact leg.
    pub fn complete(&self) -> bool {
        self.answered == self.total && self.degraded == 0
    }
}

/// A routed k-NN answer: globally-merged neighbors plus the coverage
/// report describing which shards stand behind them.
#[derive(Clone, Debug)]
pub struct RoutedKnn {
    /// `(global segment id, cosine similarity)`, most similar first,
    /// ties on ascending id — the single store's exact ordering.
    pub neighbors: Vec<(usize, f32)>,
    /// Which shards contributed.
    pub coverage: Coverage,
}

/// Bucketed p99 latency estimate for one shard, feeding the hedge
/// trigger: the standard log-spaced latency buckets
/// ([`sarn_obs::latency_boundaries`]) with lock-free atomic counts, read
/// through the shared [`sarn_obs::quantile_from_buckets`] estimator (the
/// same cumulative-bucket walk the exported histograms use — and, unlike
/// [`sarn_obs::Histogram`], recording here is *not* gated on the
/// telemetry flag: hedging must work with telemetry off). Stays `None`
/// (hedging disarmed) until enough samples make a p99 meaningful.
#[derive(Debug)]
struct LatencyTracker {
    boundaries: Vec<f64>,
    counts: Vec<AtomicU64>,
    total: AtomicU64,
}

impl Default for LatencyTracker {
    fn default() -> Self {
        let boundaries = sarn_obs::latency_boundaries();
        let counts = (0..=boundaries.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            boundaries,
            counts,
            total: AtomicU64::new(0),
        }
    }
}

impl LatencyTracker {
    const MIN_SAMPLES: u64 = 16;

    fn record(&self, seconds: f64) {
        let idx = sarn_obs::bucket_index(&self.boundaries, seconds);
        self.counts[idx].fetch_add(1, AtomicOrdering::Relaxed);
        self.total.fetch_add(1, AtomicOrdering::Relaxed);
    }

    fn p99(&self) -> Option<Duration> {
        if self.total.load(AtomicOrdering::Relaxed) < Self::MIN_SAMPLES {
            return None;
        }
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(AtomicOrdering::Relaxed))
            .collect();
        sarn_obs::quantile_from_buckets(&self.boundaries, &counts, 0.99)
            .map(|s| Duration::from_secs_f64(s.max(0.0)))
    }
}

/// Everything the router keeps per shard.
struct ShardRuntime {
    index: usize,
    store: Arc<EmbeddingStore>,
    globals: Arc<Vec<usize>>,
    breaker: CircuitBreaker,
    fault: Mutex<Option<ShardFault>>,
    latency: LatencyTracker,
}

impl ShardRuntime {
    /// Consumes one attempt's worth of injected fault: returns the typed
    /// error to fail with, after applying any injected delay.
    fn apply_fault(&self) -> Result<(), ServeError> {
        let (delay_ms, fail) = {
            let mut guard = lock_recovering(&self.fault);
            match guard.as_mut() {
                None => (0, false),
                Some(f) => {
                    let delay = if f.delay_queries > 0 {
                        f.delay_queries = f.delay_queries.saturating_sub(1);
                        f.delay_ms
                    } else {
                        0
                    };
                    let fail = f.fail_queries > 0;
                    if fail && !f.sticky {
                        f.fail_queries -= 1;
                    }
                    (delay, fail)
                }
            }
        };
        if delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        if fail {
            return Err(ServeError::Load(sarn_tensor::IoError::Io(
                std::io::Error::other("injected shard fault"),
            )));
        }
        Ok(())
    }

    fn forced_stale(&self) -> bool {
        lock_recovering(&self.fault).is_some_and(|f| f.force_stale)
    }
}

/// What one shard's query leg produced: `(global id, score)` pairs plus
/// the generation they came from.
struct ShardPartial {
    pairs: Vec<(usize, f32)>,
    generation: u64,
}

/// A per-shard attempt, cloneable into hedge threads.
type AttemptFn = Arc<dyn Fn() -> Result<ShardPartial, ServeError> + Send + Sync>;

enum ShardResult {
    Answered(ShardPartial),
    Quarantined,
    Failed(ServeError),
}

/// RAII router admission slot (on top of the per-shard store ceilings).
struct RouterTicket<'a> {
    inflight: &'a AtomicUsize,
}

impl Drop for RouterTicket<'_> {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, AtomicOrdering::AcqRel);
    }
}

/// The shard router: fronts a [`ShardedStore`] with per-shard circuit
/// breakers, deadline-budget fan-out, hedged retries, and typed
/// partial-coverage degradation. See the module docs for the pipeline.
pub struct Router {
    sharded: ShardedStore,
    rcfg: RouterConfig,
    runtimes: Vec<Arc<ShardRuntime>>,
    inflight: AtomicUsize,
    served: AtomicU64,
    shed: AtomicU64,
    partial: AtomicU64,
    hedges: AtomicU64,
    started: Instant,
}

impl Router {
    /// Fronts an already-partitioned store. `cfg.num_shards` is not
    /// consulted here — the partition count was fixed when `sharded` was
    /// built; `min_shards` larger than the actual shard count is clamped
    /// to it (otherwise no answer could ever satisfy it).
    pub fn new(sharded: ShardedStore, cfg: RouterConfig) -> Self {
        let runtimes = sharded
            .shards()
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                Arc::new(ShardRuntime {
                    index,
                    store: shard.store.clone(),
                    globals: shard.globals.clone(),
                    breaker: CircuitBreaker::new(cfg.breaker),
                    fault: Mutex::new(None),
                    latency: LatencyTracker::default(),
                })
            })
            .collect();
        Self {
            sharded,
            rcfg: cfg,
            runtimes,
            inflight: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            partial: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The partitioned store behind this router.
    pub fn sharded(&self) -> &ShardedStore {
        &self.sharded
    }

    /// The router's knobs.
    pub fn config(&self) -> &RouterConfig {
        &self.rcfg
    }

    /// A fresh deadline carrying the store's configured default budget.
    pub fn deadline(&self) -> Deadline {
        Deadline::from_budget(self.sharded.config().default_deadline)
    }

    /// One shard's breaker state (test/operator introspection).
    pub fn breaker_state(&self, shard: usize) -> BreakerState {
        self.runtimes[shard].breaker.state()
    }

    /// Hedged duplicates fired over the router's lifetime.
    pub fn hedges_fired(&self) -> u64 {
        self.hedges.load(AtomicOrdering::Relaxed)
    }

    /// Answers that shipped with incomplete coverage.
    pub fn partial_total(&self) -> u64 {
        self.partial.load(AtomicOrdering::Relaxed)
    }

    /// Installs (or clears) a query-path fault on one shard.
    pub fn inject_shard_fault(&self, shard: usize, fault: Option<ShardFault>) {
        *lock_recovering(&self.runtimes[shard].fault) = fault;
    }

    /// Installs (or clears) a reload-path fault on one shard's store.
    pub fn inject_shard_load_fault(&self, shard: usize, fault: Option<LoadFault>) {
        self.runtimes[shard].store.inject_fault(fault);
    }

    fn try_ticket(&self) -> Result<RouterTicket<'_>, ServeError> {
        let mut cur = self.inflight.load(AtomicOrdering::Acquire);
        loop {
            if cur >= self.rcfg.router_max_inflight {
                self.shed.fetch_add(1, AtomicOrdering::Relaxed);
                sarn_obs::counter("sarn_serve_router_shed_total").inc();
                return Err(ServeError::Overloaded {
                    inflight: cur,
                    max_inflight: self.rcfg.router_max_inflight,
                });
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                AtomicOrdering::AcqRel,
                AtomicOrdering::Acquire,
            ) {
                Ok(_) => {
                    return Ok(RouterTicket {
                        inflight: &self.inflight,
                    })
                }
                Err(actual) => cur = actual,
            }
        }
    }

    // ---- per-shard machinery --------------------------------------------

    fn journal_transition(&self, rt: &ShardRuntime, (from, to): Transition) {
        let consecutive_failures = rt.breaker.consecutive_failures();
        sarn_obs::counter("sarn_serve_breaker_transitions_total").inc();
        sarn_obs::record(sarn_obs::Event::BreakerTransition {
            shard: rt.index,
            from: from.name().to_string(),
            to: to.name().to_string(),
            consecutive_failures,
        });
        match (from, to) {
            (BreakerState::Closed, BreakerState::Open) => {
                sarn_obs::counter("sarn_serve_quarantine_total").inc();
                sarn_obs::record(sarn_obs::Event::QuarantineEnter {
                    shard: rt.index,
                    consecutive_failures,
                });
            }
            (BreakerState::HalfOpen, BreakerState::Closed) => {
                sarn_obs::record(sarn_obs::Event::QuarantineExit { shard: rt.index });
            }
            // Open → half-open (probe granted) and half-open → open
            // (probe failed) stay inside quarantine: no boundary event.
            _ => {}
        }
    }

    /// One attempt, hedged: inline when hedging is off or the latency
    /// estimate is cold; otherwise the primary runs on a worker thread
    /// and a duplicate fires after `p99 × hedge_factor`, first answer
    /// winning. Stragglers are detached — their send to the dropped
    /// channel fails harmlessly — so a slow primary cannot hold the
    /// request hostage, which is the whole point of hedging.
    ///
    /// Returns the outcome plus whether a hedge fired. Hedged calls are
    /// excluded from the latency estimator: their measured wait is the
    /// hedge threshold itself, and feeding it back would double the
    /// threshold on every hedge until hedging disarmed against the very
    /// shard it is protecting the tail from.
    fn run_hedged(
        &self,
        rt: &Arc<ShardRuntime>,
        attempt: &AttemptFn,
        deadline: &Deadline,
    ) -> (Result<ShardPartial, ServeError>, bool) {
        let threshold = if self.rcfg.hedge {
            rt.latency
                .p99()
                .map(|p| p.mul_f64(self.rcfg.hedge_factor.max(1.0)))
        } else {
            None
        };
        let Some(threshold) = threshold else {
            return (attempt(), false);
        };
        let threshold = threshold.max(Duration::from_micros(50));
        let (tx, rx) = mpsc::channel();
        let primary = attempt.clone();
        let tx1 = tx.clone();
        std::thread::spawn(move || {
            let _ = tx1.send(primary());
        });
        match rx.recv_timeout(threshold) {
            Ok(res) => (res, false),
            Err(RecvTimeoutError::Timeout) => {
                self.hedges.fetch_add(1, AtomicOrdering::Relaxed);
                sarn_obs::counter("sarn_serve_hedge_total").inc();
                sarn_obs::record(sarn_obs::Event::HedgeFired {
                    shard: rt.index,
                    after_ms: threshold.as_secs_f64() * 1e3,
                });
                let hedge = attempt.clone();
                std::thread::spawn(move || {
                    let _ = tx.send(hedge());
                });
                // Wait out the rest of this shard's budget slice for
                // whichever copy lands first (unbounded budgets get a
                // generous cap so a doubly-stuck shard cannot wedge us).
                let wait = deadline
                    .remaining()
                    .unwrap_or(Duration::from_secs(5))
                    .max(threshold);
                let res = match rx.recv_timeout(wait) {
                    Ok(res) => res,
                    Err(_) => Err(ServeError::DeadlineExceeded {
                        elapsed: deadline.elapsed(),
                        budget: deadline.budget().unwrap_or_default(),
                    }),
                };
                (res, true)
            }
            Err(RecvTimeoutError::Disconnected) => (
                Err(ServeError::DeadlineExceeded {
                    elapsed: deadline.elapsed(),
                    budget: deadline.budget().unwrap_or_default(),
                }),
                false,
            ),
        }
    }

    /// Bounded retry with doubling backoff around [`Router::run_hedged`].
    /// Deadline and unknown-segment failures are terminal (the budget is
    /// gone / the request can never succeed); everything else retries up
    /// to `shard_retries` times.
    fn call_shard(
        &self,
        rt: &Arc<ShardRuntime>,
        attempt: &AttemptFn,
        deadline: &Deadline,
    ) -> Result<ShardPartial, ServeError> {
        let mut backoff = self.rcfg.shard_backoff;
        let mut tries = 0usize;
        loop {
            let t0 = Instant::now();
            let (res, hedged) = self.run_hedged(rt, attempt, deadline);
            match res {
                Ok(p) => {
                    // Only un-hedged successes feed the p99 estimator —
                    // see the pollution argument on [`Router::run_hedged`].
                    if !hedged {
                        rt.latency.record(t0.elapsed().as_secs_f64());
                    }
                    return Ok(p);
                }
                Err(e) => {
                    let terminal = matches!(
                        e,
                        ServeError::DeadlineExceeded { .. } | ServeError::UnknownSegment { .. }
                    );
                    if terminal || tries >= self.rcfg.shard_retries {
                        return Err(e);
                    }
                    tries += 1;
                    // Never sleep past the shard's remaining slice.
                    let nap = match deadline.remaining() {
                        Some(rem) => backoff.min(rem),
                        None => backoff,
                    };
                    if !nap.is_zero() {
                        std::thread::sleep(nap);
                    }
                    backoff = backoff.saturating_mul(2);
                }
            }
        }
    }

    /// The full per-shard pipeline: breaker gate, budgeted hedged
    /// attempts, outcome recording. Exactly one journal entry per breaker
    /// state change (the CAS winner inside the breaker reports it here).
    fn query_shard(
        &self,
        rt: &Arc<ShardRuntime>,
        attempt: &AttemptFn,
        deadline: &Deadline,
    ) -> ShardResult {
        let (admission, transition) = rt.breaker.try_admit();
        if let Some(t) = transition {
            self.journal_transition(rt, t);
        }
        if admission == Admission::Reject {
            return ShardResult::Quarantined;
        }
        let probe = admission == Admission::Probe;
        match self.call_shard(rt, attempt, deadline) {
            Ok(partial) => {
                if probe {
                    if let Some(t) = rt.breaker.record_probe(true) {
                        self.journal_transition(rt, t);
                    }
                } else {
                    rt.breaker.record_success();
                }
                ShardResult::Answered(partial)
            }
            Err(e) => {
                if probe {
                    if let Some(t) = rt.breaker.record_probe(false) {
                        self.journal_transition(rt, t);
                    }
                } else if let Some(t) = rt.breaker.record_failure() {
                    self.journal_transition(rt, t);
                }
                ShardResult::Failed(e)
            }
        }
    }

    // ---- queries ---------------------------------------------------------

    /// Exact k-NN fan-out across every shard: bitwise identical to
    /// [`EmbeddingStore::knn`] on a combined store when all shards are
    /// healthy, partial (with typed [`Coverage`]) when they are not.
    pub fn knn(
        &self,
        segment: usize,
        k: usize,
        deadline: Deadline,
    ) -> Result<RoutedKnn, ServeError> {
        let _ticket = self.try_ticket()?;
        self.knn_fanout(segment, k, deadline, false)
    }

    /// Approximate k-NN fan-out: candidates come from the router's global
    /// grid (the exact expansion the single store runs), each shard
    /// scores only its own candidate rows. Bitwise identical to
    /// [`EmbeddingStore::knn_approx`] on a combined store when healthy.
    pub fn knn_approx(
        &self,
        segment: usize,
        k: usize,
        deadline: Deadline,
    ) -> Result<RoutedKnn, ServeError> {
        let _ticket = self.try_ticket()?;
        self.knn_fanout(segment, k, deadline, true)
    }

    /// Batched fan-out, amortizing the per-request admission work: one
    /// router ticket covers the whole batch, and request `i` of `m` gets
    /// a [`Deadline::split`] slice of whatever budget the earlier
    /// requests left (early finishers donate their surplus). Per-request
    /// failures stay per-request — one bad segment id does not fail its
    /// batch-mates.
    pub fn knn_batch(
        &self,
        segments: &[usize],
        k: usize,
        deadline: Deadline,
    ) -> Result<Vec<Result<RoutedKnn, ServeError>>, ServeError> {
        let _ticket = self.try_ticket()?;
        let m = segments.len();
        let mut answers = Vec::with_capacity(m);
        for (i, &segment) in segments.iter().enumerate() {
            let slice = deadline.split(m - i);
            answers.push(self.knn_fanout(segment, k, slice, false));
        }
        Ok(answers)
    }

    fn knn_fanout(
        &self,
        segment: usize,
        k: usize,
        deadline: Deadline,
        approx: bool,
    ) -> Result<RoutedKnn, ServeError> {
        let _latency = sarn_obs::span!("sarn_serve_router_knn_seconds");
        deadline.check()?;
        let (owner, local) = self.sharded.locate(segment)?;
        // The query row's bytes and norm come from the owner shard's
        // generation — the same bytes (and therefore the same norm f32)
        // the combined store would use. Read via a raw snapshot, not the
        // query path: fault injection sabotages *serving* legs, but a
        // router that cannot even read the query row has nothing to fan
        // out, so that is the one genuinely fatal dependency.
        let owner_gen = self.runtimes[owner]
            .store
            .snapshot()
            .ok_or(ServeError::NotReady)?;
        let query: Arc<Vec<f32>> = Arc::new(owner_gen.embeddings().row_slice(local).to_vec());
        let query_norm = owner_gen.row_norm(local);
        drop(owner_gen);

        // Which shards this query consults, with the rows each scores.
        // Exact: every shard, full scan. Approx: only shards owning
        // global-grid candidates, scoring exactly those rows.
        let mut legs: Vec<Leg> = Vec::new();
        if approx {
            let candidates = self.sharded.approx_candidates(segment, k, deadline)?;
            let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); self.runtimes.len()];
            for g in candidates {
                let (si, li) = self.sharded.locate(g)?;
                per_shard[si].push(li);
            }
            for (si, locals) in per_shard.into_iter().enumerate() {
                if !locals.is_empty() {
                    legs.push((self.runtimes[si].clone(), Some(Arc::new(locals))));
                }
            }
        } else {
            for rt in &self.runtimes {
                legs.push((rt.clone(), None));
            }
        }

        let total = legs.len();
        let mut merged: Vec<(usize, f32)> = Vec::new();
        let mut shards_cov: Vec<ShardCoverage> = Vec::with_capacity(total);
        let (mut answered, mut degraded) = (0usize, 0usize);
        for (i, (rt, rows)) in legs.iter().enumerate() {
            // Divide what is left of the budget among the shards still
            // waiting: early fast shards donate surplus to later ones.
            let slice = deadline.split(total - i);
            let exclude = (rt.index == owner).then_some(local);
            let attempt =
                self.make_attempt(rt, rows.clone(), &query, query_norm, exclude, k, slice);
            match self.query_shard(rt, &attempt, &slice) {
                ShardResult::Answered(p) => {
                    merged.extend(p.pairs);
                    answered += 1;
                    shards_cov.push(ShardCoverage {
                        shard: rt.index,
                        outcome: ShardOutcome::Answered,
                        generation: Some(p.generation),
                        error: None,
                    });
                }
                ShardResult::Quarantined => shards_cov.push(ShardCoverage {
                    shard: rt.index,
                    outcome: ShardOutcome::Quarantined,
                    generation: rt.store.generation(),
                    error: None,
                }),
                ShardResult::Failed(e) if !approx => {
                    // Degrade ladder: rescue this shard's contribution
                    // with its ready ANN index first (full candidate
                    // coverage, approximate ranking), then the cheap
                    // grid-approximate leg, before giving up on it.
                    sarn_obs::counter("sarn_serve_shard_failed_total").inc();
                    let rescue = self
                        .ann_leg(rt, &query, query_norm, exclude, k, &deadline)
                        .map(|p| (p, ShardOutcome::DegradedAnn))
                        .or_else(|| {
                            self.degraded_leg(
                                rt, segment, &query, query_norm, exclude, k, &deadline,
                            )
                            .map(|p| (p, ShardOutcome::DegradedApprox))
                        });
                    match rescue {
                        Some((p, outcome)) => {
                            merged.extend(p.pairs);
                            answered += 1;
                            degraded += 1;
                            let rung = if outcome == ShardOutcome::DegradedAnn {
                                "sarn_serve_router_ann_rescue_total"
                            } else {
                                "sarn_serve_router_degraded_total"
                            };
                            sarn_obs::counter(rung).inc();
                            shards_cov.push(ShardCoverage {
                                shard: rt.index,
                                outcome,
                                generation: Some(p.generation),
                                error: Some(e.to_string()),
                            });
                        }
                        None => shards_cov.push(ShardCoverage {
                            shard: rt.index,
                            outcome: ShardOutcome::Failed,
                            generation: rt.store.generation(),
                            error: Some(e.to_string()),
                        }),
                    }
                }
                ShardResult::Failed(e) => {
                    sarn_obs::counter("sarn_serve_shard_failed_total").inc();
                    shards_cov.push(ShardCoverage {
                        shard: rt.index,
                        outcome: ShardOutcome::Failed,
                        generation: rt.store.generation(),
                        error: Some(e.to_string()),
                    })
                }
            }
        }

        let min_shards = self.rcfg.min_shards.min(total.max(1));
        if answered < min_shards {
            sarn_obs::counter("sarn_serve_router_refused_total").inc();
            return Err(ServeError::PartialCoverage {
                answered,
                total,
                min_shards,
            });
        }
        let coverage = Coverage {
            total,
            answered,
            degraded,
            shards: shards_cov,
        };
        if !coverage.complete() {
            self.partial.fetch_add(1, AtomicOrdering::Relaxed);
            sarn_obs::counter("sarn_serve_partial_total").inc();
            sarn_obs::record(sarn_obs::Event::PartialCoverage { answered, total });
        }
        self.served.fetch_add(1, AtomicOrdering::Relaxed);
        Ok(RoutedKnn {
            neighbors: top_k(merged, k),
            coverage,
        })
    }

    /// Builds the cloneable per-shard attempt closure: consume one
    /// fault-injection step, run the shard leg (full scan or explicit
    /// rows), map local ids back to global.
    #[allow(clippy::too_many_arguments)]
    fn make_attempt(
        &self,
        rt: &Arc<ShardRuntime>,
        rows: Option<Arc<Vec<usize>>>,
        query: &Arc<Vec<f32>>,
        query_norm: f32,
        exclude: Option<usize>,
        k: usize,
        slice: Deadline,
    ) -> AttemptFn {
        let rt = rt.clone();
        let query = query.clone();
        Arc::new(move || {
            rt.apply_fault()?;
            match &rows {
                None => {
                    let knn = rt.store.knn_vector(&query, query_norm, exclude, k, slice)?;
                    Ok(ShardPartial {
                        pairs: knn
                            .neighbors
                            .iter()
                            .map(|&(l, s)| (rt.globals[l], s))
                            .collect(),
                        generation: knn.generation,
                    })
                }
                Some(locals) => {
                    let (scored, generation) = rt
                        .store
                        .score_vector(&query, query_norm, locals, exclude, slice)?;
                    Ok(ShardPartial {
                        pairs: scored.iter().map(|&(l, s)| (rt.globals[l], s)).collect(),
                        generation,
                    })
                }
            }
        })
    }

    /// The ANN rescue leg: answer from this shard's HNSW index when one
    /// is ready (`None` otherwise — absent, building, or fell back),
    /// outside the breaker (it already recorded the exact leg's failure)
    /// and with one slice of whatever budget remains.
    fn ann_leg(
        &self,
        rt: &Arc<ShardRuntime>,
        query: &Arc<Vec<f32>>,
        query_norm: f32,
        exclude: Option<usize>,
        k: usize,
        deadline: &Deadline,
    ) -> Option<ShardPartial> {
        let slice = deadline.split(1);
        rt.apply_fault().ok()?;
        let knn = rt
            .store
            .knn_vector_ann(query, query_norm, exclude, k, slice)
            .ok()?;
        Some(ShardPartial {
            pairs: knn
                .neighbors
                .iter()
                .map(|&(l, s)| (rt.globals[l], s))
                .collect(),
            generation: knn.generation,
        })
    }

    /// The degraded rescue leg: score only this shard's global-grid
    /// candidate rows (a handful instead of a scan), outside the breaker
    /// (it already recorded the exact leg's failure) and with one slice
    /// of whatever budget remains.
    #[allow(clippy::too_many_arguments)]
    fn degraded_leg(
        &self,
        rt: &Arc<ShardRuntime>,
        segment: usize,
        query: &Arc<Vec<f32>>,
        query_norm: f32,
        exclude: Option<usize>,
        k: usize,
        deadline: &Deadline,
    ) -> Option<ShardPartial> {
        let slice = deadline.split(1);
        let candidates = self.sharded.approx_candidates(segment, k, slice).ok()?;
        let locals: Vec<usize> = candidates
            .into_iter()
            .filter_map(|g| {
                let (si, li) = self.sharded.locate(g).ok()?;
                (si == rt.index).then_some(li)
            })
            .collect();
        if locals.is_empty() {
            return None;
        }
        rt.apply_fault().ok()?;
        let (scored, generation) = rt
            .store
            .score_vector(query, query_norm, &locals, exclude, slice)
            .ok()?;
        Some(ShardPartial {
            pairs: scored.iter().map(|&(l, s)| (rt.globals[l], s)).collect(),
            generation,
        })
    }

    // ---- health ----------------------------------------------------------

    /// Shard-aware health: the aggregate `state` is the *worst* shard's
    /// (an open breaker counts as degraded even while the shard's own
    /// store is nominally serving), and `shards` lists every shard's
    /// generation, age, and breaker position — the staleness SLO fires
    /// per shard.
    pub fn health(&self) -> HealthReport {
        fn severity(state: &ServeState) -> u8 {
            match state {
                ServeState::Serving { .. } => 0,
                ServeState::Stale { .. } => 1,
                ServeState::Degraded { .. } => 2,
                ServeState::Shedding { .. } => 3,
                ServeState::Loading => 4,
            }
        }
        let mut shards = Vec::with_capacity(self.runtimes.len());
        let mut worst: Option<ServeState> = None;
        let (mut reloads_ok, mut reloads_failed) = (0u64, 0u64);
        let (mut shed_total, mut degraded_total, mut served_total) = (0u64, 0u64, 0u64);
        let mut consecutive_reload_failures = 0u32;
        let mut last_reload_error = None;
        let mut inflight = 0usize;
        let mut generations = Vec::with_capacity(self.runtimes.len());
        let mut oldest_age: Option<Duration> = None;
        let mut index_states = Vec::with_capacity(self.runtimes.len());
        for rt in &self.runtimes {
            let h = rt.store.health();
            let breaker = rt.breaker.state();
            let index = rt.store.index_state();
            index_states.push(index);
            // Effective shard state: forced staleness and an open breaker
            // both degrade a nominally-serving shard.
            let state = if rt.forced_stale() {
                ServeState::Stale {
                    generation: h.generation.unwrap_or(0),
                    age: h.generation_age.unwrap_or_default(),
                }
            } else if breaker != BreakerState::Closed
                && severity(&h.state)
                    < severity(&ServeState::Degraded {
                        generation: 0,
                        consecutive_failures: 0,
                    })
            {
                ServeState::Degraded {
                    generation: h.generation.unwrap_or(0),
                    consecutive_failures: rt.breaker.consecutive_failures().max(1),
                }
            } else {
                h.state
            };
            if worst
                .as_ref()
                .is_none_or(|w| severity(&state) > severity(w))
            {
                worst = Some(state);
            }
            reloads_ok += h.reloads_ok;
            reloads_failed += h.reloads_failed;
            shed_total += h.shed_total;
            degraded_total += h.degraded_total;
            served_total += h.served_total;
            inflight += h.inflight;
            consecutive_reload_failures =
                consecutive_reload_failures.max(h.consecutive_reload_failures);
            if last_reload_error.is_none() {
                last_reload_error = h.last_reload_error.clone();
            }
            generations.push(h.generation);
            if let Some(age) = h.generation_age {
                oldest_age = Some(oldest_age.map_or(age, |o| o.max(age)));
            }
            shards.push(ShardHealth {
                shard: rt.index,
                state,
                generation: h.generation,
                generation_age: h.generation_age,
                breaker,
                consecutive_failures: rt.breaker.consecutive_failures(),
                segments: rt.globals.len(),
                index,
            });
        }
        // Pessimistic aggregate: any shard serving without its index
        // (FellBack) dominates, then any still building; Ready only when
        // every shard is, reporting the slowest build.
        let index = if index_states
            .iter()
            .any(|s| matches!(s, IndexState::FellBack))
        {
            IndexState::FellBack
        } else if index_states
            .iter()
            .any(|s| matches!(s, IndexState::Building))
        {
            IndexState::Building
        } else {
            let builds: Vec<u64> = index_states
                .iter()
                .filter_map(|s| match s {
                    IndexState::Ready { build_ms } => Some(*build_ms),
                    _ => None,
                })
                .collect();
            if !index_states.is_empty() && builds.len() == index_states.len() {
                IndexState::Ready {
                    build_ms: builds.into_iter().max().unwrap_or(0),
                }
            } else {
                IndexState::None
            }
        };
        // The aggregate generation is only meaningful when every shard
        // serves the same one (per-shard swaps legitimately diverge).
        let generation = match generations.first().copied().flatten() {
            Some(g) if generations.iter().all(|&x| x == Some(g)) => Some(g),
            _ => None,
        };
        HealthReport {
            state: worst.unwrap_or(ServeState::Loading),
            generation,
            consecutive_reload_failures,
            reloads_ok,
            reloads_failed,
            last_reload_error,
            inflight: inflight + self.inflight.load(AtomicOrdering::Acquire),
            shed_total: shed_total + self.shed.load(AtomicOrdering::Relaxed),
            degraded_total: degraded_total + self.partial.load(AtomicOrdering::Relaxed),
            served_total: served_total.max(self.served.load(AtomicOrdering::Relaxed)),
            uptime: self.started.elapsed(),
            generation_age: oldest_age,
            metrics: sarn_obs::enabled().then(|| sarn_obs::Registry::global().snapshot()),
            index,
            shards,
        }
    }
}
