//! Geo-partitioned shard layout: N independent [`EmbeddingStore`]s, each
//! owning a contiguous band of grid cells.
//!
//! A [`ShardedStore`] splits the served network's segments by the
//! row-major cell band of their midpoint ([`Grid::shard_of`]) into
//! per-shard stores. Each shard is a full [`EmbeddingStore`] with its own
//! `Arc<Generation>` publishing, admission ceiling, reload retry, and
//! staleness tracking — so one shard can hot-swap, fail, or be
//! quarantined without touching its siblings' generations. The
//! [`crate::Router`] fronts this layout with breakers, hedging, and
//! coverage accounting.
//!
//! The sharded layout also keeps a *global* spatial grid identical to the
//! one a single combined store would build (same bounding box, same cell
//! side, same bucket insertion order). Approximate fan-out candidates are
//! generated from this global grid with exactly the single store's
//! radius-expansion loop, which is one half of the router's
//! bitwise-identity guarantee; the other half is that shard rows hold the
//! same bytes as the combined matrix rows ([`ShardedStore::admit`] slices
//! with `Tensor::gather_rows`) and are scored by the same kernel in the
//! same operand order.

use std::path::Path;
use std::sync::Arc;

use sarn_geo::{CellId, Grid, Point};
use sarn_roadnet::RoadNetwork;
use sarn_tensor::{Tensor, TensorExpectation};

use crate::config::ServeConfig;
use crate::deadline::Deadline;
use crate::error::ServeError;
use crate::store::EmbeddingStore;

/// One shard: its store plus the global ids of the rows it owns.
#[derive(Clone)]
pub struct Shard {
    /// The shard's own generation-swapping store (local row indexing).
    pub store: Arc<EmbeddingStore>,
    /// Global segment id of each local row, ascending.
    pub globals: Arc<Vec<usize>>,
}

/// A geo-partitioned set of embedding stores with a shared global grid.
pub struct ShardedStore {
    cfg: ServeConfig,
    dim: usize,
    grid: Grid,
    /// Cell of each global segment's midpoint.
    segment_cell: Vec<CellId>,
    /// Global segments bucketed by cell (single-store insertion order).
    buckets: Vec<Vec<usize>>,
    /// Shard index of each global segment.
    shard_of_segment: Vec<usize>,
    /// Local row within its shard of each global segment.
    local_of_segment: Vec<usize>,
    shards: Vec<Shard>,
}

impl ShardedStore {
    /// Partitions `midpoints` (index = global segment id) into at most
    /// `num_shards` geo-shards. Cell bands that own no segments are
    /// compacted away, so [`ShardedStore::num_shards`] may come back
    /// smaller than requested; every surviving shard is non-empty.
    pub fn new(
        midpoints: Vec<Point>,
        dim: usize,
        cfg: ServeConfig,
        num_shards: usize,
    ) -> Result<Self, ServeError> {
        let mut it = midpoints.iter().copied();
        let first = it
            .next()
            .ok_or(ServeError::Load(sarn_tensor::IoError::LayoutMismatch(
                "a sharded store needs at least one segment".into(),
            )))?;
        let bbox = sarn_geo::BoundingBox::of(std::iter::once(first).chain(it));
        let grid = Grid::try_new(bbox, cfg.grid_clen_m)?;
        let mut segment_cell = Vec::with_capacity(midpoints.len());
        let mut buckets = vec![Vec::new(); grid.num_cells()];
        let mut raw_shard = Vec::with_capacity(midpoints.len());
        for (seg, p) in midpoints.iter().enumerate() {
            let cell = grid.try_cell_of(p)?;
            segment_cell.push(cell);
            buckets[cell].push(seg);
            raw_shard.push(grid.shard_of(cell, num_shards));
        }
        // Compact raw band indices to dense shard ids over non-empty bands.
        let mut band_to_shard = vec![usize::MAX; num_shards.max(1)];
        let mut members: Vec<Vec<usize>> = Vec::new();
        for (seg, &band) in raw_shard.iter().enumerate() {
            if band_to_shard[band] == usize::MAX {
                band_to_shard[band] = members.len();
                members.push(Vec::new());
            }
            members[band_to_shard[band]].push(seg);
        }
        // Bands are monotone in segment-cell order but segments arrive in
        // id order, so sort shards by their first global id for a stable,
        // documented layout (ascending global ids within and across).
        members.sort_by_key(|m| m[0]);
        let mut shard_of_segment = vec![0usize; midpoints.len()];
        let mut local_of_segment = vec![0usize; midpoints.len()];
        let mut shards = Vec::with_capacity(members.len());
        for (si, globals) in members.into_iter().enumerate() {
            let sub: Vec<Point> = globals.iter().map(|&g| midpoints[g]).collect();
            for (local, &g) in globals.iter().enumerate() {
                shard_of_segment[g] = si;
                local_of_segment[g] = local;
            }
            shards.push(Shard {
                store: Arc::new(EmbeddingStore::new(sub, dim, cfg)?),
                globals: Arc::new(globals),
            });
        }
        Ok(Self {
            cfg,
            dim,
            grid,
            segment_cell,
            buckets,
            shard_of_segment,
            local_of_segment,
            shards,
        })
    }

    /// [`ShardedStore::new`] over a road network's segment midpoints.
    pub fn for_network(
        net: &RoadNetwork,
        dim: usize,
        cfg: ServeConfig,
        num_shards: usize,
    ) -> Result<Self, ServeError> {
        let midpoints = net.segments().iter().map(|s| s.midpoint()).collect();
        Self::new(midpoints, dim, cfg, num_shards)
    }

    /// Number of (non-empty, compacted) shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total segments across all shards.
    pub fn num_segments(&self) -> usize {
        self.shard_of_segment.len()
    }

    /// Embedding dimension served.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The knobs every shard store was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// One shard (store + global-id map). Panics on an out-of-range
    /// index, like slice indexing.
    pub fn shard(&self, idx: usize) -> &Shard {
        &self.shards[idx]
    }

    /// All shards, in shard-id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The global ids a shard owns, ascending (its artifact row order).
    pub fn shard_rows(&self, idx: usize) -> &[usize] {
        &self.shards[idx].globals
    }

    /// `(shard, local row)` of a global segment id.
    pub fn locate(&self, segment: usize) -> Result<(usize, usize), ServeError> {
        if segment >= self.num_segments() {
            return Err(ServeError::UnknownSegment {
                segment,
                num_segments: self.num_segments(),
            });
        }
        Ok((
            self.shard_of_segment[segment],
            self.local_of_segment[segment],
        ))
    }

    // ---- admission / reload ---------------------------------------------

    /// Validates a full `num_segments x dim` matrix and admits each
    /// shard's row block into its store — every shard swaps to its slice
    /// of the new matrix (each swap is atomic per shard; shards flip one
    /// by one, which is exactly the independence the router is built to
    /// tolerate). Returns the per-shard generation numbers.
    pub fn admit(&self, embeddings: &Tensor) -> Result<Vec<u64>, ServeError> {
        let shape = TensorExpectation {
            rows: Some(self.num_segments()),
            cols: Some(self.dim),
            finite: false, // finiteness runs through each store's row screen
        };
        shape.validate(embeddings)?;
        let mut generations = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            generations.push(shard.store.admit(embeddings.gather_rows(&shard.globals))?);
        }
        Ok(generations)
    }

    /// Like [`ShardedStore::admit`], but only swaps shards whose row
    /// block actually differs (bitwise) from what they currently serve —
    /// the incremental-edit fast path: a localized update touches one
    /// band, so the other shards keep their generations (and their
    /// readers' `Arc`s) completely untouched. Returns the indices of the
    /// shards that swapped.
    pub fn admit_changed(&self, embeddings: &Tensor) -> Result<Vec<usize>, ServeError> {
        let shape = TensorExpectation {
            rows: Some(self.num_segments()),
            cols: Some(self.dim),
            finite: false,
        };
        shape.validate(embeddings)?;
        let mut swapped = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            let unchanged = shard.store.snapshot().is_some_and(|gen| {
                shard.globals.iter().enumerate().all(|(local, &g)| {
                    let live = gen.embeddings().row_slice(local);
                    let next = embeddings.row_slice(g);
                    live.len() == next.len()
                        && live
                            .iter()
                            .zip(next)
                            .all(|(a, b)| a.to_bits() == b.to_bits())
                })
            });
            if unchanged {
                continue;
            }
            shard.store.admit(embeddings.gather_rows(&shard.globals))?;
            swapped.push(si);
        }
        Ok(swapped)
    }

    /// Hot-reloads one shard from a per-shard artifact (rows = that
    /// shard's global ids in [`ShardedStore::shard_rows`] order), with
    /// the store's usual bounded retry and last-known-good fallback. The
    /// other shards are untouched.
    pub fn reload_shard(&self, idx: usize, path: impl AsRef<Path>) -> Result<u64, ServeError> {
        self.shards[idx].store.reload(path)
    }

    /// Writes one shard's ready HNSW index to `path` (the `.hnsw`
    /// sidecar convention lets the next reload of that shard's artifact
    /// adopt it instead of rebuilding). Typed
    /// [`ServeError::IndexUnavailable`] when the shard has no ready
    /// index.
    pub fn save_shard_index(&self, idx: usize, path: impl AsRef<Path>) -> Result<(), ServeError> {
        self.shards[idx].store.save_index(path)
    }

    // ---- approximate fan-out candidates ----------------------------------

    /// Global candidate ids for an approximate query, generated from the
    /// global grid with *exactly* the single store's radius-expansion
    /// loop (`EmbeddingStore::approx_on`): start at the configured
    /// radius, double until `k` candidates exist or the grid is
    /// exhausted. Identical grid + identical buckets + identical loop ⇒
    /// identical candidate set, which keeps the router's approximate path
    /// bitwise-aligned with the combined store's.
    pub fn approx_candidates(
        &self,
        segment: usize,
        k: usize,
        deadline: Deadline,
    ) -> Result<Vec<usize>, ServeError> {
        if segment >= self.num_segments() {
            return Err(ServeError::UnknownSegment {
                segment,
                num_segments: self.num_segments(),
            });
        }
        let cell = self.segment_cell[segment];
        let max_radius = self.grid.nx().max(self.grid.ny());
        let mut radius = self.cfg.approx_radius;
        let expires_at = deadline.expires_at();
        let mut cells: Vec<CellId> = Vec::new();
        let mut candidates: Vec<usize> = Vec::new();
        loop {
            deadline.check_against(expires_at)?;
            self.grid.neighborhood_into(cell, radius, &mut cells);
            candidates.clear();
            candidates.extend(
                cells
                    .iter()
                    .flat_map(|&c| self.buckets[c].iter().copied())
                    .filter(|&s| s != segment),
            );
            if candidates.len() >= k || radius >= max_radius {
                break;
            }
            radius = radius.saturating_mul(2).max(radius + 1);
        }
        Ok(candidates)
    }
}
