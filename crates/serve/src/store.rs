//! The generation-swapping embedding store.

use std::cmp::Ordering;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};
use std::time::{Duration, Instant};

use sarn_core::{embedding_defect, SarnTrained};
use sarn_geo::{CellId, Grid, Point};
use sarn_roadnet::RoadNetwork;
use sarn_tensor::{Tensor, TensorExpectation};

use crate::config::{LoadFault, ServeConfig};
use crate::deadline::Deadline;
use crate::error::ServeError;

/// One immutable, published embedding snapshot.
///
/// Readers obtain a `Arc<Generation>` and compute entirely against it; a
/// concurrent reload can only swap the pointer to a *new* generation, so
/// a query never observes half of one matrix and half of another.
#[derive(Debug)]
pub struct Generation {
    number: u64,
    embeddings: Tensor,
    /// Per-row L2 norms, precomputed at admission for cosine scoring.
    norms: Vec<f32>,
    /// When this generation was published.
    admitted_at: Instant,
    /// The generation's HNSW index, installed at most once — either
    /// adopted from a validated sidecar at admission, inherited from
    /// the previous generation over identical bytes, or published by
    /// the detached background builder.
    index: OnceLock<Arc<sarn_ann::HnswIndex>>,
    /// [`IndexState`] discriminant (`INDEX_*` constants). Written with
    /// release ordering after `index` is set, so an acquire load seeing
    /// `READY` is guaranteed to find the index installed.
    index_state: AtomicU8,
    /// Wall-clock milliseconds the build took (0 when adopted from a
    /// sidecar file).
    index_build_ms: AtomicU64,
}

const INDEX_NONE: u8 = 0;
const INDEX_BUILDING: u8 = 1;
const INDEX_READY: u8 = 2;
const INDEX_FELL_BACK: u8 = 3;

/// Where a generation's ANN index is in its lifecycle — surfaced per
/// shard in [`HealthReport`] so operators can see which shards still
/// answer k-NN by linear scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexState {
    /// No index: the generation is below [`crate::ServeConfig::ann_threshold`]
    /// rows or the ANN subsystem is disabled. k-NN is the exact scan.
    None,
    /// The background builder is still constructing the index; k-NN
    /// serves by exact scan until it finishes.
    Building,
    /// The index is live: ANN-backed k-NN with exact-rescan fallback.
    Ready {
        /// Wall-clock milliseconds the build took (0 when the index
        /// was adopted from a sidecar file instead of built in-process).
        build_ms: u64,
    },
    /// An index sidecar was corrupt or mismatched at reload: the
    /// generation serves by exact scan and will not retry until the
    /// next successful reload.
    FellBack,
}

impl Generation {
    fn new(number: u64, embeddings: Tensor) -> Self {
        let norms = (0..embeddings.rows())
            .map(|i| {
                sarn_tensor::kernels::squared_norm(embeddings.row_slice(i))
                    .sqrt()
                    .max(1e-12)
            })
            .collect();
        Self {
            number,
            embeddings,
            norms,
            admitted_at: Instant::now(),
            index: OnceLock::new(),
            index_state: AtomicU8::new(INDEX_NONE),
            index_build_ms: AtomicU64::new(0),
        }
    }

    /// Where this generation's ANN index is in its lifecycle.
    pub fn index_state(&self) -> IndexState {
        match self.index_state.load(AtomicOrdering::Acquire) {
            INDEX_BUILDING => IndexState::Building,
            INDEX_READY => IndexState::Ready {
                build_ms: self.index_build_ms.load(AtomicOrdering::Relaxed),
            },
            INDEX_FELL_BACK => IndexState::FellBack,
            _ => IndexState::None,
        }
    }

    /// The live index, only once it is [`IndexState::Ready`].
    pub(crate) fn ann_index(&self) -> Option<Arc<sarn_ann::HnswIndex>> {
        if self.index_state.load(AtomicOrdering::Acquire) == INDEX_READY {
            self.index.get().cloned()
        } else {
            None
        }
    }

    fn mark_building(&self) {
        self.index_state
            .store(INDEX_BUILDING, AtomicOrdering::Release);
    }

    fn mark_fell_back(&self) {
        self.index_state
            .store(INDEX_FELL_BACK, AtomicOrdering::Release);
    }

    /// Publishes an index for this generation. First caller wins; the
    /// `READY` flag is stored *after* the `OnceLock` is set, so readers
    /// that observe `Ready` always find the index.
    fn install_index(&self, index: Arc<sarn_ann::HnswIndex>, build_ms: u64) {
        if self.index.set(index).is_ok() {
            self.index_build_ms.store(build_ms, AtomicOrdering::Relaxed);
            self.index_state.store(INDEX_READY, AtomicOrdering::Release);
        }
    }

    /// Monotonic generation number (1 for the first admitted artifact).
    pub fn number(&self) -> u64 {
        self.number
    }

    /// How long this generation has been the published one.
    pub fn age(&self) -> Duration {
        self.admitted_at.elapsed()
    }

    /// The `n x d` embedding matrix.
    pub fn embeddings(&self) -> &Tensor {
        &self.embeddings
    }

    /// Cosine similarity between two rows, through the shared
    /// [`sarn_tensor::kernels`] dot kernel (so serve-side scoring follows
    /// the same reduction-order knob as training) against the precomputed
    /// norms.
    fn similarity(&self, a: usize, b: usize) -> f32 {
        let dot =
            sarn_tensor::kernels::dot(self.embeddings.row_slice(a), self.embeddings.row_slice(b));
        dot / (self.norms[a] * self.norms[b])
    }

    /// Precomputed L2 norm of one row — what [`Generation::similarity`]
    /// divides by. The shard router reads the query row's norm here so
    /// fan-out scoring divides by the *same* f32 the single store would.
    pub fn row_norm(&self, row: usize) -> f32 {
        self.norms[row]
    }

    /// Cosine similarity of an external query vector (with its
    /// precomputed norm) against row `b` — the fan-out analogue of
    /// [`Generation::similarity`] with the query in the `a` position.
    /// Same dot kernel, same operand order, same norm product order, so
    /// when `query`/`query_norm` hold the bytes of some row `a` the
    /// result is bitwise identical to `similarity(a, b)`.
    pub fn similarity_to_vector(&self, query: &[f32], query_norm: f32, b: usize) -> f32 {
        let dot = sarn_tensor::kernels::dot(query, self.embeddings.row_slice(b));
        dot / (query_norm * self.norms[b])
    }
}

/// Where the store is in its lifecycle, derived for a [`HealthReport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeState {
    /// No generation admitted yet; every query is [`ServeError::NotReady`].
    Loading,
    /// Serving the named generation; the last reload (if any) succeeded.
    Serving {
        /// Generation currently answering queries.
        generation: u64,
    },
    /// Still serving the named (stale) generation, but the most recent
    /// reload attempt(s) failed.
    Degraded {
        /// Stale generation still answering queries.
        generation: u64,
        /// Reload failures since the last successful admission.
        consecutive_failures: u32,
    },
    /// At the in-flight ceiling: new requests are being shed.
    Shedding {
        /// Generation currently answering the admitted requests.
        generation: u64,
    },
    /// Still serving, but the live generation's age has crossed the
    /// staleness SLO ([`ServeConfig::max_staleness`]). Queries keep
    /// succeeding — stale answers beat no answers — and a fresh admission
    /// clears the state.
    Stale {
        /// Over-age generation still answering queries.
        generation: u64,
        /// Its age when the report was taken.
        age: Duration,
    },
}

/// Point-in-time health of an [`EmbeddingStore`] — the serving analogue
/// of the training watchdog's divergence report, emitted instead of a
/// panic whenever the store degrades.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Derived lifecycle state (see DESIGN.md §10).
    pub state: ServeState,
    /// Currently served generation, if any.
    pub generation: Option<u64>,
    /// Reload failures since the last successful admission.
    pub consecutive_reload_failures: u32,
    /// Successful reloads over the store's lifetime.
    pub reloads_ok: u64,
    /// Failed reloads (after exhausting retries) over the lifetime.
    pub reloads_failed: u64,
    /// Message of the most recent reload failure, if any.
    pub last_reload_error: Option<String>,
    /// Requests currently holding admission tickets.
    pub inflight: usize,
    /// Requests shed with [`ServeError::Overloaded`] over the lifetime.
    pub shed_total: u64,
    /// Exact k-NN requests degraded to the approximate path.
    pub degraded_total: u64,
    /// Successfully answered requests.
    pub served_total: u64,
    /// Time since the store was built.
    pub uptime: Duration,
    /// How long the currently served generation has been live (`None`
    /// while loading) — the staleness signal: a store whose reloads keep
    /// failing shows a growing age next to its climbing failure counters.
    pub generation_age: Option<Duration>,
    /// ANN index lifecycle of the served generation. For a sharded
    /// report this aggregates pessimistically: `FellBack` if any shard
    /// fell back, else `Building` if any is still building, else
    /// `Ready` (slowest build) when every shard has an index, else
    /// `None`.
    pub index: IndexState,
    /// Point-in-time copy of the process-wide telemetry registry
    /// (`None` while telemetry is disabled).
    pub metrics: Option<sarn_obs::Snapshot>,
    /// Per-shard health when this report comes from a sharded router
    /// (empty for a single store). The aggregate `state` is then the
    /// *worst* shard's state, and each entry carries that shard's own
    /// generation, age, and breaker position — the staleness SLO fires
    /// per shard, so one stuck shard degrades the whole report even while
    /// its siblings stay fresh.
    pub shards: Vec<ShardHealth>,
}

/// One shard's slice of a sharded [`HealthReport`].
#[derive(Clone, Debug)]
pub struct ShardHealth {
    /// Shard index within the router.
    pub shard: usize,
    /// The shard store's own lifecycle state (staleness SLO included).
    pub state: ServeState,
    /// Generation this shard currently serves, if any.
    pub generation: Option<u64>,
    /// Age of that generation.
    pub generation_age: Option<Duration>,
    /// Where the shard's circuit breaker is in its closed → open →
    /// half-open cycle.
    pub breaker: crate::breaker::BreakerState,
    /// Consecutive typed failures the breaker has counted.
    pub consecutive_failures: u32,
    /// Number of segments (global ids) this shard owns.
    pub segments: usize,
    /// ANN index lifecycle of this shard's served generation — which
    /// shards are still answering k-NN by linear scan.
    pub index: IndexState,
}

impl std::fmt::Display for HealthReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.shards.is_empty() {
            write!(f, "[{} shards] ", self.shards.len())?;
        }
        write!(
            f,
            "{:?}: served {}, shed {}, degraded {}, reloads {}/{} ok, inflight {}, \
             up {:.1}s, generation age {}",
            self.state,
            self.served_total,
            self.shed_total,
            self.degraded_total,
            self.reloads_ok,
            self.reloads_ok + self.reloads_failed,
            self.inflight,
            self.uptime.as_secs_f64(),
            match self.generation_age {
                Some(age) => format!("{:.1}s", age.as_secs_f64()),
                None => "n/a".to_string(),
            },
        )
    }
}

/// A k-nearest-neighbor answer.
#[derive(Clone, Debug, PartialEq)]
pub struct Knn {
    /// `(segment id, cosine similarity)`, most similar first; ties break
    /// on ascending id so answers are deterministic.
    pub neighbors: Vec<(usize, f32)>,
    /// Generation the answer was computed against.
    pub generation: u64,
    /// `true` when an exact request was downgraded to the grid-approximate
    /// path under load.
    pub degraded: bool,
    /// `true` when the answer came from the HNSW index rather than an
    /// exact scan.
    pub ann: bool,
}

/// RAII admission ticket: holds one slot of the in-flight budget until
/// dropped. Exposed so tests and benches can saturate the store
/// deterministically; query methods acquire one internally.
pub struct Ticket<'a> {
    inflight: &'a AtomicUsize,
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, AtomicOrdering::AcqRel);
    }
}

#[derive(Debug, Default)]
struct ReloadLog {
    consecutive_failures: u32,
    reloads_ok: u64,
    reloads_failed: u64,
    last_error: Option<String>,
}

/// Recovers a poisoned mutex: the store's invariants are all on atomics
/// or behind complete replacement (generation swap), so the data behind a
/// poisoned lock is still coherent and serving must continue.
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Concurrency-safe embedding store: validated admission, generation
/// publishing behind an `Arc` swap, hot reload with last-known-good
/// fallback, and deadline/overload-guarded query paths.
pub struct EmbeddingStore {
    cfg: ServeConfig,
    dim: usize,
    grid: Grid,
    /// Cell of each segment's midpoint.
    segment_cell: Vec<CellId>,
    /// Segments bucketed by cell, for approximate candidate generation.
    buckets: Vec<Vec<usize>>,
    current: RwLock<Option<Arc<Generation>>>,
    reload_log: Mutex<ReloadLog>,
    fault: Mutex<Option<LoadFault>>,
    /// Latched on the first health check that observes an SLO breach for
    /// the current generation, so the breach is journaled and counted
    /// once per generation rather than once per probe; a fresh admission
    /// re-arms it.
    stale_flagged: std::sync::atomic::AtomicBool,
    inflight: AtomicUsize,
    served: AtomicU64,
    shed: AtomicU64,
    degraded: AtomicU64,
    started: Instant,
}

impl EmbeddingStore {
    /// Builds a store serving embeddings of dimension `dim` for segments
    /// whose midpoints are `midpoints` (index = segment id). The spatial
    /// grid for approximate k-NN covers the midpoints' bounding box with
    /// [`ServeConfig::grid_clen_m`] cells.
    pub fn new(midpoints: Vec<Point>, dim: usize, cfg: ServeConfig) -> Result<Self, ServeError> {
        let mut it = midpoints.iter().copied();
        let first = it
            .next()
            .ok_or(ServeError::Load(sarn_tensor::IoError::LayoutMismatch(
                "a store needs at least one segment".into(),
            )))?;
        let bbox = sarn_geo::BoundingBox::of(std::iter::once(first).chain(it));
        let grid = Grid::try_new(bbox, cfg.grid_clen_m)?;
        let mut segment_cell = Vec::with_capacity(midpoints.len());
        let mut buckets = vec![Vec::new(); grid.num_cells()];
        for (seg, p) in midpoints.iter().enumerate() {
            let cell = grid.try_cell_of(p)?;
            segment_cell.push(cell);
            buckets[cell].push(seg);
        }
        Ok(Self {
            cfg,
            dim,
            grid,
            segment_cell,
            buckets,
            current: RwLock::new(None),
            reload_log: Mutex::new(ReloadLog::default()),
            fault: Mutex::new(None),
            stale_flagged: std::sync::atomic::AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            started: Instant::now(),
        })
    }

    /// [`EmbeddingStore::new`] over a road network's segment midpoints.
    pub fn for_network(
        net: &RoadNetwork,
        dim: usize,
        cfg: ServeConfig,
    ) -> Result<Self, ServeError> {
        let midpoints = net.segments().iter().map(|s| s.midpoint()).collect();
        Self::new(midpoints, dim, cfg)
    }

    /// The knobs this store was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Number of segments served (expected artifact row count).
    pub fn num_segments(&self) -> usize {
        self.segment_cell.len()
    }

    /// Embedding dimension served (expected artifact column count).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// A fresh deadline carrying the configured default budget.
    pub fn deadline(&self) -> Deadline {
        Deadline::from_budget(self.cfg.default_deadline)
    }

    // ---- generation publishing -----------------------------------------

    /// The currently served generation, if any. Clones an `Arc` under a
    /// briefly-held read lock; all loading and validation happens outside
    /// any lock, so this never waits on a reload's I/O.
    pub fn snapshot(&self) -> Option<Arc<Generation>> {
        self.current
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    /// Number of the currently served generation, if any.
    pub fn generation(&self) -> Option<u64> {
        self.snapshot().map(|g| g.number())
    }

    /// Validates an in-memory embedding matrix and, if admissible,
    /// publishes it as the next generation, atomically flipping every
    /// subsequent query to it. On rejection the previous generation keeps
    /// serving untouched.
    ///
    /// Admission = shape pinned to `num_segments x dim` plus the shared
    /// per-row screen ([`sarn_core::embedding_defect`]) that also guards
    /// the training watchdog's negative queues.
    pub fn admit(&self, embeddings: Tensor) -> Result<u64, ServeError> {
        self.admit_with_index(embeddings, None)
    }

    /// [`EmbeddingStore::admit`] with an optional index seed from a
    /// reload's sidecar validation. Decides the new generation's
    /// [`IndexState`]:
    ///
    /// - a validated sidecar is adopted (`Ready`, `build_ms = 0`);
    /// - a corrupt/mismatched sidecar marks the generation `FellBack`
    ///   (exact scan, no rebuild until the next successful reload) —
    ///   index corruption never fails the embedding reload itself;
    /// - otherwise, when the row count is at or above
    ///   [`ServeConfig::ann_threshold`], the previous generation's
    ///   index is inherited if it is `Ready` and the bytes are
    ///   bitwise identical, else a detached background build starts
    ///   (`Building`; k-NN serves by exact scan until it finishes).
    fn admit_with_index(
        &self,
        embeddings: Tensor,
        seed: Option<IndexSeed>,
    ) -> Result<u64, ServeError> {
        let shape = TensorExpectation {
            rows: Some(self.num_segments()),
            cols: Some(self.dim),
            finite: false, // finiteness runs through the shared row screen below
        };
        shape.validate(&embeddings)?;
        for row in 0..embeddings.rows() {
            if let Some(defect) = embedding_defect(embeddings.row_slice(row), self.dim) {
                return Err(ServeError::CorruptRow { row, defect });
            }
        }
        let eligible = self.ann_eligible(embeddings.rows());
        // Inheritance probe outside the write lock: if the previous
        // generation has a ready index over the very same bytes, reuse
        // it instead of rebuilding (the incremental-edit fast path).
        let inherit = if eligible && seed.is_none() {
            self.snapshot().and_then(|prev| {
                let same = prev.embeddings().data().len() == embeddings.data().len()
                    && prev
                        .embeddings()
                        .data()
                        .iter()
                        .zip(embeddings.data())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                if same {
                    prev.ann_index().map(|idx| {
                        let build_ms = match prev.index_state() {
                            IndexState::Ready { build_ms } => build_ms,
                            _ => 0,
                        };
                        (idx, build_ms)
                    })
                } else {
                    None
                }
            })
        } else {
            None
        };
        let mut current = self
            .current
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let number = current.as_ref().map_or(0, |g| g.number()) + 1;
        let gen = Arc::new(Generation::new(number, embeddings));
        let mut build = false;
        match seed {
            Some(IndexSeed::Loaded(idx)) => gen.install_index(Arc::new(idx), 0),
            Some(IndexSeed::FellBack(reason)) => {
                gen.mark_fell_back();
                sarn_obs::counter("sarn_serve_ann_fallback_total").inc();
                sarn_obs::record(sarn_obs::Event::AnnFallback {
                    generation: number,
                    reason,
                });
            }
            None if eligible => match inherit {
                Some((idx, build_ms)) => gen.install_index(idx, build_ms),
                None => {
                    gen.mark_building();
                    build = true;
                }
            },
            None => {}
        }
        *current = Some(Arc::clone(&gen));
        drop(current);
        let mut log = lock_recovering(&self.reload_log);
        log.consecutive_failures = 0;
        drop(log);
        // A fresh generation re-arms the one-shot staleness latch.
        self.stale_flagged.store(false, AtomicOrdering::Release);
        sarn_obs::gauge("sarn_serve_generation").set(number as f64);
        if build {
            spawn_index_build(gen, self.hnsw_config());
        }
        Ok(number)
    }

    /// Whether a generation of `rows` rows gets an ANN index.
    fn ann_eligible(&self, rows: usize) -> bool {
        self.cfg.ann_threshold != usize::MAX && rows >= self.cfg.ann_threshold
    }

    /// The HNSW parameters every index of this store is built with.
    fn hnsw_config(&self) -> sarn_ann::HnswConfig {
        sarn_ann::HnswConfig {
            m: self.cfg.ann_m,
            ef_construction: self.cfg.ann_ef_construction,
            seed: self.cfg.ann_seed,
        }
    }

    /// Admits a trained model's embedding matrix directly (no file
    /// round-trip) — the in-process publish path after retraining.
    pub fn admit_trained(&self, trained: &SarnTrained) -> Result<u64, ServeError> {
        self.admit(trained.embeddings.clone())
    }

    // ---- hot reload -----------------------------------------------------

    /// Installs (or clears) an injected load fault for the next reload
    /// attempts.
    pub fn inject_fault(&self, fault: Option<LoadFault>) {
        *lock_recovering(&self.fault) = fault;
    }

    /// Reloads an embedding artifact with bounded retry and exponential
    /// backoff ([`ServeConfig::reload_retries`] /
    /// [`ServeConfig::reload_backoff`]).
    ///
    /// On success the new generation is published atomically and its
    /// number returned. On failure of every attempt — truncated or garbage
    /// file, shape mismatch, corrupt rows, injected faults — the
    /// last-known-good generation keeps serving, the health report turns
    /// degraded, and the final attempt's typed error is returned.
    pub fn reload(&self, path: impl AsRef<Path>) -> Result<u64, ServeError> {
        let t0 = Instant::now();
        let path = path.as_ref();
        let mut delay = self.cfg.reload_backoff;
        let mut attempt = 0usize;
        loop {
            match self.load_attempt(path) {
                Ok(number) => {
                    let mut log = lock_recovering(&self.reload_log);
                    log.reloads_ok += 1;
                    log.consecutive_failures = 0;
                    log.last_error = None;
                    drop(log);
                    if sarn_obs::enabled() {
                        let seconds = t0.elapsed().as_secs_f64();
                        sarn_obs::counter("sarn_serve_reloads_ok_total").inc();
                        sarn_obs::histogram("sarn_serve_reload_seconds").observe(seconds);
                        sarn_obs::record(sarn_obs::Event::ReloadOk {
                            generation: number,
                            seconds,
                        });
                    }
                    return Ok(number);
                }
                Err(e) => {
                    if attempt >= self.cfg.reload_retries {
                        let mut log = lock_recovering(&self.reload_log);
                        log.reloads_failed += 1;
                        log.consecutive_failures += 1;
                        log.last_error = Some(e.to_string());
                        drop(log);
                        sarn_obs::counter("sarn_serve_reloads_failed_total").inc();
                        sarn_obs::record(sarn_obs::Event::ReloadFailed {
                            attempts: attempt + 1,
                            error: e.to_string(),
                        });
                        return Err(e);
                    }
                    attempt += 1;
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
            }
        }
    }

    /// One load attempt: injected fault hook, then the validated read,
    /// then admission.
    fn load_attempt(&self, path: &Path) -> Result<u64, ServeError> {
        let (delay_ms, fail) = {
            let mut guard = lock_recovering(&self.fault);
            match guard.as_mut() {
                None => (0, false),
                Some(f) => {
                    let fail = f.fail_loads > 0;
                    if fail {
                        f.fail_loads -= 1;
                    }
                    (f.delay_ms, fail)
                }
            }
        };
        if delay_ms > 0 {
            std::thread::sleep(Duration::from_millis(delay_ms));
        }
        if fail {
            return Err(ServeError::Load(sarn_tensor::IoError::Io(
                std::io::Error::other("injected load fault"),
            )));
        }
        // Shape is validated at the io layer before the bytes ever reach
        // admission; finiteness runs through admit's shared row screen.
        let expect = TensorExpectation {
            rows: Some(self.num_segments()),
            cols: Some(self.dim),
            finite: false,
        };
        let t = Tensor::load_validated(path, &expect)?;
        let seed = self.sidecar_seed(path, &t);
        self.admit_with_index(t, seed)
    }

    /// Probes the `<artifact>.hnsw` sidecar next to a reloading
    /// artifact. Returns `None` when the generation is ANN-ineligible
    /// or no sidecar exists (a background build decides then);
    /// `Loaded` when the sidecar decodes and matches this store's
    /// rows, dimension, HNSW parameters, and data checksum; and
    /// `FellBack` otherwise — index corruption is a guardrail event,
    /// never a reload failure.
    fn sidecar_seed(&self, path: &Path, t: &Tensor) -> Option<IndexSeed> {
        if !self.ann_eligible(t.rows()) {
            return None;
        }
        let sidecar = index_sidecar_path(path);
        if !sidecar.exists() {
            return None;
        }
        match sarn_ann::HnswIndex::load(&sidecar) {
            Ok(idx) => {
                if idx.len() != t.rows() {
                    Some(IndexSeed::FellBack(format!(
                        "index sidecar holds {} points for a {}-row artifact",
                        idx.len(),
                        t.rows()
                    )))
                } else if idx.dim() != self.dim {
                    Some(IndexSeed::FellBack(format!(
                        "index sidecar dimension {} != served dimension {}",
                        idx.dim(),
                        self.dim
                    )))
                } else if idx.config() != self.hnsw_config() {
                    Some(IndexSeed::FellBack(
                        "index sidecar was built with different HNSW parameters".into(),
                    ))
                } else if idx.data_crc() != tensor_data_crc(t) {
                    Some(IndexSeed::FellBack(
                        "index sidecar was built over different embedding bytes".into(),
                    ))
                } else {
                    Some(IndexSeed::Loaded(idx))
                }
            }
            Err(e) => Some(IndexSeed::FellBack(format!("corrupt index sidecar: {e}"))),
        }
    }

    // ---- admission control ----------------------------------------------

    /// Claims one slot of the in-flight budget, shedding with a typed
    /// [`ServeError::Overloaded`] when the ceiling is reached. Query
    /// methods call this internally; it is public so tests and benches can
    /// hold tickets to create deterministic pressure.
    pub fn try_ticket(&self) -> Result<Ticket<'_>, ServeError> {
        let mut cur = self.inflight.load(AtomicOrdering::Acquire);
        loop {
            if cur >= self.cfg.max_inflight {
                self.shed.fetch_add(1, AtomicOrdering::Relaxed);
                sarn_obs::counter("sarn_serve_shed_total").inc();
                sarn_obs::record(sarn_obs::Event::Shed { inflight: cur });
                return Err(ServeError::Overloaded {
                    inflight: cur,
                    max_inflight: self.cfg.max_inflight,
                });
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                AtomicOrdering::AcqRel,
                AtomicOrdering::Acquire,
            ) {
                Ok(_) => {
                    return Ok(Ticket {
                        inflight: &self.inflight,
                    })
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn check_segment(&self, segment: usize) -> Result<(), ServeError> {
        if segment >= self.num_segments() {
            return Err(ServeError::UnknownSegment {
                segment,
                num_segments: self.num_segments(),
            });
        }
        Ok(())
    }

    // ---- queries ---------------------------------------------------------

    /// The embedding of one segment under the current generation.
    pub fn embedding(&self, segment: usize, deadline: Deadline) -> Result<Vec<f32>, ServeError> {
        let _latency = sarn_obs::span!("sarn_serve_lookup_seconds");
        let _ticket = self.try_ticket()?;
        deadline.check()?;
        self.check_segment(segment)?;
        let gen = self.snapshot().ok_or(ServeError::NotReady)?;
        self.served.fetch_add(1, AtomicOrdering::Relaxed);
        Ok(gen.embeddings().row_slice(segment).to_vec())
    }

    /// Exact k-nearest neighbors of a segment by cosine similarity — a
    /// full scan of the current generation, deadline-checked every
    /// [`ServeConfig::deadline_check_every`] rows. Above
    /// [`ServeConfig::degrade_inflight`] in-flight requests the scan
    /// transparently downgrades to the grid-approximate path and the
    /// answer says so (`degraded: true`).
    pub fn knn(&self, segment: usize, k: usize, deadline: Deadline) -> Result<Knn, ServeError> {
        let _latency = sarn_obs::span!("sarn_serve_knn_exact_seconds");
        let _ticket = self.try_ticket()?;
        deadline.check()?;
        self.check_segment(segment)?;
        let gen = self.snapshot().ok_or(ServeError::NotReady)?;
        let pressured = self.cfg.degrade_inflight > 0
            && self.inflight.load(AtomicOrdering::Acquire) > self.cfg.degrade_inflight;
        if pressured {
            self.degraded.fetch_add(1, AtomicOrdering::Relaxed);
            sarn_obs::counter("sarn_serve_degraded_total").inc();
            sarn_obs::record(sarn_obs::Event::Degrade {
                inflight: self.inflight.load(AtomicOrdering::Acquire),
            });
            let mut answer = self.approx_on(&gen, segment, k, deadline)?;
            answer.degraded = true;
            self.served.fetch_add(1, AtomicOrdering::Relaxed);
            return Ok(answer);
        }
        // ANN-backed mode: when the generation's index is ready, answer
        // from the HNSW graph (searching k+1 so the query row itself can
        // be dropped). Any non-Ready state falls through to the exact
        // scan below — the guardrail that makes the index purely an
        // optimization. `IndexState::None` (below threshold / disabled)
        // takes the scan silently, preserving bitwise-identical,
        // event-identical behavior with the index off.
        match gen.index_state() {
            IndexState::Ready { .. } => {
                if let Some(idx) = gen.ann_index() {
                    let ef = self.cfg.ann_ef_search.max(k + 1);
                    match idx.search_with_deadline(
                        &mut |x| gen.similarity(segment, x),
                        k + 1,
                        ef,
                        deadline.expires_at(),
                    ) {
                        Ok(mut hits) => {
                            hits.retain(|&(i, _)| i != segment);
                            hits.truncate(k);
                            let answer = Knn {
                                neighbors: hits,
                                generation: gen.number(),
                                degraded: false,
                                ann: true,
                            };
                            self.served.fetch_add(1, AtomicOrdering::Relaxed);
                            sarn_obs::counter("sarn_serve_knn_ann_total").inc();
                            return Ok(answer);
                        }
                        Err(e) => {
                            // Deadline expiry (or any index failure)
                            // falls back to the exact scan, whose own
                            // deadline probe then reports the typed
                            // ServeError::DeadlineExceeded.
                            self.note_ann_fallback(&gen, &e.to_string());
                        }
                    }
                }
            }
            IndexState::Building => self.note_ann_fallback(&gen, "index building"),
            IndexState::FellBack => self.note_ann_fallback(&gen, "index fell back at reload"),
            IndexState::None => {}
        }
        let n = gen.embeddings().rows();
        // One expiry derivation for the whole scan; each probe below is a
        // single clock read (Deadline::check_against).
        let expires_at = deadline.expires_at();
        let mut scored = Vec::with_capacity(n.saturating_sub(1));
        for i in 0..n {
            if i % self.cfg.deadline_check_every == 0 {
                deadline.check_against(expires_at)?;
            }
            if i != segment {
                scored.push((i, gen.similarity(segment, i)));
            }
        }
        let answer = Knn {
            neighbors: top_k(scored, k),
            generation: gen.number(),
            degraded: false,
            ann: false,
        };
        self.served.fetch_add(1, AtomicOrdering::Relaxed);
        Ok(answer)
    }

    /// Counts and journals one ANN-to-exact fallback.
    fn note_ann_fallback(&self, gen: &Generation, reason: &str) {
        sarn_obs::counter("sarn_serve_ann_fallback_total").inc();
        sarn_obs::record(sarn_obs::Event::AnnFallback {
            generation: gen.number(),
            reason: reason.to_string(),
        });
    }

    /// Grid-bucketed approximate k-nearest neighbors: candidates come
    /// from the segment's spatial neighborhood (expanding the Chebyshev
    /// radius from [`ServeConfig::approx_radius`] until `k` candidates
    /// exist or the grid is exhausted), then are ranked by cosine
    /// similarity. Spatially local by construction — which is exactly the
    /// regime SARN's grid negative sampling optimizes embeddings for.
    pub fn knn_approx(
        &self,
        segment: usize,
        k: usize,
        deadline: Deadline,
    ) -> Result<Knn, ServeError> {
        let _latency = sarn_obs::span!("sarn_serve_knn_approx_seconds");
        let _ticket = self.try_ticket()?;
        deadline.check()?;
        self.check_segment(segment)?;
        let gen = self.snapshot().ok_or(ServeError::NotReady)?;
        let answer = self.approx_on(&gen, segment, k, deadline)?;
        self.served.fetch_add(1, AtomicOrdering::Relaxed);
        Ok(answer)
    }

    fn approx_on(
        &self,
        gen: &Generation,
        segment: usize,
        k: usize,
        deadline: Deadline,
    ) -> Result<Knn, ServeError> {
        let cell = self.segment_cell[segment];
        let max_radius = self.grid.nx().max(self.grid.ny());
        let mut radius = self.cfg.approx_radius;
        let expires_at = deadline.expires_at();
        // One ring buffer and one candidate list for the whole expansion
        // loop: each retry clears and refills instead of reallocating.
        let mut cells: Vec<sarn_geo::CellId> = Vec::new();
        let mut candidates: Vec<usize> = Vec::new();
        loop {
            deadline.check_against(expires_at)?;
            self.grid.neighborhood_into(cell, radius, &mut cells);
            candidates.clear();
            candidates.extend(
                cells
                    .iter()
                    .flat_map(|&c| self.buckets[c].iter().copied())
                    .filter(|&s| s != segment),
            );
            if candidates.len() >= k || radius >= max_radius {
                break;
            }
            radius = radius.saturating_mul(2).max(radius + 1);
        }
        let mut scored = Vec::with_capacity(candidates.len());
        for (j, &i) in candidates.iter().enumerate() {
            if j % self.cfg.deadline_check_every == 0 {
                deadline.check_against(expires_at)?;
            }
            scored.push((i, gen.similarity(segment, i)));
        }
        Ok(Knn {
            neighbors: top_k(scored, k),
            generation: gen.number(),
            degraded: false,
            ann: false,
        })
    }

    // ---- fan-out legs (shard router) -------------------------------------

    /// Exact scan of this store's rows against an external query vector —
    /// the per-shard leg of a router fan-out. Row ids in the answer are
    /// *this store's* local ids; the router maps them back to global
    /// segment ids. `exclude` drops one local row (the query segment on
    /// its owner shard). Scores are bitwise identical to what
    /// [`EmbeddingStore::knn`] computes on a combined store holding the
    /// same row bytes: same dot kernel, same operand order, same
    /// precomputed norms ([`Generation::similarity_to_vector`]).
    pub fn knn_vector(
        &self,
        query: &[f32],
        query_norm: f32,
        exclude: Option<usize>,
        k: usize,
        deadline: Deadline,
    ) -> Result<Knn, ServeError> {
        let _latency = sarn_obs::span!("sarn_serve_knn_shard_seconds");
        let _ticket = self.try_ticket()?;
        deadline.check()?;
        let gen = self.snapshot().ok_or(ServeError::NotReady)?;
        // Same ANN-backed ladder as `knn`, scored against the external
        // query vector; non-Ready states fall through to the scan.
        match gen.index_state() {
            IndexState::Ready { .. } => {
                if let Some(idx) = gen.ann_index() {
                    match self
                        .ann_vector_search(&gen, &idx, query, query_norm, exclude, k, deadline)
                    {
                        Ok(answer) => {
                            self.served.fetch_add(1, AtomicOrdering::Relaxed);
                            sarn_obs::counter("sarn_serve_knn_ann_total").inc();
                            return Ok(answer);
                        }
                        Err(e) => self.note_ann_fallback(&gen, &e.to_string()),
                    }
                }
            }
            IndexState::Building => self.note_ann_fallback(&gen, "index building"),
            IndexState::FellBack => self.note_ann_fallback(&gen, "index fell back at reload"),
            IndexState::None => {}
        }
        let n = gen.embeddings().rows();
        let expires_at = deadline.expires_at();
        let mut scored = Vec::with_capacity(n);
        for i in 0..n {
            if i % self.cfg.deadline_check_every == 0 {
                deadline.check_against(expires_at)?;
            }
            if Some(i) != exclude {
                scored.push((i, gen.similarity_to_vector(query, query_norm, i)));
            }
        }
        let answer = Knn {
            neighbors: top_k(scored, k),
            generation: gen.number(),
            degraded: false,
            ann: false,
        };
        self.served.fetch_add(1, AtomicOrdering::Relaxed);
        Ok(answer)
    }

    /// ANN-only fan-out leg: answers from the index or fails typed with
    /// [`ServeError::IndexUnavailable`] — the router's mid-rung rescue
    /// between a failed exact leg and the grid-approximate leg.
    pub fn knn_vector_ann(
        &self,
        query: &[f32],
        query_norm: f32,
        exclude: Option<usize>,
        k: usize,
        deadline: Deadline,
    ) -> Result<Knn, ServeError> {
        let _latency = sarn_obs::span!("sarn_serve_knn_shard_seconds");
        let _ticket = self.try_ticket()?;
        deadline.check()?;
        let gen = self.snapshot().ok_or(ServeError::NotReady)?;
        let idx = gen.ann_index().ok_or(ServeError::IndexUnavailable {
            state: gen.index_state(),
        })?;
        let answer = self.ann_vector_search(&gen, &idx, query, query_norm, exclude, k, deadline)?;
        self.served.fetch_add(1, AtomicOrdering::Relaxed);
        sarn_obs::counter("sarn_serve_knn_ann_total").inc();
        Ok(answer)
    }

    /// One index search against an external query vector. A deadline
    /// expiry inside the graph walk surfaces as the store's own typed
    /// [`ServeError::DeadlineExceeded`].
    #[allow(clippy::too_many_arguments)]
    fn ann_vector_search(
        &self,
        gen: &Generation,
        idx: &sarn_ann::HnswIndex,
        query: &[f32],
        query_norm: f32,
        exclude: Option<usize>,
        k: usize,
        deadline: Deadline,
    ) -> Result<Knn, ServeError> {
        let want = k + usize::from(exclude.is_some());
        let ef = self.cfg.ann_ef_search.max(want);
        let hits = idx
            .search_with_deadline(
                &mut |x| gen.similarity_to_vector(query, query_norm, x),
                want,
                ef,
                deadline.expires_at(),
            )
            .map_err(|e| match e {
                sarn_ann::AnnError::DeadlineExpired => {
                    deadline
                        .check()
                        .err()
                        .unwrap_or(ServeError::DeadlineExceeded {
                            elapsed: deadline.elapsed(),
                            budget: deadline.budget().unwrap_or_default(),
                        })
                }
                other => ServeError::Index(other),
            })?;
        let mut hits = hits;
        if let Some(x) = exclude {
            hits.retain(|&(i, _)| i != x);
        }
        hits.truncate(k);
        Ok(Knn {
            neighbors: hits,
            generation: gen.number(),
            degraded: false,
            ann: true,
        })
    }

    /// Writes the current generation's ready index to `path` (the
    /// `<artifact>.hnsw` sidecar convention), atomically. Fails typed
    /// when no generation is live or its index is not `Ready`.
    pub fn save_index(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        let gen = self.snapshot().ok_or(ServeError::NotReady)?;
        let idx = gen.ann_index().ok_or(ServeError::IndexUnavailable {
            state: gen.index_state(),
        })?;
        idx.save(path).map_err(ServeError::Index)
    }

    /// The current generation's ANN index lifecycle
    /// ([`IndexState::None`] while no generation is live).
    pub fn index_state(&self) -> IndexState {
        self.snapshot()
            .map_or(IndexState::None, |g| g.index_state())
    }

    /// Scores an explicit list of this store's rows against an external
    /// query vector — the approximate fan-out leg, where the router picks
    /// candidate rows from its global spatial grid and each shard only
    /// scores its own slice. Returns `(local row, score)` pairs plus the
    /// generation they were scored against; `exclude` skips the query
    /// segment's own row.
    pub fn score_vector(
        &self,
        query: &[f32],
        query_norm: f32,
        rows: &[usize],
        exclude: Option<usize>,
        deadline: Deadline,
    ) -> Result<(Vec<(usize, f32)>, u64), ServeError> {
        let _ticket = self.try_ticket()?;
        deadline.check()?;
        let gen = self.snapshot().ok_or(ServeError::NotReady)?;
        let expires_at = deadline.expires_at();
        let mut scored = Vec::with_capacity(rows.len());
        for (j, &i) in rows.iter().enumerate() {
            if j % self.cfg.deadline_check_every == 0 {
                deadline.check_against(expires_at)?;
            }
            if Some(i) == exclude {
                continue;
            }
            self.check_segment(i)?;
            scored.push((i, gen.similarity_to_vector(query, query_norm, i)));
        }
        self.served.fetch_add(1, AtomicOrdering::Relaxed);
        Ok((scored, gen.number()))
    }

    // ---- health ----------------------------------------------------------

    /// Point-in-time health: lifecycle state plus lifetime counters,
    /// uptime and generation age (the staleness signals), and — when
    /// telemetry is enabled — a full metrics snapshot.
    pub fn health(&self) -> HealthReport {
        let snapshot = self.snapshot();
        let generation = snapshot.as_ref().map(|g| g.number());
        let generation_age = snapshot.as_ref().map(|g| g.age());
        let inflight = self.inflight.load(AtomicOrdering::Acquire);
        let log = lock_recovering(&self.reload_log);
        // Staleness: age of the live generation against the SLO. Checked
        // after overload and reload failures in the precedence below —
        // those states describe *why* the store may be growing stale.
        let over_age = match (self.cfg.max_staleness, generation_age) {
            (Some(slo), Some(age)) if age > slo => Some(age),
            _ => None,
        };
        let state = match generation {
            None => ServeState::Loading,
            Some(g) if inflight >= self.cfg.max_inflight => ServeState::Shedding { generation: g },
            Some(g) if log.consecutive_failures > 0 => ServeState::Degraded {
                generation: g,
                consecutive_failures: log.consecutive_failures,
            },
            Some(g) => match over_age {
                Some(age) => ServeState::Stale { generation: g, age },
                None => ServeState::Serving { generation: g },
            },
        };
        if let (Some(age), Some(g)) = (over_age, generation) {
            // Journal and count the breach once per generation.
            if !self.stale_flagged.swap(true, AtomicOrdering::AcqRel) {
                sarn_obs::counter("sarn_serve_stale_total").inc();
                sarn_obs::record(sarn_obs::Event::ServeStale {
                    generation: g,
                    age_seconds: age.as_secs_f64(),
                });
            }
        }
        HealthReport {
            state,
            generation,
            consecutive_reload_failures: log.consecutive_failures,
            reloads_ok: log.reloads_ok,
            reloads_failed: log.reloads_failed,
            last_reload_error: log.last_error.clone(),
            inflight,
            shed_total: self.shed.load(AtomicOrdering::Relaxed),
            degraded_total: self.degraded.load(AtomicOrdering::Relaxed),
            served_total: self.served.load(AtomicOrdering::Relaxed),
            uptime: self.started.elapsed(),
            generation_age,
            index: snapshot
                .as_ref()
                .map_or(IndexState::None, |g| g.index_state()),
            metrics: sarn_obs::enabled().then(|| sarn_obs::Registry::global().snapshot()),
            shards: Vec::new(),
        }
    }
}

/// How a reload seeds the new generation's index (from
/// [`EmbeddingStore::sidecar_seed`]).
enum IndexSeed {
    /// A validated sidecar index, adopted as-is.
    Loaded(sarn_ann::HnswIndex),
    /// The sidecar was corrupt or mismatched: serve by exact scan,
    /// recording why.
    FellBack(String),
}

/// The conventional index sidecar path of an embedding artifact:
/// `<artifact>.hnsw` in the same directory.
pub(crate) fn index_sidecar_path(artifact: &Path) -> PathBuf {
    let mut os = artifact.as_os_str().to_os_string();
    os.push(".hnsw");
    PathBuf::from(os)
}

/// CRC32 of the embedding matrix's little-endian f32 bytes — the
/// checksum an index sidecar must match to be adopted. Shares the
/// checkpoint CRC so the two framing disciplines agree.
fn tensor_data_crc(t: &Tensor) -> u32 {
    let mut bytes = Vec::with_capacity(t.data().len() * 4);
    for v in t.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    sarn_core::checkpoint::crc32(&bytes)
}

/// Builds the generation's HNSW index on a detached thread and
/// installs it when done. The generation serves by exact scan in the
/// meantime; if a newer generation displaces this one mid-build, the
/// finished index lands on an unreferenced snapshot and is dropped
/// with it — publishing is per-generation, so a swap can never adopt a
/// stale index.
fn spawn_index_build(gen: Arc<Generation>, cfg: sarn_ann::HnswConfig) {
    std::thread::spawn(move || {
        let t0 = Instant::now();
        let rows = gen.embeddings().rows();
        let crc = tensor_data_crc(gen.embeddings());
        let mut index = sarn_ann::HnswIndex::new(cfg, gen.embeddings().cols(), crc);
        for _ in 0..rows {
            index.insert(&mut |a, b| gen.similarity(a, b));
        }
        let build_ms = t0.elapsed().as_millis() as u64;
        gen.install_index(Arc::new(index), build_ms);
        sarn_obs::counter("sarn_serve_index_built_total").inc();
        sarn_obs::record(sarn_obs::Event::IndexBuilt {
            generation: gen.number(),
            rows: rows as u64,
            build_ms: build_ms as f64,
        });
    });
}

/// Sorts `(id, similarity)` pairs most-similar-first (ties on ascending
/// id, `total_cmp` so even a pathological non-finite score cannot panic)
/// and keeps the best `k`. The comparator is a strict total order over
/// unique ids, so merging per-shard top-k lists through the same function
/// yields the single-store answer regardless of concatenation order —
/// the keystone of the router's bitwise-identity guarantee.
pub(crate) fn top_k(mut scored: Vec<(usize, f32)>, k: usize) -> Vec<(usize, f32)> {
    scored.sort_unstable_by(|a, b| match b.1.total_cmp(&a.1) {
        Ordering::Equal => a.0.cmp(&b.0),
        other => other,
    });
    scored.truncate(k);
    scored
}
