//! Circuit-breaker state-machine edges: probed recovery, concurrent
//! probe uniqueness, sticky-fault exhaustion, and a property test that
//! random success/failure schedules never journal more transitions than
//! state changes (the exactly-once contract).

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use proptest::prelude::*;
use sarn_serve::{Admission, BreakerConfig, BreakerState, CircuitBreaker};

fn cfg(threshold: u32, cooldown_ms: u64) -> BreakerConfig {
    BreakerConfig {
        failure_threshold: threshold,
        open_cooldown: Duration::from_millis(cooldown_ms),
    }
}

#[test]
fn half_open_probe_success_closes_and_resets_the_streak() {
    let b = CircuitBreaker::new(cfg(2, 1));
    assert!(b.record_failure().is_none());
    assert_eq!(
        b.record_failure(),
        Some((BreakerState::Closed, BreakerState::Open))
    );
    std::thread::sleep(Duration::from_millis(3));
    let (adm, t) = b.try_admit();
    assert_eq!(adm, Admission::Probe);
    assert_eq!(t, Some((BreakerState::Open, BreakerState::HalfOpen)));
    assert_eq!(
        b.record_probe(true),
        Some((BreakerState::HalfOpen, BreakerState::Closed))
    );
    assert_eq!(b.state(), BreakerState::Closed);
    assert_eq!(b.consecutive_failures(), 0);
    // Fully recovered: the threshold must be exhausted again to re-open.
    assert!(b.record_failure().is_none());
    assert_eq!(b.state(), BreakerState::Closed);
}

#[test]
fn half_open_probe_failure_reopens_and_restarts_the_cooldown() {
    let b = CircuitBreaker::new(cfg(1, 30));
    assert_eq!(
        b.record_failure(),
        Some((BreakerState::Closed, BreakerState::Open))
    );
    std::thread::sleep(Duration::from_millis(35));
    assert_eq!(b.try_admit().0, Admission::Probe);
    assert_eq!(
        b.record_probe(false),
        Some((BreakerState::HalfOpen, BreakerState::Open))
    );
    // The cooldown restarted at the failed probe: an immediate admit is
    // rejected, not granted a second probe.
    assert_eq!(b.try_admit().0, Admission::Reject);
    std::thread::sleep(Duration::from_millis(35));
    assert_eq!(b.try_admit().0, Admission::Probe);
}

#[test]
fn concurrent_probes_cannot_double_close() {
    // Many threads race try_admit on an open breaker whose cooldown has
    // elapsed; the CAS grants exactly one the probe slot, so exactly one
    // thread is entitled to call record_probe — there is no second probe
    // whose success could close the breaker twice (or re-close it after
    // the first probe's failure re-opened it).
    for _ in 0..50 {
        let b = CircuitBreaker::new(cfg(1, 0));
        b.record_failure();
        let probes = AtomicU32::new(0);
        let closes = AtomicU32::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    if b.try_admit().0 == Admission::Probe {
                        probes.fetch_add(1, Ordering::Relaxed);
                        if b.record_probe(true).is_some() {
                            closes.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(probes.load(Ordering::Relaxed), 1, "one probe winner");
        assert_eq!(closes.load(Ordering::Relaxed), 1, "one close, by the probe");
        assert_eq!(b.state(), BreakerState::Closed);
        // Three transitions total: Closed→Open, Open→HalfOpen, HalfOpen→Closed.
        assert_eq!(b.transitions(), 3);
    }
}

#[test]
fn sticky_fault_exhausts_to_open_with_one_transition_per_change() {
    let b = CircuitBreaker::new(cfg(3, 60_000));
    // A sticky failure stream: every call fails. Exactly one Closed→Open
    // transition is handed out, at the threshold, no matter how long the
    // stream runs.
    let mut handed_out = 0;
    for _ in 0..20 {
        if b.record_failure().is_some() {
            handed_out += 1;
        }
    }
    assert_eq!(handed_out, 1);
    assert_eq!(b.state(), BreakerState::Open);
    assert_eq!(b.transitions(), 1);
    // Admission during the cooldown stays rejected and journals nothing.
    for _ in 0..10 {
        let (adm, t) = b.try_admit();
        assert_eq!(adm, Admission::Reject);
        assert!(t.is_none());
    }
    assert_eq!(b.transitions(), 1);
}

proptest! {
    /// Any serial schedule of successes/failures keeps the journaled
    /// transition count exactly equal to the number of observed state
    /// changes, and the state always matches the last transition's `to`.
    #[test]
    fn serial_schedules_journal_exactly_one_transition_per_change(
        ops in proptest::collection::vec(0u8..4, 1..120),
        threshold in 1u32..5,
    ) {
        let b = CircuitBreaker::new(cfg(threshold, 0));
        let journaled = std::cell::Cell::new(0u64);
        let last_to = std::cell::Cell::new(BreakerState::Closed);
        let track = |t: Option<(BreakerState, BreakerState)>| {
            if let Some((from, to)) = t {
                journaled.set(journaled.get() + 1);
                // Transitions chain: each one leaves from the state the
                // previous one entered.
                assert_eq!(from, last_to.get());
                last_to.set(to);
            }
        };
        for op in ops {
            match op {
                0 => b.record_success(),
                1 => track(b.record_failure()),
                2 => {
                    let (adm, t) = b.try_admit();
                    track(t);
                    if adm == Admission::Probe {
                        track(b.record_probe(true));
                    }
                }
                _ => {
                    let (adm, t) = b.try_admit();
                    track(t);
                    if adm == Admission::Probe {
                        track(b.record_probe(false));
                    }
                }
            }
            prop_assert_eq!(b.transitions(), journaled.get());
        }
        prop_assert_eq!(b.state(), last_to.get());
    }
}
