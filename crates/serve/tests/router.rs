//! Behavioral contract of the shard router: bitwise identity with the
//! single store when healthy, typed coverage degradation under injected
//! shard faults, quarantine and probed recovery, hedging against slow
//! shards, batched amortization, and shard-aware health.

use std::time::Duration;

use sarn_geo::Point;
use sarn_serve::{
    BreakerConfig, BreakerState, Deadline, EmbeddingStore, Router, RouterConfig, ServeConfig,
    ServeError, ServeState, ShardFault, ShardOutcome, ShardedStore,
};
use sarn_tensor::Tensor;

const N: usize = 36;
const D: usize = 4;
const SHARDS: usize = 4;

/// Midpoints on a small lattice around Chengdu, ~200 m apart — wide
/// enough that the geo-partitioner produces several non-empty bands.
fn midpoints() -> Vec<Point> {
    (0..N)
        .map(|i| {
            Point::new(
                30.64 + (i / 6) as f64 * 0.002,
                104.04 + (i % 6) as f64 * 0.002,
            )
        })
        .collect()
}

/// Deterministic, row-distinguishable, finite embeddings.
fn embeddings(scale: f32) -> Tensor {
    Tensor::from_vec(
        N,
        D,
        (0..N * D)
            .map(|p| scale * ((p / D) as f32 + 1.0) + (p % D) as f32)
            .collect(),
    )
}

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        reload_retries: 0,
        reload_backoff: Duration::from_millis(1),
        ..ServeConfig::default()
    }
}

/// Deterministic router knobs: hedging off, fast backoff.
fn router_cfg() -> RouterConfig {
    RouterConfig {
        hedge: false,
        shard_retries: 1,
        shard_backoff: Duration::from_millis(1),
        breaker: BreakerConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(10),
        },
        ..RouterConfig::default()
    }
}

fn router_with(cfg: RouterConfig) -> Router {
    let sharded =
        ShardedStore::new(midpoints(), D, serve_cfg(), SHARDS).expect("valid sharded store");
    assert!(sharded.num_shards() > 1, "test needs a real fan-out");
    sharded.admit(&embeddings(1.0)).expect("admission");
    Router::new(sharded, cfg)
}

fn single_store() -> EmbeddingStore {
    let s = EmbeddingStore::new(midpoints(), D, serve_cfg()).expect("valid store");
    s.admit(embeddings(1.0)).expect("admission");
    s
}

#[test]
fn healthy_fanout_is_bitwise_identical_to_the_single_store() {
    let router = router_with(router_cfg());
    let single = single_store();
    for segment in 0..N {
        for k in [1, 3, 10] {
            let ours = router
                .knn(segment, k, Deadline::unbounded())
                .expect("routed knn");
            let theirs = single.knn(segment, k, Deadline::unbounded()).expect("knn");
            assert!(ours.coverage.complete(), "healthy shards, full coverage");
            assert_eq!(ours.neighbors.len(), theirs.neighbors.len());
            for (a, b) in ours.neighbors.iter().zip(&theirs.neighbors) {
                assert_eq!(a.0, b.0, "segment {segment} k {k}: id order");
                assert_eq!(
                    a.1.to_bits(),
                    b.1.to_bits(),
                    "segment {segment} k {k}: score bits"
                );
            }
        }
    }
}

#[test]
fn healthy_approx_fanout_matches_the_single_store_bitwise() {
    let router = router_with(router_cfg());
    let single = single_store();
    for segment in 0..N {
        let ours = router
            .knn_approx(segment, 5, Deadline::unbounded())
            .expect("routed approx");
        let theirs = single
            .knn_approx(segment, 5, Deadline::unbounded())
            .expect("approx");
        assert_eq!(ours.neighbors.len(), theirs.neighbors.len());
        for (a, b) in ours.neighbors.iter().zip(&theirs.neighbors) {
            assert_eq!(
                (a.0, a.1.to_bits()),
                (b.0, b.1.to_bits()),
                "segment {segment}"
            );
        }
    }
}

#[test]
fn transient_shard_fault_is_retried_away() {
    let router = router_with(router_cfg());
    // One failure, one retry (shard_retries = 1): the shard still answers.
    let victim = router.sharded().num_shards() - 1;
    router.inject_shard_fault(
        victim,
        Some(ShardFault {
            fail_queries: 1,
            ..ShardFault::default()
        }),
    );
    // Query a segment owned by shard 0 so the victim is a non-owner leg.
    let out = router.knn(0, 5, Deadline::unbounded()).expect("retried");
    assert!(out.coverage.complete(), "{:?}", out.coverage);
}

#[test]
fn exhausted_shard_degrades_to_approx_then_fails_when_sticky() {
    let router = router_with(router_cfg());
    let victim = router.sharded().num_shards() - 1;
    // Exactly enough failures to exhaust 1 + shard_retries attempts; the
    // degraded approximate leg then finds the fault spent and succeeds.
    router.inject_shard_fault(
        victim,
        Some(ShardFault {
            fail_queries: 2,
            ..ShardFault::default()
        }),
    );
    // k = N forces the grid expansion to cover the whole network, so the
    // victim's rows are among the rescue leg's candidates.
    let out = router.knn(0, N, Deadline::unbounded()).expect("degraded");
    let cov = &out.coverage;
    assert_eq!(cov.answered, cov.total);
    assert_eq!(cov.degraded, 1, "{cov:?}");
    let line = cov.shards.iter().find(|s| s.shard == victim).expect("line");
    assert_eq!(line.outcome, ShardOutcome::DegradedApprox);
    assert!(line
        .error
        .as_deref()
        .is_some_and(|e| e.contains("injected")));

    // Sticky: every attempt (including the rescue leg) fails — the shard
    // is dropped from the answer, the answer itself still succeeds.
    router.inject_shard_fault(
        victim,
        Some(ShardFault {
            fail_queries: 1,
            sticky: true,
            ..ShardFault::default()
        }),
    );
    let out = router.knn(0, N, Deadline::unbounded()).expect("partial");
    let cov = &out.coverage;
    assert_eq!(cov.answered, cov.total - 1, "{cov:?}");
    let line = cov.shards.iter().find(|s| s.shard == victim).expect("line");
    assert_eq!(line.outcome, ShardOutcome::Failed);
    // The missing shard's rows are exactly what distinguishes the partial
    // answer from the full one.
    let full_rows: std::collections::HashSet<usize> = router
        .sharded()
        .shard_rows(victim)
        .iter()
        .copied()
        .collect();
    assert!(out.neighbors.iter().all(|(id, _)| !full_rows.contains(id)));
    assert!(router.partial_total() >= 1);
}

#[test]
fn min_shards_turns_deep_partial_into_a_typed_error() {
    let mut cfg = router_cfg();
    cfg.min_shards = usize::MAX; // clamped to the actual shard count
    let router = router_with(cfg);
    let victim = router.sharded().num_shards() - 1;
    router.inject_shard_fault(
        victim,
        Some(ShardFault {
            fail_queries: 1,
            sticky: true,
            ..ShardFault::default()
        }),
    );
    match router.knn(0, 5, Deadline::unbounded()) {
        Err(ServeError::PartialCoverage {
            answered,
            total,
            min_shards,
        }) => {
            assert_eq!(total, router.sharded().num_shards());
            assert_eq!(answered, total - 1);
            assert_eq!(min_shards, total);
        }
        other => panic!("expected PartialCoverage, got {other:?}"),
    }
}

#[test]
fn breaker_quarantines_after_threshold_and_probe_recovers() {
    sarn_obs::set_enabled(true);
    let _ = sarn_obs::EventJournal::global().drain();
    let mut cfg = router_cfg();
    cfg.breaker = BreakerConfig {
        failure_threshold: 2,
        open_cooldown: Duration::from_millis(20),
    };
    let router = router_with(cfg);
    let victim = router.sharded().num_shards() - 1;
    router.inject_shard_fault(
        victim,
        Some(ShardFault {
            fail_queries: 1,
            sticky: true,
            ..ShardFault::default()
        }),
    );
    // Two failed queries exhaust the threshold.
    for _ in 0..2 {
        let out = router.knn(0, 5, Deadline::unbounded()).expect("partial");
        assert!(!out.coverage.complete());
    }
    assert_eq!(router.breaker_state(victim), BreakerState::Open);
    // While open (cooldown running), the shard is skipped without being
    // consulted: outcome Quarantined, fault untouched.
    let out = router
        .knn(0, 5, Deadline::unbounded())
        .expect("quarantined");
    let line = out
        .coverage
        .shards
        .iter()
        .find(|s| s.shard == victim)
        .expect("line");
    assert_eq!(line.outcome, ShardOutcome::Quarantined);
    // Fault clears; after the cooldown the next query carries the probe,
    // which succeeds and re-closes the breaker — coverage is whole again.
    router.inject_shard_fault(victim, None);
    std::thread::sleep(Duration::from_millis(25));
    let out = router.knn(0, 5, Deadline::unbounded()).expect("probe");
    assert!(out.coverage.complete(), "{:?}", out.coverage);
    assert_eq!(router.breaker_state(victim), BreakerState::Closed);
    // The journal saw the full cycle: open (quarantine enter), half-open,
    // closed (quarantine exit) — one entry per transition.
    let events = sarn_obs::EventJournal::global().drain();
    let kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
    assert!(kinds.contains(&"breaker_transition"), "{kinds:?}");
    assert!(kinds.contains(&"quarantine_enter"), "{kinds:?}");
    assert!(kinds.contains(&"quarantine_exit"), "{kinds:?}");
    assert!(kinds.contains(&"partial_coverage"), "{kinds:?}");
    let transitions = kinds.iter().filter(|k| **k == "breaker_transition").count();
    assert_eq!(
        transitions, 3,
        "closed→open, open→half-open, half-open→closed"
    );
    sarn_obs::set_enabled(false);
}

#[test]
fn hedge_fires_against_a_p99_slow_shard_and_the_answer_survives() {
    let mut cfg = router_cfg();
    cfg.hedge = true;
    cfg.hedge_factor = 2.0;
    let router = router_with(cfg);
    let victim = router.sharded().num_shards() - 1;
    // Warm the latency estimator past its minimum window.
    for _ in 0..20 {
        router.knn(0, 5, Deadline::unbounded()).expect("warmup");
    }
    let before = router.hedges_fired();
    // Inflate exactly one attempt by far more than p99 × factor: the
    // primary sleeps, the hedge (attempt two, delay already consumed)
    // answers fast, and the query still completes with full coverage.
    router.inject_shard_fault(
        victim,
        Some(ShardFault {
            delay_ms: 200,
            delay_queries: 1,
            ..ShardFault::default()
        }),
    );
    let t0 = std::time::Instant::now();
    let out = router.knn(0, 5, Deadline::unbounded()).expect("hedged");
    assert!(out.coverage.complete(), "{:?}", out.coverage);
    assert!(router.hedges_fired() > before, "hedge fired");
    assert!(
        t0.elapsed() < Duration::from_millis(200),
        "hedge beat the inflated primary ({:?})",
        t0.elapsed()
    );
}

#[test]
fn batch_matches_individual_queries_and_isolates_bad_ids() {
    let router = router_with(router_cfg());
    let segments = [0usize, 3, N + 7, 11];
    let batch = router
        .knn_batch(&segments, 4, Deadline::unbounded())
        .expect("batch admission");
    assert_eq!(batch.len(), segments.len());
    for (i, &segment) in segments.iter().enumerate() {
        match (&batch[i], segment < N) {
            (Ok(routed), true) => {
                let solo = router.knn(segment, 4, Deadline::unbounded()).expect("solo");
                let a: Vec<(usize, u32)> = routed
                    .neighbors
                    .iter()
                    .map(|&(id, s)| (id, s.to_bits()))
                    .collect();
                let b: Vec<(usize, u32)> = solo
                    .neighbors
                    .iter()
                    .map(|&(id, s)| (id, s.to_bits()))
                    .collect();
                assert_eq!(a, b, "batch[{i}]");
            }
            (Err(ServeError::UnknownSegment { segment: s, .. }), false) => {
                assert_eq!(*s, segment);
            }
            (other, _) => panic!("batch[{i}] unexpected: {other:?}"),
        }
    }
}

#[test]
fn per_shard_swap_leaves_sibling_generations_untouched() {
    let router = router_with(router_cfg());
    let sharded = router.sharded();
    let shards = sharded.num_shards();
    // Change only the rows owned by shard 0; admit_changed must swap
    // exactly that shard.
    let mut next = embeddings(1.0);
    let touched = sharded.shard_rows(0).to_vec();
    for &g in &touched {
        next.row_slice_mut(g)[0] += 42.0;
    }
    let swapped = sharded.admit_changed(&next).expect("partial admit");
    assert_eq!(swapped, vec![0]);
    for si in 0..shards {
        let expected = if si == 0 { 2 } else { 1 };
        assert_eq!(
            sharded.shard(si).store.generation(),
            Some(expected),
            "shard {si}"
        );
    }
    // An identical re-admit swaps nothing at all.
    let swapped = sharded.admit_changed(&next).expect("no-op admit");
    assert!(swapped.is_empty());
    // Queries across the mixed generations still answer with coverage.
    let out = router.knn(0, 5, Deadline::unbounded()).expect("mixed");
    assert!(out.coverage.complete());
}

#[test]
fn health_is_per_shard_aware_and_aggregates_the_worst_state() {
    let router = router_with(router_cfg());
    let shards = router.sharded().num_shards();
    let h = router.health();
    assert_eq!(h.shards.len(), shards);
    assert!(
        matches!(h.state, ServeState::Serving { .. }),
        "{:?}",
        h.state
    );
    assert!(h.shards.iter().all(|s| s.breaker == BreakerState::Closed));
    assert_eq!(h.shards.iter().map(|s| s.segments).sum::<usize>(), N);
    // Force one shard stale: the aggregate degrades to the worst shard.
    router.inject_shard_fault(
        shards - 1,
        Some(ShardFault {
            force_stale: true,
            ..ShardFault::default()
        }),
    );
    let h = router.health();
    assert!(matches!(h.state, ServeState::Stale { .. }), "{:?}", h.state);
    let line = &h.shards[shards - 1];
    assert!(matches!(line.state, ServeState::Stale { .. }));
    // Siblings are individually unaffected.
    assert!(h.shards[..shards - 1]
        .iter()
        .all(|s| matches!(s.state, ServeState::Serving { .. })));
}
